// Trace census probing cost: the Doubletree stop-set win (§ redundancy-
// aware probing). Runs the traceroute companion census twice — classic
// full traces, then with the concurrent local/global stop sets — and
// reports the honest probe reduction 1 - sent_on / sent_off along with
// the topology coverage both runs discovered. The reduction is the
// number the regression guard gates (RROPT_STOPSET_REDUCTION, default
// 0.40): if stop sets stop paying for themselves the suite fails before
// a paper-scale census quietly doubles in cost.
//
// Scale knobs: RROPT_QUICK shrinks the per-VP destination sample;
// RROPT_TRACE_DESTS overrides it; RROPT_THREADS as everywhere else.
#include <cstdio>
#include <cstring>

#include "bench/common.h"
#include "measure/trace_census.h"

using namespace rr;

int main() {
  bench::heading("trace census: Doubletree stop-set probing cost");
  bench::Telemetry telemetry{"trace"};
  telemetry.phase("world");
  auto config = bench::bench_config();
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);
  std::printf("world: %s\n", testbed.topology().summary().c_str());

  measure::TraceCensusConfig census;
  census.per_vp_dests = 512;
  if (std::getenv("RROPT_QUICK") != nullptr) census.per_vp_dests = 128;
  if (const char* dests = std::getenv("RROPT_TRACE_DESTS")) {
    census.per_vp_dests =
        static_cast<std::size_t>(std::strtoull(dests, nullptr, 10));
  }

  telemetry.phase("census_off");
  census.use_stop_sets = false;
  const auto off = measure::run_trace_census(testbed, census);

  telemetry.phase("census_on");
  census.use_stop_sets = true;
  const auto on = measure::run_trace_census(testbed, census);

  telemetry.phase("analysis");
  const double reduction =
      off.probes_sent > 0
          ? 1.0 - static_cast<double>(on.probes_sent) /
                      static_cast<double>(off.probes_sent)
          : 0.0;
  const double iface_coverage =
      off.interfaces > 0 ? static_cast<double>(on.interfaces) /
                               static_cast<double>(off.interfaces)
                         : 1.0;
  const double link_coverage =
      off.links > 0
          ? static_cast<double>(on.links) / static_cast<double>(off.links)
          : 1.0;

  std::printf("\n  %llu traces x %zu dests/VP, %llu reached\n",
              static_cast<unsigned long long>(on.traces),
              census.per_vp_dests,
              static_cast<unsigned long long>(on.reached));
  std::printf("  probes: %llu without stop sets, %llu with "
              "(%.1f%% reduction)\n",
              static_cast<unsigned long long>(off.probes_sent),
              static_cast<unsigned long long>(on.probes_sent),
              100.0 * reduction);
  std::printf("  stop sets: %llu local / %llu global keys, "
              "hit rate %.1f%%, %llu backward slots skipped, "
              "%llu overflows\n",
              static_cast<unsigned long long>(on.local_keys),
              static_cast<unsigned long long>(on.global_keys),
              100.0 * on.stats.hit_rate(),
              static_cast<unsigned long long>(on.probes_saved),
              static_cast<unsigned long long>(on.stopset_overflows));
  std::printf("  coverage: %llu/%llu interfaces (%.1f%%), "
              "%llu/%llu links (%.1f%%)\n",
              static_cast<unsigned long long>(on.interfaces),
              static_cast<unsigned long long>(off.interfaces),
              100.0 * iface_coverage,
              static_cast<unsigned long long>(on.links),
              static_cast<unsigned long long>(off.links),
              100.0 * link_coverage);

  bench::heading("headline probing cost");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * reduction);
  bench::report("probe reduction from stop sets", ">=40%", buf);
  std::snprintf(buf, sizeof buf, "%.1f%%", 100.0 * iface_coverage);
  bench::report("interface coverage retained", "~100%", buf);

  char hex[32];
  telemetry.value("probes_sent", on.probes_sent);
  telemetry.value("probes_saved", on.probes_saved);
  telemetry.value("probes_sent_baseline", off.probes_sent);
  telemetry.value("stopset_hit_rate", on.stats.hit_rate());
  telemetry.value("stopset_reduction", reduction);
  telemetry.value("stopset_local_keys", on.local_keys);
  telemetry.value("stopset_global_keys", on.global_keys);
  telemetry.value("stopset_overflows", on.stopset_overflows);
  telemetry.value("trace_interfaces", on.interfaces);
  telemetry.value("trace_links", on.links);
  telemetry.value("interface_coverage", iface_coverage);
  telemetry.value("link_coverage", link_coverage);
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(on.schedule_hash));
  telemetry.value("trace_schedule_hash", std::string(hex));
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(on.interface_hash));
  telemetry.value("trace_interface_hash", std::string(hex));
  return 0;
}
