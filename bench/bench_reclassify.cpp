// Regenerates the §3.3 reclassification numbers: of the RR-responsive
// destinations that the naive "destination IP in the RR header" test calls
// unreachable, how many are recovered by (1) MIDAR alias resolution and
// (2) the ping-RRudp quoted-packet test? Paper: 5,637 + 4,358 = 9,995 of
// 296,734 RR-responsive destinations.
#include <iostream>

#include "bench/common.h"
#include "measure/midar.h"
#include "measure/reclassify.h"

using namespace rr;

int main() {
  bench::heading("§3.3 reclassification: alias + quoted-RR recoveries");
  bench::Telemetry telemetry{"reclassify"};
  telemetry.phase("world");
  auto config = bench::bench_config();
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);
  telemetry.phase("campaign");
  const auto campaign = measure::Campaign::run(testbed);
  telemetry.phase("analysis");
  telemetry.value("destinations", campaign.num_destinations());

  const auto candidates = measure::reclassification_candidates(campaign);
  const auto midar_input = measure::midar_candidate_addresses(campaign);
  std::printf("RR-responsive: %zu, not directly reachable: %zu, "
              "alias-resolution input: %zu addresses\n",
              campaign.rr_responsive_indices().size(), candidates.size(),
              midar_input.size());

  auto prober = testbed.make_prober(testbed.vps().front()->host, 200.0);
  measure::MidarConfig midar_config;
  if (std::getenv("RROPT_QUICK")) midar_config.max_addresses = 20000;
  const auto aliases = measure::run_midar(prober, midar_input, midar_config);

  measure::ReclassifyResult result =
      measure::reclassify(testbed, campaign, aliases);

  const double responsive =
      static_cast<double>(campaign.rr_responsive_indices().size());
  bench::heading("headline recoveries (§3.3)");
  bench::report("alias sets discovered (paper: 48,937 sets)", "48,937",
                util::with_commas(aliases.sets().size()));
  bench::report("recovered via alias (paper: 5,637 = 1.9% of responsive)",
                "1.9%",
                util::with_commas(result.via_alias.size()) + " (" +
                    util::percent(result.via_alias.size() / responsive, 1) +
                    ")");
  bench::report("recovered via quoted RR (paper: 4,358 = 1.5%)", "1.5%",
                util::with_commas(result.via_quoted.size()) + " (" +
                    util::percent(result.via_quoted.size() / responsive, 1) +
                    ")");
  bench::report("total reclassified (paper: 9,995 = 3.4%)", "3.4%",
                util::with_commas(result.total()) + " (" +
                    util::percent(result.total() / responsive, 1) + ")");
  bench::report("ping-RRudp probes sent", "-",
                util::with_commas(result.udp_probes_sent));
  bench::report("port-unreachable responses", "-",
                util::with_commas(result.udp_responses));
  return 0;
}
