// Regenerates Figure 3: traceroute hop-count CDFs from GCE (and the other
// cloud providers) versus M-Lab, to RR-reachable and RR-responsive
// destinations — the §3.6 estimate of cloud-provider RR coverage.
#include <iostream>

#include "analysis/series.h"
#include "bench/common.h"
#include "measure/cloud.h"
#include "measure/figures.h"

using namespace rr;

int main() {
  bench::heading("Figure 3: cloud-provider hop counts (§3.6)");
  bench::Telemetry telemetry{"fig3"};
  telemetry.phase("world");
  auto config = bench::bench_config();
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);
  telemetry.phase("campaign");
  const auto campaign = measure::Campaign::run(testbed);
  telemetry.phase("analysis");
  telemetry.value("destinations", campaign.num_destinations());

  measure::CloudStudyConfig study_config;
  if (std::getenv("RROPT_QUICK")) {
    study_config.max_reachable_dests = 2000;
    study_config.max_responsive_dests = 2000;
  }
  const auto result = measure::cloud_study(testbed, campaign, study_config);

  const auto figure = measure::figure3(result);
  figure.print(std::cout);
  figure.write_csv("fig3.csv");

  bench::heading("headline cloud estimates (§3.6)");
  for (const auto& provider : result.providers) {
    const std::string paper =
        provider.name == "gce" ? "86% (within 8)"
        : provider.name == "ec2" ? "40% (within 8)"
        : provider.name == "softlayer" ? "45% (within 8)" : "-";
    bench::report(provider.name + ": RR-responsive within 8 hops", paper,
                  util::percent(provider.fraction_responsive_within(8)));
  }
  if (!result.providers.empty()) {
    const auto& gce = result.providers.front();
    bench::report("gce: RR-responsive within 5 hops", "49%",
                  util::percent(gce.fraction_responsive_within(5)));
    // The paper's qualitative claim: GCE is closer to RR-responsive
    // destinations than M-Lab is to RR-reachable ones.
    const double gce_median = gce.to_responsive.median();
    const double mlab_median = result.mlab_to_reachable.median();
    bench::report("median hops gce->responsive vs mlab->reachable",
                  "gce smaller", util::fixed(gce_median, 1) + " vs " +
                                     util::fixed(mlab_median, 1));
  }
  return 0;
}
