// Regenerates Figure 4: number of RR responses per vantage point at 10pps
// versus 100pps (§4.1). Most VPs lose little at the higher rate; a few
// behind strict source-proximate limiters collapse.
#include <algorithm>
#include <iostream>

#include "analysis/series.h"
#include "bench/common.h"
#include "measure/figures.h"
#include "measure/ratelimit.h"

using namespace rr;

int main() {
  bench::heading("Figure 4: RR responses per VP at 10pps vs 100pps (§4.1)");
  bench::Telemetry telemetry{"fig4"};
  telemetry.phase("world");
  auto config = bench::bench_config();
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);
  telemetry.phase("campaign");
  const auto campaign = measure::Campaign::run(testbed);
  telemetry.phase("analysis");
  telemetry.value("destinations", campaign.num_destinations());

  measure::RateLimitConfig study_config;
  // The paper probed 100k destinations; scale with the world size.
  study_config.sample_size = std::min<std::size_t>(
      campaign.num_destinations(), campaign.num_destinations() / 5 + 2000);
  if (std::getenv("RROPT_QUICK")) study_config.sample_size = 2000;
  const auto result =
      measure::rate_limit_study(testbed, campaign, study_config);

  const auto figure = measure::figure4(result);
  figure.print(std::cout);
  figure.write_csv("fig4.csv");

  auto rows = result.rows;
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.responses_low > b.responses_low;
  });

  bench::heading("headline rate-limiting findings (§4.1)");
  bench::report("destinations probed per VP",
                "100,000", util::with_commas(result.probed_destinations));
  bench::report("VPs kept (>=1% responses at either rate)", "79",
                util::with_commas(rows.size()));
  bench::report("VPs excluded", "56 of 141",
                util::with_commas(result.excluded_vps));
  bench::report("VPs losing >25% of responses at 100pps", "8",
                util::with_commas(result.severely_limited(0.25)));
  // Median loss across kept VPs should be small.
  std::vector<double> losses;
  for (const auto& row : rows) losses.push_back(row.drop_fraction());
  std::sort(losses.begin(), losses.end());
  const double median_loss =
      losses.empty() ? 0.0 : losses[losses.size() / 2];
  bench::report("median response loss at 100pps", "slight",
                util::percent(median_loss, 1));
  return 0;
}
