// Regenerates Figure 1: CDF of RR hops from the closest vantage point (for
// several VP subsets) to RR-responsive destinations, plus the §3.3 greedy
// site-selection numbers (73% with 1 site ... 95% with 10).
#include <iostream>

#include "analysis/series.h"
#include "bench/common.h"
#include "measure/figures.h"
#include "measure/reachability.h"

using namespace rr;

int main() {
  bench::heading("Figure 1: RR hops from closest vantage point");
  bench::Telemetry telemetry{"fig1"};
  telemetry.phase("world");
  auto config = bench::bench_config();
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);
  telemetry.phase("campaign");
  const auto campaign = measure::Campaign::run(testbed);
  telemetry.phase("analysis");
  telemetry.value("destinations", campaign.num_destinations());

  const auto responsive = campaign.rr_responsive_indices();
  std::vector<std::size_t> all_vps(campaign.num_vps());
  for (std::size_t v = 0; v < all_vps.size(); ++v) all_vps[v] = v;
  const auto mlab =
      measure::vp_indices_of_platform(campaign, topo::Platform::kMLab);
  const auto plab =
      measure::vp_indices_of_platform(campaign, topo::Platform::kPlanetLab);

  // Greedy M-Lab site selection over RR-reachable destinations.
  const auto reachable = campaign.rr_reachable_indices();
  const auto greedy =
      measure::greedy_vp_selection(campaign, mlab, reachable, 10);

  const auto figure = measure::figure1(campaign, greedy);
  figure.print(std::cout);
  figure.write_csv("fig1.csv");

  bench::heading("headline reachability (§3.3)");
  const double within9 =
      measure::fraction_within(campaign, all_vps, responsive, 9);
  const double within8 =
      measure::fraction_within(campaign, all_vps, responsive, 8);
  bench::report("RR-responsive within 9 hops of some VP (RR-reachable)",
                "66%", util::percent(within9));
  bench::report("RR-responsive within 8 hops (reverse-path measurable)",
                "60%", util::percent(within8));

  // Platform comparison, measured as a fraction of the RR-reachable union.
  std::size_t mlab_cover = 0, plab_cover = 0;
  for (std::size_t d : reachable) {
    if (campaign.min_rr_distance(d, mlab) > 0) ++mlab_cover;
    if (campaign.min_rr_distance(d, plab) > 0) ++plab_cover;
  }
  const double denom = reachable.empty() ? 1.0 : double(reachable.size());
  bench::report("fraction of RR-reachable covered by M-Lab alone", "99%",
                util::percent(mlab_cover / denom));
  bench::report("fraction of RR-reachable covered by PlanetLab alone",
                "72%", util::percent(plab_cover / denom));

  bench::heading("greedy M-Lab site selection (§3.3)");
  const char* paper_cov[] = {"73%", "82%", "86%", "", "91%",
                             "",    "",    "",    "", "95%"};
  for (std::size_t i = 0; i < greedy.coverage.size(); ++i) {
    bench::report("coverage of RR-reachable with " + std::to_string(i + 1) +
                      " site(s)",
                  paper_cov[i][0] ? paper_cov[i] : "-",
                  util::percent(greedy.coverage[i]));
  }
  return 0;
}
