// Regenerates Table 1: response rates for pings with and without the
// Record Route option, by IP address and by AS, split by CAIDA AS type.
// Also prints the §3.2 VP-response distribution (the paper's "roughly 80%
// of destinations that responded to at least one VP responded to over 90").
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "bench/common.h"
#include "measure/classify.h"
#include "measure/figures.h"

using namespace rr;

namespace {

const char* kTypeNames[] = {"Total", "Transit/Access", "Enterprise",
                            "Content", "Unknown"};

void print_side(const char* label,
                const std::array<measure::ResponseCounts,
                                 1 + topo::kNumAsTypes>& side) {
  analysis::TextTable table({label, "Total", "Transit/Access", "Enterprise",
                             "Content", "Unknown"});
  std::vector<std::string> probed{"All Probed"}, ping{"Ping Responsive"},
      rr{"RR-Responsive"};
  for (std::size_t i = 0; i < side.size(); ++i) {
    probed.push_back(analysis::count_cell(side[i].probed, 1.0));
    ping.push_back(
        analysis::count_cell(side[i].ping_responsive, side[i].ping_rate()));
    rr.push_back(analysis::count_cell(side[i].rr_responsive,
                                      side[i].rr_rate()));
  }
  table.add_row(probed);
  table.add_row(ping);
  table.add_row(rr);
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::heading("Table 1: ping vs ping-RR response rates");
  bench::Telemetry telemetry{"table1"};
  telemetry.phase("world");
  auto config = bench::bench_config();
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);
  telemetry.phase("campaign");
  const auto campaign = measure::Campaign::run(testbed);
  telemetry.phase("analysis");
  telemetry.value("destinations", campaign.num_destinations());
  const auto& phases = campaign.phase_stats();
  telemetry.value("campaign_pass_a_s", phases.pass_a_seconds);
  telemetry.value("campaign_pass_b_s", phases.pass_b_seconds);
  telemetry.value("campaign_serial_fraction", phases.serial_fraction());
  telemetry.value("campaign_sharded_chunks", phases.sharded_chunks);
  telemetry.value("campaign_fallback_chunks", phases.serial_fallback_chunks);
  telemetry.value("probes_sent", phases.probes_sent);
  const auto table = measure::build_response_table(campaign);

  std::printf("world: %s\n\n", testbed.topology().summary().c_str());
  print_side("By IP", table.by_ip);
  std::printf("\n");
  print_side("By AS", table.by_as);

  bench::heading("headline ratios");
  bench::report("ping-responsive IPs also RR-responsive", "75%",
                util::percent(table.by_ip[0].rr_over_ping()));
  bench::report("ping-responsive ASes also RR-responsive", "82%",
                util::percent(table.by_as[0].rr_over_ping()));
  bench::report("IPs ping-responsive", "77%",
                util::percent(table.by_ip[0].ping_rate()));
  bench::report("IPs RR-responsive", "58%",
                util::percent(table.by_ip[0].rr_rate()));
  for (int t = 0; t < topo::kNumAsTypes; ++t) {
    const auto& row = table.by_ip[static_cast<std::size_t>(t + 1)];
    const char* paper[] = {"76%", "68%", "77%", "82%"};
    bench::report(std::string("RR/ping ratio, ") + kTypeNames[t + 1],
                  paper[t], util::percent(row.rr_over_ping()));
  }

  bench::heading("per-destination VP response counts (§3.2)");
  const double frac90 = measure::fraction_answering_more_than(
      campaign, static_cast<int>(campaign.num_vps() * 90 / 141));
  bench::report(
      "RR-responsive dests answering >90/141 VPs (scaled threshold)",
      "~80%", util::percent(frac90));
  const auto figure = measure::vp_response_figure(campaign);
  figure.write_csv("vp_responses.csv");
  std::printf("  (full distribution written to vp_responses.csv)\n");

  telemetry.value("ping_rate_by_ip", table.by_ip[0].ping_rate());
  telemetry.value("rr_rate_by_ip", table.by_ip[0].rr_rate());
  telemetry.value("rr_over_ping_by_ip", table.by_ip[0].rr_over_ping());
  telemetry.value("frac_answering_90", frac90);
  return 0;
}
