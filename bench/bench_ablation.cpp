// Ablations of the design choices DESIGN.md calls out, plus a small
// extension study the paper leaves as future work.
//
//  A1. Reachability-test ablation: naive destination-IP test vs
//      alias-aware vs quoted-packet-aware (how much coverage each
//      refinement of §3.3 buys).
//  A2. Slot-budget ablation: how RR-reachability would change if the IPv4
//      option area allowed k = 1..9 slots — the "nine hop limit" is a
//      wire-format accident, so measure its sensitivity.
//  A3. Probing-rate ablation: aggregate response rate at 5..200 pps
//      (generalizes Figure 4's two-point comparison).
//  A4. Extension — hidden vs anonymous routers: combine traceroute and RR
//      views of the same paths (Sherwood-style) to estimate how many hops
//      each technique misses.
#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "measure/midar.h"
#include "measure/reclassify.h"
#include "probe/prober.h"

using namespace rr;

int main() {
  bench::heading("ablation studies");
  bench::Telemetry telemetry{"ablation"};
  telemetry.phase("world");
  auto config = bench::bench_config();
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);
  telemetry.phase("campaign");
  const auto campaign = measure::Campaign::run(testbed);
  telemetry.phase("analysis");
  telemetry.value("destinations", campaign.num_destinations());
  const auto responsive = campaign.rr_responsive_indices();
  const double n_responsive =
      std::max<std::size_t>(responsive.size(), 1);

  // ---------------------------------------------- A1: reachability tests
  bench::heading("A1: what the reachability test itself costs");
  const std::size_t naive = campaign.rr_reachable_indices().size();
  auto prober = testbed.make_prober(testbed.vps().front()->host, 200.0);
  measure::MidarConfig midar_config;
  if (std::getenv("RROPT_QUICK")) midar_config.max_addresses = 20000;
  const auto aliases = measure::run_midar(
      prober, measure::midar_candidate_addresses(campaign), midar_config);
  const auto reclass = measure::reclassify(testbed, campaign, aliases);
  bench::report("naive destination-IP-in-header test", "baseline",
                util::with_commas(naive) + " (" +
                    util::percent(naive / n_responsive) + " of responsive)");
  bench::report("+ alias-aware (MIDAR)", "+1.9% of responsive",
                "+" + util::with_commas(reclass.via_alias.size()));
  bench::report("+ quoted-RR-aware (ping-RRudp)", "+1.5% of responsive",
                "+" + util::with_commas(reclass.via_quoted.size()));

  // ---------------------------------------------- A2: slot budget sweep
  bench::heading("A2: RR-reachable fraction if the header had k slots");
  for (int k = 1; k <= 9; ++k) {
    std::size_t reachable_k = 0;
    for (std::size_t d : responsive) {
      bool within = false;
      for (std::size_t v = 0; v < campaign.num_vps() && !within; ++v) {
        const auto& obs = campaign.at(v, d);
        within = obs.rr_reachable() && obs.dest_slot <= k;
      }
      if (within) ++reachable_k;
    }
    bench::report("k = " + std::to_string(k),
                  k == 9 ? "66% (the paper's limit)" : "-",
                  util::percent(reachable_k / n_responsive));
  }

  // ---------------------------------------------- A3: probing-rate sweep
  bench::heading("A3: aggregate RR response rate vs probing rate");
  {
    util::Rng rng{1234};
    auto sample = responsive;
    rng.shuffle(sample);
    if (sample.size() > 3000) sample.resize(3000);
    for (const double pps : {5.0, 10.0, 20.0, 50.0, 100.0, 200.0}) {
      testbed.network().reset();
      std::uint64_t answered = 0, sent = 0;
      // All VPs probe concurrently, as in the campaign.
      std::vector<probe::Prober> probers;
      for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
        probers.push_back(
            testbed.make_prober(campaign.vps()[v]->host, pps));
      }
      for (std::size_t k = 0; k < sample.size(); ++k) {
        for (std::size_t v = 0; v < probers.size(); ++v) {
          const auto target =
              campaign.topology()
                  .host_at(campaign.destinations()[
                      sample[(k + v * 17) % sample.size()]])
                  .address;
          ++sent;
          const auto r = probers[v].probe(probe::ProbeSpec::ping_rr(target));
          if (r.kind == probe::ResponseKind::kEchoReply &&
              r.rr_option_in_reply) {
            ++answered;
          }
        }
      }
      bench::report(
          "rate " + util::fixed(pps, 0) + " pps", pps <= 20 ? "high" : "-",
          util::percent(static_cast<double>(answered) /
                        static_cast<double>(std::max<std::uint64_t>(sent, 1))));
    }
  }

  // --------------------------- A5: Timestamp option vs Record Route
  bench::heading("A5 (extension): the Timestamp option as an alternative");
  {
    util::Rng rng{555};
    auto sample = responsive;
    rng.shuffle(sample);
    if (sample.size() > 2000) sample.resize(2000);
    auto ts_prober = testbed.make_prober(testbed.vps().front()->host, 200.0);
    std::uint64_t rr_ok = 0, ts_ok = 0, ts_overflowed = 0, ts_full_path = 0;
    for (std::size_t d : sample) {
      const auto target =
          campaign.topology().host_at(campaign.destinations()[d]).address;
      const auto rr = ts_prober.probe(probe::ProbeSpec::ping_rr(target));
      if (rr.kind == probe::ResponseKind::kEchoReply &&
          rr.rr_option_in_reply) {
        ++rr_ok;
      }
      const auto ts = ts_prober.probe(probe::ProbeSpec::ping_ts(target));
      if (ts.kind == probe::ResponseKind::kEchoReply &&
          ts.ts_option_in_reply) {
        ++ts_ok;
        if (ts.ts_overflow > 0) ++ts_overflowed;
        if (ts.ts_entries.size() < 4) ++ts_full_path;
      }
    }
    const double denom = std::max<std::uint64_t>(sample.size(), 1);
    bench::report("ping-RR answered (option copied)", "-",
                  util::percent(rr_ok / denom));
    bench::report("ping-TS answered (option copied)", "similar to RR",
                  util::percent(ts_ok / denom));
    bench::report("TS replies that overflowed (4-slot cap hit)",
                  "most paths > 4 hops",
                  util::percent(ts_ok ? double(ts_overflowed) / double(ts_ok)
                                      : 0.0));
    bench::report("TS replies covering the whole round trip", "few",
                  util::percent(ts_ok ? double(ts_full_path) / double(ts_ok)
                                      : 0.0));
  }

  // -------------------------------- A4: hidden vs anonymous router survey
  bench::heading("A4 (extension): hops missed by traceroute vs by RR");
  {
    util::Rng rng{77};
    auto reachable = campaign.rr_reachable_indices();
    rng.shuffle(reachable);
    if (reachable.size() > 400) reachable.resize(400);

    std::uint64_t pairs = 0;
    std::uint64_t rr_longer = 0, ttl_longer = 0, equal = 0;
    std::uint64_t silent_hops = 0, total_ttl_hops = 0;
    auto survey_prober =
        testbed.make_prober(testbed.vps().front()->host, 200.0);
    for (std::size_t d : reachable) {
      const auto target =
          campaign.topology().host_at(campaign.destinations()[d]).address;
      const auto rr = survey_prober.probe(probe::ProbeSpec::ping_rr(target));
      if (rr.kind != probe::ResponseKind::kEchoReply ||
          !rr.rr_option_in_reply) {
        continue;
      }
      const auto it =
          std::find(rr.rr_recorded.begin(), rr.rr_recorded.end(), target);
      if (it == rr.rr_recorded.end()) continue;
      const auto rr_fwd_hops = (it - rr.rr_recorded.begin()) + 1;

      const auto trace = survey_prober.traceroute(target, 30);
      if (!trace.reached) continue;
      ++pairs;
      const int ttl_hops = trace.hop_count();
      total_ttl_hops += static_cast<std::uint64_t>(ttl_hops);
      for (const auto& hop : trace.hops) {
        if (!hop.responded) ++silent_hops;
      }
      if (ttl_hops > rr_fwd_hops) {
        ++ttl_longer;  // routers that decrement TTL but do not stamp
      } else if (ttl_hops < rr_fwd_hops) {
        ++rr_longer;   // hidden routers: stamp but do not decrement
      } else {
        ++equal;
      }
    }
    bench::report("paths compared", "-", util::with_commas(pairs));
    bench::report("traceroute sees more hops (non-stamping routers)", "-",
                  util::with_commas(ttl_longer));
    bench::report("RR sees more hops (hidden routers)", "-",
                  util::with_commas(rr_longer));
    bench::report("views agree exactly", "-", util::with_commas(equal));
    bench::report("anonymous hops (traceroute '*')", "-",
                  util::with_commas(silent_hops) + " of " +
                      util::with_commas(total_ttl_hops));
  }
  return 0;
}
