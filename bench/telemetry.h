// Machine-readable bench telemetry.
//
// Each bench binary owns one Telemetry object; phase() fences wall-clock
// sections ("world", "campaign", "analysis", ...) and value() records the
// headline numbers the bench printed for humans. On destruction (or an
// explicit finish()) the object writes BENCH_<name>.json to the working
// directory, so scripts/run_benches.sh leaves a parseable record of every
// run next to the textual bench_output.txt:
//
//   {
//     "bench": "table1",
//     "total_seconds": 12.345,
//     "phases": {"world": 1.204, "campaign": 10.881},
//     "values": {"ases": 5200, "threads": 8, "rr_over_ping": 0.751}
//   }
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace rr::bench {

/// Peak resident set (VmHWM) of this process in MiB, from
/// /proc/self/status; 0 if unavailable (non-Linux). Recorded by every
/// bench's telemetry so memory regressions gate exactly like time
/// regressions (scripts/check_bench_regression.sh).
inline double peak_rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kib = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024.0;
}

class Telemetry {
 public:
  explicit Telemetry(std::string name)
      : name_(std::move(name)), start_(Clock::now()) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  ~Telemetry() { finish(); }

  /// Closes the current phase (if any) and starts timing a new one.
  void phase(std::string phase_name) {
    close_phase();
    current_ = std::move(phase_name);
    phase_start_ = Clock::now();
  }

  void value(const std::string& key, double v) {
    values_.emplace_back(key, format_double(v));
  }
  template <typename T,
            typename std::enable_if_t<std::is_integral_v<T>, int> = 0>
  void value(const std::string& key, T v) {
    values_.emplace_back(key, std::to_string(v));
  }
  void value(const std::string& key, const std::string& v) {
    values_.emplace_back(key, "\"" + escaped(v) + "\"");
  }

  /// Closes the last phase and writes BENCH_<name>.json. Idempotent.
  /// Every bench gets a "threads" and "peak_rss_mib" value whether or not
  /// it recorded one itself, so the telemetry schema is uniform across
  /// the bench suite (benches with a testbed overwrite "threads" with the
  /// testbed's resolved count via record_world; the default below is the
  /// same resolution rule).
  void finish() {
    if (written_) return;
    written_ = true;
    close_phase();
    if (!has_value("threads")) {
      value("threads", util::resolve_thread_count(0));
    }
    if (!has_value("peak_rss_mib")) {
      value("peak_rss_mib", peak_rss_mib());
    }
    // Uniform probing-cost triple (PR 9): benches that drive probes
    // overwrite these; the defaults keep the schema identical across the
    // suite so run_benches.sh can tabulate every bench the same way.
    if (!has_value("probes_sent")) value("probes_sent", std::uint64_t{0});
    if (!has_value("probes_saved")) value("probes_saved", std::uint64_t{0});
    if (!has_value("stopset_hit_rate")) value("stopset_hit_rate", 0.0);
    const double total = seconds_since(start_);
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "telemetry: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"total_seconds\": %s,\n",
                 escaped(name_).c_str(), format_double(total).c_str());
    std::fprintf(f, "  \"phases\": {");
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %s", i ? ", " : "",
                   escaped(phases_[i].first).c_str(),
                   format_double(phases_[i].second).c_str());
    }
    std::fprintf(f, "},\n  \"values\": {");
    for (std::size_t i = 0; i < values_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %s", i ? ", " : "",
                   escaped(values_[i].first).c_str(),
                   values_[i].second.c_str());
    }
    std::fprintf(f, "}\n}\n");
    std::fclose(f);
    std::printf("  (telemetry written to %s)\n", path.c_str());
  }

 private:
  using Clock = std::chrono::steady_clock;

  static double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  }

  static std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  void close_phase() {
    if (current_.empty()) return;
    phases_.emplace_back(current_, seconds_since(phase_start_));
    current_.clear();
  }

  [[nodiscard]] bool has_value(const std::string& key) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return true;
    }
    return false;
  }

  std::string name_;
  Clock::time_point start_;
  Clock::time_point phase_start_{};
  std::string current_;
  std::vector<std::pair<std::string, double>> phases_;
  std::vector<std::pair<std::string, std::string>> values_;
  bool written_ = false;
};

}  // namespace rr::bench
