// Campaign resilience and cost under injected faults: the full ping +
// ping-RR campaign at fault rates 0%, 1% and 10% (sim/fault.h), reporting
// how the paper's headline response rates degrade and what the fault layer
// costs in wall-clock. The zero-rate run doubles as a baseline: by the
// differential harness's contract it is bit-identical to a campaign with
// no fault plan at all, so any timing gap at rate 0 is pure plan overhead.
#include <cstdio>

#include "bench/common.h"
#include "measure/classify.h"
#include "sim/fault.h"

using namespace rr;

int main() {
  bench::heading("fault injection: campaign under fire");
  bench::Telemetry telemetry{"faults"};
  telemetry.phase("world");
  auto config = bench::bench_config();
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);

  const double rates[] = {0.0, 0.01, 0.10};
  for (const double rate : rates) {
    const std::string tag = rate == 0.0   ? "0"
                            : rate == 0.01 ? "1pct"
                                           : "10pct";
    telemetry.phase("campaign_" + tag);
    measure::CampaignConfig campaign_config;
    campaign_config.faults = sim::FaultParams::uniform(rate);
    const auto campaign = measure::Campaign::run(testbed, campaign_config);
    const auto table = measure::build_response_table(campaign);

    const auto& net = testbed.network();
    std::printf("\nfault rate %.2f:\n", rate);
    std::printf("  ping-responsive: %s (%s)   RR-responsive: %s (%s)\n",
                util::with_commas(table.by_ip[0].ping_responsive).c_str(),
                util::percent(table.by_ip[0].ping_rate()).c_str(),
                util::with_commas(table.by_ip[0].rr_responsive).c_str(),
                util::percent(table.by_ip[0].rr_rate()).c_str());
    std::printf("  faults injected: %s\n",
                util::with_commas(net.fault_counters().total()).c_str());

    telemetry.value("ping_rate_" + tag, table.by_ip[0].ping_rate());
    telemetry.value("rr_rate_" + tag, table.by_ip[0].rr_rate());
    telemetry.value("rr_over_ping_" + tag, table.by_ip[0].rr_over_ping());
    telemetry.value("faults_injected_" + tag, net.fault_counters().total());
  }

  bench::heading("expectation");
  bench::report("rates degrade monotonically with the fault rate",
                "(invariant)", "see rr_rate_{0,1pct,10pct} above");
  return 0;
}
