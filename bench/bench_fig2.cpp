// Regenerates Figure 2: RR hops from the closest M-Lab/PlanetLab VP to
// RR-responsive destinations, 2011 versus 2016, for all VPs and for the
// VPs common to both years. The paper reports RR-reachable fractions of
// 0.12 (2011) vs 0.66 (2016).
#include <iostream>

#include "analysis/series.h"
#include "bench/common.h"
#include "measure/figures.h"
#include "measure/reachability.h"

using namespace rr;

namespace {

struct EpochData {
  measure::Campaign campaign;
  std::vector<std::size_t> all_vps;
  std::vector<std::size_t> common_vps;
  std::vector<std::size_t> responsive;
};

EpochData run_epoch(measure::Testbed& testbed) {
  EpochData data{measure::Campaign::run(testbed), {}, {}, {}};
  for (std::size_t v = 0; v < data.campaign.num_vps(); ++v) {
    data.all_vps.push_back(v);
    const auto& vp = *data.campaign.vps()[v];
    if (vp.exists_in_2011 && vp.exists_in_2016) data.common_vps.push_back(v);
  }
  data.responsive = data.campaign.rr_responsive_indices();
  return data;
}

}  // namespace

int main() {
  bench::heading("Figure 2: reachability, 2011 vs 2016");

  bench::Telemetry telemetry{"fig2"};
  telemetry.phase("world");

  // One world, two epochs: identical devices and policies, different
  // connectivity and VP availability.
  auto config16 = bench::bench_config(topo::Epoch::k2016);
  measure::Testbed testbed16{config16};
  auto config11 = bench::bench_config(topo::Epoch::k2011);
  measure::Testbed testbed11{testbed16.topology_ptr(),
                             testbed16.behaviors_ptr(), config11};
  bench::record_world(telemetry, testbed16);

  telemetry.phase("campaign-2016");
  EpochData d2016 = run_epoch(testbed16);
  telemetry.phase("campaign-2011");
  EpochData d2011 = run_epoch(testbed11);
  telemetry.phase("analysis");
  telemetry.value("destinations", d2016.campaign.num_destinations());

  const auto figure = measure::figure2(d2016.campaign, d2011.campaign);
  figure.print(std::cout);
  figure.write_csv("fig2.csv");

  bench::heading("headline change over time (§3.4)");
  const double frac16 = measure::fraction_within(
      d2016.campaign, d2016.all_vps, d2016.responsive, 9);
  const double frac11 = measure::fraction_within(
      d2011.campaign, d2011.all_vps, d2011.responsive, 9);
  const double frac16c = measure::fraction_within(
      d2016.campaign, d2016.common_vps, d2016.responsive, 9);
  const double frac11c = measure::fraction_within(
      d2011.campaign, d2011.common_vps, d2011.responsive, 9);
  bench::report("RR-reachable fraction, 2016 all VPs", "0.66",
                util::fixed(frac16, 2));
  bench::report("RR-reachable fraction, 2011 all VPs", "0.12",
                util::fixed(frac11, 2));
  bench::report("RR-reachable fraction, 2016 common VPs",
                "increase vs 2011", util::fixed(frac16c, 2));
  bench::report("RR-reachable fraction, 2011 common VPs", "(lower)",
                util::fixed(frac11c, 2));
  bench::report("common-VP improvement 2011 -> 2016", "present",
                frac16c > frac11c ? "yes" : "NO");
  return 0;
}
