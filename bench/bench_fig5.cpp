// Regenerates Figure 5: response rate of RR-reachable vs non-RR-reachable
// destinations under TTL-limited ping-RR probes (§4.2). TTLs of 10-12
// should let most in-range probes complete while expiring most of the
// out-of-range ones.
#include <iostream>

#include "analysis/series.h"
#include "bench/common.h"
#include "measure/figures.h"
#include "measure/ttl_study.h"

using namespace rr;

int main() {
  bench::heading("Figure 5: response rate vs initial TTL (§4.2)");
  bench::Telemetry telemetry{"fig5"};
  telemetry.phase("world");
  auto config = bench::bench_config();
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);
  telemetry.phase("campaign");
  const auto campaign = measure::Campaign::run(testbed);
  telemetry.phase("analysis");
  telemetry.value("destinations", campaign.num_destinations());

  measure::TtlStudyConfig study_config;
  if (std::getenv("RROPT_QUICK")) study_config.per_vp_per_class = 100;
  if (std::getenv("RROPT_NO_STOPSET")) study_config.use_stop_sets = false;
  const auto result = measure::ttl_study(testbed, campaign, study_config);

  const auto figure = measure::figure5(result);
  figure.print(std::cout);
  figure.write_csv("fig5.csv");

  // Content hash over every row of the figure: one changed count anywhere
  // in the TTL study flips it, so the regression guard can pin the figure
  // exactly (the study is bit-reproducible at any thread count and with
  // stop sets on or off).
  std::uint64_t rows_hash = 1469598103934665603ULL;
  const auto fold = [&rows_hash](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      rows_hash ^= (v >> (b * 8)) & 0xff;
      rows_hash *= 1099511628211ULL;
    }
  };
  for (const auto& row : result.rows) {
    fold(static_cast<std::uint64_t>(row.ttl));
    fold(row.near_sent);
    fold(row.near_replied);
    fold(row.near_expired);
    fold(row.far_sent);
    fold(row.far_replied);
    fold(row.far_expired);
  }
  char rows_hash_hex[32];
  std::snprintf(rows_hash_hex, sizeof rows_hash_hex, "%016llx",
                static_cast<unsigned long long>(rows_hash));

  const auto& stats = result.stats;
  std::printf("\n  probing cost: %llu sent, %llu saved by stop sets "
              "(hit rate %.1f%%, reduction %.1f%%)\n",
              static_cast<unsigned long long>(stats.probes_sent),
              static_cast<unsigned long long>(stats.probes_saved),
              100.0 * stats.hit_rate(), 100.0 * stats.reduction());
  telemetry.value("probes_sent", stats.probes_sent);
  telemetry.value("probes_saved", stats.probes_saved);
  telemetry.value("stopset_hit_rate", stats.hit_rate());
  telemetry.value("stopset_reduction", stats.reduction());
  telemetry.value("fig5_rows_hash", std::string(rows_hash_hex));

  bench::heading("headline TTL trade-off (§4.2)");
  auto rate = [&](int ttl, bool far_set) {
    const auto* row = result.row_for(ttl);
    if (!row) return std::string("n/a");
    return util::percent(far_set ? row->far_reply_rate()
                                 : row->near_reply_rate());
  };
  bench::report("RR-reachable responding at TTL 7", "<50%", rate(7, false));
  bench::report("RR-reachable responding at TTL 10", "~70%", rate(10, false));
  bench::report("RR-unreachable responding at TTL 10", "~25%", rate(10, true));
  bench::report("RR-unreachable responding at TTL 13", ">50%", rate(13, true));
  bench::report("RR-reachable responding at TTL 64", "high", rate(64, false));
  return 0;
}
