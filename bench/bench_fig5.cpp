// Regenerates Figure 5: response rate of RR-reachable vs non-RR-reachable
// destinations under TTL-limited ping-RR probes (§4.2). TTLs of 10-12
// should let most in-range probes complete while expiring most of the
// out-of-range ones.
#include <iostream>

#include "analysis/series.h"
#include "bench/common.h"
#include "measure/figures.h"
#include "measure/ttl_study.h"

using namespace rr;

int main() {
  bench::heading("Figure 5: response rate vs initial TTL (§4.2)");
  bench::Telemetry telemetry{"fig5"};
  telemetry.phase("world");
  auto config = bench::bench_config();
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);
  telemetry.phase("campaign");
  const auto campaign = measure::Campaign::run(testbed);
  telemetry.phase("analysis");
  telemetry.value("destinations", campaign.num_destinations());

  measure::TtlStudyConfig study_config;
  if (std::getenv("RROPT_QUICK")) study_config.per_vp_per_class = 100;
  const auto result = measure::ttl_study(testbed, campaign, study_config);

  const auto figure = measure::figure5(result);
  figure.print(std::cout);
  figure.write_csv("fig5.csv");

  bench::heading("headline TTL trade-off (§4.2)");
  auto rate = [&](int ttl, bool far_set) {
    const auto* row = result.row_for(ttl);
    if (!row) return std::string("n/a");
    return util::percent(far_set ? row->far_reply_rate()
                                 : row->near_reply_rate());
  };
  bench::report("RR-reachable responding at TTL 7", "<50%", rate(7, false));
  bench::report("RR-reachable responding at TTL 10", "~70%", rate(10, false));
  bench::report("RR-unreachable responding at TTL 10", "~25%", rate(10, true));
  bench::report("RR-unreachable responding at TTL 13", ">50%", rate(13, true));
  bench::report("RR-reachable responding at TTL 64", "high", rate(64, false));
  return 0;
}
