// Regenerates the §3.5 AS-stamping audit: comparing traceroute-derived AS
// paths with RR-derived AS paths for RR-reachable destinations. Paper: of
// 7,185 ASes, 7,040 always appeared in RR when traced, 143 sometimes, and
// only 2 never — no evidence of widespread forward-without-stamping
// policy.
#include <iostream>

#include "bench/common.h"
#include "measure/as_stamping.h"

using namespace rr;

int main() {
  bench::heading("§3.5 AS stamping audit (traceroute vs ping-RR AS paths)");
  bench::Telemetry telemetry{"as_stamping"};
  telemetry.phase("world");
  auto config = bench::bench_config();
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);
  telemetry.phase("campaign");
  const auto campaign = measure::Campaign::run(testbed);
  telemetry.phase("analysis");
  telemetry.value("destinations", campaign.num_destinations());

  measure::AsStampingConfig study_config;
  study_config.max_dests_per_vp = std::getenv("RROPT_QUICK") ? 100 : 1000;
  const auto result =
      measure::audit_as_stamping(testbed, campaign, study_config);

  std::printf("pairs compared: %s, distinct transit ASes observed: %s\n",
              util::with_commas(result.pairs_compared).c_str(),
              util::with_commas(result.total_ases()).c_str());

  const double total = std::max<std::size_t>(result.total_ases(), 1);
  bench::heading("headline audit (§3.5)");
  bench::report("ASes always in RR when in traceroute",
                "7,040 of 7,185 (98%)",
                util::with_commas(result.always()) + " (" +
                    util::percent(result.always() / total) + ")");
  bench::report("ASes sometimes missing from RR", "143 (2.0%)",
                util::with_commas(result.sometimes()) + " (" +
                    util::percent(result.sometimes() / total, 1) + ")");
  bench::report("ASes never in RR", "2 (0.03%)",
                util::with_commas(result.never()) + " (" +
                    util::percent(result.never() / total, 2) + ")");
  return 0;
}
