// Paper-scale campaign: the full ~510k-prefix census probed from 141 VPs,
// run in streaming mode so resident path state stays bounded by the block
// size rather than the census. Reports the Table 1 headline rates, the
// dataset content hash (so the run is comparable across machines and
// configurations), and the process memory high-water mark.
//
// Scale knobs: RROPT_QUICK shrinks to smoke-test scale (CI runs every
// bench binary that way); RROPT_STREAM_BLOCK overrides the block size;
// RROPT_THREADS as everywhere else. Writes BENCH_full.json.
#include <cstdio>
#include <cstring>

#include "bench/common.h"
#include "data/dataset.h"
#include "measure/classify.h"

using namespace rr;

int main() {
  bench::heading("paper-scale campaign (streaming)");
  bench::Telemetry telemetry{"full"};
  telemetry.phase("world");

  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::census_scale();
  if (const char* seed = std::getenv("RROPT_SEED")) {
    config.topo_params.seed = std::strtoull(seed, nullptr, 10);
  }
  if (std::getenv("RROPT_QUICK") != nullptr) {
    // CI smoke: same streaming code path, toy scale.
    config.topo_params = bench::scaled_topo_params();
  }
  measure::Testbed testbed{config};
  bench::record_world(telemetry, testbed);
  std::printf("world: %s\n", testbed.topology().summary().c_str());

  measure::CampaignConfig campaign_config;
  campaign_config.stream_block = 8192;
  if (const char* budget = std::getenv("RROPT_MEM_BUDGET_MIB")) {
    // Adaptive sizing: derive the block from a per-block memory budget.
    // The resolved size shapes dataset contents (block-major probe
    // order), so budget runs are only hash-comparable at equal resolved
    // sizes — the default stays pinned at 8192 for the flagship hash.
    campaign_config.stream_block = measure::CampaignConfig::
        stream_block_for_budget(std::strtoull(budget, nullptr, 10),
                                testbed.topology().vantage_points().size());
  }
  if (const char* block = std::getenv("RROPT_STREAM_BLOCK")) {
    campaign_config.stream_block =
        static_cast<std::size_t>(std::strtoull(block, nullptr, 10));
  }

  telemetry.phase("campaign");
  auto campaign = measure::Campaign::run(testbed, campaign_config);

  telemetry.phase("analysis");
  const auto table = measure::build_response_table(campaign);
  // Move (not copy) the ~300 MB observation matrix into the dataset; the
  // table above is already built and only derived summaries are read past
  // this point.
  const auto dataset = data::CampaignDataset::from_campaign(
      std::move(campaign), "bench_full census-scale streaming campaign");
  char hash[32];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(dataset.content_hash()));

  bench::heading("census headline rates");
  bench::report("destinations probed", "511,119",
                util::with_commas(campaign.num_destinations()));
  bench::report("IPs ping-responsive", "77%",
                util::percent(table.by_ip[0].ping_rate()));
  bench::report("IPs RR-responsive", "58%",
                util::percent(table.by_ip[0].rr_rate()));
  bench::report("ping-responsive IPs also RR-responsive", "75%",
                util::percent(table.by_ip[0].rr_over_ping()));

  const double rss = bench::peak_rss_mib();
  const auto& phases = campaign.phase_stats();
  std::printf("\n  stream block: %zu destinations, peak RSS: %.0f MiB\n",
              campaign_config.stream_block, rss);
  std::printf("  dataset hash: %s\n", hash);
  std::printf("  campaign phases: pass A %.2fs, pass B %.2fs "
              "(serial fraction %.1f%%), %llu sharded / %llu fallback "
              "chunks\n",
              phases.pass_a_seconds, phases.pass_b_seconds,
              100.0 * phases.serial_fraction(),
              static_cast<unsigned long long>(phases.sharded_chunks),
              static_cast<unsigned long long>(phases.serial_fallback_chunks));

  telemetry.value("destinations", campaign.num_destinations());
  telemetry.value("stream_block", campaign_config.stream_block);
  telemetry.value("ping_rate_by_ip", table.by_ip[0].ping_rate());
  telemetry.value("rr_rate_by_ip", table.by_ip[0].rr_rate());
  telemetry.value("rr_over_ping_by_ip", table.by_ip[0].rr_over_ping());
  telemetry.value("peak_rss_mib", rss);
  telemetry.value("dataset_hash", std::string(hash));
  telemetry.value("campaign_pass_a_s", phases.pass_a_seconds);
  telemetry.value("campaign_pass_b_s", phases.pass_b_seconds);
  telemetry.value("campaign_serial_fraction", phases.serial_fraction());
  telemetry.value("campaign_sharded_chunks", phases.sharded_chunks);
  telemetry.value("campaign_fallback_chunks", phases.serial_fallback_chunks);
  telemetry.value("probes_sent", phases.probes_sent);
  return 0;
}
