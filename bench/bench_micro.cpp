// Microbenchmarks for the toolkit's primitives (google-benchmark): packet
// serialization/parsing, in-place RR stamping, LPM lookups, BGP route-tree
// computation, and full simulated probes. Not a paper artifact, but the
// numbers justify the harness's ability to replay census-scale studies.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>

#include "bench/telemetry.h"
#include "measure/testbed.h"
#include "netbase/lpm_trie.h"
#include "packet/datagram.h"
#include "packet/mutate.h"
#include "packet/view.h"
#include "probe/prober.h"
#include "routing/bgp.h"
#include "sim/pipeline.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace {

using namespace rr;

void BM_PingSerialize(benchmark::State& state) {
  const auto ping = pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                   net::IPv4Address(5, 6, 7, 8), 9, 1, 64, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ping.serialize());
  }
}
BENCHMARK(BM_PingSerialize);

void BM_DatagramParse(benchmark::State& state) {
  const auto bytes = *pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                     net::IPv4Address(5, 6, 7, 8), 9, 1, 64,
                                     9).serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkt::Datagram::parse(bytes));
  }
}
BENCHMARK(BM_DatagramParse);

void BM_RrStampAndTtl(benchmark::State& state) {
  const auto original = *pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                        net::IPv4Address(5, 6, 7, 8), 9, 1,
                                        64, 9).serialize();
  std::vector<std::uint8_t> bytes;
  for (auto _ : state) {
    bytes = original;
    pkt::decrement_ttl(bytes);
    pkt::rr_stamp(bytes, net::IPv4Address(10, 0, 0, 1));
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_RrStampAndTtl);

// --- the per-hop walk, both ways ------------------------------------------
// Nine stamping hops on one RR ping: the mutate.h functions re-locate the
// option and rewrite the checksum per call; Ipv4HeaderView caches the
// offsets once and applies RFC 1624 incremental updates. This pair is the
// per-packet cost Network::walk pays at every simulated hop.

constexpr int kWalkHops = 9;

void walk_with_mutate(std::vector<std::uint8_t>& bytes) {
  for (int hop = 0; hop < kWalkHops; ++hop) {
    pkt::decrement_ttl(bytes);
    pkt::rr_stamp(bytes, net::IPv4Address(10, 0, 0,
                                          static_cast<std::uint8_t>(hop)));
  }
}

void walk_with_view(std::vector<std::uint8_t>& bytes) {
  pkt::Ipv4HeaderView view{bytes};
  for (int hop = 0; hop < kWalkHops; ++hop) {
    view.decrement_ttl();
    view.rr_stamp(net::IPv4Address(10, 0, 0, static_cast<std::uint8_t>(hop)));
  }
}

/// The element-pipeline walk over the same nine stamping hops, exercising
/// exactly what Network::walk_pipeline runs per hop: a HopRow load, a run
/// list word from the personality bank, and the run_hop interpreter (here
/// executing [TtlDecrement, TrustedStamp] — the fault-free stamping
/// personality the census spends most of its time in).
void walk_with_pipeline(std::vector<std::uint8_t>& bytes,
                        const sim::PackedRunList* bank,
                        const sim::ElementSet& es, const sim::HopRow* rows,
                        sim::NetCounters* counters) {
  pkt::Ipv4HeaderView view{bytes};
  sim::HopContext ctx;
  ctx.view = &view;
  ctx.bytes = bytes;
  ctx.has_options = view.has_options();
  ctx.counters = counters;
  double now = 0.0;
  for (int hop = 0; hop < kWalkHops; ++hop) {
    now += 0.0005;
    const sim::HopRow row = rows[hop];
    ctx.router = static_cast<topo::RouterId>(hop);
    ctx.egress = net::IPv4Address(10, 0, 0, static_cast<std::uint8_t>(hop));
    ctx.as_id = row.as_id;
    ctx.hop = static_cast<std::size_t>(hop);
    ctx.now = now;
    if (sim::run_hop(bank[row.flags], es, ctx) !=
        sim::HopVerdict::kContinue) {
      return;
    }
  }
}

void BM_WalkMutateLegacy(benchmark::State& state) {
  const auto original = *pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                        net::IPv4Address(5, 6, 7, 8), 9, 1,
                                        64, 9).serialize();
  std::vector<std::uint8_t> bytes;
  for (auto _ : state) {
    bytes = original;
    walk_with_mutate(bytes);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_WalkMutateLegacy);

void BM_WalkHeaderView(benchmark::State& state) {
  const auto original = *pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                        net::IPv4Address(5, 6, 7, 8), 9, 1,
                                        64, 9).serialize();
  std::vector<std::uint8_t> bytes;
  for (auto _ : state) {
    bytes = original;
    walk_with_view(bytes);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_WalkHeaderView);

void BM_LpmLookup(benchmark::State& state) {
  net::LpmTrie<std::uint32_t> trie;
  util::Rng rng{1};
  for (std::uint32_t i = 0; i < 50000; ++i) {
    trie.insert(net::Prefix{net::IPv4Address{static_cast<std::uint32_t>(
                    rng())}, 24}, i);
  }
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.lookup(net::IPv4Address{static_cast<std::uint32_t>(
            util::mix64(++x))}));
  }
}
BENCHMARK(BM_LpmLookup);

std::shared_ptr<const topo::Topology> bench_topology() {
  static auto topo = [] {
    topo::TopologyParams params = topo::TopologyParams::paper_scale();
    params.num_ases = 1000;
    params.colo_fraction = 0.25;
    params.planetlab_sites_2011 = 60;
    return topo::Generator{params}.generate();
  }();
  return topo;
}

void BM_BgpRouteTree(benchmark::State& state) {
  route::BgpEngine engine{bench_topology(), topo::Epoch::k2016};
  topo::AsId dest = 0;
  const auto n = bench_topology()->ases().size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute_tree(dest));
    dest = static_cast<topo::AsId>((dest + 17) % n);
  }
}
BENCHMARK(BM_BgpRouteTree)->Unit(benchmark::kMicrosecond);

void BM_SimulatedPingRr(benchmark::State& state) {
  static auto testbed = [] {
    measure::TestbedConfig config;
    config.topo_params = topo::TopologyParams::paper_scale();
    config.topo_params.num_ases = 1000;
    config.topo_params.colo_fraction = 0.25;
    config.topo_params.planetlab_sites_2011 = 60;
    return new measure::Testbed{config};
  }();
  auto prober = testbed->make_prober(testbed->vps().front()->host, 1e9);
  const auto dests = testbed->topology().destinations();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto target =
        testbed->topology().host_at(dests[i % dests.size()]).address;
    benchmark::DoNotOptimize(
        prober.probe(probe::ProbeSpec::ping_rr(target)));
    ++i;
  }
}
BENCHMARK(BM_SimulatedPingRr)->Unit(benchmark::kMicrosecond);

void BM_SimulatedPingRrReuse(benchmark::State& state) {
  static auto testbed = [] {
    measure::TestbedConfig config;
    config.topo_params = topo::TopologyParams::paper_scale();
    config.topo_params.num_ases = 1000;
    config.topo_params.colo_fraction = 0.25;
    config.topo_params.planetlab_sites_2011 = 60;
    return new measure::Testbed{config};
  }();
  auto prober = testbed->make_prober(testbed->vps().front()->host, 1e9);
  sim::SendContext ctx;
  probe::ProbeResult result;
  const auto dests = testbed->topology().destinations();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto target =
        testbed->topology().host_at(dests[i % dests.size()]).address;
    prober.probe_into(probe::ProbeSpec::ping_rr(target), &ctx, result);
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_SimulatedPingRrReuse)->Unit(benchmark::kMicrosecond);

/// Best-of-k repetitions of `sample()`: shared-VM noise (steal time,
/// frequency dips) only ever adds time, so the minimum is the robust
/// estimator — the regression gate compares ratios of these minima, and a
/// single perturbed sample must not flip it.
template <typename Sample>
double min_over_reps(Sample&& sample) {
  constexpr int kReps = 5;
  double best = sample();
  for (int rep = 1; rep < kReps; ++rep) {
    best = std::min(best, sample());
  }
  return best;
}

/// Wall-clock nanoseconds per iteration of `body(bytes)` where each
/// iteration starts from a fresh copy of `original`.
template <typename Body>
double time_loop_ns(const std::vector<std::uint8_t>& original, Body&& body) {
  std::vector<std::uint8_t> bytes;
  constexpr int kIters = 300000;
  for (int i = 0; i < kIters / 10; ++i) {  // warm-up
    bytes = original;
    body(bytes);
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    bytes = original;
    body(bytes);
    benchmark::DoNotOptimize(bytes);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::nano>(elapsed).count() / kIters;
}

/// Walk nanoseconds for the telemetry record, net of the per-iteration
/// buffer reset (the copy exists only so the benchmark can repeat — the
/// simulator walks each buffer once). The committed BENCH_micro.json
/// carries the legacy-vs-view ratio so the hot-path speedup claim is
/// checkable from the artifact alone.
double time_walk_ns(const std::vector<std::uint8_t>& original, bool use_view,
                    double reset_ns) {
  const double gross = time_loop_ns(original, [use_view](auto& bytes) {
    use_view ? walk_with_view(bytes) : walk_with_mutate(bytes);
  });
  return gross - reset_ns;
}

/// Per-probe nanoseconds for the batched walk (sim::walk_batch_pipeline)
/// over the same nine stamping hops, batch width `n`: every iteration
/// rebinds `n` fresh buffers and runs one slot-major burst walk. Net of
/// the same per-buffer reset cost as the scalar timings, so the ratio
/// walk_pipeline_ns / walk_batchN_ns is the batching speedup the
/// regression gate checks.
double time_batch_walk_ns(const std::vector<std::uint8_t>& original,
                          std::size_t n, const sim::PackedRunList* bank,
                          const sim::ElementSet& es, const sim::HopRow* rows,
                          std::span<const route::PathHop> path,
                          sim::NetCounters* counters, double reset_ns) {
  std::array<std::vector<std::uint8_t>, sim::WalkBatch::kMaxProbes> bufs;
  sim::WalkBatch batch;
  constexpr int kProbeIters = 300000;
  const int rounds = static_cast<int>(kProbeIters / n);
  const auto run = [&](int count) {
    for (int r = 0; r < count; ++r) {
      batch.clear();
      for (std::size_t k = 0; k < n; ++k) {
        bufs[k] = original;
        sim::HopContext& hc = batch.bind(k, bufs[k], path, 0.0);
        hc.counters = counters;
        batch.banks[k] = bank;
      }
      sim::walk_batch_pipeline(batch, rows, es, 0.0005);
      benchmark::DoNotOptimize(batch.results);
    }
  };
  run(rounds / 10);  // warm-up
  const auto start = std::chrono::steady_clock::now();
  run(rounds);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double per_batch =
      std::chrono::duration<double, std::nano>(elapsed).count() / rounds;
  return per_batch / static_cast<double>(n) - reset_ns;
}

}  // namespace

int main(int argc, char** argv) {
  rr::bench::Telemetry telemetry{"micro"};
  telemetry.phase("benchmarks");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  telemetry.phase("walk_timing");
  const auto original = *rr::pkt::make_ping(rr::net::IPv4Address(1, 2, 3, 4),
                                            rr::net::IPv4Address(5, 6, 7, 8),
                                            9, 1, 64, 9).serialize();
  const double reset_ns =
      min_over_reps([&] { return time_loop_ns(original, [](auto&) {}); });
  const double legacy_ns = min_over_reps(
      [&] { return time_walk_ns(original, /*use_view=*/false, reset_ns); });
  const double view_ns = min_over_reps(
      [&] { return time_walk_ns(original, /*use_view=*/true, reset_ns); });
  // The compiled element pipeline over the same hops: the run table is the
  // fault-free compilation (loss gates elided, trusted stamping), rows are
  // the plain stamping personality — the configuration the bulk of a
  // census walk executes. Gated ≤ 177 ns by check_bench_regression.sh:
  // the interpreter must not cost more than the hand-inlined view walk.
  const rr::sim::RunTable table =
      rr::sim::compile_run_table(rr::sim::PipelineConfig{});
  const rr::sim::ElementSet elements{};
  rr::sim::NetCounters counters;
  rr::sim::HopRow rows[kWalkHops];
  for (auto& row : rows) row.flags = rr::sim::HopRow::kStamps;
  // The batched walk over the same hops at widths 4/8/16: the per-probe
  // cost must beat the scalar interpreter (the ≥1.25x ratio at width 8 is
  // gated by check_bench_regression.sh) — that margin is what funds
  // Campaign pass A's probe_batch default. Scalar and batch samples are
  // *interleaved* within each repetition (not one metric's reps then the
  // next's) so a VM frequency window spanning several reps shifts both
  // sides of the gated ratio together instead of landing on only one.
  std::array<rr::route::PathHop, kWalkHops> path;
  for (int h = 0; h < kWalkHops; ++h) {
    path[static_cast<std::size_t>(h)].router =
        static_cast<rr::topo::RouterId>(h);
    path[static_cast<std::size_t>(h)].egress =
        rr::net::IPv4Address(10, 0, 0, static_cast<std::uint8_t>(h));
  }
  const rr::sim::PackedRunList* bank =
      table.data() + rr::sim::HopRow::kNumPersonalities;
  double pipeline_ns = std::numeric_limits<double>::infinity();
  double batch4_ns = pipeline_ns;
  double batch8_ns = pipeline_ns;
  double batch16_ns = pipeline_ns;
  double batch_speedup = 0.0;
  for (int rep = 0; rep < 7; ++rep) {
    const double rep_pipeline_ns =
        time_loop_ns(original,
                     [&](auto& bytes) {
                       walk_with_pipeline(
                           bytes,
                           table.data() +
                               rr::sim::HopRow::kNumPersonalities,
                           elements, rows, &counters);
                     }) -
        reset_ns;
    const double rep_batch4_ns = time_batch_walk_ns(
        original, 4, bank, elements, rows, path, &counters, reset_ns);
    const double rep_batch8_ns = time_batch_walk_ns(
        original, 8, bank, elements, rows, path, &counters, reset_ns);
    const double rep_batch16_ns = time_batch_walk_ns(
        original, 16, bank, elements, rows, path, &counters, reset_ns);
    pipeline_ns = std::min(pipeline_ns, rep_pipeline_ns);
    batch4_ns = std::min(batch4_ns, rep_batch4_ns);
    batch8_ns = std::min(batch8_ns, rep_batch8_ns);
    batch16_ns = std::min(batch16_ns, rep_batch16_ns);
    // The gated speedup is a per-rep ratio over the best campaign-eligible
    // width (>= 8, the probe_batch default's regime): a rep's four samples
    // are temporally adjacent, so they share the box's frequency regime,
    // while min-of-mins across reps can pair a fast scalar window with a
    // throttled batch one and report a phantom slowdown. The best rep is
    // the cleanest aligned window the run caught.
    batch_speedup =
        std::max(batch_speedup, rep_pipeline_ns / std::min(rep_batch8_ns,
                                                           rep_batch16_ns));
  }
  telemetry.value("walk_reset_ns", reset_ns);
  telemetry.value("walk_legacy_ns", legacy_ns);
  telemetry.value("walk_view_ns", view_ns);
  telemetry.value("walk_speedup", legacy_ns / view_ns);
  telemetry.value("walk_pipeline_ns", pipeline_ns);
  telemetry.value("walk_batch4_ns", batch4_ns);
  telemetry.value("walk_batch8_ns", batch8_ns);
  telemetry.value("walk_batch16_ns", batch16_ns);
  telemetry.value("walk_batch_speedup", batch_speedup);
  std::printf("walk (9 stamping hops): mutate.h %.1f ns, view %.1f ns, "
              "pipeline %.1f ns, speedup %.2fx\n", legacy_ns, view_ns,
              pipeline_ns, legacy_ns / view_ns);
  std::printf("batched walk: width 4 %.1f ns, width 8 %.1f ns, width 16 "
              "%.1f ns per probe (batch speedup %.2fx over scalar "
              "pipeline)\n", batch4_ns, batch8_ns, batch16_ns, batch_speedup);
  return 0;
}
