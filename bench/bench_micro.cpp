// Microbenchmarks for the toolkit's primitives (google-benchmark): packet
// serialization/parsing, in-place RR stamping, LPM lookups, BGP route-tree
// computation, and full simulated probes. Not a paper artifact, but the
// numbers justify the harness's ability to replay census-scale studies.
#include <benchmark/benchmark.h>

#include "bench/telemetry.h"
#include "measure/testbed.h"
#include "netbase/lpm_trie.h"
#include "packet/datagram.h"
#include "packet/mutate.h"
#include "packet/view.h"
#include "probe/prober.h"
#include "routing/bgp.h"
#include "sim/pipeline.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace {

using namespace rr;

void BM_PingSerialize(benchmark::State& state) {
  const auto ping = pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                   net::IPv4Address(5, 6, 7, 8), 9, 1, 64, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ping.serialize());
  }
}
BENCHMARK(BM_PingSerialize);

void BM_DatagramParse(benchmark::State& state) {
  const auto bytes = *pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                     net::IPv4Address(5, 6, 7, 8), 9, 1, 64,
                                     9).serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkt::Datagram::parse(bytes));
  }
}
BENCHMARK(BM_DatagramParse);

void BM_RrStampAndTtl(benchmark::State& state) {
  const auto original = *pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                        net::IPv4Address(5, 6, 7, 8), 9, 1,
                                        64, 9).serialize();
  std::vector<std::uint8_t> bytes;
  for (auto _ : state) {
    bytes = original;
    pkt::decrement_ttl(bytes);
    pkt::rr_stamp(bytes, net::IPv4Address(10, 0, 0, 1));
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_RrStampAndTtl);

// --- the per-hop walk, both ways ------------------------------------------
// Nine stamping hops on one RR ping: the mutate.h functions re-locate the
// option and rewrite the checksum per call; Ipv4HeaderView caches the
// offsets once and applies RFC 1624 incremental updates. This pair is the
// per-packet cost Network::walk pays at every simulated hop.

constexpr int kWalkHops = 9;

void walk_with_mutate(std::vector<std::uint8_t>& bytes) {
  for (int hop = 0; hop < kWalkHops; ++hop) {
    pkt::decrement_ttl(bytes);
    pkt::rr_stamp(bytes, net::IPv4Address(10, 0, 0,
                                          static_cast<std::uint8_t>(hop)));
  }
}

void walk_with_view(std::vector<std::uint8_t>& bytes) {
  pkt::Ipv4HeaderView view{bytes};
  for (int hop = 0; hop < kWalkHops; ++hop) {
    view.decrement_ttl();
    view.rr_stamp(net::IPv4Address(10, 0, 0, static_cast<std::uint8_t>(hop)));
  }
}

/// The element-pipeline walk over the same nine stamping hops, exercising
/// exactly what Network::walk_pipeline runs per hop: a HopRow load, a run
/// list word from the personality bank, and the run_hop interpreter (here
/// executing [TtlDecrement, TrustedStamp] — the fault-free stamping
/// personality the census spends most of its time in).
void walk_with_pipeline(std::vector<std::uint8_t>& bytes,
                        const sim::PackedRunList* bank,
                        const sim::ElementSet& es, const sim::HopRow* rows,
                        sim::NetCounters* counters) {
  pkt::Ipv4HeaderView view{bytes};
  sim::HopContext ctx;
  ctx.view = &view;
  ctx.bytes = bytes;
  ctx.has_options = view.has_options();
  ctx.counters = counters;
  double now = 0.0;
  for (int hop = 0; hop < kWalkHops; ++hop) {
    now += 0.0005;
    const sim::HopRow row = rows[hop];
    ctx.router = static_cast<topo::RouterId>(hop);
    ctx.egress = net::IPv4Address(10, 0, 0, static_cast<std::uint8_t>(hop));
    ctx.as_id = row.as_id;
    ctx.hop = static_cast<std::size_t>(hop);
    ctx.now = now;
    if (sim::run_hop(bank[row.flags], es, ctx) !=
        sim::HopVerdict::kContinue) {
      return;
    }
  }
}

void BM_WalkMutateLegacy(benchmark::State& state) {
  const auto original = *pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                        net::IPv4Address(5, 6, 7, 8), 9, 1,
                                        64, 9).serialize();
  std::vector<std::uint8_t> bytes;
  for (auto _ : state) {
    bytes = original;
    walk_with_mutate(bytes);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_WalkMutateLegacy);

void BM_WalkHeaderView(benchmark::State& state) {
  const auto original = *pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                        net::IPv4Address(5, 6, 7, 8), 9, 1,
                                        64, 9).serialize();
  std::vector<std::uint8_t> bytes;
  for (auto _ : state) {
    bytes = original;
    walk_with_view(bytes);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_WalkHeaderView);

void BM_LpmLookup(benchmark::State& state) {
  net::LpmTrie<std::uint32_t> trie;
  util::Rng rng{1};
  for (std::uint32_t i = 0; i < 50000; ++i) {
    trie.insert(net::Prefix{net::IPv4Address{static_cast<std::uint32_t>(
                    rng())}, 24}, i);
  }
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.lookup(net::IPv4Address{static_cast<std::uint32_t>(
            util::mix64(++x))}));
  }
}
BENCHMARK(BM_LpmLookup);

std::shared_ptr<const topo::Topology> bench_topology() {
  static auto topo = [] {
    topo::TopologyParams params = topo::TopologyParams::paper_scale();
    params.num_ases = 1000;
    params.colo_fraction = 0.25;
    params.planetlab_sites_2011 = 60;
    return topo::Generator{params}.generate();
  }();
  return topo;
}

void BM_BgpRouteTree(benchmark::State& state) {
  route::BgpEngine engine{bench_topology(), topo::Epoch::k2016};
  topo::AsId dest = 0;
  const auto n = bench_topology()->ases().size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute_tree(dest));
    dest = static_cast<topo::AsId>((dest + 17) % n);
  }
}
BENCHMARK(BM_BgpRouteTree)->Unit(benchmark::kMicrosecond);

void BM_SimulatedPingRr(benchmark::State& state) {
  static auto testbed = [] {
    measure::TestbedConfig config;
    config.topo_params = topo::TopologyParams::paper_scale();
    config.topo_params.num_ases = 1000;
    config.topo_params.colo_fraction = 0.25;
    config.topo_params.planetlab_sites_2011 = 60;
    return new measure::Testbed{config};
  }();
  auto prober = testbed->make_prober(testbed->vps().front()->host, 1e9);
  const auto dests = testbed->topology().destinations();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto target =
        testbed->topology().host_at(dests[i % dests.size()]).address;
    benchmark::DoNotOptimize(
        prober.probe(probe::ProbeSpec::ping_rr(target)));
    ++i;
  }
}
BENCHMARK(BM_SimulatedPingRr)->Unit(benchmark::kMicrosecond);

void BM_SimulatedPingRrReuse(benchmark::State& state) {
  static auto testbed = [] {
    measure::TestbedConfig config;
    config.topo_params = topo::TopologyParams::paper_scale();
    config.topo_params.num_ases = 1000;
    config.topo_params.colo_fraction = 0.25;
    config.topo_params.planetlab_sites_2011 = 60;
    return new measure::Testbed{config};
  }();
  auto prober = testbed->make_prober(testbed->vps().front()->host, 1e9);
  sim::SendContext ctx;
  probe::ProbeResult result;
  const auto dests = testbed->topology().destinations();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto target =
        testbed->topology().host_at(dests[i % dests.size()]).address;
    prober.probe_into(probe::ProbeSpec::ping_rr(target), &ctx, result);
    benchmark::DoNotOptimize(result);
    ++i;
  }
}
BENCHMARK(BM_SimulatedPingRrReuse)->Unit(benchmark::kMicrosecond);

/// Wall-clock nanoseconds per iteration of `body(bytes)` where each
/// iteration starts from a fresh copy of `original`.
template <typename Body>
double time_loop_ns(const std::vector<std::uint8_t>& original, Body&& body) {
  std::vector<std::uint8_t> bytes;
  constexpr int kIters = 300000;
  for (int i = 0; i < kIters / 10; ++i) {  // warm-up
    bytes = original;
    body(bytes);
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    bytes = original;
    body(bytes);
    benchmark::DoNotOptimize(bytes);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::nano>(elapsed).count() / kIters;
}

/// Walk nanoseconds for the telemetry record, net of the per-iteration
/// buffer reset (the copy exists only so the benchmark can repeat — the
/// simulator walks each buffer once). The committed BENCH_micro.json
/// carries the legacy-vs-view ratio so the hot-path speedup claim is
/// checkable from the artifact alone.
double time_walk_ns(const std::vector<std::uint8_t>& original, bool use_view,
                    double reset_ns) {
  const double gross = time_loop_ns(original, [use_view](auto& bytes) {
    use_view ? walk_with_view(bytes) : walk_with_mutate(bytes);
  });
  return gross - reset_ns;
}

}  // namespace

int main(int argc, char** argv) {
  rr::bench::Telemetry telemetry{"micro"};
  telemetry.phase("benchmarks");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  telemetry.phase("walk_timing");
  const auto original = *rr::pkt::make_ping(rr::net::IPv4Address(1, 2, 3, 4),
                                            rr::net::IPv4Address(5, 6, 7, 8),
                                            9, 1, 64, 9).serialize();
  const double reset_ns = time_loop_ns(original, [](auto&) {});
  const double legacy_ns = time_walk_ns(original, /*use_view=*/false,
                                        reset_ns);
  const double view_ns = time_walk_ns(original, /*use_view=*/true, reset_ns);
  // The compiled element pipeline over the same hops: the run table is the
  // fault-free compilation (loss gates elided, trusted stamping), rows are
  // the plain stamping personality — the configuration the bulk of a
  // census walk executes. Gated ≤ 177 ns by check_bench_regression.sh:
  // the interpreter must not cost more than the hand-inlined view walk.
  const rr::sim::RunTable table =
      rr::sim::compile_run_table(rr::sim::PipelineConfig{});
  const rr::sim::ElementSet elements{};
  rr::sim::NetCounters counters;
  rr::sim::HopRow rows[kWalkHops];
  for (auto& row : rows) row.flags = rr::sim::HopRow::kStamps;
  const double pipeline_ns =
      time_loop_ns(original, [&](auto& bytes) {
        walk_with_pipeline(bytes,
                           table.data() + rr::sim::HopRow::kNumPersonalities,
                           elements, rows, &counters);
      }) -
      reset_ns;
  telemetry.value("walk_reset_ns", reset_ns);
  telemetry.value("walk_legacy_ns", legacy_ns);
  telemetry.value("walk_view_ns", view_ns);
  telemetry.value("walk_speedup", legacy_ns / view_ns);
  telemetry.value("walk_pipeline_ns", pipeline_ns);
  std::printf("walk (9 stamping hops): mutate.h %.1f ns, view %.1f ns, "
              "pipeline %.1f ns, speedup %.2fx\n", legacy_ns, view_ns,
              pipeline_ns, legacy_ns / view_ns);
  return 0;
}
