// Microbenchmarks for the toolkit's primitives (google-benchmark): packet
// serialization/parsing, in-place RR stamping, LPM lookups, BGP route-tree
// computation, and full simulated probes. Not a paper artifact, but the
// numbers justify the harness's ability to replay census-scale studies.
#include <benchmark/benchmark.h>

#include "bench/telemetry.h"
#include "measure/testbed.h"
#include "netbase/lpm_trie.h"
#include "packet/datagram.h"
#include "packet/mutate.h"
#include "probe/prober.h"
#include "routing/bgp.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace {

using namespace rr;

void BM_PingSerialize(benchmark::State& state) {
  const auto ping = pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                   net::IPv4Address(5, 6, 7, 8), 9, 1, 64, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ping.serialize());
  }
}
BENCHMARK(BM_PingSerialize);

void BM_DatagramParse(benchmark::State& state) {
  const auto bytes = *pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                     net::IPv4Address(5, 6, 7, 8), 9, 1, 64,
                                     9).serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkt::Datagram::parse(bytes));
  }
}
BENCHMARK(BM_DatagramParse);

void BM_RrStampAndTtl(benchmark::State& state) {
  const auto original = *pkt::make_ping(net::IPv4Address(1, 2, 3, 4),
                                        net::IPv4Address(5, 6, 7, 8), 9, 1,
                                        64, 9).serialize();
  std::vector<std::uint8_t> bytes;
  for (auto _ : state) {
    bytes = original;
    pkt::decrement_ttl(bytes);
    pkt::rr_stamp(bytes, net::IPv4Address(10, 0, 0, 1));
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_RrStampAndTtl);

void BM_LpmLookup(benchmark::State& state) {
  net::LpmTrie<std::uint32_t> trie;
  util::Rng rng{1};
  for (std::uint32_t i = 0; i < 50000; ++i) {
    trie.insert(net::Prefix{net::IPv4Address{static_cast<std::uint32_t>(
                    rng())}, 24}, i);
  }
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.lookup(net::IPv4Address{static_cast<std::uint32_t>(
            util::mix64(++x))}));
  }
}
BENCHMARK(BM_LpmLookup);

std::shared_ptr<const topo::Topology> bench_topology() {
  static auto topo = [] {
    topo::TopologyParams params = topo::TopologyParams::paper_scale();
    params.num_ases = 1000;
    params.colo_fraction = 0.25;
    params.planetlab_sites_2011 = 60;
    return topo::Generator{params}.generate();
  }();
  return topo;
}

void BM_BgpRouteTree(benchmark::State& state) {
  route::BgpEngine engine{bench_topology(), topo::Epoch::k2016};
  topo::AsId dest = 0;
  const auto n = bench_topology()->ases().size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute_tree(dest));
    dest = static_cast<topo::AsId>((dest + 17) % n);
  }
}
BENCHMARK(BM_BgpRouteTree)->Unit(benchmark::kMicrosecond);

void BM_SimulatedPingRr(benchmark::State& state) {
  static auto testbed = [] {
    measure::TestbedConfig config;
    config.topo_params = topo::TopologyParams::paper_scale();
    config.topo_params.num_ases = 1000;
    config.topo_params.colo_fraction = 0.25;
    config.topo_params.planetlab_sites_2011 = 60;
    return new measure::Testbed{config};
  }();
  auto prober = testbed->make_prober(testbed->vps().front()->host, 1e9);
  const auto dests = testbed->topology().destinations();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto target =
        testbed->topology().host_at(dests[i % dests.size()]).address;
    benchmark::DoNotOptimize(
        prober.probe(probe::ProbeSpec::ping_rr(target)));
    ++i;
  }
}
BENCHMARK(BM_SimulatedPingRr)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  rr::bench::Telemetry telemetry{"micro"};
  telemetry.phase("benchmarks");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
