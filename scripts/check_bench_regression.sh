#!/usr/bin/env bash
# Compares a freshly produced BENCH_table1.json against the committed
# reference in bench_results/ and fails if the campaign phase regressed
# by more than the allowed fraction (default 25%). Headline-rate drift is
# an error at any size: the campaign is deterministic, so the dataset
# values must match the reference exactly.
#
#   scripts/check_bench_regression.sh [fresh.json] [reference.json]
#
# Defaults: ./BENCH_table1.json vs bench_results/BENCH_table1.json,
# threshold overridable via RROPT_BENCH_TOLERANCE (e.g. 0.25).
set -eu

fresh=${1:-BENCH_table1.json}
reference=${2:-bench_results/BENCH_table1.json}
tolerance=${RROPT_BENCH_TOLERANCE:-0.25}

# A missing *reference* is not an error: a fresh checkout (or a branch
# that predates the committed baseline) has nothing to compare against,
# and failing there would make the guard impossible to bootstrap. A
# missing *fresh* result still fails — the bench was supposed to run.
if [[ ! -f "$reference" ]]; then
  echo "check_bench_regression: no reference at $reference;" \
       "skipping comparison (commit one to enable the guard)" >&2
  exit 0
fi
if [[ ! -f "$fresh" ]]; then
  echo "check_bench_regression: missing $fresh" >&2
  exit 1
fi

extract() {  # extract <file> <key> — first numeric value for "key"
  sed -n "s/.*\"$2\": *\([0-9.eE+-]*\).*/\1/p" "$1" | head -n1
}

fresh_campaign=$(extract "$fresh" campaign)
ref_campaign=$(extract "$reference" campaign)
if [[ -z "$fresh_campaign" || -z "$ref_campaign" ]]; then
  echo "check_bench_regression: missing campaign phase timing" >&2
  exit 1
fi

# The dataset is deterministic: the Table 1 rates must be bit-identical
# to the committed reference, otherwise the perf comparison is moot.
for key in ping_rate_by_ip rr_rate_by_ip rr_over_ping_by_ip; do
  fresh_value=$(extract "$fresh" "$key")
  ref_value=$(extract "$reference" "$key")
  if [[ "$fresh_value" != "$ref_value" ]]; then
    echo "check_bench_regression: $key changed: $ref_value -> $fresh_value" >&2
    exit 1
  fi
done

awk -v fresh="$fresh_campaign" -v ref="$ref_campaign" -v tol="$tolerance" '
  BEGIN {
    limit = ref * (1 + tol)
    printf "campaign phase: %.3fs fresh vs %.3fs reference (limit %.3fs)\n",
           fresh, ref, limit
    if (fresh > limit) {
      printf "check_bench_regression: campaign regressed %.0f%% (> %.0f%%)\n",
             (fresh / ref - 1) * 100, tol * 100 > "/dev/stderr"
      exit 1
    }
    printf "within tolerance (%+.0f%%)\n", (fresh / ref - 1) * 100
  }'
