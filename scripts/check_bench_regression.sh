#!/usr/bin/env bash
# Compares a freshly produced BENCH_<name>.json against the committed
# reference in bench_results/ and fails on regressions:
#
#   * per-phase wall-clock times ("world", "campaign") each get their own
#     tolerance band — a compile-phase regression can no longer hide
#     inside a campaign-phase win;
#   * peak_rss_mib gets a (tighter) band of its own: the memory budget is
#     a product promise, not a side effect;
#   * deterministic values (headline rates, dataset_hash, destination
#     count) must match the reference exactly at any size — the campaign
#     is bit-reproducible, so ANY drift is an error, not a regression.
#
#   scripts/check_bench_regression.sh [fresh.json] [reference.json]
#
# Defaults: ./BENCH_table1.json vs bench_results/BENCH_table1.json.
# Tolerances (fractions over the reference) are overridable:
#   RROPT_BENCH_TOLERANCE       default band for phase times (0.25)
#   RROPT_BENCH_TOLERANCE_WORLD     world-phase override
#   RROPT_BENCH_TOLERANCE_CAMPAIGN  campaign-phase override
#   RROPT_BENCH_TOLERANCE_RSS   peak-RSS band (default 0.10)
set -eu

fresh=${1:-BENCH_table1.json}
reference=${2:-bench_results/BENCH_table1.json}
tolerance=${RROPT_BENCH_TOLERANCE:-0.25}
tolerance_world=${RROPT_BENCH_TOLERANCE_WORLD:-$tolerance}
tolerance_campaign=${RROPT_BENCH_TOLERANCE_CAMPAIGN:-$tolerance}
tolerance_rss=${RROPT_BENCH_TOLERANCE_RSS:-0.10}

# A missing *reference* is not an error: a fresh checkout (or a branch
# that predates the committed baseline) has nothing to compare against,
# and failing there would make the guard impossible to bootstrap. A
# missing *fresh* result still fails — the bench was supposed to run.
if [[ ! -f "$reference" ]]; then
  echo "check_bench_regression: no reference at $reference;" \
       "skipping comparison (commit one to enable the guard)" >&2
  exit 0
fi
if [[ ! -f "$fresh" ]]; then
  echo "check_bench_regression: missing $fresh" >&2
  exit 1
fi

extract() {  # extract <file> <key> — first numeric value for "key"
  sed -n "s/.*\"$2\": *\([0-9.eE+-]*\).*/\1/p" "$1" | head -n1
}
extract_string() {  # extract <file> <key> — first quoted value for "key"
  sed -n "s/.*\"$2\": *\"\([^\"]*\)\".*/\1/p" "$1" | head -n1
}

failures=0

# ---------------------------------------------------- deterministic values
# Exact-match keys, checked whenever both files carry them. dataset_hash
# is the strongest check: one flipped observation bit anywhere in a 500k-
# destination census changes it.
for key in ping_rate_by_ip rr_rate_by_ip rr_over_ping_by_ip \
           ping_rate rr_rate rr_over_ping destinations; do
  fresh_value=$(extract "$fresh" "$key")
  ref_value=$(extract "$reference" "$key")
  if [[ -n "$fresh_value" && -n "$ref_value" \
        && "$fresh_value" != "$ref_value" ]]; then
    echo "check_bench_regression: $key changed: $ref_value -> $fresh_value" >&2
    failures=1
  fi
done
fresh_hash=$(extract_string "$fresh" dataset_hash)
ref_hash=$(extract_string "$reference" dataset_hash)
if [[ -n "$fresh_hash" && -n "$ref_hash" ]]; then
  if [[ "$fresh_hash" != "$ref_hash" ]]; then
    echo "check_bench_regression: dataset_hash drifted:" \
         "$ref_hash -> $fresh_hash (campaign contents changed)" >&2
    failures=1
  else
    echo "dataset_hash: $fresh_hash (matches reference)"
  fi
fi

# Figure 5 row contents are bit-reproducible (with stop sets on or off, at
# any thread count), so any drift in the rows hash means the TTL study's
# numbers changed — an error, exactly like dataset_hash.
fresh_fig5=$(extract_string "$fresh" fig5_rows_hash)
ref_fig5=$(extract_string "$reference" fig5_rows_hash)
if [[ -n "$fresh_fig5" && -n "$ref_fig5" ]]; then
  if [[ "$fresh_fig5" != "$ref_fig5" ]]; then
    echo "check_bench_regression: fig5_rows_hash drifted:" \
         "$ref_fig5 -> $fresh_fig5 (Figure 5 contents changed)" >&2
    failures=1
  else
    echo "fig5_rows_hash: $fresh_fig5 (matches reference)"
  fi
fi

# ------------------------------------------------------- tolerance-banded
# check_band <label> <fresh> <ref> <tolerance>; empty values skip (not
# every bench has every phase, and non-Linux runs report rss 0).
check_band() {
  local label=$1 fresh_value=$2 ref_value=$3 tol=$4
  if [[ -z "$fresh_value" || -z "$ref_value" ]]; then
    return 0
  fi
  awk -v fresh="$fresh_value" -v ref="$ref_value" -v tol="$tol" \
      -v label="$label" '
    BEGIN {
      if (ref <= 0 || fresh <= 0) exit 0  # unmeasured on one side
      limit = ref * (1 + tol)
      printf "%s: %.3f fresh vs %.3f reference (limit %.3f, %+.0f%%)\n",
             label, fresh, ref, limit, (fresh / ref - 1) * 100
      if (fresh > limit) {
        printf "check_bench_regression: %s regressed %.0f%% (> %.0f%%)\n",
               label, (fresh / ref - 1) * 100, tol * 100 > "/dev/stderr"
        exit 1
      }
    }' || return 1
}

check_band "world phase (s)" "$(extract "$fresh" world)" \
  "$(extract "$reference" world)" "$tolerance_world" || failures=1
check_band "campaign phase (s)" "$(extract "$fresh" campaign)" \
  "$(extract "$reference" campaign)" "$tolerance_campaign" || failures=1
check_band "peak RSS (MiB)" "$(extract "$fresh" peak_rss_mib)" \
  "$(extract "$reference" peak_rss_mib)" "$tolerance_rss" || failures=1

# ------------------------------------------------ micro-bench walk gates
# The per-hop walk interpreter (BENCH_micro.json only). Besides the usual
# band against the committed reference, walk_pipeline_ns carries a hard
# absolute ceiling: the compiled element run list must stay at or below
# the 177 ns the hand-inlined view walk cost when the pipeline landed —
# an interpreter that costs more than the branch forest it replaced is a
# regression no matter what the reference drifted to.
walk_pipeline_ceiling_ns=${RROPT_WALK_PIPELINE_CEILING_NS:-177}
check_band "walk_pipeline_ns" "$(extract "$fresh" walk_pipeline_ns)" \
  "$(extract "$reference" walk_pipeline_ns)" "$tolerance" || failures=1
fresh_walk_pipeline=$(extract "$fresh" walk_pipeline_ns)
if [[ -n "$fresh_walk_pipeline" ]]; then
  awk -v v="$fresh_walk_pipeline" -v limit="$walk_pipeline_ceiling_ns" '
    BEGIN {
      if (v > limit) {
        printf "check_bench_regression: walk_pipeline_ns %.1f exceeds the " \
               "%.0f ns ceiling\n", v, limit > "/dev/stderr"
        exit 1
      }
      printf "walk_pipeline_ns: %.1f (ceiling %.0f)\n", v, limit
    }' || failures=1
fi

# The batched walk engine (walk_batch_pipeline) must beat the scalar
# interpreter per probe. walk_batch_speedup is bench_micro's best per-rep
# ratio of scalar over the best campaign-eligible width (batch >= 8, the
# probe_batch default regime): both sides of each rep's ratio are
# temporally adjacent samples of the same run, so the ratio is machine-
# speed-independent — it gates the batching win itself, not the box's
# frequency that day. The floor funds Campaign pass A's probe_batch
# default: if batching stops paying, this trips before the campaign
# quietly slows down.
walk_batch_speedup_floor=${RROPT_WALK_BATCH_SPEEDUP:-1.25}
fresh_walk_batch8=$(extract "$fresh" walk_batch8_ns)
fresh_walk_batch_speedup=$(extract "$fresh" walk_batch_speedup)
if [[ -n "$fresh_walk_batch_speedup" ]]; then
  awk -v ratio="$fresh_walk_batch_speedup" \
      -v floor="$walk_batch_speedup_floor" '
    BEGIN {
      printf "walk_batch_speedup: %.2fx over scalar (floor %.2fx)\n",
             ratio, floor
      if (ratio < floor) {
        printf "check_bench_regression: batched walk speedup %.2fx below " \
               "the %.2fx floor\n", ratio, floor > "/dev/stderr"
        exit 1
      }
    }' || failures=1
fi
check_band "walk_batch8_ns" "$fresh_walk_batch8" \
  "$(extract "$reference" walk_batch8_ns)" "$tolerance" || failures=1

# ------------------------------------------------ stop-set probing gates
# The trace census (BENCH_trace.json only) must keep delivering the
# Doubletree win: the honest off-vs-on probe reduction carries a hard
# floor (RROPT_STOPSET_REDUCTION, default 0.40). A stop-set change that
# stops saving probes is a perf regression of the subsystem's entire
# reason to exist, no matter how the wall-clock bands look.
stopset_reduction_floor=${RROPT_STOPSET_REDUCTION:-0.40}
fresh_reduction=$(extract "$fresh" stopset_reduction)
if [[ -n "$fresh_reduction" ]]; then
  awk -v r="$fresh_reduction" -v floor="$stopset_reduction_floor" '
    BEGIN {
      printf "stopset_reduction: %.1f%% (floor %.0f%%)\n",
             r * 100, floor * 100
      if (r < floor) {
        printf "check_bench_regression: stop-set probe reduction %.1f%% " \
               "below the %.0f%% floor\n", r * 100,
               floor * 100 > "/dev/stderr"
        exit 1
      }
    }' || failures=1
fi

if [[ "$failures" -ne 0 ]]; then
  exit 1
fi
echo "within tolerance"
