#!/usr/bin/env bash
# Runs the repo's static checks locally, mirroring the CI static-analysis
# job as closely as the available toolchain allows:
#
#   1. rropt_lint over src/        (always; builds the linter if needed)
#   2. rropt_verify                (with --verify; abstract interpretation
#                                   over the compiled run tables for the
#                                   default + paper configs)
#   3. clang-tidy over src/        (only if clang-tidy is installed)
#
# The final CI check — a clang build with -Werror=thread-safety — needs a
# clang toolchain and is easiest reproduced with:
#   CC=clang CXX=clang++ cmake -B build-clang && cmake --build build-clang
#
#   scripts/run_lint.sh [--verify] [build-dir]    (default: build)
set -eu

cd "$(dirname "$0")/.."

verify=0
build=build
for arg in "$@"; do
  case "$arg" in
    --verify) verify=1 ;;
    *) build=$arg ;;
  esac
done

if [[ ! -d "$build" ]]; then
  cmake -B "$build" -S .
fi
cmake --build "$build" --target rropt_lint -j "$(nproc)"

echo "== rropt_lint src/"
"$build"/tools/lint/rropt_lint src

if [[ "$verify" -eq 1 ]]; then
  cmake --build "$build" --target rropt_verify -j "$(nproc)"
  echo "== rropt_verify (default + paper run-table proofs)"
  "$build"/tools/verify/rropt_verify --report "$build"/rropt_verify_report.txt
fi

if [[ "${RROPT_SKIP_CLANG_TIDY:-0}" -eq 1 ]]; then
  echo "== clang-tidy skipped (RROPT_SKIP_CLANG_TIDY=1; CI runs it on changed files)"
elif command -v run-clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy src/"
  run-clang-tidy -quiet -p "$build" "$(pwd)/src/.*" || exit 1
elif command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy src/ (serial; install run-clang-tidy for parallel)"
  find src -name '*.cpp' -print0 |
    xargs -0 -n1 -P "$(nproc)" clang-tidy -quiet -p "$build"
else
  echo "== clang-tidy not installed; skipped (CI runs it)"
fi

echo "static checks passed"
