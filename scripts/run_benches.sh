#!/usr/bin/env bash
# Regenerates every paper artifact and records the output.
#
#   scripts/run_benches.sh [quick]
#
# "quick" shrinks the world to a smoke-test scale (~800 ASes).
set -u
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "quick" ]]; then
  export RROPT_QUICK=1
fi

cmake -B build
cmake --build build -j "$(nproc)"
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

# Collect the machine-readable telemetry the benches wrote alongside the
# textual log (one BENCH_<name>.json per bench binary), then consolidate
# it into a single BENCH_all.json keyed by bench name.
mkdir -p bench_telemetry
mv -f BENCH_*.json bench_telemetry/ 2>/dev/null || true
scripts/collect_bench_telemetry.sh bench_telemetry
echo "telemetry: $(ls bench_telemetry 2>/dev/null | wc -l) files in bench_telemetry/"
