#!/usr/bin/env bash
# Regenerates every paper artifact and records the output.
#
#   scripts/run_benches.sh [quick]
#
# "quick" shrinks the world to a smoke-test scale (~800 ASes).
set -u
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "quick" ]]; then
  export RROPT_QUICK=1
fi

cmake -B build
cmake --build build -j "$(nproc)"
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

# Collect the machine-readable telemetry the benches wrote alongside the
# textual log (one BENCH_<name>.json per bench binary), then consolidate
# it into a single BENCH_all.json keyed by bench name. Every bench's JSON
# uniformly carries "threads" and "peak_rss_mib" (bench/telemetry.h
# records them at finish() whether or not the bench did), so the summary
# below — and any diff of BENCH_all.json across runs — can compare memory
# and parallelism per bench, not just wall-clock.
mkdir -p bench_telemetry
mv -f BENCH_*.json bench_telemetry/ 2>/dev/null || true
scripts/collect_bench_telemetry.sh bench_telemetry
echo "telemetry: $(ls bench_telemetry 2>/dev/null | wc -l) files in bench_telemetry/"
echo
printf '%-16s %12s %8s %14s %12s %12s %9s\n' bench total_seconds threads \
  peak_rss_mib probes_sent probes_saved hit_rate
for f in bench_telemetry/BENCH_*.json; do
  [[ "$f" == */BENCH_all.json ]] && continue
  name=${f##*/BENCH_}; name=${name%.json}
  total=$(sed -n 's/.*"total_seconds": *\([0-9.eE+-]*\).*/\1/p' "$f" | head -n1)
  threads=$(sed -n 's/.*"threads": *\([0-9]*\).*/\1/p' "$f" | head -n1)
  rss=$(sed -n 's/.*"peak_rss_mib": *\([0-9.eE+-]*\).*/\1/p' "$f" | head -n1)
  sent=$(sed -n 's/.*"probes_sent": *\([0-9]*\).*/\1/p' "$f" | head -n1)
  saved=$(sed -n 's/.*"probes_saved": *\([0-9]*\).*/\1/p' "$f" | head -n1)
  hit=$(sed -n 's/.*"stopset_hit_rate": *\([0-9.eE+-]*\).*/\1/p' "$f" | head -n1)
  printf '%-16s %12s %8s %14s %12s %12s %9s\n' "$name" "${total:--}" \
    "${threads:--}" "${rss:--}" "${sent:--}" "${saved:--}" "${hit:--}"
done

# Headline walk numbers: the batched engine's per-probe win over the
# scalar interpreter (what funds Campaign pass A's probe_batch default).
# walk_batch_speedup is bench_micro's best per-rep same-window ratio.
micro=bench_telemetry/BENCH_micro.json
if [[ -f "$micro" ]]; then
  scalar=$(sed -n 's/.*"walk_pipeline_ns": *\([0-9.eE+-]*\).*/\1/p' "$micro" | head -n1)
  batch8=$(sed -n 's/.*"walk_batch8_ns": *\([0-9.eE+-]*\).*/\1/p' "$micro" | head -n1)
  speedup=$(sed -n 's/.*"walk_batch_speedup": *\([0-9.eE+-]*\).*/\1/p' "$micro" | head -n1)
  if [[ -n "$scalar" && -n "$batch8" && -n "$speedup" ]]; then
    awk -v s="$scalar" -v b="$batch8" -v r="$speedup" 'BEGIN {
      if (b > 0) printf "\nbatched walk: %.1f ns/probe vs %.1f ns scalar " \
                        "(%.2fx speedup at batch >= 8)\n", b, s, r
    }'
  fi
fi

# Headline stop-set numbers: the trace census's honest probe reduction
# (off-vs-on, bench_trace) — the figure the Doubletree stop sets exist
# to deliver, gated by check_bench_regression.sh's RROPT_STOPSET_REDUCTION
# floor.
trace=bench_telemetry/BENCH_trace.json
if [[ -f "$trace" ]]; then
  red=$(sed -n 's/.*"stopset_reduction": *\([0-9.eE+-]*\).*/\1/p' "$trace" | head -n1)
  base=$(sed -n 's/.*"probes_sent_baseline": *\([0-9]*\).*/\1/p' "$trace" | head -n1)
  sent=$(sed -n 's/.*"probes_sent": *\([0-9]*\).*/\1/p' "$trace" | head -n1)
  if [[ -n "$red" && -n "$base" && -n "$sent" ]]; then
    awk -v r="$red" -v b="$base" -v s="$sent" 'BEGIN {
      printf "stop sets: %d probes vs %d baseline " \
             "(%.1f%% census probe reduction)\n", s, b, r * 100
    }'
  fi
fi
