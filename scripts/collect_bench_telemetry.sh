#!/usr/bin/env bash
# Merges the per-bench BENCH_<name>.json files in the current directory
# into one consolidated BENCH_all.json keyed by bench name, so CI can
# upload (and humans can diff) a single telemetry artifact per run.
#
#   scripts/collect_bench_telemetry.sh [dir]
#
# Reads and writes in [dir] (default: the current directory).
set -u
cd "${1:-.}"

files=$(ls BENCH_*.json 2>/dev/null | grep -v '^BENCH_all\.json$' || true)
if [[ -z "$files" ]]; then
  echo "collect_bench_telemetry: no BENCH_*.json files found" >&2
  exit 1
fi

{
  printf '{\n'
  first=1
  for f in $files; do
    name=${f#BENCH_}
    name=${name%.json}
    [[ $first -eq 0 ]] && printf ',\n'
    first=0
    printf '"%s": ' "$name"
    cat "$f"
  done
  printf '\n}\n'
} > BENCH_all.json
echo "wrote $(pwd)/BENCH_all.json ($(echo "$files" | wc -w) benches)"
