// JSON-lines export for probe logs and figure data.
//
// scamper publishes warts / JSON dumps of raw probe results; this is the
// toolkit's equivalent interchange format: one self-describing JSON object
// per line, so standard tooling (jq, pandas, ...) can consume study output
// without linking against the library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/series.h"
#include "probe/types.h"

namespace rr::data {

/// Minimal streaming JSON object writer with correct string escaping.
/// Usage: JsonObject o(out); o.field("k", 1); o.field("s", "x"); o.close();
class JsonObject {
 public:
  explicit JsonObject(std::ostream& out);
  JsonObject(const JsonObject&) = delete;
  JsonObject& operator=(const JsonObject&) = delete;
  ~JsonObject();

  JsonObject& field(std::string_view key, std::string_view value);
  JsonObject& field(std::string_view key, const char* value);
  JsonObject& field(std::string_view key, std::int64_t value);
  JsonObject& field(std::string_view key, std::uint64_t value);
  JsonObject& field(std::string_view key, int value);
  JsonObject& field(std::string_view key, double value);
  JsonObject& field(std::string_view key, bool value);
  /// Array of dotted-quad address strings.
  JsonObject& field(std::string_view key,
                    const std::vector<net::IPv4Address>& addresses);

  /// Emits the closing brace (idempotent; also run by the destructor).
  void close();

 private:
  void key_prefix(std::string_view key);

  std::ostream* out_;
  bool first_ = true;
  bool closed_ = false;
};

/// Escapes a string for inclusion in JSON (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Writes one probe result as a single JSON line.
void write_probe_line(std::ostream& out, const probe::ProbeResult& result,
                      std::string_view vantage_point = {});

/// Writes a whole probe log (one line per result).
void write_probe_log(std::ostream& out,
                     std::span<const probe::ProbeResult> results,
                     std::string_view vantage_point = {});

/// Writes figure data as JSON lines: one line per series point, tagged
/// with the series label.
void write_figure_jsonl(std::ostream& out,
                        const analysis::FigureData& figure);

}  // namespace rr::data
