// Publishable measurement datasets.
//
// The paper released its raw study data through M-Lab; this module gives
// the toolkit the same capability: a campaign can be frozen into a
// self-contained CampaignDataset — probe outcomes plus the public metadata
// needed to re-analyze them (VP sites/platforms, destination addresses,
// prefix->AS numbers and CAIDA-style types) — saved to a compact versioned
// binary file, reloaded later, and re-analyzed without the simulator or
// topology in memory.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "measure/campaign.h"
#include "measure/classify.h"

namespace rr::data {

struct DatasetVp {
  std::string site;
  std::uint8_t platform = 0;  // topo::Platform

  [[nodiscard]] bool operator==(const DatasetVp&) const = default;
};

struct DatasetDestination {
  std::uint32_t address = 0;  // probed IP (host byte order)
  std::uint32_t asn = 0;      // owning AS number (public mapping)
  std::uint8_t as_type = 0;   // topo::AsType
  std::uint8_t ping_responsive = 0;

  [[nodiscard]] bool operator==(const DatasetDestination&) const = default;
};

/// A frozen campaign: everything needed to regenerate Table 1 and the
/// reachability analyses offline.
class CampaignDataset {
 public:
  static constexpr std::uint32_t kMagic = 0x52524453;  // "RRDS"
  static constexpr std::uint16_t kVersion = 1;

  std::string description;
  std::vector<DatasetVp> vps;
  std::vector<DatasetDestination> destinations;
  /// Row-major [vp][destination], same layout as Campaign.
  std::vector<measure::RrObservation> observations;

  /// Freezes a finished campaign (addresses and AS metadata come from the
  /// same public mapping the analyses use).
  [[nodiscard]] static CampaignDataset from_campaign(
      const measure::Campaign& campaign, std::string description = {});

  /// Same freeze, but *moves* the campaign's observation matrix into the
  /// dataset instead of copying it (the layouts are identical). Use when
  /// the campaign is no longer needed: at census scale this halves the
  /// freeze's resident footprint (~300 MB matrix). The campaign's derived
  /// summaries remain usable; its at() does not.
  [[nodiscard]] static CampaignDataset from_campaign(
      measure::Campaign&& campaign, std::string description = {});

  // ------------------------------------------------------------------ IO
  /// Serializes to the versioned binary format (returns false on IO error).
  [[nodiscard]] bool save(const std::string& path) const;
  /// Loads and validates; nullopt on missing file, bad magic/version, or
  /// truncated/corrupt content.
  [[nodiscard]] static std::optional<CampaignDataset> load(
      const std::string& path);

  /// In-memory (de)serialization, used by save/load and directly testable.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::optional<CampaignDataset> parse(
      std::span<const std::uint8_t> bytes);

  /// FNV-1a over the serialized bytes: a stable fingerprint for asserting
  /// that two runs (different thread counts, compiled-FIB on/off) produced
  /// the same dataset without keeping both in memory.
  [[nodiscard]] std::uint64_t content_hash() const;

  // ------------------------------------------------------ offline queries
  [[nodiscard]] std::size_t num_vps() const noexcept { return vps.size(); }
  [[nodiscard]] std::size_t num_destinations() const noexcept {
    return destinations.size();
  }
  [[nodiscard]] const measure::RrObservation& at(
      std::size_t vp, std::size_t dest) const noexcept {
    return observations[vp * destinations.size() + dest];
  }
  [[nodiscard]] bool rr_responsive(std::size_t dest) const noexcept;
  [[nodiscard]] bool rr_reachable(std::size_t dest) const noexcept;
  [[nodiscard]] int min_rr_distance(std::size_t dest) const noexcept;

  /// Re-derives Table 1 from the frozen data alone.
  [[nodiscard]] measure::ResponseTable response_table() const;

  [[nodiscard]] bool operator==(const CampaignDataset&) const = default;
};

}  // namespace rr::data
