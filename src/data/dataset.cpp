#include "data/dataset.h"

#include <array>
#include <fstream>
#include <unordered_map>

#include "netbase/byte_io.h"
#include "netbase/checksum.h"
#include "util/log.h"

namespace rr::data {

namespace {

void write_string(net::ByteWriter& out, const std::string& text) {
  out.u32(static_cast<std::uint32_t>(text.size()));
  out.bytes({reinterpret_cast<const std::uint8_t*>(text.data()),
             text.size()});
}

std::optional<std::string> read_string(net::ByteReader& in) {
  const std::uint32_t length = in.u32();
  if (!in.ok() || length > (1u << 24)) return std::nullopt;
  const auto bytes = in.bytes(length);
  if (!in.ok()) return std::nullopt;
  return std::string{reinterpret_cast<const char*>(bytes.data()),
                     bytes.size()};
}

/// Streams the serialized body (everything before the pad + trailing
/// checksum) to `sink` in bounded chunks, so hashing or writing a
/// census-scale dataset (~300 MB of observations) never materializes the
/// full byte buffer. serialize() runs on the same emitter, so the stream
/// is the format by construction — the two cannot drift.
template <typename Sink>
void emit_body(const CampaignDataset& dataset, Sink&& sink) {
  constexpr std::size_t kFlushBytes = std::size_t{1} << 16;
  net::ByteWriter out{kFlushBytes + 512};
  const auto flush = [&] {
    sink(out.view());
    out.clear();
  };
  out.u32(CampaignDataset::kMagic);
  out.u16(CampaignDataset::kVersion);
  write_string(out, dataset.description);
  out.u32(static_cast<std::uint32_t>(dataset.vps.size()));
  out.u32(static_cast<std::uint32_t>(dataset.destinations.size()));
  for (const auto& vp : dataset.vps) {
    write_string(out, vp.site);
    out.u8(vp.platform);
    if (out.size() >= kFlushBytes) flush();
  }
  for (const auto& dest : dataset.destinations) {
    out.u32(dest.address);
    out.u32(dest.asn);
    out.u8(dest.as_type);
    out.u8(dest.ping_responsive);
    if (out.size() >= kFlushBytes) flush();
  }
  for (const auto& obs : dataset.observations) {
    out.u8(obs.flags);
    out.u8(obs.stamp_count);
    out.u8(obs.dest_slot);
    out.u8(obs.free_slots);
    if (out.size() >= kFlushBytes) flush();
  }
  flush();
}

/// Accumulates the streamed body's running RFC 1071 checksum (chunks may
/// end on an odd byte, so the dangling byte carries to the next chunk) and
/// total length — enough to reproduce serialize()'s pad + checksum trailer
/// without the buffer.
struct TrailerState {
  std::uint32_t partial = 0;
  std::size_t size = 0;
  bool half_word = false;
  std::uint8_t dangling = 0;

  void feed(std::span<const std::uint8_t> chunk) {
    size += chunk.size();
    if (half_word && !chunk.empty()) {
      partial += (std::uint32_t{dangling} << 8) | chunk.front();
      chunk = chunk.subspan(1);
      half_word = false;
    }
    if (chunk.size() % 2 != 0) {
      dangling = chunk.back();
      half_word = true;
      chunk = chunk.first(chunk.size() - 1);
    }
    partial = net::checksum_partial(chunk, partial);
  }

  /// Pad byte (if the body length is odd) followed by the wire checksum,
  /// exactly the bytes serialize() appends.
  [[nodiscard]] std::array<std::uint8_t, 3> trailer() const {
    TrailerState padded = *this;
    std::size_t n = 0;
    std::array<std::uint8_t, 3> bytes{};
    if (padded.size % 2 != 0) {
      const std::uint8_t zero = 0;
      padded.feed({&zero, 1});
      bytes[n++] = 0;
    }
    const std::uint16_t sum = net::checksum_finish(padded.partial);
    bytes[n++] = static_cast<std::uint8_t>(sum >> 8);
    bytes[n] = static_cast<std::uint8_t>(sum);
    return bytes;
  }

  [[nodiscard]] std::size_t trailer_size() const noexcept {
    return size % 2 != 0 ? 3 : 2;
  }
};

}  // namespace

namespace {

/// Everything from_campaign copies except the observation matrix.
CampaignDataset freeze_metadata(const measure::Campaign& campaign,
                                std::string description) {
  CampaignDataset dataset;
  dataset.description = std::move(description);
  const auto& topology = campaign.topology();

  dataset.vps.reserve(campaign.num_vps());
  for (const auto* vp : campaign.vps()) {
    dataset.vps.push_back(
        DatasetVp{vp->site, static_cast<std::uint8_t>(vp->platform)});
  }

  dataset.destinations.reserve(campaign.num_destinations());
  for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
    const topo::Host& host = topology.host_at(campaign.destinations()[d]);
    DatasetDestination dest;
    dest.address = host.address.value();
    dest.asn = topology.as_at(host.as_id).asn;
    dest.as_type = static_cast<std::uint8_t>(topology.as_at(host.as_id).type);
    dest.ping_responsive = campaign.ping_responsive(d) ? 1 : 0;
    dataset.destinations.push_back(dest);
  }
  return dataset;
}

}  // namespace

CampaignDataset CampaignDataset::from_campaign(
    const measure::Campaign& campaign, std::string description) {
  CampaignDataset dataset =
      freeze_metadata(campaign, std::move(description));
  dataset.observations.reserve(campaign.num_vps() *
                               campaign.num_destinations());
  for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
    for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
      dataset.observations.push_back(campaign.at(v, d));
    }
  }
  return dataset;
}

CampaignDataset CampaignDataset::from_campaign(measure::Campaign&& campaign,
                                               std::string description) {
  CampaignDataset dataset =
      freeze_metadata(campaign, std::move(description));
  // The campaign stores observations row-major [vp][destination] — the
  // dataset's exact layout — so surrendering the matrix is bit-identical
  // to the copying overload.
  dataset.observations = campaign.take_observations();
  return dataset;
}

std::vector<std::uint8_t> CampaignDataset::serialize() const {
  net::ByteWriter out;
  TrailerState trailer;
  emit_body(*this, [&](std::span<const std::uint8_t> chunk) {
    trailer.feed(chunk);
    out.bytes(chunk);
  });
  // Trailing checksum over everything for corruption detection. The
  // one's-complement arithmetic needs 16-bit alignment, so pad first.
  const auto tail = trailer.trailer();
  out.bytes({tail.data(), trailer.trailer_size()});
  return std::move(out).take();
}

std::uint64_t CampaignDataset::content_hash() const {
  // FNV-1a over the streamed serialization — the same bytes (and hash)
  // serialize() would produce, at O(1) extra memory instead of a second
  // dataset-sized buffer.
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&hash](std::span<const std::uint8_t> chunk) {
    for (const std::uint8_t byte : chunk) {
      hash ^= byte;
      hash *= 0x100000001b3ULL;  // FNV prime
    }
  };
  TrailerState trailer;
  emit_body(*this, [&](std::span<const std::uint8_t> chunk) {
    trailer.feed(chunk);
    mix(chunk);
  });
  const auto tail = trailer.trailer();
  mix({tail.data(), trailer.trailer_size()});
  return hash;
}

std::optional<CampaignDataset> CampaignDataset::parse(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 16) return std::nullopt;
  // Validate the trailing checksum first.
  if (!net::checksum_ok(bytes)) return std::nullopt;

  net::ByteReader in{bytes.first(bytes.size() - 2)};
  CampaignDataset dataset;
  if (in.u32() != kMagic) return std::nullopt;
  if (in.u16() != kVersion) return std::nullopt;
  auto description = read_string(in);
  if (!description) return std::nullopt;
  dataset.description = std::move(*description);

  const std::uint32_t n_vps = in.u32();
  const std::uint32_t n_dests = in.u32();
  if (!in.ok()) return std::nullopt;
  // Sanity caps against corrupt headers.
  if (n_vps > 100000 || n_dests > 50000000) return std::nullopt;

  dataset.vps.reserve(n_vps);
  for (std::uint32_t v = 0; v < n_vps; ++v) {
    auto site = read_string(in);
    if (!site) return std::nullopt;
    DatasetVp vp;
    vp.site = std::move(*site);
    vp.platform = in.u8();
    dataset.vps.push_back(std::move(vp));
  }
  dataset.destinations.reserve(n_dests);
  for (std::uint32_t d = 0; d < n_dests; ++d) {
    DatasetDestination dest;
    dest.address = in.u32();
    dest.asn = in.u32();
    dest.as_type = in.u8();
    dest.ping_responsive = in.u8();
    dataset.destinations.push_back(dest);
  }
  const std::size_t cells =
      static_cast<std::size_t>(n_vps) * static_cast<std::size_t>(n_dests);
  dataset.observations.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    measure::RrObservation obs;
    obs.flags = in.u8();
    obs.stamp_count = in.u8();
    obs.dest_slot = in.u8();
    obs.free_slots = in.u8();
    dataset.observations.push_back(obs);
  }
  // Only the optional alignment pad may remain.
  if (!in.ok() || in.remaining() > 1) return std::nullopt;
  if (in.remaining() == 1 && in.u8() != 0) return std::nullopt;
  return dataset;
}

bool CampaignDataset::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  TrailerState trailer;
  emit_body(*this, [&](std::span<const std::uint8_t> chunk) {
    trailer.feed(chunk);
    out.write(reinterpret_cast<const char*>(chunk.data()),
              static_cast<std::streamsize>(chunk.size()));
  });
  const auto tail = trailer.trailer();
  out.write(reinterpret_cast<const char*>(tail.data()),
            static_cast<std::streamsize>(trailer.trailer_size()));
  return static_cast<bool>(out);
}

std::optional<CampaignDataset> CampaignDataset::load(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const auto size = in.tellg();
  if (size <= 0) return std::nullopt;
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) return std::nullopt;
  return parse(bytes);
}

bool CampaignDataset::rr_responsive(std::size_t dest) const noexcept {
  for (std::size_t v = 0; v < vps.size(); ++v) {
    if (at(v, dest).rr_responsive()) return true;
  }
  return false;
}

bool CampaignDataset::rr_reachable(std::size_t dest) const noexcept {
  for (std::size_t v = 0; v < vps.size(); ++v) {
    if (at(v, dest).rr_reachable()) return true;
  }
  return false;
}

int CampaignDataset::min_rr_distance(std::size_t dest) const noexcept {
  int best = 0;
  for (std::size_t v = 0; v < vps.size(); ++v) {
    const auto& obs = at(v, dest);
    if (!obs.rr_reachable()) continue;
    if (best == 0 || obs.dest_slot < best) best = obs.dest_slot;
  }
  return best;
}

measure::ResponseTable CampaignDataset::response_table() const {
  measure::ResponseTable table;
  struct AsAgg {
    std::uint8_t type = 0;
    bool ping = false;
    bool rr = false;
  };
  std::unordered_map<std::uint32_t, AsAgg> per_as;

  for (std::size_t d = 0; d < destinations.size(); ++d) {
    const auto& dest = destinations[d];
    const std::size_t type_index = 1 + dest.as_type;
    const bool ping = dest.ping_responsive != 0;
    const bool rr = rr_responsive(d);
    for (const std::size_t idx : {std::size_t{0}, type_index}) {
      ++table.by_ip[idx].probed;
      if (ping) ++table.by_ip[idx].ping_responsive;
      if (rr) ++table.by_ip[idx].rr_responsive;
    }
    AsAgg& agg = per_as[dest.asn];
    agg.type = dest.as_type;
    agg.ping = agg.ping || ping;
    agg.rr = agg.rr || rr;
  }
  for (const auto& [asn, agg] : per_as) {
    const std::size_t type_index = 1 + agg.type;
    for (const std::size_t idx : {std::size_t{0}, type_index}) {
      ++table.by_as[idx].probed;
      if (agg.ping) ++table.by_as[idx].ping_responsive;
      if (agg.rr) ++table.by_as[idx].rr_responsive;
    }
  }
  return table;
}

}  // namespace rr::data
