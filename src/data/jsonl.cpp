#include "data/jsonl.h"

#include <cstdio>
#include <ostream>

namespace rr::data {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c) & 0xff);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonObject::JsonObject(std::ostream& out) : out_(&out) { *out_ << '{'; }

JsonObject::~JsonObject() { close(); }

void JsonObject::close() {
  if (closed_) return;
  closed_ = true;
  *out_ << '}';
}

void JsonObject::key_prefix(std::string_view key) {
  if (!first_) *out_ << ',';
  first_ = false;
  *out_ << '"' << json_escape(key) << "\":";
}

JsonObject& JsonObject::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  *out_ << '"' << json_escape(value) << '"';
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, const char* value) {
  return field(key, std::string_view{value});
}

JsonObject& JsonObject::field(std::string_view key, std::int64_t value) {
  key_prefix(key);
  *out_ << value;
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  *out_ << value;
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, int value) {
  return field(key, static_cast<std::int64_t>(value));
}

JsonObject& JsonObject::field(std::string_view key, double value) {
  key_prefix(key);
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  *out_ << buffer;
  return *this;
}

JsonObject& JsonObject::field(std::string_view key, bool value) {
  key_prefix(key);
  *out_ << (value ? "true" : "false");
  return *this;
}

JsonObject& JsonObject::field(
    std::string_view key, const std::vector<net::IPv4Address>& addresses) {
  key_prefix(key);
  *out_ << '[';
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << '"' << addresses[i].to_string() << '"';
  }
  *out_ << ']';
  return *this;
}

void write_probe_line(std::ostream& out, const probe::ProbeResult& result,
                      std::string_view vantage_point) {
  {
    JsonObject object(out);
    if (!vantage_point.empty()) object.field("vp", vantage_point);
    object.field("type", to_string(result.type));
    object.field("dst", result.target.to_string());
    object.field("result", to_string(result.kind));
    if (result.responded()) {
      object.field("from", result.responder.to_string());
      object.field("rtt_ms", result.rtt * 1e3);
      object.field("ipid", std::uint64_t{result.reply_ip_id});
    }
    if (result.rr_option_in_reply) {
      object.field("rr", result.rr_recorded);
      object.field("rr_free", result.rr_free_slots);
    }
    if (result.quoted_rr_present) {
      object.field("quoted_rr", result.quoted_rr);
      object.field("quoted_rr_free", result.quoted_rr_free_slots);
    }
    object.field("tx", result.send_time);
  }
  out << '\n';
}

void write_probe_log(std::ostream& out,
                     std::span<const probe::ProbeResult> results,
                     std::string_view vantage_point) {
  for (const auto& result : results) {
    write_probe_line(out, result, vantage_point);
  }
}

void write_figure_jsonl(std::ostream& out,
                        const analysis::FigureData& figure) {
  for (const auto& series : figure.series()) {
    for (const auto& [x, y] : series.points) {
      {
        JsonObject object(out);
        object.field("series", series.label);
        object.field("x", x);
        object.field("y", y);
      }
      out << '\n';
    }
  }
}

}  // namespace rr::data
