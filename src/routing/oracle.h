// RoutingOracle: efficient AS-path answers for a measurement study.
//
// A study has a small, known set of *source* ASes (vantage points, the
// probe host, cloud providers) probing every destination AS, plus reverse
// paths from arbitrary ASes back to those sources. The oracle therefore:
//
//  * precomputes, for every destination AS, the forward path from each
//    source AS (one route-tree sweep over all destinations, with the paths
//    stored compactly in an arena);
//  * pins the route trees *toward* each source AS, so reverse paths from
//    any AS back to a source are a cheap pointer walk;
//  * falls back to a FIFO cache of freshly computed trees for anything else.
//
// Forward/reverse asymmetry comes for free: the two directions consult
// different trees.
//
// Construction parallelism: the destination sweep dominates world build
// time, and each destination's tree is independent, so the sweep fans
// destination blocks across a util::ThreadPool. Every worker fills a
// per-block arena through a per-thread TreeScratch; the blocks are then
// concatenated serially in destination order, which makes the final arena
// (and therefore every path answer) byte-identical to a serial build at
// any thread count.
//
// Concurrency: after construction the precomputed arrays and pinned trees
// are immutable, so source-origin and source-destined queries are safe from
// any number of threads. Only the fallback cache mutates post-construction;
// it is guarded by a mutex (fallback queries are rare — campaign traffic
// never takes that path).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "routing/bgp.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace rr::route {

class RoutingOracle {
 public:
  /// `source_ases` are the ASes probes originate from (deduplicated
  /// internally). Precomputation runs one tree per destination AS, fanned
  /// across `threads` workers (resolved like util::resolve_thread_count;
  /// results are identical at any value).
  RoutingOracle(std::shared_ptr<const topo::Topology> topology, Epoch epoch,
                std::vector<AsId> source_ases, int threads = 0);

  [[nodiscard]] const BgpEngine& engine() const noexcept { return engine_; }
  [[nodiscard]] Epoch epoch() const noexcept { return engine_.epoch(); }

  /// AS path from `src` to `dst`, inclusive; empty if unreachable.
  /// O(1)+path-length for source-origin or source-destined queries;
  /// falls back to tree computation (FIFO-cached) otherwise.
  [[nodiscard]] std::vector<AsId> as_path(AsId src, AsId dst);

  /// Copy-free variant: the returned span aliases the immutable path arena
  /// for source-origin queries (the hot case — `storage` is not touched),
  /// and otherwise points into `storage`, which is filled reusing its
  /// capacity. The arena-backed span stays valid for the oracle's
  /// lifetime; a storage-backed span is valid until `storage` changes.
  [[nodiscard]] std::span<const AsId> path_view(AsId src, AsId dst,
                                                std::vector<AsId>& storage);

  /// True if `src` can reach `dst` at all under policy routing.
  [[nodiscard]] bool reachable(AsId src, AsId dst);

 private:
  /// Fills `out` with the fallback path (the tree reference cannot outlive
  /// the cache lock, so the lookup happens under it).
  void fallback_path_into(AsId src, AsId dst, std::vector<AsId>& out)
      RROPT_EXCLUDES(fallback_mu_);

  static constexpr std::uint32_t kNotSource = 0xffff'ffffu;

  BgpEngine engine_;
  std::vector<AsId> sources_;  // sorted, unique
  /// AsId -> index into sources_, kNotSource otherwise. Flat (one slot per
  /// AS) rather than a hash map: path_view consults it once per campaign
  /// path resolution, and an indexed load beats a hashtable probe on that
  /// scale (~10M queries per census).
  std::vector<std::uint32_t> source_slot_;

  // Forward paths: arena[offsets[source_idx * num_as + dst]] .. length-
  // prefixed sequences. Offset of 0 means "unreachable" (arena slot 0 is a
  // sentinel).
  std::vector<std::uint32_t> forward_offsets_;
  std::vector<AsId> arena_;

  // Pinned trees toward each source AS (for reverse paths), indexed by the
  // destination AS (null for non-sources — same flat-beats-hash reasoning
  // as source_slot_).
  std::vector<std::unique_ptr<RouteTree>> pinned_;

  // Small FIFO cache for everything else, guarded for concurrent callers.
  // Eviction replaces the slot at `fallback_evict_at_` and advances it (a
  // ring), the same idiom as PathCache::Shard — never an O(n) pop-front.
  static constexpr std::size_t kFallbackCacheSize = 64;
  util::Mutex fallback_mu_;
  std::unordered_map<AsId, std::unique_ptr<RouteTree>> fallback_
      RROPT_GUARDED_BY(fallback_mu_);
  std::vector<AsId> fallback_order_ RROPT_GUARDED_BY(fallback_mu_);
  std::size_t fallback_evict_at_ RROPT_GUARDED_BY(fallback_mu_) = 0;
};

}  // namespace rr::route
