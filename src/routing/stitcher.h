// Router-level path stitching.
//
// The BGP layer answers "which ASes does this packet traverse?"; the
// stitcher expands that into the ordered list of routers, together with the
// two addresses that matter to the measurement tools:
//
//  * `ingress`: the interface upstream hops identify the router by — what a
//    traceroute from the packet's source sees;
//  * `egress`: the outgoing interface, which is what the router writes into
//    a Record Route slot (RFC 791). The RR/traceroute address mismatch the
//    literature documents falls out of this distinction.
//
// Forward and reverse paths are stitched independently against the per-
// direction route trees, so reply packets generally take a different router
// path than the probe did.
//
// A stitcher holds no per-call state, so one instance may be shared by
// concurrent callers as long as the oracle it wraps is itself safe for
// concurrent queries (RoutingOracle is). Repeated stitches of the same
// endpoint pair should go through route::PathCache instead of re-deriving
// the hops each time.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "routing/oracle.h"
#include "topology/topology.h"

namespace rr::route {

using topo::HostId;
using topo::RouterId;

struct PathHop {
  RouterId router = topo::kNoRouter;
  net::IPv4Address ingress;
  net::IPv4Address egress;
};

class PathStitcher {
 public:
  PathStitcher(std::shared_ptr<const topo::Topology> topology,
               RoutingOracle& oracle)
      : topology_(std::move(topology)), oracle_(&oracle) {}

  /// Stitches the router path from `src` to `dst` (hosts excluded) into
  /// `out`. Returns false when BGP has no route.
  bool host_path(HostId src, HostId dst, std::vector<PathHop>& out);

  /// Path from a mid-network router toward a host (used for ICMP errors
  /// generated in transit). The originating router itself is excluded.
  bool router_path(RouterId src, HostId dst, std::vector<PathHop>& out);

  /// Path from a host to a router interface (used when probing router
  /// addresses directly, e.g. for alias resolution). The target router is
  /// the final element of `out`.
  bool host_to_router_path(HostId src, RouterId dst,
                           std::vector<PathHop>& out);

  /// Convenience allocating wrappers.
  [[nodiscard]] std::optional<std::vector<PathHop>> host_path(HostId src,
                                                              HostId dst);

  /// Salt tags for the per-host endpoint interface picks inside
  /// derive_addresses(). Exposed (with pick_interface) so the compiled
  /// forwarding plane (routing/fib.h) can re-derive the one host-dependent
  /// address of a shared path spine bit-identically.
  static constexpr std::uint64_t kSrcHostSaltTag = 0x9000000000000000ULL;
  static constexpr std::uint64_t kDstSaltTag = 0xd000000000000000ULL;

  /// Deterministic non-loopback interface pick for a router, used for
  /// intra-AS adjacency and the path endpoints.
  [[nodiscard]] static net::IPv4Address pick_interface(
      const topo::Topology& topology, RouterId router, std::uint64_t salt);

  [[nodiscard]] const topo::Topology& topology() const noexcept {
    return *topology_;
  }
  [[nodiscard]] RoutingOracle& oracle() noexcept { return *oracle_; }

 private:
  /// Appends the routers strictly between `from` and `to` inside one AS
  /// (a deterministic selection of the AS's core routers).
  void append_intra(topo::AsId as, RouterId from, RouterId to,
                    std::vector<RouterId>& seq) const;

  /// Assembles the router id sequence; returns false if unroutable.
  /// Exactly one of src_host/src_router and one of dst_host/dst_router
  /// must be set.
  bool assemble(std::optional<HostId> src_host,
                std::optional<RouterId> src_router,
                std::optional<HostId> dst_host,
                std::optional<RouterId> dst_router,
                std::vector<RouterId>& seq);

  /// Converts a router sequence into hops with ingress/egress addresses.
  void derive_addresses(const std::vector<RouterId>& seq, std::uint64_t
                        dst_salt, std::optional<HostId> src,
                        std::vector<PathHop>& out) const;

  [[nodiscard]] net::IPv4Address pick_interface(RouterId router,
                                                std::uint64_t salt) const {
    return pick_interface(*topology_, router, salt);
  }

  std::shared_ptr<const topo::Topology> topology_;
  RoutingOracle* oracle_;
};

}  // namespace rr::route
