#include "routing/path_cache.h"

#include <cassert>

#include "util/rng.h"

namespace rr::route {

PathCache::PathCache(PathStitcher stitcher, std::size_t max_entries)
    : stitcher_(std::move(stitcher)),
      max_per_shard_(max_entries == 0 ? 0
                                      : (max_entries + kShards - 1) / kShards),
      shards_(kShards) {}

PathCache::EntryPtr PathCache::lookup(Kind kind, std::uint64_t src,
                                      std::uint64_t dst) {
  // Ids are dense and far below 2^30, so the triple packs losslessly; if a
  // future topology ever breaks that, fail loudly instead of silently
  // aliasing two pairs onto one key and routing along the wrong path.
  assert(src < (std::uint64_t{1} << 30) && dst < (std::uint64_t{1} << 30) &&
         "PathCache key packing requires ids below 2^30");
  const std::uint64_t key = (static_cast<std::uint64_t>(kind) << 60) |
                            (src << 30) | dst;
  Shard& shard = shards_[util::mix64(key) % kShards];

  {
    util::MutexLock lock(shard.mu);
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  auto entry = std::make_shared<Entry>();
  switch (kind) {
    case Kind::kHostHost:
      entry->routable = stitcher_.host_path(static_cast<HostId>(src),
                                            static_cast<HostId>(dst),
                                            entry->hops);
      break;
    case Kind::kRouterHost:
      entry->routable = stitcher_.router_path(static_cast<RouterId>(src),
                                              static_cast<HostId>(dst),
                                              entry->hops);
      break;
    case Kind::kHostRouter:
      entry->routable = stitcher_.host_to_router_path(
          static_cast<HostId>(src), static_cast<RouterId>(dst), entry->hops);
      break;
  }
  if (!entry->routable) entry->hops.clear();

  util::MutexLock lock(shard.mu);
  const auto [it, inserted] = shard.map.emplace(key, entry);
  if (!inserted) return it->second;  // another thread computed it first
  if (max_per_shard_ > 0) {
    if (shard.order.size() < max_per_shard_) {
      shard.order.push_back(key);
    } else {
      shard.map.erase(shard.order[shard.evict_at]);
      shard.order[shard.evict_at] = key;
      shard.evict_at = (shard.evict_at + 1) % shard.order.size();
    }
  }
  return entry;
}

PathCache::EntryPtr PathCache::host_path(HostId src, HostId dst) {
  return lookup(Kind::kHostHost, src, dst);
}

PathCache::EntryPtr PathCache::router_path(RouterId src, HostId dst) {
  return lookup(Kind::kRouterHost, src, dst);
}

PathCache::EntryPtr PathCache::host_to_router_path(HostId src, RouterId dst) {
  return lookup(Kind::kHostRouter, src, dst);
}

void PathCache::clear() {
  for (auto& shard : shards_) {
    util::MutexLock lock(shard.mu);
    shard.map.clear();
    shard.order.clear();
    shard.evict_at = 0;
  }
}

}  // namespace rr::route
