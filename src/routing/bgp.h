// Valley-free (Gao-Rexford) BGP route computation over the AS graph.
//
// Routes follow standard policy preferences: customer-learned routes beat
// peer-learned routes beat provider-learned routes; within a class, shorter
// AS paths win; remaining ties break to the lowest neighbour id so that
// route selection is deterministic.
//
// A RouteTree holds, for one destination AS, every other AS's selected
// next hop toward it — the simulated analogue of "what the BGP tables say
// about reaching this prefix".
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "topology/topology.h"

namespace rr::route {

using topo::AsId;
using topo::Epoch;

enum class RouteClass : std::uint8_t {
  kSelf = 0,      // the destination AS itself
  kCustomer = 1,  // learned from a customer
  kPeer = 2,      // learned from a peer
  kProvider = 3,  // learned from a provider
  kNone = 4,      // unreachable
};

struct RouteEntry {
  AsId next_hop = topo::kNoAs;
  std::uint16_t length = std::numeric_limits<std::uint16_t>::max();
  RouteClass route_class = RouteClass::kNone;

  [[nodiscard]] bool reachable() const noexcept {
    return route_class != RouteClass::kNone;
  }
};

/// All ASes' selected routes toward one destination AS.
class RouteTree {
 public:
  RouteTree(AsId destination, std::vector<RouteEntry> entries)
      : destination_(destination), entries_(std::move(entries)) {}

  [[nodiscard]] AsId destination() const noexcept { return destination_; }
  [[nodiscard]] const RouteEntry& entry(AsId as) const noexcept {
    return entries_[as];
  }
  [[nodiscard]] bool reachable_from(AsId as) const noexcept {
    return entries_[as].reachable();
  }

  /// AS path from `src` to the destination, inclusive on both ends.
  /// Empty when unreachable.
  [[nodiscard]] std::vector<AsId> as_path_from(AsId src) const {
    std::vector<AsId> path;
    as_path_into(src, path);
    return path;
  }

  /// Same, but fills a caller-owned vector (cleared first) so repeated
  /// queries reuse its storage. `out` is empty when unreachable.
  void as_path_into(AsId src, std::vector<AsId>& out) const;

  /// Takes the entries storage back out (leaving the tree empty). Sweep
  /// loops use this to recycle the vector through their TreeScratch.
  [[nodiscard]] std::vector<RouteEntry> release_entries() noexcept {
    return std::move(entries_);
  }

 private:
  AsId destination_;
  std::vector<RouteEntry> entries_;
};

/// Reusable working set for compute_tree_into: one tree computation's
/// entries, BFS state and heap, recycled across calls so a sweep over many
/// destinations allocates only while the vectors are still growing.
struct TreeScratch {
  std::vector<RouteEntry> entries;
  std::vector<std::uint16_t> customer_dist;
  std::vector<AsId> frontier;
  std::vector<AsId> next_frontier;
  std::vector<std::tuple<std::uint16_t, AsId, AsId>> heap;  // len, parent, as
};

/// Per-epoch BGP engine: owns the epoch-filtered adjacency and computes
/// route trees.
class BgpEngine {
 public:
  BgpEngine(std::shared_ptr<const topo::Topology> topology, Epoch epoch);

  [[nodiscard]] Epoch epoch() const noexcept { return epoch_; }
  [[nodiscard]] const topo::Topology& topology() const noexcept {
    return *topology_;
  }

  /// Computes the full route tree toward `destination` (uncached).
  [[nodiscard]] RouteTree compute_tree(AsId destination) const;

  /// Same computation into a reusable scratch: the selected routes land in
  /// `scratch.entries` (indexed by AS) and every working vector keeps its
  /// storage for the next call. The route selection — including every
  /// tie-break — is identical to compute_tree: the Dijkstra phase drives
  /// push_heap/pop_heap over the scratch vector, which is exactly how
  /// std::priority_queue orders its pops.
  void compute_tree_into(AsId destination, TreeScratch& scratch) const;

  /// Epoch-filtered adjacency, exposed for diagnostics/tests.
  [[nodiscard]] const std::vector<AsId>& customers_of(AsId as) const noexcept {
    return customers_[as];
  }
  [[nodiscard]] const std::vector<AsId>& providers_of(AsId as) const noexcept {
    return providers_[as];
  }
  [[nodiscard]] const std::vector<AsId>& peers_of(AsId as) const noexcept {
    return peers_[as];
  }

 private:
  std::shared_ptr<const topo::Topology> topology_;
  Epoch epoch_;
  std::vector<std::vector<AsId>> customers_;  // as -> its customers
  std::vector<std::vector<AsId>> providers_;  // as -> its providers
  std::vector<std::vector<AsId>> peers_;      // as -> its peers
};

}  // namespace rr::route
