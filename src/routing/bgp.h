// Valley-free (Gao-Rexford) BGP route computation over the AS graph.
//
// Routes follow standard policy preferences: customer-learned routes beat
// peer-learned routes beat provider-learned routes; within a class, shorter
// AS paths win; remaining ties break to the lowest neighbour id so that
// route selection is deterministic.
//
// A RouteTree holds, for one destination AS, every other AS's selected
// next hop toward it — the simulated analogue of "what the BGP tables say
// about reaching this prefix".
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "topology/topology.h"

namespace rr::route {

using topo::AsId;
using topo::Epoch;

enum class RouteClass : std::uint8_t {
  kSelf = 0,      // the destination AS itself
  kCustomer = 1,  // learned from a customer
  kPeer = 2,      // learned from a peer
  kProvider = 3,  // learned from a provider
  kNone = 4,      // unreachable
};

struct RouteEntry {
  AsId next_hop = topo::kNoAs;
  std::uint16_t length = std::numeric_limits<std::uint16_t>::max();
  RouteClass route_class = RouteClass::kNone;

  [[nodiscard]] bool reachable() const noexcept {
    return route_class != RouteClass::kNone;
  }
};

/// All ASes' selected routes toward one destination AS.
class RouteTree {
 public:
  RouteTree(AsId destination, std::vector<RouteEntry> entries)
      : destination_(destination), entries_(std::move(entries)) {}

  [[nodiscard]] AsId destination() const noexcept { return destination_; }
  [[nodiscard]] const RouteEntry& entry(AsId as) const noexcept {
    return entries_[as];
  }
  [[nodiscard]] bool reachable_from(AsId as) const noexcept {
    return entries_[as].reachable();
  }

  /// AS path from `src` to the destination, inclusive on both ends.
  /// Empty when unreachable.
  [[nodiscard]] std::vector<AsId> as_path_from(AsId src) const {
    std::vector<AsId> path;
    as_path_into(src, path);
    return path;
  }

  /// Same, but fills a caller-owned vector (cleared first) so repeated
  /// queries reuse its storage. `out` is empty when unreachable.
  void as_path_into(AsId src, std::vector<AsId>& out) const;

  /// Takes the entries storage back out (leaving the tree empty). Sweep
  /// loops use this to recycle the vector through their TreeScratch.
  [[nodiscard]] std::vector<RouteEntry> release_entries() noexcept {
    return std::move(entries_);
  }

 private:
  AsId destination_;
  std::vector<RouteEntry> entries_;
};

/// Reusable working set for compute_tree_into: one tree computation's
/// entries, BFS state and the Dijkstra bucket queue, recycled across calls
/// so a sweep over many destinations allocates only while the vectors are
/// still growing.
struct TreeScratch {
  std::vector<RouteEntry> entries;
  std::vector<std::uint16_t> customer_dist;
  std::vector<AsId> frontier;
  std::vector<AsId> next_frontier;
  /// Dial buckets for the provider-route phase: buckets[len] holds the
  /// (parent, as) relaxations pending at path length `len`. Inner vectors
  /// keep their capacity across trees.
  std::vector<std::vector<std::pair<AsId, AsId>>> buckets;
};

/// Per-epoch BGP engine: owns the epoch-filtered adjacency and computes
/// route trees.
///
/// Adjacency lives in three CSR (offset + flat id) tables rather than
/// vector-of-vectors: one cache-resident array per relation makes the
/// per-tree sweeps — which touch every edge of the graph — sequential
/// scans. Per-AS neighbour order is unchanged (sorted ascending), so every
/// deterministic tie-break below is unchanged too.
class BgpEngine {
 public:
  BgpEngine(std::shared_ptr<const topo::Topology> topology, Epoch epoch);

  [[nodiscard]] Epoch epoch() const noexcept { return epoch_; }
  [[nodiscard]] const topo::Topology& topology() const noexcept {
    return *topology_;
  }

  /// Computes the full route tree toward `destination` (uncached).
  [[nodiscard]] RouteTree compute_tree(AsId destination) const;

  /// Same computation into a reusable scratch: the selected routes land in
  /// `scratch.entries` (indexed by AS) and every working vector keeps its
  /// storage for the next call. The route selection — including every
  /// tie-break — is identical to compute_tree: the provider phase settles
  /// relaxations in exactly the (length, parent, as) order the heap-based
  /// Dijkstra popped them (see the equivalence note in bgp.cpp).
  void compute_tree_into(AsId destination, TreeScratch& scratch) const;

  /// Epoch-filtered adjacency, exposed for diagnostics/tests. Each span is
  /// the AS's neighbour list sorted ascending.
  [[nodiscard]] std::span<const AsId> customers_of(AsId as) const noexcept {
    return customers_.neighbors(as);
  }
  [[nodiscard]] std::span<const AsId> providers_of(AsId as) const noexcept {
    return providers_.neighbors(as);
  }
  [[nodiscard]] std::span<const AsId> peers_of(AsId as) const noexcept {
    return peers_.neighbors(as);
  }

 private:
  /// One relation's adjacency in compressed sparse row form.
  struct Csr {
    std::vector<std::uint32_t> offsets;  // size n+1
    std::vector<AsId> flat;              // concatenated neighbour lists

    [[nodiscard]] std::span<const AsId> neighbors(AsId as) const noexcept {
      return {flat.data() + offsets[as],
              flat.data() + offsets[static_cast<std::size_t>(as) + 1]};
    }
  };

  std::shared_ptr<const topo::Topology> topology_;
  Epoch epoch_;
  Csr customers_;  // as -> its customers
  Csr providers_;  // as -> its providers
  Csr peers_;      // as -> its peers
};

}  // namespace rr::route
