// A thread-safe router-level path cache in front of PathStitcher.
//
// Stitching a (source, destination) pair walks the AS path, the intra-AS
// cores and the access chains, and derives per-hop ingress/egress
// addresses — a few microseconds that the measurement layer used to pay on
// *every* packet. Campaign traffic reuses pairs heavily (three plain pings
// per destination, a forward stitch per probe and a reverse stitch per
// reply, traceroutes re-stitching the same pair once per TTL), so the
// cache computes each directed pair once and hands out shared immutable
// hop lists after that.
//
// Concurrency: lookups take one shard mutex (64 shards, keyed by endpoint
// pair); entries are shared_ptr-owned so a returned path stays valid even
// if the entry is evicted by another thread. Capacity is bounded per shard
// with FIFO eviction — at campaign scale the working set is the (VP x
// destination) pair set of the current probe window, which FIFO tracks
// well because probing is stream-ordered.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "routing/stitcher.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace rr::route {

class PathCache {
 public:
  /// `max_entries` bounds the total cached paths (0 = unbounded).
  explicit PathCache(PathStitcher stitcher, std::size_t max_entries = 1 << 18);

  /// Cached equivalents of the PathStitcher calls. The returned pointer is
  /// never null; `(*result)->routable` is false when BGP has no route, and
  /// `hops` is then empty.
  struct Entry {
    bool routable = false;
    std::vector<PathHop> hops;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  [[nodiscard]] EntryPtr host_path(HostId src, HostId dst);
  [[nodiscard]] EntryPtr router_path(RouterId src, HostId dst);
  [[nodiscard]] EntryPtr host_to_router_path(HostId src, RouterId dst);

  /// Drops every cached path (behaviour/topology never change under a
  /// running network, so this exists for tests and memory pressure only).
  void clear();

  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  enum class Kind : std::uint64_t { kHostHost = 1, kRouterHost = 2,
                                    kHostRouter = 3 };

  [[nodiscard]] EntryPtr lookup(Kind kind, std::uint64_t src,
                                std::uint64_t dst);

  static constexpr std::size_t kShards = 64;
  struct Shard {
    util::Mutex mu;
    std::unordered_map<std::uint64_t, EntryPtr> map RROPT_GUARDED_BY(mu);
    std::vector<std::uint64_t> order
        RROPT_GUARDED_BY(mu);  // FIFO eviction ring
    std::size_t evict_at RROPT_GUARDED_BY(mu) = 0;
  };

  PathStitcher stitcher_;
  std::size_t max_per_shard_;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace rr::route
