#include "routing/fib.h"

#include <cassert>

namespace rr::route {

std::shared_ptr<const CompiledFib> CompiledFib::build(
    PathStitcher& stitcher, std::span<const HostId> sources,
    std::span<const HostId> dests) {
  std::shared_ptr<CompiledFib> fib{new CompiledFib};
  const topo::Topology& topo = stitcher.topology();
  fib->topology_ = &topo;
  fib->source_slot_.assign(topo.hosts().size(), kNoSlot);
  fib->ar_slot_.assign(topo.routers().size(), kNoSlot);

  // Columns: one per distinct destination access router, represented by
  // the first destination that uses it. The spine-identity argument needs
  // every host behind a column to share the representative's AS; the
  // generator guarantees that, but a mismatched column is demoted to
  // kMiss (PathCache fallback) rather than trusted.
  std::vector<HostId> reps;
  std::vector<RouterId> column_ar;
  std::vector<std::uint8_t> poisoned;
  for (const HostId d : dests) {
    const topo::Host& host = topo.host_at(d);
    std::uint32_t& slot = fib->ar_slot_[host.access_router];
    if (slot == kNoSlot) {
      slot = static_cast<std::uint32_t>(reps.size());
      reps.push_back(d);
      column_ar.push_back(host.access_router);
      poisoned.push_back(0);
    } else if (topo.host_at(reps[slot]).as_id != host.as_id) {
      poisoned[slot] = 1;
    }
  }
  for (std::size_t c = 0; c < reps.size(); ++c) {
    if (poisoned[c]) fib->ar_slot_[column_ar[c]] = kNoSlot;
  }

  std::vector<HostId> rows;
  for (const HostId s : sources) {
    if (fib->source_slot_[s] != kNoSlot) continue;
    fib->source_slot_[s] = static_cast<std::uint32_t>(rows.size());
    rows.push_back(s);
  }

  fib->columns_ = reps.size();
  fib->pairs_.assign(rows.size() * reps.size(), SpinePair{});
  std::vector<PathHop> hops;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < reps.size(); ++c) {
      SpinePair& pair = fib->pairs_[r * fib->columns_ + c];
      if (stitcher.host_path(rows[r], reps[c], hops)) {
        assert(hops.size() < 0x10000);
        pair.fwd_off = static_cast<std::uint32_t>(fib->arena_.size());
        pair.fwd_len = static_cast<std::uint16_t>(hops.size());
        pair.flags |= kFwdRoutable;
        fib->arena_.insert(fib->arena_.end(), hops.begin(), hops.end());
      }
      if (stitcher.host_path(reps[c], rows[r], hops)) {
        assert(hops.size() < 0x10000);
        pair.rev_off = static_cast<std::uint32_t>(fib->arena_.size());
        pair.rev_len = static_cast<std::uint16_t>(hops.size());
        pair.flags |= kRevRoutable;
        fib->arena_.insert(fib->arena_.end(), hops.begin(), hops.end());
      }
    }
  }
  return fib;
}

CompiledFib::Lookup CompiledFib::forward(HostId src, HostId dst,
                                         std::vector<PathHop>& out) const {
  const std::uint32_t row = source_slot_[src];
  if (row == kNoSlot) return Lookup::kMiss;
  const std::uint32_t col =
      ar_slot_[topology_->host_at(dst).access_router];
  if (col == kNoSlot) return Lookup::kMiss;
  const SpinePair& pair = pairs_[row * columns_ + col];
  if (!(pair.flags & kFwdRoutable)) return Lookup::kUnroutable;
  out.assign(arena_.begin() + pair.fwd_off,
             arena_.begin() + pair.fwd_off + pair.fwd_len);
  // The spine was stitched toward the column's representative host; only
  // the final egress pick depends on the actual destination.
  out.back().egress = PathStitcher::pick_interface(
      *topology_, out.back().router, PathStitcher::kDstSaltTag | dst);
  return Lookup::kHit;
}

CompiledFib::Lookup CompiledFib::reverse(HostId dst, HostId reply_to,
                                         std::vector<PathHop>& out) const {
  const std::uint32_t row = source_slot_[reply_to];
  if (row == kNoSlot) return Lookup::kMiss;
  const std::uint32_t col =
      ar_slot_[topology_->host_at(dst).access_router];
  if (col == kNoSlot) return Lookup::kMiss;
  const SpinePair& pair = pairs_[row * columns_ + col];
  if (!(pair.flags & kRevRoutable)) return Lookup::kUnroutable;
  out.assign(arena_.begin() + pair.rev_off,
             arena_.begin() + pair.rev_off + pair.rev_len);
  // Mirror image of forward(): the reply's source host picks the first
  // hop's ingress.
  out.front().ingress = PathStitcher::pick_interface(
      *topology_, out.front().router, PathStitcher::kSrcHostSaltTag | dst);
  return Lookup::kHit;
}

}  // namespace rr::route
