#include "routing/oracle.h"

#include <algorithm>

#include "util/log.h"

namespace rr::route {

RoutingOracle::RoutingOracle(std::shared_ptr<const topo::Topology> topology,
                             Epoch epoch, std::vector<AsId> source_ases)
    : engine_(std::move(topology), epoch), sources_(std::move(source_ases)) {
  std::sort(sources_.begin(), sources_.end());
  sources_.erase(std::unique(sources_.begin(), sources_.end()),
                 sources_.end());
  for (std::uint32_t i = 0; i < sources_.size(); ++i) {
    source_index_.emplace(sources_[i], i);
  }

  const std::size_t n = engine_.topology().ases().size();
  forward_offsets_.assign(sources_.size() * n, 0);
  arena_.push_back(topo::kNoAs);  // slot 0 = unreachable sentinel

  // Pin the trees toward each source (reverse-path service).
  for (AsId src : sources_) {
    pinned_.emplace(src,
                    std::make_unique<RouteTree>(engine_.compute_tree(src)));
  }

  // One sweep: a tree per destination AS, extracting each source's path.
  for (AsId dst = 0; dst < n; ++dst) {
    const RouteTree tree = engine_.compute_tree(dst);
    for (std::uint32_t si = 0; si < sources_.size(); ++si) {
      const auto path = tree.as_path_from(sources_[si]);
      if (path.empty()) continue;
      forward_offsets_[si * n + dst] =
          static_cast<std::uint32_t>(arena_.size());
      arena_.push_back(static_cast<AsId>(path.size()));
      arena_.insert(arena_.end(), path.begin(), path.end());
    }
  }
  util::log_debug() << "routing oracle: " << sources_.size() << " sources, "
                    << n << " destination trees, arena "
                    << arena_.size() * sizeof(AsId) / 1024 << " KiB";
}

std::vector<AsId> RoutingOracle::as_path(AsId src, AsId dst) {
  if (src == dst) return {src};

  if (const auto it = source_index_.find(src); it != source_index_.end()) {
    const std::size_t n = engine_.topology().ases().size();
    const std::uint32_t offset = forward_offsets_[it->second * n + dst];
    if (offset == 0) return {};
    const AsId length = arena_[offset];
    return {arena_.begin() + offset + 1,
            arena_.begin() + offset + 1 + length};
  }

  if (const auto it = pinned_.find(dst); it != pinned_.end()) {
    return it->second->as_path_from(src);
  }

  return fallback_path(src, dst);
}

bool RoutingOracle::reachable(AsId src, AsId dst) {
  return src == dst || !as_path(src, dst).empty();
}

std::vector<AsId> RoutingOracle::fallback_path(AsId src, AsId dst) {
  std::lock_guard<std::mutex> lock(fallback_mu_);
  if (const auto it = fallback_.find(dst); it != fallback_.end()) {
    return it->second->as_path_from(src);
  }
  if (fallback_order_.size() >= kFallbackCacheSize) {
    fallback_.erase(fallback_order_.front());
    fallback_order_.erase(fallback_order_.begin());
  }
  auto tree = std::make_unique<RouteTree>(engine_.compute_tree(dst));
  const RouteTree& ref = *tree;
  fallback_.emplace(dst, std::move(tree));
  fallback_order_.push_back(dst);
  return ref.as_path_from(src);
}

}  // namespace rr::route
