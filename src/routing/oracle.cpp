#include "routing/oracle.h"

#include <algorithm>

#include "util/log.h"
#include "util/thread_pool.h"

namespace rr::route {

namespace {

/// Per-thread tree-computation scratch for the construction sweep. Reused
/// across every block a worker processes (and across oracle builds on the
/// same thread), so the sweep's steady state allocates only for results.
TreeScratch& thread_scratch() {
  thread_local TreeScratch scratch;
  return scratch;
}

constexpr std::size_t kSweepBlock = 256;  // destinations per work item

/// One block's share of the destination sweep: a mini-arena laid out in
/// the same (destination, source) order the serial sweep uses, plus
/// per-(source, destination) offsets into it (+1, so 0 = unreachable).
struct SweepBlock {
  std::vector<AsId> arena;
  std::vector<std::uint32_t> rel_offsets;  // si * block_size + (dst - begin)
};

}  // namespace

RoutingOracle::RoutingOracle(std::shared_ptr<const topo::Topology> topology,
                             Epoch epoch, std::vector<AsId> source_ases,
                             int threads)
    : engine_(std::move(topology), epoch), sources_(std::move(source_ases)) {
  std::sort(sources_.begin(), sources_.end());
  sources_.erase(std::unique(sources_.begin(), sources_.end()),
                 sources_.end());

  const std::size_t n = engine_.topology().ases().size();
  const std::size_t n_sources = sources_.size();
  source_slot_.assign(n, kNotSource);
  for (std::uint32_t i = 0; i < sources_.size(); ++i) {
    source_slot_[sources_[i]] = i;
  }
  forward_offsets_.assign(n_sources * n, 0);
  arena_.push_back(topo::kNoAs);  // slot 0 = unreachable sentinel

  util::ThreadPool pool(util::resolve_thread_count(threads));

  // Pin the trees toward each source (reverse-path service).
  pinned_.resize(n);
  pool.parallel_for(n_sources, [&](std::size_t i) {
    TreeScratch& scratch = thread_scratch();
    engine_.compute_tree_into(sources_[i], scratch);
    pinned_[sources_[i]] =
        std::make_unique<RouteTree>(sources_[i], scratch.entries);
  });

  // The destination sweep: one tree per destination AS, extracting each
  // source's path. Workers fill independent blocks; the serial merge below
  // concatenates them in destination order, so the arena layout is
  // byte-identical to a serial sweep at any thread count.
  const std::size_t n_blocks = (n + kSweepBlock - 1) / kSweepBlock;
  std::vector<SweepBlock> blocks(n_blocks);
  pool.parallel_for(n_blocks, [&](std::size_t b) {
    const AsId begin = static_cast<AsId>(b * kSweepBlock);
    const AsId end = static_cast<AsId>(std::min(n, (b + 1) * kSweepBlock));
    SweepBlock& block = blocks[b];
    block.rel_offsets.assign(n_sources * (end - begin), 0);
    TreeScratch& scratch = thread_scratch();
    std::vector<AsId> path;
    for (AsId dst = begin; dst < end; ++dst) {
      engine_.compute_tree_into(dst, scratch);
      RouteTree tree{dst, std::move(scratch.entries)};
      for (std::uint32_t si = 0; si < n_sources; ++si) {
        tree.as_path_into(sources_[si], path);
        if (path.empty()) continue;
        block.rel_offsets[si * (end - begin) + (dst - begin)] =
            static_cast<std::uint32_t>(block.arena.size() + 1);
        block.arena.push_back(static_cast<AsId>(path.size()));
        block.arena.insert(block.arena.end(), path.begin(), path.end());
      }
      scratch.entries = tree.release_entries();
    }
  });
  for (std::size_t b = 0; b < n_blocks; ++b) {
    const AsId begin = static_cast<AsId>(b * kSweepBlock);
    const AsId end = static_cast<AsId>(std::min(n, (b + 1) * kSweepBlock));
    SweepBlock& block = blocks[b];
    const std::uint32_t base = static_cast<std::uint32_t>(arena_.size());
    for (AsId dst = begin; dst < end; ++dst) {
      for (std::uint32_t si = 0; si < n_sources; ++si) {
        const std::uint32_t rel =
            block.rel_offsets[si * (end - begin) + (dst - begin)];
        if (rel == 0) continue;
        forward_offsets_[si * n + dst] = base + rel - 1;
      }
    }
    arena_.insert(arena_.end(), block.arena.begin(), block.arena.end());
    block.arena.clear();
    block.arena.shrink_to_fit();
  }

  util::log_debug() << "routing oracle: " << n_sources << " sources, " << n
                    << " destination trees, arena "
                    << arena_.size() * sizeof(AsId) / 1024 << " KiB";
}

std::vector<AsId> RoutingOracle::as_path(AsId src, AsId dst) {
  std::vector<AsId> storage;
  const auto view = path_view(src, dst, storage);
  if (view.data() == storage.data()) return storage;
  return {view.begin(), view.end()};
}

std::span<const AsId> RoutingOracle::path_view(AsId src, AsId dst,
                                               std::vector<AsId>& storage) {
  if (src == dst) {
    storage.assign(1, src);
    return {storage.data(), 1};
  }

  if (const std::uint32_t slot = source_slot_[src]; slot != kNotSource) {
    const std::size_t n = engine_.topology().ases().size();
    const std::uint32_t offset = forward_offsets_[slot * n + dst];
    if (offset == 0) return {};
    const AsId length = arena_[offset];
    return {arena_.data() + offset + 1, static_cast<std::size_t>(length)};
  }

  if (const RouteTree* tree = pinned_[dst].get(); tree != nullptr) {
    tree->as_path_into(src, storage);
    return {storage.data(), storage.size()};
  }

  fallback_path_into(src, dst, storage);
  return {storage.data(), storage.size()};
}

bool RoutingOracle::reachable(AsId src, AsId dst) {
  if (src == dst) return true;
  std::vector<AsId> storage;
  return !path_view(src, dst, storage).empty();
}

void RoutingOracle::fallback_path_into(AsId src, AsId dst,
                                       std::vector<AsId>& out) {
  util::MutexLock lock(fallback_mu_);
  if (const auto it = fallback_.find(dst); it != fallback_.end()) {
    it->second->as_path_into(src, out);
    return;
  }
  auto tree = std::make_unique<RouteTree>(engine_.compute_tree(dst));
  const RouteTree& ref = *tree;
  if (fallback_order_.size() >= kFallbackCacheSize) {
    // Ring replacement: overwrite the oldest slot and advance, instead of
    // the old erase(begin()) which shifted the whole order vector.
    fallback_.erase(fallback_order_[fallback_evict_at_]);
    fallback_order_[fallback_evict_at_] = dst;
    fallback_evict_at_ = (fallback_evict_at_ + 1) % kFallbackCacheSize;
  } else {
    fallback_order_.push_back(dst);
  }
  fallback_.emplace(dst, std::move(tree));
  ref.as_path_into(src, out);
}

}  // namespace rr::route
