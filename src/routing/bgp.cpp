#include "routing/bgp.h"

#include <algorithm>
#include <functional>

namespace rr::route {

namespace {
constexpr int class_rank(RouteClass c) noexcept { return static_cast<int>(c); }
}  // namespace

void RouteTree::as_path_into(AsId src, std::vector<AsId>& out) const {
  out.clear();
  AsId current = src;
  // Valley-free paths cannot exceed the AS count; use a small sane bound.
  for (int guard = 0; guard < 64; ++guard) {
    out.push_back(current);
    if (current == destination_) return;
    const RouteEntry& entry = entries_[current];
    if (!entry.reachable() || entry.next_hop == topo::kNoAs) {
      out.clear();
      return;
    }
    current = entry.next_hop;
  }
  out.clear();  // loop guard tripped: treat as unreachable
}

BgpEngine::BgpEngine(std::shared_ptr<const topo::Topology> topology,
                     Epoch epoch)
    : topology_(std::move(topology)), epoch_(epoch) {
  const std::size_t n = topology_->ases().size();
  customers_.resize(n);
  providers_.resize(n);
  peers_.resize(n);
  for (const auto& link : topology_->links()) {
    if (!link.exists_in(epoch_)) continue;
    if (link.kind == topo::LinkKind::kCustomerProvider) {
      // link.a is the customer of link.b.
      providers_[link.a].push_back(link.b);
      customers_[link.b].push_back(link.a);
    } else {
      peers_[link.a].push_back(link.b);
      peers_[link.b].push_back(link.a);
    }
  }
  // Sorted adjacency gives deterministic tie-breaking everywhere below.
  for (std::size_t i = 0; i < n; ++i) {
    std::sort(customers_[i].begin(), customers_[i].end());
    std::sort(providers_[i].begin(), providers_[i].end());
    std::sort(peers_[i].begin(), peers_[i].end());
  }
}

RouteTree BgpEngine::compute_tree(AsId destination) const {
  TreeScratch scratch;
  compute_tree_into(destination, scratch);
  return RouteTree{destination, std::move(scratch.entries)};
}

void BgpEngine::compute_tree_into(AsId destination,
                                  TreeScratch& scratch) const {
  const std::size_t n = topology_->ases().size();
  auto& entries = scratch.entries;
  entries.assign(n, RouteEntry{});

  // Phase 1 — customer routes: BFS from the destination along
  // customer->provider edges. An AS X on such a chain learned the route
  // from the customer below it.
  auto& customer_dist = scratch.customer_dist;
  customer_dist.assign(n, std::numeric_limits<std::uint16_t>::max());
  customer_dist[destination] = 0;
  entries[destination] = RouteEntry{destination, 0, RouteClass::kSelf};
  auto& frontier = scratch.frontier;
  auto& next_frontier = scratch.next_frontier;
  frontier.clear();
  frontier.push_back(destination);
  std::uint16_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next_frontier.clear();
    for (AsId below : frontier) {
      for (AsId provider : providers_[below]) {
        if (customer_dist[provider] !=
            std::numeric_limits<std::uint16_t>::max()) {
          continue;
        }
        customer_dist[provider] = level;
        entries[provider] = RouteEntry{below, level, RouteClass::kCustomer};
        next_frontier.push_back(provider);
      }
    }
    std::sort(next_frontier.begin(), next_frontier.end());
    std::swap(frontier, next_frontier);
  }

  // Phase 2 — peer routes: one peer edge, then a customer chain down.
  // Only ASes without a customer route take these.
  for (AsId as = 0; as < n; ++as) {
    if (class_rank(entries[as].route_class) <=
        class_rank(RouteClass::kCustomer)) {
      continue;
    }
    RouteEntry best = entries[as];
    for (AsId peer : peers_[as]) {
      if (customer_dist[peer] == std::numeric_limits<std::uint16_t>::max()) {
        continue;
      }
      const std::uint16_t len =
          static_cast<std::uint16_t>(customer_dist[peer] + 1);
      if (best.route_class != RouteClass::kPeer || len < best.length ||
          (len == best.length && peer < best.next_hop)) {
        best = RouteEntry{peer, len, RouteClass::kPeer};
      }
    }
    entries[as] = best;
  }

  // Phase 3 — provider routes: Dijkstra over provider->customer edges,
  // seeded by every AS that already selected a (customer/peer/self) route.
  // An AS exports its selected route to its customers, so provider routes
  // chain downward with unit cost per hop. The heap lives in the scratch;
  // push_heap/pop_heap with greater<> pop in exactly the order
  // std::priority_queue (which wraps these very calls) would.
  using HeapItem = std::tuple<std::uint16_t, AsId, AsId>;  // len, parent, as
  auto& heap = scratch.heap;
  heap.clear();
  const auto heap_push = [&heap](HeapItem item) {
    heap.push_back(item);
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
  };
  for (AsId as = 0; as < n; ++as) {
    if (entries[as].reachable()) {
      for (AsId customer : customers_[as]) {
        if (class_rank(entries[customer].route_class) <=
            class_rank(RouteClass::kPeer)) {
          continue;
        }
        heap_push({static_cast<std::uint16_t>(entries[as].length + 1), as,
                   customer});
      }
    }
  }
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const auto [len, parent, as] = heap.back();
    heap.pop_back();
    RouteEntry& entry = entries[as];
    if (class_rank(entry.route_class) <= class_rank(RouteClass::kPeer)) {
      continue;  // prefers better
    }
    if (entry.route_class == RouteClass::kProvider &&
        (entry.length < len ||
         (entry.length == len && entry.next_hop <= parent))) {
      continue;  // already settled at least as well
    }
    entry = RouteEntry{parent, len, RouteClass::kProvider};
    for (AsId customer : customers_[as]) {
      if (class_rank(entries[customer].route_class) <=
          class_rank(RouteClass::kPeer)) {
        continue;
      }
      heap_push({static_cast<std::uint16_t>(len + 1), as, customer});
    }
  }
}

}  // namespace rr::route
