#include "routing/bgp.h"

#include <algorithm>

namespace rr::route {

namespace {
constexpr int class_rank(RouteClass c) noexcept { return static_cast<int>(c); }
}  // namespace

void RouteTree::as_path_into(AsId src, std::vector<AsId>& out) const {
  out.clear();
  AsId current = src;
  // Valley-free paths cannot exceed the AS count; use a small sane bound.
  for (int guard = 0; guard < 64; ++guard) {
    out.push_back(current);
    if (current == destination_) return;
    const RouteEntry& entry = entries_[current];
    if (!entry.reachable() || entry.next_hop == topo::kNoAs) {
      out.clear();
      return;
    }
    current = entry.next_hop;
  }
  out.clear();  // loop guard tripped: treat as unreachable
}

BgpEngine::BgpEngine(std::shared_ptr<const topo::Topology> topology,
                     Epoch epoch)
    : topology_(std::move(topology)), epoch_(epoch) {
  const std::size_t n = topology_->ases().size();

  // Two passes over the link table: degree count, then placement. The
  // placement order is link-table order; a final per-AS sort restores the
  // ascending neighbour order that every tie-break in compute_tree_into
  // depends on (identical to the old vector-of-vectors construction).
  std::vector<std::uint32_t> deg_customers(n, 0), deg_providers(n, 0),
      deg_peers(n, 0);
  for (const auto& link : topology_->links()) {
    if (!link.exists_in(epoch_)) continue;
    if (link.kind == topo::LinkKind::kCustomerProvider) {
      // link.a is the customer of link.b.
      ++deg_providers[link.a];
      ++deg_customers[link.b];
    } else {
      ++deg_peers[link.a];
      ++deg_peers[link.b];
    }
  }
  const auto make_offsets = [n](Csr& csr,
                                const std::vector<std::uint32_t>& degree) {
    csr.offsets.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
      csr.offsets[i + 1] = csr.offsets[i] + degree[i];
    }
    csr.flat.resize(csr.offsets[n]);
  };
  make_offsets(customers_, deg_customers);
  make_offsets(providers_, deg_providers);
  make_offsets(peers_, deg_peers);

  std::vector<std::uint32_t> fill_customers(customers_.offsets.begin(),
                                            customers_.offsets.end() - 1);
  std::vector<std::uint32_t> fill_providers(providers_.offsets.begin(),
                                            providers_.offsets.end() - 1);
  std::vector<std::uint32_t> fill_peers(peers_.offsets.begin(),
                                        peers_.offsets.end() - 1);
  for (const auto& link : topology_->links()) {
    if (!link.exists_in(epoch_)) continue;
    if (link.kind == topo::LinkKind::kCustomerProvider) {
      providers_.flat[fill_providers[link.a]++] = link.b;
      customers_.flat[fill_customers[link.b]++] = link.a;
    } else {
      peers_.flat[fill_peers[link.a]++] = link.b;
      peers_.flat[fill_peers[link.b]++] = link.a;
    }
  }
  const auto sort_rows = [n](Csr& csr) {
    for (std::size_t i = 0; i < n; ++i) {
      std::sort(csr.flat.begin() + csr.offsets[i],
                csr.flat.begin() + csr.offsets[i + 1]);
    }
  };
  sort_rows(customers_);
  sort_rows(providers_);
  sort_rows(peers_);
}

RouteTree BgpEngine::compute_tree(AsId destination) const {
  TreeScratch scratch;
  compute_tree_into(destination, scratch);
  return RouteTree{destination, std::move(scratch.entries)};
}

void BgpEngine::compute_tree_into(AsId destination,
                                  TreeScratch& scratch) const {
  const std::size_t n = topology_->ases().size();
  auto& entries = scratch.entries;
  entries.assign(n, RouteEntry{});

  // Phase 1 — customer routes: BFS from the destination along
  // customer->provider edges. An AS X on such a chain learned the route
  // from the customer below it.
  auto& customer_dist = scratch.customer_dist;
  customer_dist.assign(n, std::numeric_limits<std::uint16_t>::max());
  customer_dist[destination] = 0;
  entries[destination] = RouteEntry{destination, 0, RouteClass::kSelf};
  auto& frontier = scratch.frontier;
  auto& next_frontier = scratch.next_frontier;
  frontier.clear();
  frontier.push_back(destination);
  std::uint16_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next_frontier.clear();
    for (AsId below : frontier) {
      for (AsId provider : providers_.neighbors(below)) {
        const std::uint16_t seen = customer_dist[provider];
        if (seen == std::numeric_limits<std::uint16_t>::max()) {
          customer_dist[provider] = level;
          entries[provider] = RouteEntry{below, level, RouteClass::kCustomer};
          next_frontier.push_back(provider);
        } else if (seen == level && below < entries[provider].next_hop) {
          // Tie-break without sorting the frontier: the historical rule —
          // first claimant in ascending-frontier order — is exactly "the
          // smallest same-level neighbour wins", so track the minimum
          // explicitly and the frontier order stops mattering. Phases 2
          // and 3 scan by AS index, so no other order dependence exists.
          entries[provider].next_hop = below;
        }
      }
    }
    std::swap(frontier, next_frontier);
  }

  // Phase 2 — peer routes: one peer edge, then a customer chain down.
  // Only ASes without a customer route take these.
  for (AsId as = 0; as < n; ++as) {
    if (class_rank(entries[as].route_class) <=
        class_rank(RouteClass::kCustomer)) {
      continue;
    }
    RouteEntry best = entries[as];
    for (AsId peer : peers_.neighbors(as)) {
      if (customer_dist[peer] == std::numeric_limits<std::uint16_t>::max()) {
        continue;
      }
      const std::uint16_t len =
          static_cast<std::uint16_t>(customer_dist[peer] + 1);
      if (best.route_class != RouteClass::kPeer || len < best.length ||
          (len == best.length && peer < best.next_hop)) {
        best = RouteEntry{peer, len, RouteClass::kPeer};
      }
    }
    entries[as] = best;
  }

  // Phase 3 — provider routes: shortest chains over provider->customer
  // edges, seeded by every AS that already selected a (customer/peer/self)
  // route. An AS exports its selected route to its customers, so provider
  // routes chain downward with unit cost per hop.
  //
  // This used to be a binary-heap Dijkstra popping (len, parent, as)
  // tuples in ascending order. It is now a Dial bucket queue — bucket[L]
  // collects the relaxations pending at length L, and each bucket is
  // sorted by (parent, as) before it is drained. The settle order is
  // provably identical to the heap's pop order: every relaxation in
  // bucket[L] is created either by the seed scan (which runs before any
  // drain) or while draining bucket[L-1] (unit edge weights — a drained
  // item only pushes at L+1), so bucket[L] is complete before its drain
  // begins; and because every item still in the queue at that point has
  // length >= L, the heap would necessarily pop exactly these items next,
  // in (parent, as) order — which is the bucket's sort order.
  auto& buckets = scratch.buckets;
  for (auto& bucket : buckets) bucket.clear();
  std::size_t max_len = 0;  // highest non-empty bucket index
  const auto push = [&buckets, &max_len](std::uint16_t len, AsId parent,
                                         AsId as) {
    if (buckets.size() <= len) buckets.resize(len + 1);
    if (len > max_len) max_len = len;
    buckets[len].emplace_back(parent, as);
  };
  for (AsId as = 0; as < n; ++as) {
    if (entries[as].reachable()) {
      for (AsId customer : customers_.neighbors(as)) {
        if (class_rank(entries[customer].route_class) <=
            class_rank(RouteClass::kPeer)) {
          continue;
        }
        push(static_cast<std::uint16_t>(entries[as].length + 1), as,
             customer);
      }
    }
  }
  for (std::size_t len = 0; len <= max_len; ++len) {
    // Index-based access throughout: `push` may grow the outer vector,
    // which would invalidate a cached reference to buckets[len].
    std::sort(buckets[len].begin(), buckets[len].end());
    for (std::size_t k = 0; k < buckets[len].size(); ++k) {
      const auto [parent, as] = buckets[len][k];
      RouteEntry& entry = entries[as];
      if (class_rank(entry.route_class) <= class_rank(RouteClass::kPeer)) {
        continue;  // prefers better
      }
      if (entry.route_class == RouteClass::kProvider &&
          (entry.length < len ||
           (entry.length == len && entry.next_hop <= parent))) {
        continue;  // already settled at least as well
      }
      entry = RouteEntry{parent, static_cast<std::uint16_t>(len),
                         RouteClass::kProvider};
      for (AsId customer : customers_.neighbors(as)) {
        if (class_rank(entries[customer].route_class) <=
            class_rank(RouteClass::kPeer)) {
          continue;
        }
        push(static_cast<std::uint16_t>(len + 1), as, customer);
      }
    }
    buckets[len].clear();
  }
}

}  // namespace rr::route
