#include "routing/stitcher.h"

#include <algorithm>

#include "util/rng.h"

namespace rr::route {

namespace {

std::uint64_t pair_mix(std::uint64_t a, std::uint64_t b) noexcept {
  return util::mix64((a << 32) ^ b ^ 0x5bd1e995);
}

}  // namespace

void PathStitcher::append_intra(topo::AsId as, RouterId from, RouterId to,
                                std::vector<RouterId>& seq) const {
  if (from == to) return;
  const topo::AsInfo& info = topology_->as_at(as);
  if (info.core.empty() || info.internal_hops == 0) return;

  // Deterministically select up to `internal_hops` core routers (excluding
  // the endpoints) to model the backbone crossing.
  const std::uint64_t salt = pair_mix(from, to);
  int wanted = info.internal_hops;
  const std::size_t n = info.core.size();
  std::size_t index = static_cast<std::size_t>(salt % n);
  for (std::size_t attempts = 0; attempts < n && wanted > 0; ++attempts) {
    const RouterId candidate = info.core[index];
    index = (index + 1) % n;
    if (candidate == from || candidate == to) continue;
    seq.push_back(candidate);
    --wanted;
  }
}

bool PathStitcher::assemble(std::optional<HostId> src_host,
                            std::optional<RouterId> src_router,
                            std::optional<HostId> dst_host,
                            std::optional<RouterId> dst_router,
                            std::vector<RouterId>& seq) {
  seq.clear();
  const topo::AsId dst_as =
      dst_host ? topology_->host_at(*dst_host).as_id
               : topology_->router_at(*dst_router).as_id;

  topo::AsId src_as;
  RouterId entry;  // the router where "the rest of the path" begins
  if (src_host) {
    const topo::Host& src_info = topology_->host_at(*src_host);
    src_as = src_info.as_id;
    const auto chain = topology_->access_chain(src_info.access_router);
    // Host-side chain runs core -> ... -> access; the packet traverses it
    // in reverse.
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      seq.push_back(*it);
    }
    entry = chain.empty() ? src_info.access_router : chain.front();
    if (chain.empty()) seq.push_back(src_info.access_router);
  } else {
    src_as = topology_->router_at(*src_router).as_id;
    entry = *src_router;  // excluded from the sequence itself
  }

  // Span view: source-origin queries (every campaign forward path) alias
  // the oracle's arena directly — no per-assembly path copy.
  std::vector<topo::AsId> path_storage;
  const std::span<const topo::AsId> as_path =
      oracle_->path_view(src_as, dst_as, path_storage);
  if (as_path.empty()) return false;

  for (std::size_t i = 0; i + 1 < as_path.size(); ++i) {
    const auto link_id = topology_->link_between(as_path[i], as_path[i + 1]);
    if (!link_id) return false;  // BGP and link tables must agree
    const topo::AsLink& link = topology_->link_at(*link_id);
    if (!link.exists_in(oracle_->epoch())) return false;
    const bool a_side = link.a == as_path[i];
    const RouterId egress_border = a_side ? link.router_a : link.router_b;
    const RouterId ingress_border = a_side ? link.router_b : link.router_a;
    append_intra(as_path[i], entry, egress_border, seq);
    seq.push_back(egress_border);
    seq.push_back(ingress_border);
    entry = ingress_border;
  }

  // Destination side: cross the final AS, then either descend the host's
  // access chain or stop at the target router.
  if (dst_host) {
    const topo::Host& dst_info = topology_->host_at(*dst_host);
    const auto dst_chain = topology_->access_chain(dst_info.access_router);
    const RouterId dst_top =
        dst_chain.empty() ? dst_info.access_router : dst_chain.front();
    append_intra(dst_as, entry, dst_top, seq);
    if (dst_chain.empty()) {
      seq.push_back(dst_info.access_router);
    } else {
      seq.insert(seq.end(), dst_chain.begin(), dst_chain.end());
    }
  } else {
    append_intra(dst_as, entry, *dst_router, seq);
    seq.push_back(*dst_router);
  }

  // Collapse consecutive duplicates introduced at seams (e.g. a stub AS
  // whose single core router is simultaneously border and access top).
  seq.erase(std::unique(seq.begin(), seq.end()), seq.end());
  // A router-originated packet is not processed by its own originator
  // (it may be its own egress border).
  if (src_router && !seq.empty() && seq.front() == *src_router) {
    seq.erase(seq.begin());
  }
  return true;
}

net::IPv4Address PathStitcher::pick_interface(const topo::Topology& topology,
                                              RouterId router,
                                              std::uint64_t salt) {
  const topo::Router& info = topology.router_at(router);
  if (info.interfaces.size() <= 1) return info.loopback;
  const std::size_t index =
      1 + static_cast<std::size_t>(pair_mix(router, salt) %
                                   (info.interfaces.size() - 1));
  return info.interfaces[index];
}

void PathStitcher::derive_addresses(const std::vector<RouterId>& seq,
                                    std::uint64_t dst_salt,
                                    std::optional<HostId> src,
                                    std::vector<PathHop>& out) const {
  out.clear();
  out.reserve(seq.size());
  const std::uint64_t src_salt =
      src ? (kSrcHostSaltTag | *src) : 0x7000000000000000ULL;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    PathHop hop;
    hop.router = seq[i];
    const topo::AsId as = topology_->router_at(seq[i]).as_id;

    // Ingress: how upstream addresses this router.
    if (i == 0) {
      hop.ingress = pick_interface(seq[i], src_salt);
    } else {
      const topo::AsId prev_as = topology_->router_at(seq[i - 1]).as_id;
      if (prev_as != as) {
        const auto link_id = topology_->link_between(prev_as, as);
        const topo::AsLink& link = topology_->link_at(*link_id);
        hop.ingress = link.a == as ? link.addr_a : link.addr_b;
      } else {
        hop.ingress = pick_interface(seq[i], seq[i - 1]);
      }
    }

    // Egress: the outgoing interface (what RR records).
    if (i + 1 == seq.size()) {
      hop.egress = pick_interface(seq[i], kDstSaltTag | dst_salt);
    } else {
      const topo::AsId next_as = topology_->router_at(seq[i + 1]).as_id;
      if (next_as != as) {
        const auto link_id = topology_->link_between(as, next_as);
        const topo::AsLink& link = topology_->link_at(*link_id);
        hop.egress = link.a == as ? link.addr_a : link.addr_b;
      } else {
        hop.egress = pick_interface(seq[i], seq[i + 1]);
      }
    }
    out.push_back(hop);
  }
}

bool PathStitcher::host_path(HostId src, HostId dst,
                             std::vector<PathHop>& out) {
  std::vector<RouterId> seq;
  if (!assemble(src, std::nullopt, dst, std::nullopt, seq)) return false;
  derive_addresses(seq, dst, src, out);
  return true;
}

bool PathStitcher::router_path(RouterId src, HostId dst,
                               std::vector<PathHop>& out) {
  std::vector<RouterId> seq;
  if (!assemble(std::nullopt, src, dst, std::nullopt, seq)) return false;
  derive_addresses(seq, dst, std::nullopt, out);
  return true;
}

bool PathStitcher::host_to_router_path(HostId src, RouterId dst,
                                       std::vector<PathHop>& out) {
  std::vector<RouterId> seq;
  if (!assemble(src, std::nullopt, std::nullopt, dst, seq)) return false;
  derive_addresses(seq, 0xf100000000000000ULL | dst, src, out);
  return true;
}

std::optional<std::vector<PathHop>> PathStitcher::host_path(HostId src,
                                                            HostId dst) {
  std::vector<PathHop> out;
  if (!host_path(src, dst, out)) return std::nullopt;
  return out;
}

}  // namespace rr::route
