// Compiled forwarding plane for campaign traffic.
//
// The campaign's steady state resolves two host-to-host router paths per
// probe (forward to the destination, reverse for the reply). The shared
// PathCache makes repeats cheap, but a campaign visits each (VP,
// destination) pair exactly once — at scale the cache is all misses, and
// every probe pays a full assemble + derive stitch twice, plus a shard
// mutex and a shared_ptr handoff.
//
// CompiledFib precomputes those paths once per destination block, keyed by
// what they actually depend on. A stitched host path is a function of the
// endpoints' access routers, not the hosts themselves: only two elements
// are per-host — the first hop's ingress (picked from the source-host
// salt) and the last hop's egress (picked from the destination-host salt);
// see PathStitcher::derive_addresses. So the table stores one forward and
// one reverse "spine" per (source host, destination access router) pair —
// typically 10-30x fewer than per-destination paths — and a lookup copies
// the spine into a caller-owned scratch and re-picks the single
// destination-dependent address. The result is bit-identical to the
// stitcher's output for every covered pair (asserted by the campaign
// equivalence tests).
//
// Build-then-freeze: build() stitches everything eagerly; the finished
// object is immutable and safe for any number of concurrent readers.
// Lookups for pairs outside the compiled (sources x block) coverage
// return kMiss and the caller falls back to the PathCache.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "routing/stitcher.h"

namespace rr::route {

class CompiledFib {
 public:
  enum class Lookup : std::uint8_t {
    kMiss,        // pair not compiled; fall back to the stitcher/cache
    kUnroutable,  // compiled, and BGP has no route
    kHit,         // `out` holds the full hop list
  };

  /// Compiles dual-direction spines for every (source, destination access
  /// router) pair. `sources` are the probing hosts (VPs and the plain-ping
  /// probe host); `dests` are the destination hosts of the current block.
  [[nodiscard]] static std::shared_ptr<const CompiledFib> build(
      PathStitcher& stitcher, std::span<const HostId> sources,
      std::span<const HostId> dests);

  /// Forward path `src` -> `dst` into `out` (equivalent to
  /// PathStitcher::host_path(src, dst)).
  Lookup forward(HostId src, HostId dst, std::vector<PathHop>& out) const;

  /// Reverse path `dst` -> `reply_to` into `out` (equivalent to
  /// PathStitcher::host_path(dst, reply_to)).
  Lookup reverse(HostId dst, HostId reply_to,
                 std::vector<PathHop>& out) const;

  [[nodiscard]] std::size_t spine_pairs() const noexcept {
    return pairs_.size();
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return pairs_.capacity() * sizeof(SpinePair) +
           arena_.capacity() * sizeof(PathHop) +
           (source_slot_.capacity() + ar_slot_.capacity()) *
               sizeof(std::uint32_t);
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffff'ffffu;
  static constexpr std::uint8_t kFwdRoutable = 1 << 0;
  static constexpr std::uint8_t kRevRoutable = 1 << 1;

  struct SpinePair {
    std::uint32_t fwd_off = 0;
    std::uint32_t rev_off = 0;
    std::uint16_t fwd_len = 0;
    std::uint16_t rev_len = 0;
    std::uint8_t flags = 0;
  };

  CompiledFib() = default;

  const topo::Topology* topology_ = nullptr;
  std::vector<std::uint32_t> source_slot_;  // HostId -> table row
  std::vector<std::uint32_t> ar_slot_;      // RouterId -> table column
  std::size_t columns_ = 0;
  std::vector<SpinePair> pairs_;  // [row * columns_ + column]
  std::vector<PathHop> arena_;
};

}  // namespace rr::route
