#include "probe/prober.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <utility>

#include "packet/icmp.h"
#include "packet/ipv4.h"
#include "packet/udp.h"
#include "packet/wire.h"

namespace rr::probe {

const char* to_string(ProbeType type) noexcept {
  switch (type) {
    case ProbeType::kPing: return "ping";
    case ProbeType::kPingRr: return "ping-RR";
    case ProbeType::kPingRrUdp: return "ping-RRudp";
    case ProbeType::kPingTs: return "ping-TS";
  }
  return "?";
}

const char* to_string(ResponseKind kind) noexcept {
  switch (kind) {
    case ResponseKind::kNone: return "none";
    case ResponseKind::kEchoReply: return "echo-reply";
    case ResponseKind::kTtlExceeded: return "ttl-exceeded";
    case ResponseKind::kPortUnreachable: return "port-unreachable";
  }
  return "?";
}

std::string ProbeResult::to_string() const {
  std::string out = std::string{probe::to_string(type)} + " " +
                    target.to_string() + " -> " + probe::to_string(kind);
  if (rr_option_in_reply) {
    out += " rr[";
    for (std::size_t i = 0; i < rr_recorded.size(); ++i) {
      out += (i ? "," : "") + rr_recorded[i].to_string();
    }
    out += "]+" + std::to_string(rr_free_slots);
  }
  if (quoted_rr_present) {
    out += " quoted-rr(" + std::to_string(quoted_rr.size()) + "+" +
           std::to_string(quoted_rr_free_slots) + " free)";
  }
  return out;
}

Prober::Prober(sim::Network& network, topo::HostId source,
               ProberOptions options)
    : network_(&network),
      source_(source),
      source_address_(network.topology().host_at(source).address),
      icmp_id_(options.icmp_id != 0
                   ? options.icmp_id
                   : static_cast<std::uint16_t>(0x4000 | (source & 0x3fff))),
      clock_(options.start_time),
      interval_(1.0 / options.pps) {}

void Prober::probe_into(const ProbeSpec& spec, sim::SendContext* ctx,
                        ProbeResult& out) {
  // RROPT_HOT_BEGIN(prober-probe): one exchange per call at campaign rate;
  // probe bytes are built into the recycled buffer and the delivery's
  // storage is reclaimed below, so the steady state allocates nothing —
  // rropt_lint keeps it that way by banning unwaived allocation here.
  //
  // Reset here, not just in Network::send: an early return before the send
  // must not leave the previous probe's trace (or result fields) behind
  // for a deferred-replay caller to mistake for this probe's.
  out.reset();
  if (ctx != nullptr) ctx->trace.reset();
  const double send_time = clock_;
  clock_ += interval_;
  ++sent_;
  const std::uint16_t seq = next_seq_++;

  const std::size_t capacity_before = buf_.capacity();
  build_probe_into(spec, seq, buf_);

  out.target = spec.target;
  out.type = spec.type;
  out.send_time = send_time;

  auto delivery = network_->send_reusing(source_, buf_, send_time, ctx);
  if (delivery) {
    parse_response_into(spec, seq, send_time, *delivery, out);
    // Reclaim the response's storage (it was the probe buffer, or a reply
    // scratch swapped for it): the next probe builds into it.
    buf_ = std::move(delivery->bytes);
  }
  if (buf_.capacity() != capacity_before) ++buffer_growths_;
  // RROPT_HOT_END(prober-probe)
}

void Prober::build_probe_into(const ProbeSpec& spec, std::uint16_t seq,
                              std::vector<std::uint8_t>& buf) {
  // RROPT_HOT_BEGIN(prober-build): serialization into recycled storage —
  // shared by the scalar and batched paths, so their bytes are identical
  // by construction.
  if (spec.type == ProbeType::kPingRrUdp) {
    const std::uint16_t dst_port = static_cast<std::uint16_t>(
        pkt::kUdpProbePortBase + (next_udp_port_++ % 256));
    pkt::build_udp_probe(buf, source_address_, spec.target,
                         static_cast<std::uint16_t>(0x8000 | seq), dst_port,
                         spec.ttl, spec.rr_slots);
  } else if (spec.type == ProbeType::kPingTs) {
    pkt::build_ping_ts(buf, source_address_, spec.target, icmp_id_, seq,
                       spec.ttl, spec.rr_slots);
  } else {
    const int slots = spec.type == ProbeType::kPingRr ? spec.rr_slots : 0;
    pkt::build_ping(buf, source_address_, spec.target, icmp_id_, seq,
                    spec.ttl, slots);
  }
  // RROPT_HOT_END(prober-build)
}

void Prober::probe_batch_into(std::span<const ProbeSpec> specs,
                              std::span<sim::SendContext> ctxs,
                              std::span<ProbeResult> results) {
  // RROPT_HOT_BEGIN(prober-batch): the campaign's inner loop when batching
  // is on. Pacing, sequencing, and per-slot bookkeeping are exactly what a
  // scalar probe_into sequence would do; only the network traversal is
  // batched.
  const std::size_t n = specs.size();
  assert(n == ctxs.size() && n == results.size());
  assert(n <= sim::WalkBatch::kMaxProbes);
  if (batch_bufs_.size() < n) {
    batch_bufs_.resize(n);  // RROPT_HOT_OK(alloc): one-time warm-up growth
  }

  std::array<sim::Network::BatchProbe, sim::WalkBatch::kMaxProbes> probes;
  std::array<std::uint16_t, sim::WalkBatch::kMaxProbes> seqs;
  std::array<std::size_t, sim::WalkBatch::kMaxProbes> capacities;
  for (std::size_t k = 0; k < n; ++k) {
    ProbeResult& out = results[k];
    out.reset();
    ctxs[k].trace.reset();
    const double send_time = clock_;
    clock_ += interval_;
    ++sent_;
    seqs[k] = next_seq_++;

    std::vector<std::uint8_t>& buf = batch_bufs_[k];
    capacities[k] = buf.capacity();
    build_probe_into(specs[k], seqs[k], buf);

    out.target = specs[k].target;
    out.type = specs[k].type;
    out.send_time = send_time;

    probes[k].bytes = &buf;
    probes[k].time = send_time;
    probes[k].ctx = &ctxs[k];
  }

  network_->send_batch(source_, std::span{probes.data(), n});

  for (std::size_t k = 0; k < n; ++k) {
    auto& delivery = probes[k].delivery;
    if (delivery) {
      parse_response_into(specs[k], seqs[k], results[k].send_time, *delivery,
                          results[k]);
      batch_bufs_[k] = std::move(delivery->bytes);
    }
    if (batch_bufs_[k].capacity() != capacities[k]) ++buffer_growths_;
  }
  // RROPT_HOT_END(prober-batch)
}

void Prober::parse_response_into(const ProbeSpec& spec, std::uint16_t seq,
                                 double send_time,
                                 const sim::Network::Delivery& delivery,
                                 ProbeResult& out) {
  const auto info = pkt::inspect_datagram(delivery.bytes);
  if (!info) return;
  if (info->protocol != static_cast<std::uint8_t>(pkt::IpProto::kIcmp)) {
    return;
  }

  out.responder = info->source;
  out.reply_ip_id = info->identification;

  if (info->icmp_type == static_cast<std::uint8_t>(pkt::IcmpType::kEchoReply)) {
    if (info->echo_identifier != icmp_id_ || info->echo_sequence != seq) {
      ++mismatched_;
      return;
    }
    out.kind = ResponseKind::kEchoReply;
    out.rtt = delivery.time - send_time;
    if (info->rr_offset != 0) {
      const auto rr = pkt::rr_wire(delivery.bytes, info->rr_offset);
      out.rr_option_in_reply = true;
      for (std::size_t i = 0; i < rr.filled; ++i) {
        out.rr_recorded.push_back(  // RROPT_HOT_OK: recycled capacity
            pkt::rr_slot(delivery.bytes, rr, i));
      }
      out.rr_free_slots = rr.capacity - rr.filled;
    }
    if (info->ts_offset != 0) {
      const auto ts = pkt::ts_wire(delivery.bytes, info->ts_offset);
      out.ts_option_in_reply = true;
      for (std::size_t i = 0; i < ts.filled; ++i) {
        const auto entry = pkt::ts_entry(delivery.bytes, ts, i);
        out.ts_entries.emplace_back(  // RROPT_HOT_OK: recycled capacity
            entry.address, entry.timestamp_ms);
      }
      out.ts_overflow = ts.overflow;
    }
    ++matched_;
    return;
  }

  // ICMP errors: validate against the quoted datagram. Echo *requests*
  // (the only other whitelisted type) carry no quote and fall out here,
  // exactly like the legacy error_body() == nullptr path.
  if (info->quote_offset == 0) return;
  const auto quoted = std::span<const std::uint8_t>{delivery.bytes}.subspan(
      info->quote_offset, info->quote_length);
  const auto q = pkt::inspect_header(quoted);
  if (!q || q->destination != spec.target || q->source != source_address_) {
    ++mismatched_;
    return;
  }

  if (info->icmp_type ==
      static_cast<std::uint8_t>(pkt::IcmpType::kTimeExceeded)) {
    out.kind = ResponseKind::kTtlExceeded;
  } else if (info->icmp_type ==
                 static_cast<std::uint8_t>(pkt::IcmpType::kDestUnreachable) &&
             info->icmp_code == pkt::kCodePortUnreachable) {
    out.kind = ResponseKind::kPortUnreachable;
  } else {
    ++mismatched_;
    return;
  }
  out.rtt = delivery.time - send_time;
  if (q->rr_offset != 0) {
    const auto rr = pkt::rr_wire(quoted, q->rr_offset);
    out.quoted_rr_present = true;
    for (std::size_t i = 0; i < rr.filled; ++i) {
      out.quoted_rr.push_back(  // RROPT_HOT_OK: recycled capacity
          pkt::rr_slot(quoted, rr, i));
    }
    out.quoted_rr_free_slots = rr.capacity - rr.filled;
  }
  ++matched_;
}

TracerouteResult Prober::traceroute(net::IPv4Address target, int max_ttl,
                                    int attempts) {
  TraceOptions options;
  options.max_ttl = max_ttl;
  options.attempts = attempts;
  return traceroute(target, options);
}

TracerouteResult Prober::traceroute(net::IPv4Address target,
                                    const TraceOptions& options) {
  TracerouteResult result;
  result.target = target;
  const int max_ttl = std::max(1, options.max_ttl);
  const int attempts = std::max(1, options.attempts);
  const int window = std::clamp(
      options.window, 1, static_cast<int>(sim::WalkBatch::kMaxProbes));
  TraceGate* const gate = options.gate;

  int first = 1;
  if (gate != nullptr) first = std::clamp(gate->begin(target), 1, max_ttl);
  result.first_ttl = first;

  // Scratch warm-up (one-time growth, then flat across traces).
  if (static_cast<int>(trace_ctxs_.size()) < window) {
    trace_specs_.resize(static_cast<std::size_t>(window));
    trace_ctxs_.resize(static_cast<std::size_t>(window));
    trace_results_.resize(static_cast<std::size_t>(window));
  }
  for (int k = 0; k < window; ++k) {
    trace_ctxs_[static_cast<std::size_t>(k)].counters = sim::NetCounters{};
  }
  if (static_cast<int>(trace_hops_.size()) < max_ttl + 1) {
    trace_hops_.resize(static_cast<std::size_t>(max_ttl) + 1);
  }
  for (int t = 0; t <= max_ttl; ++t) {
    trace_hops_[static_cast<std::size_t>(t)] = TracerouteHop{};
  }

  std::uint64_t sent = 0;
  int reach_ttl = 0;  // lowest TTL that drew an echo reply; 0 = none yet

  // ------------------------------------------------- forward sweep
  // TTL windows from `first` upward, each window batched through the
  // deferred dataplane; extra attempts re-probe only unresponsive TTLs.
  bool forward_done = false;
  for (int base = first; base <= max_ttl && !forward_done; ) {
    const int w = std::min(window, max_ttl - base + 1);
    for (int round = 0; round < attempts; ++round) {
      int n = 0;
      for (int t = base; t < base + w; ++t) {
        if (round > 0 && trace_hops_[static_cast<std::size_t>(t)].responded) {
          continue;
        }
        ProbeSpec spec = ProbeSpec::ping(target);
        spec.ttl = static_cast<std::uint8_t>(t);
        trace_specs_[static_cast<std::size_t>(n)] = spec;
        ++n;
      }
      if (n == 0) break;
      probe_batch_into(
          std::span<const ProbeSpec>{trace_specs_.data(),
                                     static_cast<std::size_t>(n)},
          std::span<sim::SendContext>{trace_ctxs_.data(),
                                      static_cast<std::size_t>(n)},
          std::span<ProbeResult>{trace_results_.data(),
                                 static_cast<std::size_t>(n)});
      sent += static_cast<std::uint64_t>(n);
      for (int k = 0; k < n; ++k) {
        const int t = trace_specs_[static_cast<std::size_t>(k)].ttl;
        const ProbeResult& pr = trace_results_[static_cast<std::size_t>(k)];
        if (!pr.responded()) continue;
        TracerouteHop& hop = trace_hops_[static_cast<std::size_t>(t)];
        hop.ttl = t;
        hop.responded = true;
        hop.address = pr.responder;
        hop.kind = pr.kind;
      }
    }
    // Scan the window in TTL order for the event that ends the sweep.
    for (int t = base; t < base + w; ++t) {
      TracerouteHop& hop = trace_hops_[static_cast<std::size_t>(t)];
      if (hop.ttl == 0) hop.ttl = t;  // probed, silent
      if (!hop.responded) continue;
      if (hop.kind == ResponseKind::kEchoReply) {
        reach_ttl = t;
        forward_done = true;
        break;
      }
      if (gate != nullptr) {
        // Stop *before* record: the stop must reflect knowledge from
        // earlier traces, never the fact this hop is about to add (a
        // live-insert gate would otherwise stop on its own first hop).
        const bool stop = gate->stop_forward(hop.address, t);
        gate->record(hop.address, t);
        if (stop) {
          result.forward_stop_ttl = t;
          forward_done = true;
          break;
        }
      }
    }
    base += w;
  }

  // ------------------------------------------------ backward sweep
  // Doubletree's second half: from first-1 down toward TTL 1, scalar
  // (window 1) so each hop can consult the gate before the next probe.
  if (gate != nullptr && first > 1) {
    for (int t = first - 1; t >= 1; --t) {
      TracerouteHop& hop = trace_hops_[static_cast<std::size_t>(t)];
      hop.ttl = t;
      for (int attempt = 0; attempt < attempts; ++attempt) {
        ProbeSpec spec = ProbeSpec::ping(target);
        spec.ttl = static_cast<std::uint8_t>(t);
        probe_into(spec, &trace_ctxs_[0], trace_results_[0]);
        ++sent;
        const ProbeResult& pr = trace_results_[0];
        if (!pr.responded()) continue;
        hop.responded = true;
        hop.address = pr.responder;
        hop.kind = pr.kind;
        break;
      }
      if (!hop.responded) continue;
      if (hop.kind == ResponseKind::kEchoReply) {
        // The destination is nearer than Doubletree's h; keep walking
        // down to find the true distance and the path below it.
        if (reach_ttl == 0 || t < reach_ttl) reach_ttl = t;
        continue;
      }
      const bool stop = gate->stop_backward(hop.address, t);
      gate->record(hop.address, t);
      if (stop) {
        result.backward_stop_ttl = t;
        result.probes_saved += static_cast<std::uint64_t>(t - 1);
        const auto below = gate->backfill(hop.address, t);
        if (static_cast<int>(below.size()) >= t - 1) {
          for (int bt = 1; bt < t; ++bt) {
            TracerouteHop& bh = trace_hops_[static_cast<std::size_t>(bt)];
            bh.ttl = bt;
            bh.responded = true;
            bh.address = below[static_cast<std::size_t>(bt - 1)];
            bh.kind = ResponseKind::kTtlExceeded;
            bh.from_stopset = true;
          }
        }
        break;
      }
    }
  }

  // ------------------------------------------------------ assembly
  // Ascending TTL; trimmed at the echo (overshot window probes past the
  // destination are dropped, like the classic engine that never sent
  // them) or at the forward stop. probes_saved counts only the TTL slots
  // a backward stop provably skipped — a forward stop's savings depend on
  // the unprobed distance, so benches measure them off-vs-on instead.
  result.probes_sent = sent;
  int end_ttl = max_ttl;
  if (reach_ttl > 0) {
    result.reached = true;
    end_ttl = reach_ttl;
  } else if (result.forward_stop_ttl > 0) {
    end_ttl = result.forward_stop_ttl;
  }
  result.hops.clear();
  result.hops.reserve(static_cast<std::size_t>(end_ttl));
  for (int t = 1; t <= end_ttl; ++t) {
    const TracerouteHop& hop = trace_hops_[static_cast<std::size_t>(t)];
    if (hop.ttl == t) result.hops.push_back(hop);
  }

  sim::NetCounters tally;
  for (int k = 0; k < window; ++k) {
    tally.merge(trace_ctxs_[static_cast<std::size_t>(k)].counters);
  }
  if (options.counters != nullptr) {
    options.counters->merge(tally);
  } else {
    network_->merge_counters(tally);
  }
  return result;
}

}  // namespace rr::probe
