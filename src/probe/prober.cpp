#include "probe/prober.h"

#include "packet/datagram.h"
#include "packet/mutate.h"
#include "packet/udp.h"

namespace rr::probe {

const char* to_string(ProbeType type) noexcept {
  switch (type) {
    case ProbeType::kPing: return "ping";
    case ProbeType::kPingRr: return "ping-RR";
    case ProbeType::kPingRrUdp: return "ping-RRudp";
    case ProbeType::kPingTs: return "ping-TS";
  }
  return "?";
}

const char* to_string(ResponseKind kind) noexcept {
  switch (kind) {
    case ResponseKind::kNone: return "none";
    case ResponseKind::kEchoReply: return "echo-reply";
    case ResponseKind::kTtlExceeded: return "ttl-exceeded";
    case ResponseKind::kPortUnreachable: return "port-unreachable";
  }
  return "?";
}

std::string ProbeResult::to_string() const {
  std::string out = std::string{probe::to_string(type)} + " " +
                    target.to_string() + " -> " + probe::to_string(kind);
  if (rr_option_in_reply) {
    out += " rr[";
    for (std::size_t i = 0; i < rr_recorded.size(); ++i) {
      out += (i ? "," : "") + rr_recorded[i].to_string();
    }
    out += "]+" + std::to_string(rr_free_slots);
  }
  if (quoted_rr_present) {
    out += " quoted-rr(" + std::to_string(quoted_rr.size()) + "+" +
           std::to_string(quoted_rr_free_slots) + " free)";
  }
  return out;
}

Prober::Prober(sim::Network& network, topo::HostId source,
               ProberOptions options)
    : network_(&network),
      source_(source),
      source_address_(network.topology().host_at(source).address),
      icmp_id_(options.icmp_id != 0
                   ? options.icmp_id
                   : static_cast<std::uint16_t>(0x4000 | (source & 0x3fff))),
      clock_(options.start_time),
      interval_(1.0 / options.pps) {}

ProbeResult Prober::probe(const ProbeSpec& spec, sim::SendContext* ctx) {
  // Reset here, not just in Network::send: an early return before the send
  // (serialize failure) must not leave the previous probe's trace behind
  // for a deferred-replay caller to mistake for this probe's.
  if (ctx != nullptr) ctx->trace.reset();
  const double send_time = clock_;
  clock_ += interval_;
  ++sent_;
  const std::uint16_t seq = next_seq_++;

  pkt::Datagram datagram;
  if (spec.type == ProbeType::kPingRrUdp) {
    const std::uint16_t dst_port = static_cast<std::uint16_t>(
        pkt::kUdpProbePortBase + (next_udp_port_++ % 256));
    datagram = pkt::make_udp_probe(source_address_, spec.target,
                                   static_cast<std::uint16_t>(0x8000 | seq),
                                   dst_port, spec.ttl, spec.rr_slots);
  } else if (spec.type == ProbeType::kPingTs) {
    datagram = pkt::make_ping_ts(source_address_, spec.target, icmp_id_, seq,
                                 spec.ttl, spec.rr_slots);
  } else {
    const int slots = spec.type == ProbeType::kPingRr ? spec.rr_slots : 0;
    datagram = pkt::make_ping(source_address_, spec.target, icmp_id_, seq,
                              spec.ttl, slots);
  }

  ProbeResult result;
  result.target = spec.target;
  result.type = spec.type;
  result.send_time = send_time;

  auto bytes = datagram.serialize();
  if (!bytes) return result;
  const auto delivery =
      network_->send(source_, std::move(*bytes), send_time, ctx);
  if (!delivery) return result;
  return parse_response(spec, seq, send_time, *delivery);
}

ProbeResult Prober::parse_response(const ProbeSpec& spec, std::uint16_t seq,
                                   double send_time,
                                   const sim::Network::Delivery& delivery) {
  ProbeResult result;
  result.target = spec.target;
  result.type = spec.type;
  result.send_time = send_time;

  const auto reply = pkt::Datagram::parse(delivery.bytes);
  if (!reply) return result;
  const auto* icmp = reply->icmp();
  if (!icmp) return result;

  result.responder = reply->header.source;
  result.reply_ip_id = reply->header.identification;

  if (icmp->type == pkt::IcmpType::kEchoReply) {
    const auto* echo = icmp->echo();
    if (!echo || echo->identifier != icmp_id_ || echo->sequence != seq) {
      ++mismatched_;
      return result;
    }
    result.kind = ResponseKind::kEchoReply;
    result.rtt = delivery.time - send_time;
    if (const auto* rr = reply->header.record_route()) {
      result.rr_option_in_reply = true;
      result.rr_recorded = rr->recorded;
      result.rr_free_slots = rr->remaining_slots();
    }
    if (const auto* ts = pkt::find_timestamp(reply->header.options)) {
      result.ts_option_in_reply = true;
      for (const auto& entry : ts->entries) {
        result.ts_entries.emplace_back(entry.address, entry.timestamp_ms);
      }
      result.ts_overflow = ts->overflow;
    }
    ++matched_;
    return result;
  }

  // ICMP errors: validate against the quoted datagram.
  const auto* body = icmp->error_body();
  if (!body) return result;
  const auto quoted_header = pkt::Ipv4Header::parse(body->quoted_datagram);
  if (!quoted_header || quoted_header->destination != spec.target ||
      quoted_header->source != source_address_) {
    ++mismatched_;
    return result;
  }

  if (icmp->type == pkt::IcmpType::kTimeExceeded) {
    result.kind = ResponseKind::kTtlExceeded;
  } else if (icmp->type == pkt::IcmpType::kDestUnreachable &&
             icmp->code == pkt::kCodePortUnreachable) {
    result.kind = ResponseKind::kPortUnreachable;
  } else {
    ++mismatched_;
    return result;
  }
  result.rtt = delivery.time - send_time;
  if (const auto* rr = quoted_header->record_route()) {
    result.quoted_rr_present = true;
    result.quoted_rr = rr->recorded;
    result.quoted_rr_free_slots = rr->remaining_slots();
  }
  ++matched_;
  return result;
}

TracerouteResult Prober::traceroute(net::IPv4Address target, int max_ttl,
                                    int attempts) {
  TracerouteResult result;
  result.target = target;
  for (int ttl = 1; ttl <= max_ttl; ++ttl) {
    TracerouteHop hop;
    hop.ttl = ttl;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      ProbeSpec spec = ProbeSpec::ping(target);
      spec.ttl = static_cast<std::uint8_t>(ttl);
      const ProbeResult probe_result = probe(spec);
      if (!probe_result.responded()) continue;
      hop.responded = true;
      hop.address = probe_result.responder;
      hop.kind = probe_result.kind;
      break;
    }
    result.hops.push_back(hop);
    if (hop.kind == ResponseKind::kEchoReply) {
      result.reached = true;
      break;
    }
  }
  return result;
}

}  // namespace rr::probe
