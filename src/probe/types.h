// Probe and response records — the prober's public vocabulary.
//
// A ProbeResult carries everything the measurement pipeline is allowed to
// know: what was sent, what came back, and what the RR option / quoted
// header contained. Simulator ground truth is never referenced.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "netbase/address.h"

namespace rr::probe {

enum class ProbeType : std::uint8_t {
  kPing = 0,        // plain ICMP echo request
  kPingRr = 1,      // echo request with a Record Route option
  kPingRrUdp = 2,   // UDP to a high closed port with Record Route
  kPingTs = 3,      // echo request with a Timestamp option (flag 1)
};

[[nodiscard]] const char* to_string(ProbeType type) noexcept;

enum class ResponseKind : std::uint8_t {
  kNone = 0,
  kEchoReply = 1,
  kTtlExceeded = 2,
  kPortUnreachable = 3,
};

[[nodiscard]] const char* to_string(ResponseKind kind) noexcept;

struct ProbeSpec {
  net::IPv4Address target;
  ProbeType type = ProbeType::kPing;
  std::uint8_t ttl = 64;
  int rr_slots = 9;  // used by the RR probe types

  [[nodiscard]] static ProbeSpec ping(net::IPv4Address target) {
    return {target, ProbeType::kPing, 64, 0};
  }
  [[nodiscard]] static ProbeSpec ping_rr(net::IPv4Address target,
                                         std::uint8_t ttl = 64) {
    return {target, ProbeType::kPingRr, ttl, 9};
  }
  [[nodiscard]] static ProbeSpec ping_rr_udp(net::IPv4Address target) {
    return {target, ProbeType::kPingRrUdp, 64, 9};
  }
  [[nodiscard]] static ProbeSpec ping_ts(net::IPv4Address target) {
    return {target, ProbeType::kPingTs, 64, 4};
  }
};

struct ProbeResult {
  net::IPv4Address target;
  ProbeType type = ProbeType::kPing;
  ResponseKind kind = ResponseKind::kNone;
  net::IPv4Address responder;  // outer source of the response

  /// Record Route data copied into the *reply* header (echo replies).
  bool rr_option_in_reply = false;
  std::vector<net::IPv4Address> rr_recorded;
  int rr_free_slots = 0;

  /// Timestamp-option data copied into the reply (ping-TS probes).
  bool ts_option_in_reply = false;
  std::vector<std::pair<net::IPv4Address, std::uint32_t>> ts_entries;
  int ts_overflow = 0;

  /// Record Route data recovered from the quoted datagram of an ICMP
  /// error (Time Exceeded / Port Unreachable).
  bool quoted_rr_present = false;
  std::vector<net::IPv4Address> quoted_rr;
  int quoted_rr_free_slots = 0;

  std::uint16_t reply_ip_id = 0;  // IP-ID of the response (alias resolution)
  double send_time = 0.0;
  double rtt = -1.0;  // seconds; negative when unanswered

  [[nodiscard]] bool responded() const noexcept {
    return kind != ResponseKind::kNone;
  }

  /// Returns the result to its default state while keeping the vectors'
  /// storage, so a reused result allocates nothing once warmed up.
  void reset() noexcept {
    target = net::IPv4Address{};
    type = ProbeType::kPing;
    kind = ResponseKind::kNone;
    responder = net::IPv4Address{};
    rr_option_in_reply = false;
    rr_recorded.clear();
    rr_free_slots = 0;
    ts_option_in_reply = false;
    ts_entries.clear();
    ts_overflow = 0;
    quoted_rr_present = false;
    quoted_rr.clear();
    quoted_rr_free_slots = 0;
    reply_ip_id = 0;
    send_time = 0.0;
    rtt = -1.0;
  }

  [[nodiscard]] std::string to_string() const;
};

/// One hop of a traceroute.
struct TracerouteHop {
  int ttl = 0;
  bool responded = false;
  net::IPv4Address address;            // responder (when responded)
  ResponseKind kind = ResponseKind::kNone;
  /// True when the hop was not probed but backfilled from a stop-set
  /// path memo (see TraceGate::backfill) — known, not re-measured.
  bool from_stopset = false;
};

/// Redundancy-aware probing hooks for Prober::traceroute (Doubletree stop
/// sets — implemented by measure::DoubletreeGate; the interface lives here
/// so probe/ stays independent of measure/). A gate-driven trace probes
/// *forward* from hop h = begin() until the destination answers or
/// stop_forward() recognizes an (interface, destination-prefix) fact,
/// then *backward* from h-1 down to 1 until stop_backward() recognizes an
/// (interface, TTL) fact this monitor has seen before.
class TraceGate {
 public:
  virtual ~TraceGate() = default;

  /// Starts a trace toward `target`; returns the TTL to begin forward
  /// probing at (Doubletree's h; clamped by the caller to [1, max_ttl]).
  virtual int begin(net::IPv4Address target) = 0;
  /// Forward stop: the path from `iface` to the target's prefix is
  /// already known to some monitor.
  virtual bool stop_forward(net::IPv4Address iface, int ttl) = 0;
  /// Backward stop: this monitor has already seen `iface` at `ttl`.
  virtual bool stop_backward(net::IPv4Address iface, int ttl) = 0;
  /// Every TTL-exceeded responder observed by the trace.
  virtual void record(net::IPv4Address iface, int ttl) = 0;
  /// Hops 1..ttl-1 below a backward stop at (`iface`, `ttl`), when the
  /// gate memoizes paths (index i = TTL i+1); empty when unknown, in
  /// which case the stop still holds but the hops stay unprobed.
  virtual std::span<const net::IPv4Address> backfill(net::IPv4Address iface,
                                                     int ttl) = 0;
};

struct TracerouteResult {
  net::IPv4Address target;
  std::vector<TracerouteHop> hops;  // ascending TTL; contiguous probed range
  bool reached = false;

  /// TTL the forward sweep started at (Doubletree's h; 1 = classic).
  int first_ttl = 1;
  /// >0: the global stop set ended the forward sweep at this TTL.
  int forward_stop_ttl = 0;
  /// >0: the local stop set ended the backward sweep at this TTL.
  int backward_stop_ttl = 0;
  std::uint64_t probes_sent = 0;
  /// TTL slots a stop fact excused this trace from probing.
  std::uint64_t probes_saved = 0;

  /// Number of probing hops to the destination (TTL at which the echo
  /// reply arrived); -1 when the destination was not reached.
  [[nodiscard]] int hop_count() const noexcept {
    return reached && !hops.empty() ? hops.back().ttl : -1;
  }
};

}  // namespace rr::probe
