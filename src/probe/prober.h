// A scamper-like probing engine bound to one vantage point.
//
// The prober owns a virtual send clock paced at a configurable packets-per-
// second rate (the paper's studies ran at 20 pps; §4.1 compares 10 and 100),
// builds real probe datagrams, injects them into the Network, and parses
// responses into ProbeResults, validating that a response actually matches
// the outstanding probe (id/seq for echoes, quoted headers for errors).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "probe/types.h"
#include "sim/network.h"

namespace rr::probe {

struct ProberOptions {
  double pps = 20.0;           // probing rate (paper default)
  std::uint16_t icmp_id = 0;   // 0 = derive from source host id
  double start_time = 0.0;     // virtual campaign start
};

/// Knobs for Prober::traceroute. The engine probes the forward sweep in
/// TTL windows through the batched dataplane (probe_batch_into), and —
/// when a TraceGate is installed — runs Doubletree's split: forward from
/// hop gate->begin(), then backward toward TTL 1, stopping either sweep
/// as soon as the gate recognizes a known interface.
struct TraceOptions {
  int max_ttl = 30;
  int attempts = 2;  // probes per unresponsive TTL
  /// Forward-sweep batch width (TTLs in flight per Network::send_batch),
  /// clamped to [1, sim::WalkBatch::kMaxProbes]. Purely an execution
  /// detail: outcomes per probe are unchanged, only the order probes hit
  /// the wire within a window (they are walked batch-major).
  int window = 4;
  /// Redundancy-aware stopping rules; nullptr = classic full trace.
  TraceGate* gate = nullptr;
  /// Sink for the trace's network counters. Traces always run the
  /// deferred (SendContext) dataplane mode; with a sink the tally is
  /// merged there (concurrent callers: one sink per worker, merge into
  /// the network at a serial point), without one it is folded straight
  /// into the network totals — serial callers only.
  sim::NetCounters* counters = nullptr;
};

class Prober {
 public:
  using Options = ProberOptions;

  Prober(sim::Network& network, topo::HostId source,
         ProberOptions options = ProberOptions{});

  /// Sends one probe at the next paced slot and returns its result.
  ProbeResult probe(const ProbeSpec& spec) { return probe(spec, nullptr); }

  /// Same, but routes simulator bookkeeping through `ctx` so that probes
  /// from different probers can run on concurrent threads (see
  /// sim::SendContext). The clock still advances one paced slot per call
  /// whether or not a response arrives, so send times — and therefore
  /// outcomes — depend only on the probe stream, not on thread timing.
  ProbeResult probe(const ProbeSpec& spec, sim::SendContext* ctx) {
    ProbeResult result;
    probe_into(spec, ctx, result);
    return result;
  }

  /// Allocation-free probe: builds the datagram in the prober's reusable
  /// buffer, sends it with Network::send_reusing, parses the response
  /// without materializing a Datagram, and reclaims the delivery's storage.
  /// `out` is reset first (its vectors keep their capacity), so a caller
  /// that reuses one result performs zero heap allocations per exchange
  /// once the buffers have warmed up.
  void probe_into(const ProbeSpec& spec, sim::SendContext* ctx,
                  ProbeResult& out);

  /// Batched variant: builds up to sim::WalkBatch::kMaxProbes datagrams
  /// into recycled per-slot buffers and hands them to Network::send_batch,
  /// which walks all forward legs (then all reply legs) element-pass-major.
  /// Each slot gets its own SendContext so counters and traces stay
  /// per-probe; pacing, sequence numbers, and parsing are identical to
  /// calling probe_into once per spec, in order. `specs`, `ctxs`, and
  /// `results` must have equal sizes.
  void probe_batch_into(std::span<const ProbeSpec> specs,
                        std::span<sim::SendContext> ctxs,
                        std::span<ProbeResult> results);

  /// Traceroute: TTL-limited pings until the target answers, a stop-set
  /// rule fires (options.gate), or the TTL budget is exhausted. Probes run
  /// in batched windows over the deferred dataplane, so a trace's probe
  /// outcomes are a pure function of its probe stream — identical whether
  /// traces run serially or on concurrent threads (with per-thread
  /// probers/counter sinks). Plain pings carry no IP options, so the
  /// deferred mode's optimistic bucket events never occur and no replay
  /// pass is needed.
  [[nodiscard]] TracerouteResult traceroute(net::IPv4Address target,
                                            const TraceOptions& options);

  /// Classic convenience form: full trace from TTL 1, no stop sets.
  [[nodiscard]] TracerouteResult traceroute(net::IPv4Address target,
                                            int max_ttl = 30,
                                            int attempts = 2);

  /// Virtual clock (seconds since campaign start).
  [[nodiscard]] double clock() const noexcept { return clock_; }
  void set_clock(double t) noexcept { clock_ = t; }
  void set_pps(double pps) noexcept { interval_ = 1.0 / pps; }

  [[nodiscard]] topo::HostId source() const noexcept { return source_; }
  [[nodiscard]] net::IPv4Address source_address() const noexcept {
    return source_address_;
  }

  /// Probes sent / responses matched (diagnostics).
  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t matched() const noexcept { return matched_; }
  [[nodiscard]] std::uint64_t mismatched() const noexcept {
    return mismatched_;
  }
  /// Times the reusable probe buffer's capacity grew across a probe — flat
  /// once the largest probe/reply geometry has been seen.
  [[nodiscard]] std::uint64_t buffer_growths() const noexcept {
    return buffer_growths_;
  }

 private:
  /// Serializes the probe datagram for `spec` into `buf` (reused storage),
  /// advancing the UDP destination-port rotation when applicable.
  void build_probe_into(const ProbeSpec& spec, std::uint16_t seq,
                        std::vector<std::uint8_t>& buf);

  void parse_response_into(const ProbeSpec& spec, std::uint16_t seq,
                           double send_time,
                           const sim::Network::Delivery& delivery,
                           ProbeResult& out);

  sim::Network* network_;
  topo::HostId source_;
  net::IPv4Address source_address_;
  std::uint16_t icmp_id_;
  std::uint16_t next_seq_ = 1;
  std::uint16_t next_udp_port_ = 0;
  double clock_;
  double interval_;
  std::uint64_t sent_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t mismatched_ = 0;
  std::vector<std::uint8_t> buf_;  // probe/reply storage, recycled
  // Per-slot storage for probe_batch_into, recycled the same way; grows to
  // the batch width once and then stays flat.
  std::vector<std::vector<std::uint8_t>> batch_bufs_;
  std::uint64_t buffer_growths_ = 0;
  // Traceroute scratch (specs/contexts/results for one window, plus the
  // TTL-indexed hop buffer), reused across traces so a census performs no
  // steady-state allocation per trace.
  std::vector<ProbeSpec> trace_specs_;
  std::vector<sim::SendContext> trace_ctxs_;
  std::vector<ProbeResult> trace_results_;
  std::vector<TracerouteHop> trace_hops_;
};

}  // namespace rr::probe
