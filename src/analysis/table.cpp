#include "analysis/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace rr::analysis {

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << (c == 0 ? "" : "  ")
          << (c == 0 ? util::pad_right(cell, widths[c])
                     : util::pad_left(cell, widths[c]));
    }
    out << "\n";
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

std::string count_cell(std::uint64_t count, double fraction) {
  return util::with_commas(count) + " (" + util::percent(fraction) + ")";
}

}  // namespace rr::analysis
