// Fixed-width text tables, used by the bench binaries to print rows in the
// same layout the paper's tables use.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rr::analysis {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with column auto-sizing; header separated by a rule.
  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "count (pct%)" cell in the style of Table 1.
[[nodiscard]] std::string count_cell(std::uint64_t count, double fraction);

}  // namespace rr::analysis
