// Labeled (x, y) series with text rendering — the bench binaries print
// every figure as one or more named series so the paper's plots can be
// regenerated with any plotting tool (a gnuplot-compatible block format).
#pragma once

#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace rr::analysis {

struct Series {
  std::string label;
  std::vector<std::pair<double, double>> points;

  void add(double x, double y) { points.emplace_back(x, y); }
};

class FigureData {
 public:
  FigureData(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  /// Adds a series and returns a STABLE reference (the container is a
  /// deque precisely so that references survive later add_series calls).
  Series& add_series(std::string label) {
    series_.push_back(Series{std::move(label), {}});
    return series_.back();
  }

  /// Renders all series as "# series: <label>" blocks of "x y" lines.
  void print(std::ostream& out) const;

  /// Writes a CSV with one x column and one column per series (points are
  /// aligned by x across series; missing values are blank).
  bool write_csv(const std::string& path) const;

  [[nodiscard]] const std::deque<Series>& series() const noexcept {
    return series_;
  }

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::deque<Series> series_;
};

}  // namespace rr::analysis
