// Empirical CDFs over numeric samples — the workhorse of every figure in
// the paper (Figures 1, 2, 3 are CDFs; Figure 5 is a response-rate curve
// derived from grouped samples).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace rr::analysis {

class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
    std::sort(samples_.begin(), samples_.end());
  }

  void add(double sample) {
    samples_.insert(
        std::lower_bound(samples_.begin(), samples_.end(), sample), sample);
  }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Fraction of samples <= x, in [0, 1]. 0 for an empty CDF.
  [[nodiscard]] double fraction_at_or_below(double x) const noexcept {
    if (samples_.empty()) return 0.0;
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  /// Smallest sample value v such that fraction_at_or_below(v) >= q.
  /// Requires a non-empty CDF and q in [0, 1].
  [[nodiscard]] double value_at_quantile(double q) const noexcept {
    if (samples_.empty()) return 0.0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    const std::size_t index = std::min(
        samples_.size() - 1,
        static_cast<std::size_t>(clamped *
                                 static_cast<double>(samples_.size())));
    return samples_[index];
  }

  [[nodiscard]] double min() const noexcept {
    return samples_.empty() ? 0.0 : samples_.front();
  }
  [[nodiscard]] double max() const noexcept {
    return samples_.empty() ? 0.0 : samples_.back();
  }
  [[nodiscard]] double mean() const noexcept {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }
  [[nodiscard]] double median() const noexcept {
    return value_at_quantile(0.5);
  }

  /// Evaluates the CDF at the integer grid [lo, hi] — the rendering used
  /// for hop-count figures.
  [[nodiscard]] std::vector<std::pair<int, double>> integer_points(
      int lo, int hi) const {
    std::vector<std::pair<int, double>> out;
    out.reserve(static_cast<std::size_t>(hi - lo + 1));
    for (int x = lo; x <= hi; ++x) {
      out.emplace_back(x, fraction_at_or_below(x));
    }
    return out;
  }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  std::vector<double> samples_;
};

}  // namespace rr::analysis
