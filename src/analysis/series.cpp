#include "analysis/series.h"

#include <fstream>
#include <limits>
#include <map>
#include <ostream>

#include "util/strings.h"

namespace rr::analysis {

void FigureData::print(std::ostream& out) const {
  out << "# figure: " << title_ << "\n";
  out << "# x: " << x_label_ << ", y: " << y_label_ << "\n";
  for (const auto& series : series_) {
    out << "# series: " << series.label << "\n";
    for (const auto& [x, y] : series.points) {
      out << util::fixed(x, 3) << " " << util::fixed(y, 4) << "\n";
    }
    out << "\n";
  }
}

bool FigureData::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  // Collect the union of x values.
  std::map<double, std::vector<double>> rows;
  for (std::size_t s = 0; s < series_.size(); ++s) {
    for (const auto& [x, y] : series_[s].points) {
      auto& row = rows[x];
      row.resize(series_.size(), std::numeric_limits<double>::quiet_NaN());
      row[s] = y;
    }
  }
  out << "x";
  for (const auto& series : series_) out << "," << series.label;
  out << "\n";
  for (auto& [x, row] : rows) {
    row.resize(series_.size(), std::numeric_limits<double>::quiet_NaN());
    out << util::fixed(x, 4);
    for (double y : row) {
      out << ",";
      if (y == y) out << util::fixed(y, 5);  // NaN-safe
    }
    out << "\n";
  }
  return true;
}

}  // namespace rr::analysis
