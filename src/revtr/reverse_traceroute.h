// Reverse Traceroute (Katz-Bassett et al., NSDI 2010) on top of the Record
// Route option — the system whose operational needs motivate the paper's
// whole reassessment ("within the 8 hop limit necessary to measure reverse
// paths from them to any host we control").
//
// To measure the path *from* destination D *back to* a source S we
// control, without any cooperation from D:
//
//   1. Find a vantage point V within 8 RR hops of D (so a ping-RR from V
//      arrives at D with at least one slot free).
//   2. V sends an RR ping to D spoofing S's address as the source. D's
//      echo reply — which carries the RR option — therefore travels the
//      D→S path, recording reverse routers in the remaining slots, and is
//      captured at S.
//   3. If the slots ran out before the reply reached S, take the last
//      recovered reverse hop H, and repeat from step 1 with H as the new
//      target (destination-based routing means H's path to S is a suffix
//      of D's).
//   4. When no VP is within range of the current hop, optionally fall
//      back to assuming the remaining path is the reverse of a forward
//      traceroute (marked as an assumption, exactly as the real system
//      reports it).
//
// The result is the reverse path D → S at router granularity, a path no
// traceroute can observe.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <string>
#include <vector>

#include "measure/campaign.h"
#include "measure/testbed.h"

namespace rr::revtr {

struct RevTrConfig {
  int max_segments = 10;          // spoofed-measurement iterations
  int attempts_per_segment = 3;   // retries (loss, rate limiting)
  int vps_to_try = 12;            // candidate VPs tested per segment
  double pps = 20.0;
  bool allow_symmetric_fallback = true;
  std::uint64_t seed = 0x4E7;
  /// Optional redundancy-aware stopping for the symmetric-fallback
  /// forward traceroutes (probe/types.h). Callers that batch many revtr
  /// measurements install a path-memoizing gate (a measure::DoubletreeGate
  /// with remember_paths, forward stops off) so repeated fallback traces
  /// skip the shared tree near the source; the gate backfills the skipped
  /// hops, keeping reported paths identical to full traces. Serial use
  /// only — measure() runs one trace at a time.
  probe::TraceGate* trace_gate = nullptr;
};

enum class HopSource : std::uint8_t {
  kSpoofedRr = 0,    // recovered from a spoofed ping-RR reply
  kAssumedSymmetric = 1,  // forward traceroute, assumed symmetric
  kSource = 2,       // the measuring source itself
};

[[nodiscard]] const char* to_string(HopSource source) noexcept;

struct ReverseHop {
  net::IPv4Address address;
  HopSource source = HopSource::kSpoofedRr;
};

struct ReversePath {
  net::IPv4Address destination;
  topo::HostId source_host = topo::kNoHost;
  /// Hops from the destination toward the source (destination excluded,
  /// source's first-hop routers included when recovered).
  std::vector<ReverseHop> hops;
  bool complete = false;      // reached the source's network
  int segments_used = 0;      // spoofed measurements consumed
  std::string failure;        // set when !complete and no fallback applied

  [[nodiscard]] std::size_t measured_hops() const noexcept {
    std::size_t count = 0;
    for (const auto& hop : hops) {
      if (hop.source == HopSource::kSpoofedRr) ++count;
    }
    return count;
  }
};

/// Reverse-path measurement engine bound to a testbed. An optional
/// campaign seeds the VP-proximity hints (the real system keeps exactly
/// such an atlas); without one, candidate VPs are probed on demand.
class ReverseTraceroute {
 public:
  ReverseTraceroute(measure::Testbed& testbed,
                    const measure::Campaign* campaign = nullptr,
                    RevTrConfig config = {});

  /// Measures the reverse path from `destination` back to `source_host`
  /// (one of our hosts — typically a VP or the probe host).
  [[nodiscard]] ReversePath measure(net::IPv4Address destination,
                                    topo::HostId source_host);

 private:
  struct SpoofResult {
    bool responded = false;
    std::vector<net::IPv4Address> reverse_hops;  // after the target's stamp
    bool slots_remained = false;  // reply arrived at S with room to spare
  };

  /// One spoofed ping-RR from `vp_host` to `target` with S's address; the
  /// reply (if it arrives at S) yields reverse hops of target -> S.
  [[nodiscard]] std::optional<SpoofResult> spoof_segment(
      topo::HostId vp_host, net::IPv4Address target, topo::HostId source);

  /// VP candidates ordered by (known) proximity to `target`.
  [[nodiscard]] std::vector<topo::HostId> candidate_vps(
      net::IPv4Address target) const;

  measure::Testbed* testbed_;
  const measure::Campaign* campaign_;
  RevTrConfig config_;
  util::Rng rng_;
  std::uint16_t next_id_ = 0x7a00;
  double clock_ = 0.0;
  /// Atlas index: probed address -> campaign destination index, built once
  /// so per-target candidate lookup is O(1) instead of a campaign scan.
  std::unordered_map<std::uint32_t, std::size_t> dest_index_;
};

}  // namespace rr::revtr
