#include "revtr/reverse_traceroute.h"

#include <algorithm>
#include <unordered_set>

#include "packet/datagram.h"
#include "probe/prober.h"
#include "util/log.h"

namespace rr::revtr {

const char* to_string(HopSource source) noexcept {
  switch (source) {
    case HopSource::kSpoofedRr: return "rr";
    case HopSource::kAssumedSymmetric: return "sym";
    case HopSource::kSource: return "src";
  }
  return "?";
}

ReverseTraceroute::ReverseTraceroute(measure::Testbed& testbed,
                                     const measure::Campaign* campaign,
                                     RevTrConfig config)
    : testbed_(&testbed),
      campaign_(campaign),
      config_(config),
      rng_(config.seed) {
  if (campaign_ != nullptr) {
    dest_index_.reserve(campaign_->num_destinations());
    for (std::size_t d = 0; d < campaign_->num_destinations(); ++d) {
      dest_index_.emplace(
          campaign_->topology()
              .host_at(campaign_->destinations()[d])
              .address.value(),
          d);
    }
  }
}

std::vector<topo::HostId> ReverseTraceroute::candidate_vps(
    net::IPv4Address target) const {
  std::vector<topo::HostId> out;

  // Atlas lookup: if the campaign probed this exact destination, order the
  // VPs that proved in-range (a stamp at slot <= 8 leaves room for at
  // least one reverse hop) by their RR distance.
  if (campaign_ != nullptr) {
    const auto it = dest_index_.find(target.value());
    if (it != dest_index_.end()) {
      const std::size_t d = it->second;
      std::vector<std::pair<int, topo::HostId>> ranked;
      for (std::size_t v = 0; v < campaign_->num_vps(); ++v) {
        const auto& obs = campaign_->at(v, d);
        if (obs.rr_reachable() && obs.dest_slot <= 8) {
          ranked.emplace_back(obs.dest_slot, campaign_->vps()[v]->host);
        }
      }
      std::sort(ranked.begin(), ranked.end());
      for (const auto& [dist, host] : ranked) out.push_back(host);
    }
  }

  // Fallback candidates: M-Lab first (closest to the fabric), then the
  // rest, in a deterministic shuffled order.
  std::vector<topo::HostId> mlab, others;
  for (const auto* vp : testbed_->vps()) {
    (vp->platform == topo::Platform::kMLab ? mlab : others)
        .push_back(vp->host);
  }
  util::Rng order_rng{util::hash_label("revtr-vps") ^ target.value()};
  order_rng.shuffle(mlab);
  order_rng.shuffle(others);
  out.insert(out.end(), mlab.begin(), mlab.end());
  out.insert(out.end(), others.begin(), others.end());

  // Deduplicate, keeping the first (best-ranked) occurrence.
  std::unordered_set<topo::HostId> seen;
  std::vector<topo::HostId> unique;
  for (const topo::HostId host : out) {
    if (seen.insert(host).second) unique.push_back(host);
  }
  return unique;
}

std::optional<ReverseTraceroute::SpoofResult>
ReverseTraceroute::spoof_segment(topo::HostId vp_host,
                                 net::IPv4Address target,
                                 topo::HostId source) {
  const auto source_addr = testbed_->topology().host_at(source).address;
  const std::uint16_t id = ++next_id_;
  // The probe claims to come from S; V merely injects it.
  const auto probe =
      pkt::make_ping(source_addr, target, id, 1, /*ttl=*/64, /*rr_slots=*/9);
  auto bytes = probe.serialize();
  if (!bytes) return std::nullopt;

  clock_ += 1.0 / config_.pps;
  const auto delivery =
      testbed_->network().send(vp_host, std::move(*bytes), clock_);
  if (!delivery) return std::nullopt;
  if (delivery->receiver != source) return std::nullopt;  // mis-delivered

  const auto reply = pkt::Datagram::parse(delivery->bytes);
  if (!reply || !reply->icmp() ||
      reply->icmp()->type != pkt::IcmpType::kEchoReply) {
    return std::nullopt;
  }
  const auto* echo = reply->icmp()->echo();
  if (!echo || echo->identifier != id) return std::nullopt;
  const auto* rr = reply->header.record_route();
  if (!rr) return std::nullopt;

  const auto stamp =
      std::find(rr->recorded.begin(), rr->recorded.end(), target);
  if (stamp == rr->recorded.end()) {
    // The target did not record itself (too far from this VP, or a
    // non-stamping device): this VP cannot anchor the segment.
    return std::nullopt;
  }

  SpoofResult result;
  result.responded = true;
  result.reverse_hops.assign(stamp + 1, rr->recorded.end());
  result.slots_remained = rr->remaining_slots() > 0;
  return result;
}

ReversePath ReverseTraceroute::measure(net::IPv4Address destination,
                                       topo::HostId source_host) {
  ReversePath path;
  path.destination = destination;
  path.source_host = source_host;

  std::unordered_set<std::uint32_t> visited{destination.value()};
  net::IPv4Address current = destination;

  for (int segment = 0; segment < config_.max_segments; ++segment) {
    std::optional<SpoofResult> best;
    auto vps = candidate_vps(current);
    // The source itself is the cheapest vantage point when in range.
    vps.insert(vps.begin(), source_host);
    int tried = 0;
    for (const topo::HostId vp : vps) {
      if (tried >= config_.vps_to_try) break;
      ++tried;
      for (int attempt = 0; attempt < config_.attempts_per_segment;
           ++attempt) {
        best = spoof_segment(vp, current, source_host);
        if (best && (!best->reverse_hops.empty() || best->slots_remained)) {
          break;
        }
        best.reset();
      }
      if (best) break;
    }

    if (!best) break;  // no vantage point could anchor this segment
    ++path.segments_used;

    bool advanced = false;
    for (const auto& hop : best->reverse_hops) {
      if (!visited.insert(hop.value()).second) continue;  // routing loop?
      path.hops.push_back(ReverseHop{hop, HopSource::kSpoofedRr});
      advanced = true;
    }
    if (best->slots_remained) {
      // The reply reached S with slots to spare: every stamping reverse
      // router is on record — the path is complete.
      path.complete = true;
      return path;
    }
    if (!advanced) break;  // stuck: slots exhausted with nothing new
    current = path.hops.back().address;
  }

  if (config_.allow_symmetric_fallback) {
    // Forward traceroute S -> current, reversed, marked as an assumption
    // (exactly how the real system degrades).
    auto prober = testbed_->make_prober(source_host, config_.pps);
    probe::TraceOptions topts;
    topts.max_ttl = 30;
    topts.gate = config_.trace_gate;
    const auto trace = prober.traceroute(current, topts);
    if (trace.reached) {
      std::vector<net::IPv4Address> forward;
      for (const auto& hop : trace.hops) {
        if (hop.responded &&
            hop.kind == probe::ResponseKind::kTtlExceeded) {
          forward.push_back(hop.address);
        }
      }
      for (auto it = forward.rbegin(); it != forward.rend(); ++it) {
        if (!visited.insert(it->value()).second) continue;
        path.hops.push_back(ReverseHop{*it, HopSource::kAssumedSymmetric});
      }
      path.complete = true;
      return path;
    }
    path.failure = "no vantage point in range and the symmetric fallback "
                   "traceroute did not reach the target";
    return path;
  }

  path.failure = "slots exhausted before reaching the source and fallback "
                 "disabled";
  return path;
}

}  // namespace rr::revtr
