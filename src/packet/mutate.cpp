#include "packet/mutate.h"

#include "netbase/checksum.h"
#include "packet/options.h"

namespace rr::pkt {

namespace {

/// Header length in bytes if the buffer plausibly starts with IPv4,
/// otherwise 0.
std::size_t plausible_header_len(
    std::span<const std::uint8_t> datagram) noexcept {
  if (datagram.size() < 20) return 0;
  if ((datagram[0] >> 4) != 4) return 0;
  const std::size_t header_bytes =
      static_cast<std::size_t>(datagram[0] & 0x0f) * 4;
  if (header_bytes < 20 || header_bytes > datagram.size()) return 0;
  return header_bytes;
}

std::uint16_t read_u16(std::span<const std::uint8_t> buffer,
                       std::size_t offset) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{buffer[offset]} << 8) |
                                    buffer[offset + 1]);
}

void write_u16(std::span<std::uint8_t> buffer, std::size_t offset,
               std::uint16_t value) noexcept {
  buffer[offset] = static_cast<std::uint8_t>(value >> 8);
  buffer[offset + 1] = static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<std::uint8_t> peek_ttl(
    std::span<const std::uint8_t> datagram) noexcept {
  if (plausible_header_len(datagram) == 0) return std::nullopt;
  return datagram[8];
}

std::optional<std::uint8_t> peek_protocol(
    std::span<const std::uint8_t> datagram) noexcept {
  if (plausible_header_len(datagram) == 0) return std::nullopt;
  return datagram[9];
}

std::optional<net::IPv4Address> peek_source(
    std::span<const std::uint8_t> datagram) noexcept {
  if (plausible_header_len(datagram) == 0) return std::nullopt;
  return net::IPv4Address::from_bytes(datagram[12], datagram[13], datagram[14],
                                      datagram[15]);
}

std::optional<net::IPv4Address> peek_destination(
    std::span<const std::uint8_t> datagram) noexcept {
  if (plausible_header_len(datagram) == 0) return std::nullopt;
  return net::IPv4Address::from_bytes(datagram[16], datagram[17], datagram[18],
                                      datagram[19]);
}

bool has_ip_options(std::span<const std::uint8_t> datagram) noexcept {
  return plausible_header_len(datagram) > 20;
}

std::optional<RrLocation> find_rr(
    std::span<const std::uint8_t> datagram) noexcept {
  const std::size_t header_bytes = plausible_header_len(datagram);
  if (header_bytes <= 20) return std::nullopt;
  std::size_t i = 20;
  while (i < header_bytes) {
    const std::uint8_t type = datagram[i];
    if (type == kOptEndOfList) return std::nullopt;
    if (type == kOptNop) {
      ++i;
      continue;
    }
    if (i + 1 >= header_bytes) return std::nullopt;
    const std::uint8_t length = datagram[i + 1];
    if (length < 2 || i + length > header_bytes) return std::nullopt;
    if (type == kOptRecordRoute) {
      if (length < 3 || (length - 3) % 4 != 0) return std::nullopt;
      const std::uint8_t pointer = datagram[i + 2];
      if (pointer < kRrMinPointer || (pointer - kRrMinPointer) % 4 != 0) {
        return std::nullopt;
      }
      if ((pointer - kRrMinPointer) / 4 > (length - 3) / 4) return std::nullopt;
      RrLocation loc;
      loc.option_offset = i;
      loc.length = length;
      loc.pointer = pointer;
      return loc;
    }
    i += length;
  }
  return std::nullopt;
}

std::optional<std::uint8_t> decrement_ttl(
    std::span<std::uint8_t> datagram) noexcept {
  if (plausible_header_len(datagram) == 0) return std::nullopt;
  const std::uint8_t ttl = datagram[8];
  if (ttl == 0) return std::nullopt;

  // RFC 1624 incremental checksum update: HC' = ~(~HC + ~m + m'), where m
  // is the old 16-bit word containing the TTL and m' the new one.
  const std::uint16_t old_word = read_u16(datagram, 8);
  const std::uint16_t new_word =
      static_cast<std::uint16_t>(old_word - 0x0100);
  datagram[8] = static_cast<std::uint8_t>(ttl - 1);
  std::uint32_t sum =
      static_cast<std::uint32_t>(~read_u16(datagram, 10) & 0xffff);
  sum += static_cast<std::uint32_t>(~old_word & 0xffff);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  write_u16(datagram, 10, static_cast<std::uint16_t>(~sum & 0xffff));
  return datagram[8];
}

bool rr_stamp(std::span<std::uint8_t> datagram,
              net::IPv4Address address) noexcept {
  const auto loc = find_rr(datagram);
  if (!loc || loc->full()) return false;

  const std::size_t slot =
      loc->option_offset + loc->pointer - 1;  // pointer is 1-based
  const auto bytes = address.to_bytes();
  datagram[slot] = bytes[0];
  datagram[slot + 1] = bytes[1];
  datagram[slot + 2] = bytes[2];
  datagram[slot + 3] = bytes[3];
  datagram[loc->option_offset + 2] =
      static_cast<std::uint8_t>(loc->pointer + 4);
  return rewrite_header_checksum(datagram);
}

bool ts_stamp(std::span<std::uint8_t> datagram, net::IPv4Address address,
              std::uint32_t timestamp_ms) noexcept {
  const std::size_t header_bytes = plausible_header_len(datagram);
  if (header_bytes <= 20) return false;
  std::size_t i = 20;
  while (i < header_bytes) {
    const std::uint8_t type = datagram[i];
    if (type == kOptEndOfList) return false;
    if (type == kOptNop) {
      ++i;
      continue;
    }
    if (i + 1 >= header_bytes) return false;
    const std::uint8_t length = datagram[i + 1];
    if (length < 2 || i + length > header_bytes) return false;
    if (type != kOptTimestamp) {
      i += length;
      continue;
    }
    if (length < 4) return false;
    const std::uint8_t pointer = datagram[i + 2];
    const std::uint8_t flags = datagram[i + 3] & 0x0f;
    const int entry_bytes =
        flags == TimestampOption::kFlagTimestampOnly ? 4 : 8;
    // The pointer is 1-based and must sit on an entry boundary past the
    // 4-byte option preamble; anything else (a pointer of 0..4, or one
    // that is misaligned) would make the writes below land on the
    // option's own type/length/pointer bytes — or before the option.
    if (pointer < 5 || (pointer - 5) % entry_bytes != 0) return false;
    if (pointer + entry_bytes - 1 > length) {
      // Full: bump the 4-bit overflow counter (saturating).
      const std::uint8_t overflow = datagram[i + 3] >> 4;
      if (overflow < 15) {
        datagram[i + 3] =
            static_cast<std::uint8_t>(((overflow + 1) << 4) | flags);
        return rewrite_header_checksum(datagram);
      }
      return true;  // saturated; nothing to update
    }
    std::size_t at = i + pointer - 1;
    if (flags == TimestampOption::kFlagAddressAndTimestamp) {
      const auto addr_bytes = address.to_bytes();
      datagram[at] = addr_bytes[0];
      datagram[at + 1] = addr_bytes[1];
      datagram[at + 2] = addr_bytes[2];
      datagram[at + 3] = addr_bytes[3];
      at += 4;
    }
    datagram[at] = static_cast<std::uint8_t>(timestamp_ms >> 24);
    datagram[at + 1] = static_cast<std::uint8_t>(timestamp_ms >> 16);
    datagram[at + 2] = static_cast<std::uint8_t>(timestamp_ms >> 8);
    datagram[at + 3] = static_cast<std::uint8_t>(timestamp_ms);
    datagram[i + 2] = static_cast<std::uint8_t>(pointer + entry_bytes);
    return rewrite_header_checksum(datagram);
  }
  return false;
}

bool rewrite_header_checksum(std::span<std::uint8_t> datagram) noexcept {
  const std::size_t header_bytes = plausible_header_len(datagram);
  if (header_bytes == 0) return false;
  write_u16(datagram, 10, 0);
  const std::uint16_t sum =
      net::internet_checksum(datagram.first(header_bytes));
  write_u16(datagram, 10, sum);
  return true;
}

bool rr_truncate(std::span<std::uint8_t> datagram) noexcept {
  const auto loc = find_rr(datagram);
  if (!loc) return false;
  // Zero every slot and exhaust the option (pointer one past the last
  // slot): the record is gone and no later hop can stamp into the wreck.
  const std::size_t data_begin = loc->option_offset + 3;
  const std::size_t data_bytes = static_cast<std::size_t>(loc->length) - 3;
  for (std::size_t j = 0; j < data_bytes; ++j) datagram[data_begin + j] = 0;
  datagram[loc->option_offset + 2] =
      static_cast<std::uint8_t>(loc->length + 1);
  return rewrite_header_checksum(datagram);
}

bool rr_garble(std::span<std::uint8_t> datagram,
               net::IPv4Address bogus) noexcept {
  const auto loc = find_rr(datagram);
  if (!loc || loc->recorded() == 0) return false;
  // The most recent stamp sits just below the pointer (pointer is
  // 1-based, so the slot's buffer offset is option_offset + pointer - 5).
  const std::size_t slot = loc->option_offset + loc->pointer - 5;
  const auto bytes = bogus.to_bytes();
  datagram[slot] = bytes[0];
  datagram[slot + 1] = bytes[1];
  datagram[slot + 2] = bytes[2];
  datagram[slot + 3] = bytes[3];
  return rewrite_header_checksum(datagram);
}

bool strip_options(std::vector<std::uint8_t>& datagram) noexcept {
  const std::size_t header_bytes = plausible_header_len(datagram);
  if (header_bytes <= 20) return false;
  const std::size_t removed = header_bytes - 20;
  datagram.erase(datagram.begin() + 20,
                 datagram.begin() + static_cast<std::ptrdiff_t>(header_bytes));
  datagram[0] = static_cast<std::uint8_t>(0x40 | 5);  // version 4, IHL 5
  const std::uint16_t total = read_u16(datagram, 2);
  if (total >= removed) {
    write_u16(datagram, 2,
              static_cast<std::uint16_t>(total - removed));
  }
  return rewrite_header_checksum(datagram);
}

bool blank_options(std::span<std::uint8_t> datagram) noexcept {
  const std::size_t header_bytes = plausible_header_len(datagram);
  if (header_bytes <= 20) return false;
  for (std::size_t i = 20; i < header_bytes; ++i) {
    datagram[i] = 1;  // NOP
  }
  return rewrite_header_checksum(datagram);
}

bool corrupt_header_checksum(std::span<std::uint8_t> datagram) noexcept {
  if (plausible_header_len(datagram) == 0) return false;
  // Flip bits that a recompute-from-scratch cannot accidentally restore
  // unless the sum actually matches again (probability 1/65535).
  write_u16(datagram, 10,
            static_cast<std::uint16_t>(read_u16(datagram, 10) ^ 0x5AA5));
  return true;
}

bool mangle_icmp_quote(std::span<std::uint8_t> datagram) noexcept {
  const std::size_t header_bytes = plausible_header_len(datagram);
  if (header_bytes == 0) return false;
  if (datagram[9] != 1) return false;  // not ICMP
  const std::size_t total = read_u16(datagram, 2);
  if (total > datagram.size()) return false;
  // Type + code + checksum + unused (8) plus at least a quoted base header.
  // Checked against `total` BEFORE subtracting: a total-length field smaller
  // than the IHL-derived header length would otherwise underflow icmp_len.
  if (total < header_bytes + 8 + 20) return false;
  const std::size_t icmp_begin = header_bytes;
  const std::size_t icmp_len = total - header_bytes;
  const std::uint8_t type = datagram[icmp_begin];
  if (type != 3 && type != 11 && type != 12) return false;  // not an error

  // Scribble over the quoted inner header: source address and protocol.
  const std::size_t quote = icmp_begin + 8;
  datagram[quote + 9] ^= 0xFF;   // protocol
  datagram[quote + 12] ^= 0xA5;  // source address, first octet
  datagram[quote + 15] ^= 0x5A;  // source address, last octet

  // Repair the ICMP checksum so the message still parses; the *quote* is
  // what no longer matches the probe that elicited the error.
  datagram[icmp_begin + 2] = 0;
  datagram[icmp_begin + 3] = 0;
  const std::uint16_t sum = net::internet_checksum(
      datagram.subspan(icmp_begin, icmp_len));
  datagram[icmp_begin + 2] = static_cast<std::uint8_t>(sum >> 8);
  datagram[icmp_begin + 3] = static_cast<std::uint8_t>(sum);
  return true;
}

}  // namespace rr::pkt
