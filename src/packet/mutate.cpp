#include "packet/mutate.h"

#include "netbase/checksum.h"
#include "packet/options.h"

namespace rr::pkt {

namespace {

/// Header length in bytes if the buffer plausibly starts with IPv4,
/// otherwise 0.
std::size_t plausible_header_len(
    std::span<const std::uint8_t> datagram) noexcept {
  if (datagram.size() < 20) return 0;
  if ((datagram[0] >> 4) != 4) return 0;
  const std::size_t header_bytes =
      static_cast<std::size_t>(datagram[0] & 0x0f) * 4;
  if (header_bytes < 20 || header_bytes > datagram.size()) return 0;
  return header_bytes;
}

std::uint16_t read_u16(std::span<const std::uint8_t> buffer,
                       std::size_t offset) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{buffer[offset]} << 8) |
                                    buffer[offset + 1]);
}

void write_u16(std::span<std::uint8_t> buffer, std::size_t offset,
               std::uint16_t value) noexcept {
  buffer[offset] = static_cast<std::uint8_t>(value >> 8);
  buffer[offset + 1] = static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<std::uint8_t> peek_ttl(
    std::span<const std::uint8_t> datagram) noexcept {
  if (plausible_header_len(datagram) == 0) return std::nullopt;
  return datagram[8];
}

std::optional<std::uint8_t> peek_protocol(
    std::span<const std::uint8_t> datagram) noexcept {
  if (plausible_header_len(datagram) == 0) return std::nullopt;
  return datagram[9];
}

std::optional<net::IPv4Address> peek_source(
    std::span<const std::uint8_t> datagram) noexcept {
  if (plausible_header_len(datagram) == 0) return std::nullopt;
  return net::IPv4Address::from_bytes(datagram[12], datagram[13], datagram[14],
                                      datagram[15]);
}

std::optional<net::IPv4Address> peek_destination(
    std::span<const std::uint8_t> datagram) noexcept {
  if (plausible_header_len(datagram) == 0) return std::nullopt;
  return net::IPv4Address::from_bytes(datagram[16], datagram[17], datagram[18],
                                      datagram[19]);
}

bool has_ip_options(std::span<const std::uint8_t> datagram) noexcept {
  return plausible_header_len(datagram) > 20;
}

std::optional<RrLocation> find_rr(
    std::span<const std::uint8_t> datagram) noexcept {
  const std::size_t header_bytes = plausible_header_len(datagram);
  if (header_bytes <= 20) return std::nullopt;
  std::size_t i = 20;
  while (i < header_bytes) {
    const std::uint8_t type = datagram[i];
    if (type == kOptEndOfList) return std::nullopt;
    if (type == kOptNop) {
      ++i;
      continue;
    }
    if (i + 1 >= header_bytes) return std::nullopt;
    const std::uint8_t length = datagram[i + 1];
    if (length < 2 || i + length > header_bytes) return std::nullopt;
    if (type == kOptRecordRoute) {
      if (length < 3 || (length - 3) % 4 != 0) return std::nullopt;
      const std::uint8_t pointer = datagram[i + 2];
      if (pointer < kRrMinPointer || (pointer - kRrMinPointer) % 4 != 0) {
        return std::nullopt;
      }
      if ((pointer - kRrMinPointer) / 4 > (length - 3) / 4) return std::nullopt;
      RrLocation loc;
      loc.option_offset = i;
      loc.length = length;
      loc.pointer = pointer;
      return loc;
    }
    i += length;
  }
  return std::nullopt;
}

std::optional<std::uint8_t> decrement_ttl(
    std::span<std::uint8_t> datagram) noexcept {
  if (plausible_header_len(datagram) == 0) return std::nullopt;
  const std::uint8_t ttl = datagram[8];
  if (ttl == 0) return std::nullopt;

  // RFC 1624 incremental checksum update: HC' = ~(~HC + ~m + m'), where m
  // is the old 16-bit word containing the TTL and m' the new one.
  const std::uint16_t old_word = read_u16(datagram, 8);
  const std::uint16_t new_word =
      static_cast<std::uint16_t>(old_word - 0x0100);
  datagram[8] = static_cast<std::uint8_t>(ttl - 1);
  std::uint32_t sum =
      static_cast<std::uint32_t>(~read_u16(datagram, 10) & 0xffff);
  sum += static_cast<std::uint32_t>(~old_word & 0xffff);
  sum += new_word;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  write_u16(datagram, 10, static_cast<std::uint16_t>(~sum & 0xffff));
  return datagram[8];
}

bool rr_stamp(std::span<std::uint8_t> datagram,
              net::IPv4Address address) noexcept {
  const auto loc = find_rr(datagram);
  if (!loc || loc->full()) return false;

  const std::size_t slot =
      loc->option_offset + loc->pointer - 1;  // pointer is 1-based
  const auto bytes = address.to_bytes();
  datagram[slot] = bytes[0];
  datagram[slot + 1] = bytes[1];
  datagram[slot + 2] = bytes[2];
  datagram[slot + 3] = bytes[3];
  datagram[loc->option_offset + 2] =
      static_cast<std::uint8_t>(loc->pointer + 4);
  return rewrite_header_checksum(datagram);
}

bool ts_stamp(std::span<std::uint8_t> datagram, net::IPv4Address address,
              std::uint32_t timestamp_ms) noexcept {
  const std::size_t header_bytes = plausible_header_len(datagram);
  if (header_bytes <= 20) return false;
  std::size_t i = 20;
  while (i < header_bytes) {
    const std::uint8_t type = datagram[i];
    if (type == kOptEndOfList) return false;
    if (type == kOptNop) {
      ++i;
      continue;
    }
    if (i + 1 >= header_bytes) return false;
    const std::uint8_t length = datagram[i + 1];
    if (length < 2 || i + length > header_bytes) return false;
    if (type != kOptTimestamp) {
      i += length;
      continue;
    }
    if (length < 4) return false;
    const std::uint8_t pointer = datagram[i + 2];
    const std::uint8_t flags = datagram[i + 3] & 0x0f;
    const int entry_bytes =
        flags == TimestampOption::kFlagTimestampOnly ? 4 : 8;
    if (pointer + entry_bytes - 1 > length) {
      // Full: bump the 4-bit overflow counter (saturating).
      const std::uint8_t overflow = datagram[i + 3] >> 4;
      if (overflow < 15) {
        datagram[i + 3] =
            static_cast<std::uint8_t>(((overflow + 1) << 4) | flags);
        return rewrite_header_checksum(datagram);
      }
      return true;  // saturated; nothing to update
    }
    std::size_t at = i + pointer - 1;
    if (flags == TimestampOption::kFlagAddressAndTimestamp) {
      const auto addr_bytes = address.to_bytes();
      datagram[at] = addr_bytes[0];
      datagram[at + 1] = addr_bytes[1];
      datagram[at + 2] = addr_bytes[2];
      datagram[at + 3] = addr_bytes[3];
      at += 4;
    }
    datagram[at] = static_cast<std::uint8_t>(timestamp_ms >> 24);
    datagram[at + 1] = static_cast<std::uint8_t>(timestamp_ms >> 16);
    datagram[at + 2] = static_cast<std::uint8_t>(timestamp_ms >> 8);
    datagram[at + 3] = static_cast<std::uint8_t>(timestamp_ms);
    datagram[i + 2] = static_cast<std::uint8_t>(pointer + entry_bytes);
    return rewrite_header_checksum(datagram);
  }
  return false;
}

bool rewrite_header_checksum(std::span<std::uint8_t> datagram) noexcept {
  const std::size_t header_bytes = plausible_header_len(datagram);
  if (header_bytes == 0) return false;
  write_u16(datagram, 10, 0);
  const std::uint16_t sum =
      net::internet_checksum(datagram.first(header_bytes));
  write_u16(datagram, 10, sum);
  return true;
}

}  // namespace rr::pkt
