// IPv4 header (RFC 791), including options.
//
// The header serializes to real wire format: IHL reflects the option area,
// the checksum is computed over the header, and parsing validates both.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netbase/address.h"
#include "netbase/byte_io.h"
#include "packet/options.h"

namespace rr::pkt {

inline constexpr std::size_t kIpv4BaseHeaderBytes = 20;
inline constexpr std::size_t kIpv4MaxHeaderBytes = 60;

/// IP protocol numbers used by the toolkit.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kUdp = 17,
};

struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t identification = 0;
  bool dont_fragment = true;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kIcmp;
  net::IPv4Address source;
  net::IPv4Address destination;
  std::vector<IpOption> options;

  /// Filled in by parse(); serialize() computes them.
  std::uint16_t total_length = 0;
  std::uint16_t checksum = 0;

  /// Bytes occupied by options after padding to a 32-bit boundary.
  [[nodiscard]] std::size_t options_wire_bytes() const noexcept;

  /// Full header length (20 + padded options), i.e. IHL * 4.
  [[nodiscard]] std::size_t header_length() const noexcept {
    return kIpv4BaseHeaderBytes + options_wire_bytes();
  }

  [[nodiscard]] const RecordRouteOption* record_route() const noexcept {
    return find_record_route(options);
  }
  [[nodiscard]] RecordRouteOption* record_route() noexcept {
    return find_record_route(options);
  }

  /// Serializes header + payload length into `out`, computing total_length
  /// and checksum. `payload_bytes` is only used for the length field.
  /// Returns false if the options do not fit or are malformed.
  [[nodiscard]] bool serialize(net::ByteWriter& out,
                               std::size_t payload_bytes) const;

  /// Parses and validates a header from the front of `data` (checksum,
  /// version, IHL and length consistency). On success the reader in the
  /// caller should continue at header_length().
  [[nodiscard]] static std::optional<Ipv4Header> parse(
      std::span<const std::uint8_t> data);

  [[nodiscard]] std::string to_string() const;
};

}  // namespace rr::pkt
