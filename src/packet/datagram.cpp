#include "packet/datagram.h"

#include <algorithm>

namespace rr::pkt {

namespace {

struct PayloadSerializer {
  net::ByteWriter& out;
  void operator()(const IcmpMessage& icmp) const { icmp.serialize(out); }
  void operator()(const UdpDatagram& udp) const { udp.serialize(out); }
};

}  // namespace

std::optional<std::vector<std::uint8_t>> Datagram::serialize() const {
  // Serialize the payload first so the header knows the total length.
  net::ByteWriter payload_bytes;
  std::visit(PayloadSerializer{payload_bytes}, payload);

  net::ByteWriter out{header.header_length() + payload_bytes.size()};
  if (!header.serialize(out, payload_bytes.size())) return std::nullopt;
  out.bytes(payload_bytes.view());
  return std::move(out).take();
}

std::optional<Datagram> Datagram::parse(std::span<const std::uint8_t> data) {
  auto header = Ipv4Header::parse(data);
  if (!header) return std::nullopt;
  const std::size_t header_bytes = header->header_length();
  if (header->total_length > data.size()) return std::nullopt;
  const auto transport =
      data.subspan(header_bytes, header->total_length - header_bytes);

  Datagram datagram;
  if (header->protocol == IpProto::kIcmp) {
    auto icmp = IcmpMessage::parse(transport);
    if (!icmp) return std::nullopt;
    datagram.payload = std::move(*icmp);
  } else if (header->protocol == IpProto::kUdp) {
    auto udp = UdpDatagram::parse(transport);
    if (!udp) return std::nullopt;
    datagram.payload = std::move(*udp);
  } else {
    return std::nullopt;
  }
  datagram.header = std::move(*header);
  return datagram;
}

std::string Datagram::to_string() const {
  std::string out = header.to_string();
  if (const auto* i = icmp()) out += " | " + i->to_string();
  if (const auto* u = udp()) {
    out += " | udp " + std::to_string(u->source_port) + "->" +
           std::to_string(u->destination_port);
  }
  return out;
}

Datagram make_ping(net::IPv4Address source, net::IPv4Address destination,
                   std::uint16_t identifier, std::uint16_t sequence,
                   std::uint8_t ttl, int rr_slots) {
  Datagram datagram;
  datagram.header.source = source;
  datagram.header.destination = destination;
  datagram.header.ttl = ttl;
  datagram.header.protocol = IpProto::kIcmp;
  datagram.header.identification = static_cast<std::uint16_t>(
      (identifier << 4) ^ sequence);
  if (rr_slots > 0) {
    datagram.header.options.emplace_back(RecordRouteOption::empty(
        static_cast<std::uint8_t>(std::min(rr_slots, kMaxRrSlots))));
  }
  datagram.payload = IcmpMessage::echo_request(identifier, sequence);
  return datagram;
}

Datagram make_ping_ts(net::IPv4Address source, net::IPv4Address destination,
                      std::uint16_t identifier, std::uint16_t sequence,
                      std::uint8_t ttl, int ts_slots) {
  Datagram datagram;
  datagram.header.source = source;
  datagram.header.destination = destination;
  datagram.header.ttl = ttl;
  datagram.header.protocol = IpProto::kIcmp;
  datagram.header.identification =
      static_cast<std::uint16_t>((identifier << 3) ^ sequence ^ 0x5a5a);
  datagram.header.options.emplace_back(TimestampOption::empty(
      static_cast<std::uint8_t>(std::clamp(ts_slots, 1, 4))));
  datagram.payload = IcmpMessage::echo_request(identifier, sequence);
  return datagram;
}

Datagram make_udp_probe(net::IPv4Address source, net::IPv4Address destination,
                        std::uint16_t source_port,
                        std::uint16_t destination_port, std::uint8_t ttl,
                        int rr_slots) {
  Datagram datagram;
  datagram.header.source = source;
  datagram.header.destination = destination;
  datagram.header.ttl = ttl;
  datagram.header.protocol = IpProto::kUdp;
  datagram.header.identification =
      static_cast<std::uint16_t>(source_port ^ (destination_port << 1));
  if (rr_slots > 0) {
    datagram.header.options.emplace_back(RecordRouteOption::empty(
        static_cast<std::uint8_t>(std::min(rr_slots, kMaxRrSlots))));
  }
  UdpDatagram udp;
  udp.source_port = source_port;
  udp.destination_port = destination_port;
  udp.payload = {0xde, 0xad, 0xbe, 0xef};
  datagram.payload = std::move(udp);
  return datagram;
}

}  // namespace rr::pkt
