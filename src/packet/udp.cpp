#include "packet/udp.h"

namespace rr::pkt {

void UdpDatagram::serialize(net::ByteWriter& out) const {
  out.u16(source_port);
  out.u16(destination_port);
  out.u16(static_cast<std::uint16_t>(wire_length()));
  out.u16(0);  // checksum optional in IPv4; 0 = not computed
  out.bytes(payload);
}

std::optional<UdpDatagram> UdpDatagram::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < 8) return std::nullopt;
  net::ByteReader reader{data};
  UdpDatagram udp;
  udp.source_port = reader.u16();
  udp.destination_port = reader.u16();
  const std::uint16_t length = reader.u16();
  reader.skip(2);  // checksum (unvalidated when zero)
  if (length < 8 || length > data.size()) return std::nullopt;
  const auto payload = reader.rest().first(length - 8);
  udp.payload.assign(payload.begin(), payload.end());
  return udp;
}

}  // namespace rr::pkt
