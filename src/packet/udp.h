// UDP header (RFC 768), used by the `ping-RRudp` probe of §3.3: a UDP
// datagram to a high, almost-certainly-closed port elicits an ICMP port
// unreachable whose quotation carries the probe's RR option back.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/byte_io.h"

namespace rr::pkt {

/// High port range used for ping-RRudp probes (unlikely to be listened on).
inline constexpr std::uint16_t kUdpProbePortBase = 33435;

struct UdpDatagram {
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::vector<std::uint8_t> payload;

  /// Serializes with the checksum field zero (legal for IPv4 UDP; scamper's
  /// probes behave the same and it keeps the simulator honest about not
  /// relying on transport checksums).
  void serialize(net::ByteWriter& out) const;

  [[nodiscard]] static std::optional<UdpDatagram> parse(
      std::span<const std::uint8_t> data);

  [[nodiscard]] std::size_t wire_length() const noexcept {
    return 8 + payload.size();
  }

  [[nodiscard]] bool operator==(const UdpDatagram&) const = default;
};

}  // namespace rr::pkt
