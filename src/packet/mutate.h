// In-place per-hop packet mutation, the way real forwarding planes do it:
// a router does not deserialize a datagram into objects — it edits the TTL
// byte and the Record Route slot directly in the buffer and fixes up the
// header checksum.
//
// All functions operate on a raw datagram buffer whose first byte is the
// IPv4 version/IHL byte. They validate just enough structure to be safe on
// arbitrary bytes and return false (leaving the buffer untouched) when the
// operation does not apply.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/address.h"

namespace rr::pkt {

/// Quick field reads (no checksum validation; bounds-checked).
[[nodiscard]] std::optional<std::uint8_t> peek_ttl(
    std::span<const std::uint8_t> datagram) noexcept;
[[nodiscard]] std::optional<std::uint8_t> peek_protocol(
    std::span<const std::uint8_t> datagram) noexcept;
[[nodiscard]] std::optional<net::IPv4Address> peek_source(
    std::span<const std::uint8_t> datagram) noexcept;
[[nodiscard]] std::optional<net::IPv4Address> peek_destination(
    std::span<const std::uint8_t> datagram) noexcept;

/// True if the header carries any IP option bytes (IHL > 5). Routers use
/// this to divert packets to the slow path.
[[nodiscard]] bool has_ip_options(
    std::span<const std::uint8_t> datagram) noexcept;

/// Location of a Record Route option within the header, as byte offsets
/// into the datagram buffer.
struct RrLocation {
  std::size_t option_offset = 0;  // offset of the type byte
  std::uint8_t length = 0;        // option length field
  std::uint8_t pointer = 0;       // option pointer field

  [[nodiscard]] int capacity() const noexcept { return (length - 3) / 4; }
  [[nodiscard]] int recorded() const noexcept { return (pointer - 4) / 4; }
  [[nodiscard]] bool full() const noexcept { return pointer >= length; }
  [[nodiscard]] int free_slots() const noexcept {
    return capacity() - recorded();
  }
};

/// Finds the first Record Route option in the header's option area.
[[nodiscard]] std::optional<RrLocation> find_rr(
    std::span<const std::uint8_t> datagram) noexcept;

/// Decrements the TTL and repairs the header checksum incrementally
/// (RFC 1141). Returns the new TTL, or nullopt if the buffer is not a
/// plausible IPv4 datagram or the TTL is already zero.
std::optional<std::uint8_t> decrement_ttl(
    std::span<std::uint8_t> datagram) noexcept;

/// Stamps `address` into the next free RR slot (advancing the pointer) and
/// repairs the header checksum. Returns false if there is no RR option or
/// it is full — in which case the datagram is untouched and the router
/// simply forwards it, per RFC 791.
bool rr_stamp(std::span<std::uint8_t> datagram,
              net::IPv4Address address) noexcept;

/// Stamps an (address, timestamp) entry into the first Timestamp option
/// (flag 1) if a slot is free — otherwise increments its overflow counter
/// — and repairs the header checksum. Returns false when the datagram has
/// no Timestamp option at all.
bool ts_stamp(std::span<std::uint8_t> datagram, net::IPv4Address address,
              std::uint32_t timestamp_ms) noexcept;

/// Recomputes the header checksum from scratch (after arbitrary edits).
bool rewrite_header_checksum(std::span<std::uint8_t> datagram) noexcept;

// ------------------------------------------------------------------------
// Byte-surgery used by the fault-injection layer (sim/fault.h). Like the
// forwarding-plane edits above, these mutate wire bytes in place and keep
// the datagram structurally parseable — a fault produces a *plausible*
// corrupted packet, not garbage the simulator itself would drop.

/// Destroys a Record Route option's record: zeroes every slot and pushes
/// the pointer past the end, leaving the option present but exhausted (a
/// middlebox mangling the area beyond use). Deliberately *not* a pointer
/// rewind: freeing slots would let later hops — including the probed
/// destination — stamp where they otherwise could not, and an injected
/// fault must never add reachability evidence. Returns false (buffer
/// untouched) when the datagram has no valid RR option.
bool rr_truncate(std::span<std::uint8_t> datagram) noexcept;

/// Overwrites the most recently recorded RR slot with `bogus` (a byzantine
/// device scribbling over a stamp). Returns false when there is no RR
/// option or nothing has been recorded yet.
bool rr_garble(std::span<std::uint8_t> datagram,
               net::IPv4Address bogus) noexcept;

/// Removes the entire IP option area: IHL collapses to 5, the payload
/// moves up, total length shrinks, and the checksum is recomputed — the
/// mid-path option stripping of §3.3. Returns false when the datagram is
/// implausible or carries no options.
bool strip_options(std::vector<std::uint8_t>& datagram) noexcept;

/// Overwrites the entire IP option area with NOP padding (type 1) and
/// recomputes the checksum: the option *contents* are destroyed but the
/// header geometry is untouched. This is the form of option stripping the
/// simulator injects mid-path: routers still divert the packet to the slow
/// path and hosts still see "a packet with options", so the fault removes
/// RR evidence without perturbing any shared rate-limiter state — erasing
/// the area outright would free slow-path budget for *other* probes and
/// let a fault add reachability evidence elsewhere. Returns false when the
/// datagram is implausible or carries no options.
bool blank_options(std::span<std::uint8_t> datagram) noexcept;

/// Flips bits in the header checksum field (transmission corruption that
/// receivers must reject, not crash on). Returns false when the buffer is
/// not a plausible datagram.
bool corrupt_header_checksum(std::span<std::uint8_t> datagram) noexcept;

/// Perturbs the quoted inner IP header of an ICMP error message (source
/// address and protocol of the quote) and repairs the ICMP checksum, so
/// the packet still parses but quotation-matching probers must classify it
/// as a mismatch. Returns false when the datagram is not an ICMP error
/// carrying at least a full quoted header.
bool mangle_icmp_quote(std::span<std::uint8_t> datagram) noexcept;

}  // namespace rr::pkt
