// ICMP messages (RFC 792), restricted to the types the study exercises:
//
//  * Echo Request / Echo Reply — the `ping` and `ping-RR` probes,
//  * Time Exceeded — elicited by the TTL-limited `ping-RR` of §4.2,
//  * Destination Unreachable (port unreachable) — elicited by `ping-RRudp`.
//
// Error messages quote the offending datagram (IP header incl. options plus
// the leading payload bytes, per RFC 792/1812). Reading the RR option back
// out of that quotation is precisely the trick §3.3 and §4.2 rely on, so the
// quotation here is byte-faithful.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "netbase/byte_io.h"

namespace rr::pkt {

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kEchoRequest = 8,
  kTimeExceeded = 11,
};

inline constexpr std::uint8_t kCodePortUnreachable = 3;
inline constexpr std::uint8_t kCodeTtlExceededInTransit = 0;

/// Echo request/reply body: identifier, sequence, opaque payload.
struct IcmpEcho {
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] bool operator==(const IcmpEcho&) const = default;
};

/// Error body: the quoted prefix of the offending datagram.
struct IcmpErrorBody {
  std::vector<std::uint8_t> quoted_datagram;

  [[nodiscard]] bool operator==(const IcmpErrorBody&) const = default;
};

struct IcmpMessage {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint8_t code = 0;
  std::variant<IcmpEcho, IcmpErrorBody> body;

  [[nodiscard]] static IcmpMessage echo_request(std::uint16_t identifier,
                                                std::uint16_t sequence,
                                                std::size_t payload_bytes = 8);

  /// Builds the reply for a request (same id/seq/payload).
  [[nodiscard]] static IcmpMessage echo_reply_for(const IcmpEcho& request);

  /// Builds an error quoting `offending_datagram`. The quotation keeps the
  /// full IP header (incl. options) plus `quoted_payload_bytes` of payload.
  [[nodiscard]] static IcmpMessage error(
      IcmpType type, std::uint8_t code,
      std::span<const std::uint8_t> offending_datagram,
      std::size_t quoted_payload_bytes = 8);

  [[nodiscard]] bool is_echo() const noexcept {
    return type == IcmpType::kEchoRequest || type == IcmpType::kEchoReply;
  }
  [[nodiscard]] bool is_error() const noexcept { return !is_echo(); }

  [[nodiscard]] const IcmpEcho* echo() const noexcept {
    return std::get_if<IcmpEcho>(&body);
  }
  [[nodiscard]] const IcmpErrorBody* error_body() const noexcept {
    return std::get_if<IcmpErrorBody>(&body);
  }

  /// Serializes with a correct ICMP checksum.
  void serialize(net::ByteWriter& out) const;

  /// Parses and checksum-validates an ICMP message.
  [[nodiscard]] static std::optional<IcmpMessage> parse(
      std::span<const std::uint8_t> data);

  [[nodiscard]] std::string to_string() const;
};

}  // namespace rr::pkt
