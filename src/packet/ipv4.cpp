#include "packet/ipv4.h"

#include "netbase/checksum.h"

namespace rr::pkt {

std::size_t Ipv4Header::options_wire_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& option : options) total += option_wire_length(option);
  return (total + 3) & ~std::size_t{3};
}

bool Ipv4Header::serialize(net::ByteWriter& out,
                           std::size_t payload_bytes) const {
  const std::size_t header_bytes = header_length();
  if (header_bytes > kIpv4MaxHeaderBytes) return false;
  const std::size_t total = header_bytes + payload_bytes;
  if (total > 0xffff) return false;

  const std::size_t start = out.size();
  const std::uint8_t version_ihl =
      static_cast<std::uint8_t>((4 << 4) | (header_bytes / 4));
  out.u8(version_ihl);
  out.u8(tos);
  out.u16(static_cast<std::uint16_t>(total));
  out.u16(identification);
  out.u16(dont_fragment ? std::uint16_t{0x4000} : std::uint16_t{0});
  out.u8(ttl);
  out.u8(static_cast<std::uint8_t>(protocol));
  const std::size_t checksum_offset = out.size();
  out.u16(0);  // checksum placeholder
  out.address(source);
  out.address(destination);
  if (!serialize_options(options, out)) return false;
  if (out.size() - start != header_bytes) return false;  // internal invariant

  const std::uint16_t sum = net::internet_checksum(
      out.view().subspan(start, header_bytes));
  out.patch_u16(checksum_offset, sum);
  return true;
}

std::optional<Ipv4Header> Ipv4Header::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < kIpv4BaseHeaderBytes) return std::nullopt;
  const std::uint8_t version = data[0] >> 4;
  const std::size_t header_bytes = static_cast<std::size_t>(data[0] & 0x0f) * 4;
  if (version != 4) return std::nullopt;
  if (header_bytes < kIpv4BaseHeaderBytes || header_bytes > data.size()) {
    return std::nullopt;
  }
  if (!net::checksum_ok(data.first(header_bytes))) return std::nullopt;

  net::ByteReader reader{data.first(header_bytes)};
  reader.skip(1);  // version/IHL already consumed above
  Ipv4Header header;
  header.tos = reader.u8();
  header.total_length = reader.u16();
  header.identification = reader.u16();
  const std::uint16_t flags_frag = reader.u16();
  header.dont_fragment = (flags_frag & 0x4000) != 0;
  header.ttl = reader.u8();
  const std::uint8_t proto = reader.u8();
  header.checksum = reader.u16();
  header.source = reader.address();
  header.destination = reader.address();
  if (!reader.ok()) return std::nullopt;
  if (header.total_length < header_bytes) return std::nullopt;
  if (proto != static_cast<std::uint8_t>(IpProto::kIcmp) &&
      proto != static_cast<std::uint8_t>(IpProto::kUdp)) {
    // Unknown transport: still a valid IP header, keep the raw number.
    header.protocol = static_cast<IpProto>(proto);
  } else {
    header.protocol = static_cast<IpProto>(proto);
  }

  auto parsed = parse_options(reader.rest());
  if (!parsed) return std::nullopt;
  header.options = std::move(*parsed);
  return header;
}

std::string Ipv4Header::to_string() const {
  std::string out = source.to_string() + " -> " + destination.to_string() +
                    " ttl=" + std::to_string(ttl) +
                    " proto=" + std::to_string(static_cast<int>(protocol));
  for (const auto& option : options) {
    out += " " + pkt::to_string(option);
  }
  return out;
}

}  // namespace rr::pkt
