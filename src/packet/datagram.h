// Whole IPv4 datagrams: header + transport payload, with build/parse
// round-trips through real wire bytes.
//
// The prober builds Datagrams, the simulator forwards their *bytes* (using
// packet/mutate.h for per-hop edits), and receivers parse the bytes back.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "packet/icmp.h"
#include "packet/ipv4.h"
#include "packet/udp.h"

namespace rr::pkt {

using TransportPayload = std::variant<IcmpMessage, UdpDatagram>;

struct Datagram {
  Ipv4Header header;
  TransportPayload payload;

  [[nodiscard]] const IcmpMessage* icmp() const noexcept {
    return std::get_if<IcmpMessage>(&payload);
  }
  [[nodiscard]] const UdpDatagram* udp() const noexcept {
    return std::get_if<UdpDatagram>(&payload);
  }

  /// Serializes header + payload to wire bytes (checksums computed).
  /// Returns std::nullopt if the header options are malformed/oversized.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> serialize() const;

  /// Parses a full datagram; validates IP and ICMP checksums and that the
  /// transport protocol matches the payload found.
  [[nodiscard]] static std::optional<Datagram> parse(
      std::span<const std::uint8_t> data);

  [[nodiscard]] std::string to_string() const;
};

/// Builds a ping (ICMP echo request) datagram; enables Record Route when
/// `rr_slots` > 0.
[[nodiscard]] Datagram make_ping(net::IPv4Address source,
                                 net::IPv4Address destination,
                                 std::uint16_t identifier,
                                 std::uint16_t sequence, std::uint8_t ttl = 64,
                                 int rr_slots = 0);

/// Builds a ping with the Timestamp option (type 68, flag 1:
/// address+timestamp pairs; at most four fit in the option area).
[[nodiscard]] Datagram make_ping_ts(net::IPv4Address source,
                                    net::IPv4Address destination,
                                    std::uint16_t identifier,
                                    std::uint16_t sequence,
                                    std::uint8_t ttl = 64, int ts_slots = 4);

/// Builds a ping-RRudp probe: UDP to a high (likely closed) port with the
/// Record Route option enabled.
[[nodiscard]] Datagram make_udp_probe(net::IPv4Address source,
                                      net::IPv4Address destination,
                                      std::uint16_t source_port,
                                      std::uint16_t destination_port,
                                      std::uint8_t ttl = 64,
                                      int rr_slots = kMaxRrSlots);

}  // namespace rr::pkt
