#include "packet/options.h"

namespace rr::pkt {

namespace {

struct WireLengthVisitor {
  std::size_t operator()(const NopOption&) const noexcept { return 1; }
  std::size_t operator()(const RecordRouteOption& rr) const noexcept {
    return rr.wire_length();
  }
  std::size_t operator()(const TimestampOption& ts) const noexcept {
    return ts.wire_length();
  }
  std::size_t operator()(const RawOption& raw) const noexcept {
    return 2 + raw.data.size();
  }
};

bool serialize_one(const IpOption& option, net::ByteWriter& out) {
  if (std::holds_alternative<NopOption>(option)) {
    out.u8(kOptNop);
    return true;
  }
  if (const auto* rr = std::get_if<RecordRouteOption>(&option)) {
    if (rr->capacity < 1 || rr->capacity > kMaxRrSlots) return false;
    if (rr->recorded.size() > rr->capacity) return false;
    out.u8(kOptRecordRoute);
    out.u8(rr->wire_length());
    out.u8(rr->pointer());
    for (const auto& addr : rr->recorded) out.address(addr);
    out.zeros(4 * static_cast<std::size_t>(rr->remaining_slots()));
    return true;
  }
  if (const auto* ts = std::get_if<TimestampOption>(&option)) {
    if (ts->flags != TimestampOption::kFlagTimestampOnly &&
        ts->flags != TimestampOption::kFlagAddressAndTimestamp) {
      return false;
    }
    const int max_capacity =
        (kMaxOptionBytes - 4) / ts->entry_bytes();  // 9 or 4
    if (ts->capacity < 1 || ts->capacity > max_capacity) return false;
    if (static_cast<int>(ts->entries.size()) > ts->capacity) return false;
    out.u8(kOptTimestamp);
    out.u8(ts->wire_length());
    out.u8(ts->pointer());
    out.u8(static_cast<std::uint8_t>((ts->overflow << 4) | ts->flags));
    for (const auto& entry : ts->entries) {
      if (ts->flags == TimestampOption::kFlagAddressAndTimestamp) {
        out.address(entry.address);
      }
      out.u32(entry.timestamp_ms);
    }
    out.zeros(static_cast<std::size_t>(ts->entry_bytes()) *
              static_cast<std::size_t>(ts->remaining_slots()));
    return true;
  }
  const auto& raw = std::get<RawOption>(option);
  if (raw.type == kOptEndOfList || raw.type == kOptNop ||
      raw.type == kOptRecordRoute || raw.type == kOptTimestamp) {
    return false;  // structural types must use their structured form
  }
  if (raw.data.size() > static_cast<std::size_t>(kMaxOptionBytes - 2)) {
    return false;
  }
  out.u8(raw.type);
  out.u8(static_cast<std::uint8_t>(2 + raw.data.size()));
  out.bytes(raw.data);
  return true;
}

}  // namespace

std::size_t option_wire_length(const IpOption& option) noexcept {
  return std::visit(WireLengthVisitor{}, option);
}

bool serialize_options(const std::vector<IpOption>& options,
                       net::ByteWriter& out) {
  net::ByteWriter scratch;
  for (const auto& option : options) {
    if (!serialize_one(option, scratch)) return false;
  }
  std::size_t total = scratch.size();
  if (total > static_cast<std::size_t>(kMaxOptionBytes)) return false;
  out.bytes(scratch.view());
  // Pad to a 32-bit boundary with End-of-List bytes (zero).
  const std::size_t padded = (total + 3) & ~std::size_t{3};
  out.zeros(padded - total);
  return true;
}

std::optional<std::vector<IpOption>> parse_options(
    std::span<const std::uint8_t> option_bytes) {
  if (option_bytes.size() > static_cast<std::size_t>(kMaxOptionBytes)) {
    return std::nullopt;
  }
  std::vector<IpOption> options;
  std::size_t i = 0;
  while (i < option_bytes.size()) {
    const std::uint8_t type = option_bytes[i];
    if (type == kOptEndOfList) break;  // rest is padding
    if (type == kOptNop) {
      options.emplace_back(NopOption{});
      ++i;
      continue;
    }
    if (i + 1 >= option_bytes.size()) return std::nullopt;  // missing length
    const std::uint8_t length = option_bytes[i + 1];
    if (length < 2 || i + length > option_bytes.size()) return std::nullopt;
    if (type == kOptRecordRoute) {
      if (length < 3 || (length - 3) % 4 != 0) return std::nullopt;
      const int capacity = (length - 3) / 4;
      if (capacity < 1 || capacity > kMaxRrSlots) return std::nullopt;
      const std::uint8_t pointer = option_bytes[i + 2];
      if (pointer < kRrMinPointer || (pointer - kRrMinPointer) % 4 != 0) {
        return std::nullopt;
      }
      const int filled = (pointer - kRrMinPointer) / 4;
      if (filled > capacity) return std::nullopt;
      RecordRouteOption rr;
      rr.capacity = static_cast<std::uint8_t>(capacity);
      rr.recorded.reserve(static_cast<std::size_t>(filled));
      for (int slot = 0; slot < filled; ++slot) {
        const std::size_t at = i + 3 + 4 * static_cast<std::size_t>(slot);
        rr.recorded.push_back(net::IPv4Address::from_bytes(
            option_bytes[at], option_bytes[at + 1], option_bytes[at + 2],
            option_bytes[at + 3]));
      }
      options.emplace_back(std::move(rr));
    } else if (type == kOptTimestamp) {
      if (length < 4) return std::nullopt;
      const std::uint8_t pointer = option_bytes[i + 2];
      const std::uint8_t of_flags = option_bytes[i + 3];
      TimestampOption ts;
      ts.flags = of_flags & 0x0f;
      ts.overflow = of_flags >> 4;
      if (ts.flags != TimestampOption::kFlagTimestampOnly &&
          ts.flags != TimestampOption::kFlagAddressAndTimestamp) {
        return std::nullopt;  // prespecified mode (3) not modelled
      }
      const int entry_bytes = ts.entry_bytes();
      if ((length - 4) % entry_bytes != 0) return std::nullopt;
      const int capacity = (length - 4) / entry_bytes;
      if (capacity < 1) return std::nullopt;
      ts.capacity = static_cast<std::uint8_t>(capacity);
      if (pointer < 5 || (pointer - 5) % entry_bytes != 0) {
        return std::nullopt;
      }
      const int filled = (pointer - 5) / entry_bytes;
      if (filled > capacity) return std::nullopt;
      for (int slot = 0; slot < filled; ++slot) {
        std::size_t at = i + 4 + static_cast<std::size_t>(entry_bytes) *
                                     static_cast<std::size_t>(slot);
        TimestampOption::Entry entry;
        if (ts.flags == TimestampOption::kFlagAddressAndTimestamp) {
          entry.address = net::IPv4Address::from_bytes(
              option_bytes[at], option_bytes[at + 1], option_bytes[at + 2],
              option_bytes[at + 3]);
          at += 4;
        }
        entry.timestamp_ms = (std::uint32_t{option_bytes[at]} << 24) |
                             (std::uint32_t{option_bytes[at + 1]} << 16) |
                             (std::uint32_t{option_bytes[at + 2]} << 8) |
                             std::uint32_t{option_bytes[at + 3]};
        ts.entries.push_back(entry);
      }
      options.emplace_back(std::move(ts));
    } else {
      RawOption raw;
      raw.type = type;
      raw.data.assign(option_bytes.begin() + static_cast<std::ptrdiff_t>(i) + 2,
                      option_bytes.begin() + static_cast<std::ptrdiff_t>(i) +
                          length);
      options.emplace_back(std::move(raw));
    }
    i += length;
  }
  return options;
}

const RecordRouteOption* find_record_route(
    const std::vector<IpOption>& options) noexcept {
  for (const auto& option : options) {
    if (const auto* rr = std::get_if<RecordRouteOption>(&option)) return rr;
  }
  return nullptr;
}

RecordRouteOption* find_record_route(std::vector<IpOption>& options) noexcept {
  for (auto& option : options) {
    if (auto* rr = std::get_if<RecordRouteOption>(&option)) return rr;
  }
  return nullptr;
}

const TimestampOption* find_timestamp(
    const std::vector<IpOption>& options) noexcept {
  for (const auto& option : options) {
    if (const auto* ts = std::get_if<TimestampOption>(&option)) return ts;
  }
  return nullptr;
}

TimestampOption* find_timestamp(std::vector<IpOption>& options) noexcept {
  for (auto& option : options) {
    if (auto* ts = std::get_if<TimestampOption>(&option)) return ts;
  }
  return nullptr;
}

std::string to_string(const IpOption& option) {
  if (std::holds_alternative<NopOption>(option)) return "NOP";
  if (const auto* rr = std::get_if<RecordRouteOption>(&option)) {
    std::string out = "RR(" + std::to_string(rr->recorded.size()) + "/" +
                      std::to_string(rr->capacity) + ":";
    for (std::size_t i = 0; i < rr->recorded.size(); ++i) {
      out += (i == 0 ? " " : ", ") + rr->recorded[i].to_string();
    }
    out += ")";
    return out;
  }
  if (const auto* ts = std::get_if<TimestampOption>(&option)) {
    return "TS(" + std::to_string(ts->entries.size()) + "/" +
           std::to_string(ts->capacity) +
           ", overflow=" + std::to_string(ts->overflow) + ")";
  }
  const auto& raw = std::get<RawOption>(option);
  return "OPT(type=" + std::to_string(raw.type) +
         ", len=" + std::to_string(2 + raw.data.size()) + ")";
}

}  // namespace rr::pkt
