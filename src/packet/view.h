// Mutable zero-copy view over a serialized IPv4 datagram.
//
// `Network::walk` mutates the same buffer dozens of times per probe (TTL
// decrement plus RR/TS stamps at every stamping hop). The free functions in
// mutate.h re-scan the options area and recompute the full header checksum
// on every call; this view locates the first RR and TS options once, then
// performs each mutation in O(1) with an RFC 1624 incremental checksum
// update. Results are bit-identical to the mutate.h functions for every
// buffer the simulator produces (see view_wire_test.cpp), including after
// the fault injections (blank_options / rr_truncate / rr_garble) which
// change option *content* in place but never move option boundaries — the
// cached offsets stay valid and the type/length/pointer bytes are
// revalidated on every call.
//
// The one case where an incremental update would diverge from mutate.h is a
// buffer whose stored checksum is already invalid (the corrupt-checksum
// fault): the legacy full recompute silently repairs it at the next stamp.
// Callers that corrupt the checksum must call `mark_checksum_dirty()`; the
// next stamping mutation then does one full recompute (matching the legacy
// repair) and reverts to incremental updates.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "netbase/address.h"

namespace rr::pkt {

class Ipv4HeaderView {
 public:
  /// Binds to a datagram buffer. If the buffer does not plausibly start
  /// with an IPv4 header the view is inert: `valid()` is false, mutations
  /// fail, and `has_options()` is false — mirroring the mutate.h functions
  /// on the same buffer.
  explicit Ipv4HeaderView(std::span<std::uint8_t> datagram) noexcept;

  [[nodiscard]] bool valid() const noexcept { return header_bytes_ != 0; }
  [[nodiscard]] bool has_options() const noexcept { return header_bytes_ > 20; }
  [[nodiscard]] std::size_t header_bytes() const noexcept {
    return header_bytes_;
  }

  /// See mutate.h `decrement_ttl`: same result, same bytes.
  std::optional<std::uint8_t> decrement_ttl() noexcept;

  /// See mutate.h `rr_stamp` / `ts_stamp`: same result, same bytes, O(1).
  bool rr_stamp(net::IPv4Address address) noexcept;
  bool ts_stamp(net::IPv4Address address, std::uint32_t timestamp_ms) noexcept;

  /// The stored header checksum may be invalid; the next stamp performs a
  /// full recompute (as the legacy full-rewrite path would) instead of an
  /// incremental update.
  void mark_checksum_dirty() noexcept { checksum_dirty_ = true; }

 private:
  static constexpr std::size_t kNone = 0;

  void finish_stamp(std::span<const std::size_t> words,
                    std::span<const std::uint16_t> old_words) noexcept;

  std::span<std::uint8_t> data_;
  std::size_t header_bytes_ = 0;
  std::size_t rr_offset_ = kNone;  // offset of the first RR option, 0 = none
  std::size_t ts_offset_ = kNone;  // offset of the first TS option, 0 = none
  bool checksum_dirty_ = false;
};

}  // namespace rr::pkt
