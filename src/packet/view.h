// Mutable zero-copy view over a serialized IPv4 datagram.
//
// `Network::walk` mutates the same buffer dozens of times per probe (TTL
// decrement plus RR/TS stamps at every stamping hop). The free functions in
// mutate.h re-scan the options area and recompute the full header checksum
// on every call; this view locates the first RR and TS options once, then
// performs each mutation in O(1) with an RFC 1624 incremental checksum
// update. Results are bit-identical to the mutate.h functions for every
// buffer the simulator produces (see view_wire_test.cpp), including after
// the fault injections (blank_options / rr_truncate / rr_garble) which
// change option *content* in place but never move option boundaries — the
// cached offsets stay valid and the type/length/pointer bytes are
// revalidated on every call.
//
// The one case where an incremental update would diverge from mutate.h is a
// buffer whose stored checksum is already invalid (the corrupt-checksum
// fault): the legacy full recompute silently repairs it at the next stamp.
// Callers that corrupt the checksum must call `mark_checksum_dirty()`; the
// next stamping mutation then does one full recompute (matching the legacy
// repair) and reverts to incremental updates.
//
// Everything is defined inline: the census simulator performs ~4 billion
// stamp/TTL mutations end to end, and at ~5 ns apiece the call overhead of
// an out-of-line definition is a measurable slice of the whole run.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "netbase/address.h"
#include "netbase/checksum.h"
#include "packet/options.h"

namespace rr::pkt {

class Ipv4HeaderView {
 public:
  /// An inert, unbound view: `valid()` is false and every mutation fails.
  /// Exists so batch walkers (sim/pipeline.h WalkBatch) can hold arrays of
  /// views and rebind slots by assignment without a heap indirection.
  Ipv4HeaderView() noexcept = default;

  /// Binds to a datagram buffer. If the buffer does not plausibly start
  /// with an IPv4 header the view is inert: `valid()` is false, mutations
  /// fail, and `has_options()` is false — mirroring the mutate.h functions
  /// on the same buffer.
  explicit Ipv4HeaderView(std::span<std::uint8_t> datagram) noexcept
      : data_(datagram) {
    if (datagram.size() < 20) return;
    if ((datagram[0] >> 4) != 4) return;
    const std::size_t header_bytes =
        static_cast<std::size_t>(datagram[0] & 0x0f) * 4;
    if (header_bytes < 20 || header_bytes > datagram.size()) return;
    header_bytes_ = header_bytes;

    // One walk over the options area caches where the first RR and first TS
    // options live. The traversal rules (EOL terminates, NOP advances one
    // byte, anything malformed ends the scan) match find_rr / ts_stamp, so a
    // cached offset exists exactly when the legacy scan would have reached
    // that option.
    std::size_t i = 20;
    while (i < header_bytes_ && (rr_offset_ == kNone || ts_offset_ == kNone)) {
      const std::uint8_t type = data_[i];
      if (type == kOptEndOfList) break;
      if (type == kOptNop) {
        ++i;
        continue;
      }
      if (i + 1 >= header_bytes_) break;
      const std::uint8_t length = data_[i + 1];
      if (length < 2 || i + length > header_bytes_) break;
      if (type == kOptRecordRoute && rr_offset_ == kNone) rr_offset_ = i;
      if (type == kOptTimestamp && ts_offset_ == kNone) ts_offset_ = i;
      i += length;
    }
  }

  [[nodiscard]] bool valid() const noexcept { return header_bytes_ != 0; }
  [[nodiscard]] bool has_options() const noexcept { return header_bytes_ > 20; }
  /// Whether the constructor located a timestamp option. Lets stamping
  /// hot paths skip the timestamp computation entirely for RR-only
  /// packets (the census's dominant packet class).
  [[nodiscard]] bool has_ts() const noexcept { return ts_offset_ != kNone; }
  [[nodiscard]] std::size_t header_bytes() const noexcept {
    return header_bytes_;
  }

  /// See mutate.h `decrement_ttl`: same result, same bytes.
  std::optional<std::uint8_t> decrement_ttl() noexcept {
    if (!valid()) return std::nullopt;
    const std::uint8_t ttl = data_[8];
    if (ttl == 0) return std::nullopt;
    // Same RFC 1624 arithmetic as mutate.h decrement_ttl: incremental from
    // the stored checksum, so a corrupted checksum stays corrupted — exactly
    // like the legacy path.
    const std::uint16_t old_word = read_u16(8);
    const std::uint16_t new_word =
        static_cast<std::uint16_t>(old_word - 0x0100);
    data_[8] = static_cast<std::uint8_t>(ttl - 1);
    net::IncrementalChecksum delta;
    delta.update(old_word, new_word);
    write_u16(10, delta.apply(read_u16(10)));
    return data_[8];
  }

  /// See mutate.h `rr_stamp` / `ts_stamp`: same result, same bytes, O(1).
  bool rr_stamp(net::IPv4Address address) noexcept {
    if (rr_offset_ == kNone) return false;
    const std::size_t i = rr_offset_;
    // Revalidate the option bytes: the fault hooks rewrite option content in
    // place (blank_options turns the type into a NOP, rr_truncate moves the
    // pointer past the end), so the checks find_rr performs per scan must be
    // repeated per stamp.
    if (data_[i] != kOptRecordRoute) return false;
    const std::uint8_t length = data_[i + 1];
    if (length < 3 || (length - 3) % 4 != 0) return false;
    const std::uint8_t pointer = data_[i + 2];
    if (pointer < kRrMinPointer || (pointer - kRrMinPointer) % 4 != 0) {
      return false;
    }
    if ((pointer - kRrMinPointer) / 4 > (length - 3) / 4) return false;
    if (pointer >= length) return false;  // full

    const std::size_t slot = i + pointer - 1;  // pointer is 1-based
    std::size_t words[4];
    std::uint16_t old_words[4];
    std::size_t n = 0;
    note_word(i + 2, words, old_words, n);
    for (std::size_t b = slot; b < slot + 4; ++b) {
      note_word(b, words, old_words, n);
    }

    const auto bytes = address.to_bytes();
    data_[slot] = bytes[0];
    data_[slot + 1] = bytes[1];
    data_[slot + 2] = bytes[2];
    data_[slot + 3] = bytes[3];
    data_[i + 2] = static_cast<std::uint8_t>(pointer + 4);
    finish_stamp({words, n}, {old_words, n});
    return true;
  }

  /// `rr_stamp` minus the per-stamp option revalidation — legal only when
  /// the caller can prove nothing rewrote option bytes since the view was
  /// constructed; see stamp_trusted_into for the proof obligations.
  /// Byte-identical to rr_stamp whenever both succeed.
  bool rr_stamp_trusted(net::IPv4Address address) noexcept {
    if (checksum_dirty_) return rr_stamp(address);
    net::IncrementalChecksum delta;
    if (!stamp_trusted_into(address, delta)) return false;
    write_u16(10, delta.apply(read_u16(10)));
    return true;
  }

  /// Fused TTL decrement + trusted RR stamp: one checksum read-modify-
  /// write for the hop instead of two. Returns what decrement_ttl would;
  /// the stamp happens only when the packet survives (new TTL > 0),
  /// matching the walk's expire-before-stamp order. RFC 1624 deltas
  /// compose exactly — both orders equal the full recompute of the final
  /// bytes — so the result is byte-identical to decrement_ttl() followed
  /// by rr_stamp_trusted() (the run-list compiler's peephole fusion,
  /// sim/pipeline.h, relies on this).
  std::optional<std::uint8_t> ttl_rr_stamp_trusted(
      net::IPv4Address address) noexcept {
    if (checksum_dirty_) {
      // Rare repair path (unreachable from fault-free compiled lists, but
      // keeps the fused call safe anywhere): sequential updates preserve
      // the legacy stays-corrupted-then-repairs semantics.
      const auto ttl = decrement_ttl();
      if (ttl && *ttl != 0) rr_stamp(address);
      return ttl;
    }
    if (!valid()) return std::nullopt;
    const std::uint8_t ttl = data_[8];
    if (ttl == 0) return std::nullopt;
    const std::uint16_t old_word = read_u16(8);
    data_[8] = static_cast<std::uint8_t>(ttl - 1);
    net::IncrementalChecksum delta;
    delta.update(old_word, read_u16(8));
    if (data_[8] != 0) stamp_trusted_into(address, delta);
    write_u16(10, delta.apply(read_u16(10)));
    return data_[8];
  }

  bool ts_stamp(net::IPv4Address address, std::uint32_t timestamp_ms) noexcept {
    if (ts_offset_ == kNone) return false;
    const std::size_t i = ts_offset_;
    if (data_[i] != kOptTimestamp) return false;
    const std::uint8_t length = data_[i + 1];
    if (length < 4) return false;
    const std::uint8_t pointer = data_[i + 2];
    const std::uint8_t flags = data_[i + 3] & 0x0f;
    const std::size_t entry_bytes =
        flags == TimestampOption::kFlagTimestampOnly ? 4 : 8;
    if (pointer < 5 || (pointer - 5) % entry_bytes != 0) return false;
    if (pointer + entry_bytes - 1 > length) {
      // Full: bump the 4-bit overflow counter (saturating).
      const std::uint8_t overflow = data_[i + 3] >> 4;
      if (overflow < 15) {
        const std::size_t word = (i + 3) & ~std::size_t{1};
        const std::uint16_t old_word = read_u16(word);
        data_[i + 3] =
            static_cast<std::uint8_t>(((overflow + 1) << 4) | flags);
        finish_stamp({&word, 1}, {&old_word, 1});
        return true;
      }
      return true;  // saturated; nothing to update
    }

    const std::size_t begin = i + pointer - 1;
    std::size_t words[6];
    std::uint16_t old_words[6];
    std::size_t n = 0;
    note_word(i + 2, words, old_words, n);
    for (std::size_t b = begin; b < begin + entry_bytes; ++b) {
      note_word(b, words, old_words, n);
    }

    std::size_t at = begin;
    if (flags == TimestampOption::kFlagAddressAndTimestamp) {
      const auto addr_bytes = address.to_bytes();
      data_[at] = addr_bytes[0];
      data_[at + 1] = addr_bytes[1];
      data_[at + 2] = addr_bytes[2];
      data_[at + 3] = addr_bytes[3];
      at += 4;
    }
    data_[at] = static_cast<std::uint8_t>(timestamp_ms >> 24);
    data_[at + 1] = static_cast<std::uint8_t>(timestamp_ms >> 16);
    data_[at + 2] = static_cast<std::uint8_t>(timestamp_ms >> 8);
    data_[at + 3] = static_cast<std::uint8_t>(timestamp_ms);
    data_[i + 2] = static_cast<std::uint8_t>(pointer + entry_bytes);
    finish_stamp({words, n}, {old_words, n});
    return true;
  }

  /// The stored header checksum may be invalid; the next stamp performs a
  /// full recompute (as the legacy full-rewrite path would) instead of an
  /// incremental update.
  void mark_checksum_dirty() noexcept { checksum_dirty_ = true; }

  /// A register-resident run of trusted fused hops: amortizes the header
  /// checksum read-modify-write over a whole run of TTL/stamp hops
  /// instead of paying it per hop. The per-hop fused op re-reads 16-bit
  /// words straddling bytes it just stored — store-to-load stalls that
  /// dominate its cost — so the burst keeps the TTL, the RR pointer, and
  /// the accumulated checksum delta in locals, writes only each stamp's
  /// slot bytes as it goes, and folds everything back into the header at
  /// commit(). Deltas compose exactly (see IncrementalChecksum), so the
  /// committed bytes are bit-identical to calling ttl_rr_stamp_trusted /
  /// decrement_ttl once per hop. Legal under the same proof obligations
  /// as rr_stamp_trusted, plus: nothing may read or write the header
  /// between construction and commit(). Ineligible views (dirty checksum,
  /// timestamp option present, malformed header) must take the per-hop
  /// calls instead.
  class TrustedBurst {
   public:
    explicit TrustedBurst(Ipv4HeaderView& view) noexcept
        : v_(view),
          eligible_(!view.checksum_dirty_ && view.valid() &&
                    view.ts_offset_ == kNone) {
      if (!eligible_) return;
      ttl_ = v_.data_[8];
      csum_ = v_.read_u16(10);
      if (v_.rr_offset_ != kNone) {
        rr_ = v_.rr_offset_;
        length_ = v_.data_[rr_ + 1];
        pointer_ = v_.data_[rr_ + 2];
        if (length_ < 3) rr_ = kNone;  // degenerate option: never stamp
      }
    }

    [[nodiscard]] bool eligible() const noexcept { return eligible_; }

    /// ttl_rr_stamp_trusted on the burst registers: decrement, then stamp
    /// when the packet survives and the option has room. Same return.
    std::optional<std::uint8_t> ttl_rr_stamp(
        net::IPv4Address address) noexcept {
      if (ttl_ == 0) return std::nullopt;
      note_byte(8, ttl_, static_cast<std::uint8_t>(ttl_ - 1));
      --ttl_;
      if (ttl_ != 0 && rr_ != kNone && pointer_ + 3u <= length_) {
        const std::size_t slot = rr_ + pointer_ - 1;  // pointer is 1-based
        const auto bytes = address.to_bytes();
        for (std::size_t k = 0; k < 4; ++k) {
          note_byte(slot + k, v_.data_[slot + k], bytes[k]);
          v_.data_[slot + k] = bytes[k];
        }
        note_byte(rr_ + 2, pointer_, static_cast<std::uint8_t>(pointer_ + 4));
        pointer_ = static_cast<std::uint8_t>(pointer_ + 4);
      }
      return ttl_;
    }

    /// decrement_ttl on the burst registers. Same return.
    std::optional<std::uint8_t> ttl_only() noexcept {
      if (ttl_ == 0) return std::nullopt;
      note_byte(8, ttl_, static_cast<std::uint8_t>(ttl_ - 1));
      --ttl_;
      return ttl_;
    }

    /// Folds the burst back into the header bytes. Call exactly once, at
    /// the run boundary.
    void commit() noexcept {
      if (!eligible_) return;
      v_.data_[8] = ttl_;
      if (rr_ != kNone) v_.data_[rr_ + 2] = pointer_;
      v_.write_u16(10, delta_.apply(csum_));
    }

   private:
    /// One changed byte folded into the delta at its word position: a
    /// byte at an even offset is the high half of its big-endian word, so
    /// its diff contributes shifted — exactly the word-level update with
    /// the unchanged sibling byte cancelled (update is diff-based, mod
    /// 0xffff).
    void note_byte(std::size_t offset, std::uint8_t old_byte,
                   std::uint8_t new_byte) noexcept {
      if ((offset & 1) == 0) {
        delta_.update(static_cast<std::uint16_t>(old_byte << 8),
                      static_cast<std::uint16_t>(new_byte << 8));
      } else {
        delta_.update(old_byte, new_byte);
      }
    }

    Ipv4HeaderView& v_;
    bool eligible_;
    std::uint8_t ttl_ = 0;
    std::uint8_t pointer_ = 0;
    std::uint8_t length_ = 0;
    std::size_t rr_ = kNone;
    std::uint16_t csum_ = 0;
    net::IncrementalChecksum delta_;
  };

 private:
  static constexpr std::size_t kNone = 0;

  [[nodiscard]] std::uint16_t read_u16(std::size_t offset) const noexcept {
    return static_cast<std::uint16_t>((std::uint16_t{data_[offset]} << 8) |
                                      data_[offset + 1]);
  }
  void write_u16(std::size_t offset, std::uint16_t value) noexcept {
    data_[offset] = static_cast<std::uint8_t>(value >> 8);
    data_[offset + 1] = static_cast<std::uint8_t>(value);
  }

  /// The trusted-stamp core: writes the slot and pointer bytes and folds
  /// their word deltas into `delta` without touching the checksum field
  /// (callers apply once, possibly combining with other updates). Caller
  /// must have checked !checksum_dirty_. Skips the per-stamp option
  /// revalidation rr_stamp performs — legal exactly when nothing rewrote
  /// option bytes since construction, which the pipeline compiler proves
  /// structurally: fault elements are the only mid-walk option writers,
  /// and with the fault plan disabled they are compiled out of every run
  /// list (sim/pipeline.h, TrustedStampElement). The two remaining guards
  /// are pure bounds checks that never fire on a packet the constructor
  /// accepted; they keep the fast path memory-safe when the fuzzer binds
  /// views over arbitrary bytes. Byte-identical to rr_stamp whenever both
  /// succeed.
  bool stamp_trusted_into(net::IPv4Address address,
                          net::IncrementalChecksum& delta) noexcept {
    if (rr_offset_ == kNone) return false;
    const std::size_t i = rr_offset_;
    const std::uint8_t length = data_[i + 1];
    if (length < 3) return false;  // bounds only: degenerate option
    const std::uint8_t pointer = data_[i + 2];
    // Full (pointer >= length on a valid option: a valid RR has
    // pointer ≡ 0 (mod 4), length ≡ 3 (mod 4), so pointer < length
    // implies pointer + 3 <= length) — and on a corrupted option this is
    // the bound that keeps the 4-byte write inside i + length - 1.
    if (pointer + 3u > length) return false;

    const std::size_t slot = i + pointer - 1;  // pointer is 1-based
    const std::size_t pointer_word = (i + 2) & ~std::size_t{1};
    const std::size_t slot_word = slot & ~std::size_t{1};
    std::size_t words[4];
    std::uint16_t old_words[4];
    std::size_t n = 0;
    // Same word set note_word would collect, without the dedup scan: the
    // pointer word, then the two (even-aligned slot) or three words
    // covering the 4-byte slot. The only overlap on a valid packet is
    // pointer_word == slot_word, when the slot starts at i + 3 (pointer
    // of 4, even i).
    words[n] = pointer_word;
    old_words[n] = read_u16(pointer_word);
    ++n;
    if (slot_word != pointer_word) {
      words[n] = slot_word;
      old_words[n] = read_u16(slot_word);
      ++n;
    }
    words[n] = slot_word + 2;
    old_words[n] = read_u16(slot_word + 2);
    ++n;
    if ((slot & 1) != 0) {
      words[n] = slot_word + 4;
      old_words[n] = read_u16(slot_word + 4);
      ++n;
    }

    const auto bytes = address.to_bytes();
    data_[slot] = bytes[0];
    data_[slot + 1] = bytes[1];
    data_[slot + 2] = bytes[2];
    data_[slot + 3] = bytes[3];
    data_[i + 2] = static_cast<std::uint8_t>(pointer + 4);
    for (std::size_t k = 0; k < n; ++k) {
      delta.update(old_words[k], read_u16(words[k]));
    }
    return true;
  }

  /// Records the 16-bit word containing `byte_offset` (once) for the
  /// incremental checksum delta.
  void note_word(std::size_t byte_offset, std::size_t* words,
                 std::uint16_t* old_words, std::size_t& n) const noexcept {
    const std::size_t word = byte_offset & ~std::size_t{1};
    for (std::size_t k = 0; k < n; ++k) {
      if (words[k] == word) return;
    }
    words[n] = word;
    old_words[n] = read_u16(word);
    ++n;
  }

  void finish_stamp(std::span<const std::size_t> words,
                    std::span<const std::uint16_t> old_words) noexcept {
    if (checksum_dirty_) {
      // Full recompute, as the legacy rewrite_header_checksum would do. This
      // is what repairs a corrupt-checksum-faulted packet at its next stamp.
      write_u16(10, 0);
      write_u16(10, net::internet_checksum(data_.first(header_bytes_)));
      checksum_dirty_ = false;
      return;
    }
    net::IncrementalChecksum delta;
    for (std::size_t k = 0; k < words.size(); ++k) {
      delta.update(old_words[k], read_u16(words[k]));
    }
    write_u16(10, delta.apply(read_u16(10)));
  }

  std::span<std::uint8_t> data_;
  std::size_t header_bytes_ = 0;
  std::size_t rr_offset_ = kNone;  // offset of the first RR option, 0 = none
  std::size_t ts_offset_ = kNone;  // offset of the first TS option, 0 = none
  bool checksum_dirty_ = false;
};

}  // namespace rr::pkt
