#include "packet/wire.h"

#include <algorithm>

#include "netbase/checksum.h"
#include "packet/icmp.h"
#include "packet/ipv4.h"
#include "packet/options.h"

namespace rr::pkt {

namespace {

std::uint16_t read_u16(std::span<const std::uint8_t> buffer,
                       std::size_t offset) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{buffer[offset]} << 8) |
                                    buffer[offset + 1]);
}

void write_u16(std::span<std::uint8_t> buffer, std::size_t offset,
               std::uint16_t value) noexcept {
  buffer[offset] = static_cast<std::uint8_t>(value >> 8);
  buffer[offset + 1] = static_cast<std::uint8_t>(value);
}

void write_address(std::span<std::uint8_t> buffer, std::size_t offset,
                   net::IPv4Address address) noexcept {
  const auto bytes = address.to_bytes();
  buffer[offset] = bytes[0];
  buffer[offset + 1] = bytes[1];
  buffer[offset + 2] = bytes[2];
  buffer[offset + 3] = bytes[3];
}

net::IPv4Address read_address(std::span<const std::uint8_t> buffer,
                              std::size_t offset) noexcept {
  return net::IPv4Address::from_bytes(buffer[offset], buffer[offset + 1],
                                      buffer[offset + 2], buffer[offset + 3]);
}

void rewrite_header_checksum(std::span<std::uint8_t> bytes,
                             std::size_t header_bytes) noexcept {
  write_u16(bytes, 10, 0);
  write_u16(bytes, 10, net::internet_checksum(bytes.first(header_bytes)));
}

/// Walks the options area with parse_options grammar; false = parse_options
/// would have returned nullopt. Records the first RR / TS offsets (absolute)
/// and whether any option (NOPs included) was parsed.
bool walk_options(std::span<const std::uint8_t> data, std::size_t header_bytes,
                  WireInfo& info) noexcept {
  std::size_t i = 20;
  while (i < header_bytes) {
    const std::uint8_t type = data[i];
    if (type == kOptEndOfList) break;  // rest is padding
    if (type == kOptNop) {
      info.options_present = true;
      ++i;
      continue;
    }
    if (i + 1 >= header_bytes) return false;  // missing length
    const std::uint8_t length = data[i + 1];
    if (length < 2 || i + length > header_bytes) return false;
    if (type == kOptRecordRoute) {
      if (length < 3 || (length - 3) % 4 != 0) return false;
      const int capacity = (length - 3) / 4;
      if (capacity < 1 || capacity > kMaxRrSlots) return false;
      const std::uint8_t pointer = data[i + 2];
      if (pointer < kRrMinPointer || (pointer - kRrMinPointer) % 4 != 0) {
        return false;
      }
      if ((pointer - kRrMinPointer) / 4 > capacity) return false;
      if (info.rr_offset == 0) info.rr_offset = i;
    } else if (type == kOptTimestamp) {
      if (length < 4) return false;
      const std::uint8_t flags = data[i + 3] & 0x0f;
      if (flags != TimestampOption::kFlagTimestampOnly &&
          flags != TimestampOption::kFlagAddressAndTimestamp) {
        return false;
      }
      const int entry_bytes =
          flags == TimestampOption::kFlagTimestampOnly ? 4 : 8;
      if ((length - 4) % entry_bytes != 0) return false;
      const int capacity = (length - 4) / entry_bytes;
      if (capacity < 1) return false;
      const std::uint8_t pointer = data[i + 2];
      if (pointer < 5 || (pointer - 5) % entry_bytes != 0) return false;
      if ((pointer - 5) / entry_bytes > capacity) return false;
      if (info.ts_offset == 0) info.ts_offset = i;
    }
    // Other types are RawOptions: any content of declared length parses.
    info.options_present = true;
    i += length;
  }
  return true;
}

/// Writes the 8-byte ICMP echo request body (id, seq, cookie payload) with
/// a zero checksum placeholder at `offset`.
void write_echo_request(std::span<std::uint8_t> bytes, std::size_t offset,
                        std::uint16_t identifier,
                        std::uint16_t sequence) noexcept {
  bytes[offset] = static_cast<std::uint8_t>(IcmpType::kEchoRequest);
  bytes[offset + 1] = 0;
  write_u16(bytes, offset + 2, 0);
  write_u16(bytes, offset + 4, identifier);
  write_u16(bytes, offset + 6, sequence);
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[offset + 8 + i] = static_cast<std::uint8_t>(0xa5 ^ (i * 29));
  }
}

void write_base_header(std::span<std::uint8_t> bytes, std::size_t header_bytes,
                       std::size_t total, std::uint16_t identification,
                       std::uint8_t ttl, std::uint8_t protocol,
                       net::IPv4Address source,
                       net::IPv4Address destination) noexcept {
  bytes[0] = static_cast<std::uint8_t>(0x40 | (header_bytes / 4));
  bytes[1] = 0;  // tos
  write_u16(bytes, 2, static_cast<std::uint16_t>(total));
  write_u16(bytes, 4, identification);
  write_u16(bytes, 6, 0x4000);  // don't-fragment
  bytes[8] = ttl;
  bytes[9] = protocol;
  write_u16(bytes, 10, 0);  // checksum placeholder
  write_address(bytes, 12, source);
  write_address(bytes, 16, destination);
}

}  // namespace

std::optional<WireInfo> inspect_header(
    std::span<const std::uint8_t> data) noexcept {
  if (data.size() < 20) return std::nullopt;
  if ((data[0] >> 4) != 4) return std::nullopt;
  const std::size_t header_bytes =
      static_cast<std::size_t>(data[0] & 0x0f) * 4;
  if (header_bytes < 20 || header_bytes > data.size()) return std::nullopt;
  if (!net::checksum_ok(data.first(header_bytes))) return std::nullopt;

  WireInfo info;
  info.header_bytes = header_bytes;
  info.total_length = read_u16(data, 2);
  if (info.total_length < header_bytes) return std::nullopt;
  info.identification = read_u16(data, 4);
  info.ttl = data[8];
  info.protocol = data[9];
  info.source = read_address(data, 12);
  info.destination = read_address(data, 16);
  if (!walk_options(data, header_bytes, info)) return std::nullopt;
  return info;
}

std::optional<WireInfo> inspect_datagram(
    std::span<const std::uint8_t> data) noexcept {
  auto info = inspect_header(data);
  if (!info) return std::nullopt;
  if (info->total_length > data.size()) return std::nullopt;
  const auto transport =
      data.subspan(info->header_bytes, info->total_length - info->header_bytes);

  if (info->protocol == static_cast<std::uint8_t>(IpProto::kIcmp)) {
    if (transport.size() < 8) return std::nullopt;
    if (!net::checksum_ok(transport)) return std::nullopt;
    const std::uint8_t type = transport[0];
    if (type != static_cast<std::uint8_t>(IcmpType::kEchoReply) &&
        type != static_cast<std::uint8_t>(IcmpType::kDestUnreachable) &&
        type != static_cast<std::uint8_t>(IcmpType::kEchoRequest) &&
        type != static_cast<std::uint8_t>(IcmpType::kTimeExceeded)) {
      return std::nullopt;  // type we do not model
    }
    info->icmp_type = type;
    info->icmp_code = transport[1];
    if (type == static_cast<std::uint8_t>(IcmpType::kEchoReply) ||
        type == static_cast<std::uint8_t>(IcmpType::kEchoRequest)) {
      info->echo_identifier = read_u16(transport, 4);
      info->echo_sequence = read_u16(transport, 6);
    } else {
      info->quote_offset = info->header_bytes + 8;
      info->quote_length = transport.size() - 8;
    }
  } else if (info->protocol == static_cast<std::uint8_t>(IpProto::kUdp)) {
    if (transport.size() < 8) return std::nullopt;
    const std::uint16_t length = read_u16(transport, 4);
    if (length < 8 || length > transport.size()) return std::nullopt;
    info->udp_source_port = read_u16(transport, 0);
    info->udp_destination_port = read_u16(transport, 2);
  } else {
    return std::nullopt;
  }
  return info;
}

RrWire rr_wire(std::span<const std::uint8_t> data,
               std::size_t rr_offset) noexcept {
  RrWire rr;
  rr.offset = rr_offset;
  const std::uint8_t length = data[rr_offset + 1];
  const std::uint8_t pointer = data[rr_offset + 2];
  rr.capacity = static_cast<std::uint8_t>((length - 3) / 4);
  rr.filled = static_cast<std::uint8_t>((pointer - kRrMinPointer) / 4);
  return rr;
}

net::IPv4Address rr_slot(std::span<const std::uint8_t> data, const RrWire& rr,
                         std::size_t index) noexcept {
  return read_address(data, rr.offset + 3 + 4 * index);
}

TsWire ts_wire(std::span<const std::uint8_t> data,
               std::size_t ts_offset) noexcept {
  TsWire ts;
  ts.offset = ts_offset;
  const std::uint8_t length = data[ts_offset + 1];
  const std::uint8_t pointer = data[ts_offset + 2];
  ts.flags = data[ts_offset + 3] & 0x0f;
  ts.overflow = data[ts_offset + 3] >> 4;
  ts.entry_bytes =
      ts.flags == TimestampOption::kFlagTimestampOnly ? 4 : 8;
  ts.capacity = static_cast<std::uint8_t>((length - 4) / ts.entry_bytes);
  ts.filled = static_cast<std::uint8_t>((pointer - 5) / ts.entry_bytes);
  return ts;
}

TsEntryWire ts_entry(std::span<const std::uint8_t> data, const TsWire& ts,
                     std::size_t index) noexcept {
  TsEntryWire entry;
  std::size_t at = ts.offset + 4 + ts.entry_bytes * index;
  if (ts.flags == TimestampOption::kFlagAddressAndTimestamp) {
    entry.address = read_address(data, at);
    at += 4;
  }
  entry.timestamp_ms = (std::uint32_t{data[at]} << 24) |
                       (std::uint32_t{data[at + 1]} << 16) |
                       (std::uint32_t{data[at + 2]} << 8) |
                       std::uint32_t{data[at + 3]};
  return entry;
}

void build_ping(std::vector<std::uint8_t>& out, net::IPv4Address source,
                net::IPv4Address destination, std::uint16_t identifier,
                std::uint16_t sequence, std::uint8_t ttl, int rr_slots) {
  const int slots = rr_slots > 0 ? std::min(rr_slots, kMaxRrSlots) : 0;
  // The RR option is 3 + 4*slots bytes; serialize pads options to a 32-bit
  // boundary with End-of-List zeros (always exactly one byte here).
  const std::size_t option_bytes =
      slots > 0 ? ((3 + 4 * static_cast<std::size_t>(slots) + 3) &
                   ~std::size_t{3})
                : 0;
  const std::size_t header_bytes = 20 + option_bytes;
  const std::size_t total = header_bytes + 16;
  out.assign(total, 0);
  write_base_header(out, header_bytes, total,
                    static_cast<std::uint16_t>((identifier << 4) ^ sequence),
                    ttl, static_cast<std::uint8_t>(IpProto::kIcmp), source,
                    destination);
  if (slots > 0) {
    out[20] = kOptRecordRoute;
    out[21] = static_cast<std::uint8_t>(3 + 4 * slots);
    out[22] = kRrMinPointer;  // empty: slots and the pad byte stay zero
  }
  write_echo_request(out, header_bytes, identifier, sequence);
  finalize_checksums(out, header_bytes, total);
}

void build_ping_ts(std::vector<std::uint8_t>& out, net::IPv4Address source,
                   net::IPv4Address destination, std::uint16_t identifier,
                   std::uint16_t sequence, std::uint8_t ttl, int ts_slots) {
  const int slots = std::clamp(ts_slots, 1, 4);
  const std::size_t option_bytes = 4 + 8 * static_cast<std::size_t>(slots);
  const std::size_t header_bytes = 20 + option_bytes;
  const std::size_t total = header_bytes + 16;
  out.assign(total, 0);
  write_base_header(
      out, header_bytes, total,
      static_cast<std::uint16_t>((identifier << 3) ^ sequence ^ 0x5a5a), ttl,
      static_cast<std::uint8_t>(IpProto::kIcmp), source, destination);
  out[20] = kOptTimestamp;
  out[21] = static_cast<std::uint8_t>(4 + 8 * slots);
  out[22] = 5;  // first entry
  out[23] = TimestampOption::kFlagAddressAndTimestamp;  // overflow 0
  write_echo_request(out, header_bytes, identifier, sequence);
  finalize_checksums(out, header_bytes, total);
}

void build_udp_probe(std::vector<std::uint8_t>& out, net::IPv4Address source,
                     net::IPv4Address destination, std::uint16_t source_port,
                     std::uint16_t destination_port, std::uint8_t ttl,
                     int rr_slots) {
  const int slots = rr_slots > 0 ? std::min(rr_slots, kMaxRrSlots) : 0;
  const std::size_t option_bytes =
      slots > 0 ? ((3 + 4 * static_cast<std::size_t>(slots) + 3) &
                   ~std::size_t{3})
                : 0;
  const std::size_t header_bytes = 20 + option_bytes;
  const std::size_t total = header_bytes + 12;  // 8 UDP + 4 payload
  out.assign(total, 0);
  write_base_header(
      out, header_bytes, total,
      static_cast<std::uint16_t>(source_port ^ (destination_port << 1)), ttl,
      static_cast<std::uint8_t>(IpProto::kUdp), source, destination);
  if (slots > 0) {
    out[20] = kOptRecordRoute;
    out[21] = static_cast<std::uint8_t>(3 + 4 * slots);
    out[22] = kRrMinPointer;
  }
  write_u16(out, header_bytes, source_port);
  write_u16(out, header_bytes + 2, destination_port);
  write_u16(out, header_bytes + 4, 12);
  // UDP checksum stays 0 (not computed), matching UdpDatagram::serialize.
  out[header_bytes + 8] = 0xde;
  out[header_bytes + 9] = 0xad;
  out[header_bytes + 10] = 0xbe;
  out[header_bytes + 11] = 0xef;
  rewrite_header_checksum(out, header_bytes);
}

void echo_reply_inplace(std::span<std::uint8_t> bytes, const WireInfo& info,
                        std::uint16_t ip_id) noexcept {
  write_address(bytes, 12, info.destination);
  write_address(bytes, 16, info.source);
  bytes[1] = 0;                 // tos
  write_u16(bytes, 4, ip_id);
  write_u16(bytes, 6, 0x4000);  // don't-fragment
  bytes[8] = 64;                // fresh ttl
  bytes[info.header_bytes] = static_cast<std::uint8_t>(IcmpType::kEchoReply);
  bytes[info.header_bytes + 1] = 0;
}

void finalize_checksums(std::span<std::uint8_t> bytes,
                        std::size_t header_bytes, std::size_t total) noexcept {
  write_u16(bytes, header_bytes + 2, 0);
  write_u16(bytes, header_bytes + 2,
            net::internet_checksum(
                bytes.subspan(header_bytes, total - header_bytes)));
  rewrite_header_checksum(bytes, header_bytes);
}

void build_echo_reply_stripped(std::vector<std::uint8_t>& out,
                               std::span<const std::uint8_t> request,
                               const WireInfo& info, std::uint16_t ip_id) {
  const std::size_t icmp_bytes = info.total_length - info.header_bytes;
  const std::size_t total = 20 + icmp_bytes;
  out.assign(total, 0);
  write_base_header(out, 20, total, ip_id, 64,
                    static_cast<std::uint8_t>(IpProto::kIcmp),
                    info.destination, info.source);
  std::copy_n(request.begin() + static_cast<std::ptrdiff_t>(info.header_bytes),
              icmp_bytes, out.begin() + 20);
  out[20] = static_cast<std::uint8_t>(IcmpType::kEchoReply);
  out[21] = 0;
  finalize_checksums(out, 20, total);
}

void build_icmp_error(std::vector<std::uint8_t>& out, std::uint8_t icmp_type,
                      std::uint8_t icmp_code, net::IPv4Address source,
                      net::IPv4Address destination, std::uint16_t ip_id,
                      std::span<const std::uint8_t> offending,
                      std::size_t quoted_payload_bytes) {
  std::size_t quote_bytes = offending.size();
  if (!offending.empty()) {
    const std::size_t offending_header =
        static_cast<std::size_t>(offending[0] & 0x0f) * 4;
    quote_bytes =
        std::min(offending.size(), offending_header + quoted_payload_bytes);
  }
  const std::size_t total = 20 + 8 + quote_bytes;
  out.assign(total, 0);
  write_base_header(out, 20, total, ip_id, 64,
                    static_cast<std::uint8_t>(IpProto::kIcmp), source,
                    destination);
  out[20] = icmp_type;
  out[21] = icmp_code;
  // Bytes 22..27 (checksum + unused word) stay zero until finalize.
  std::copy_n(offending.begin(), quote_bytes, out.begin() + 28);
  finalize_checksums(out, 20, total);
}

}  // namespace rr::pkt
