// IPv4 options (RFC 791 §3.1), centred on the Record Route option.
//
// Wire layout of Record Route (option type 7):
//
//   +--------+--------+--------+---------//--------+
//   |00000111| length | pointer|     route data    |
//   +--------+--------+--------+---------//--------+
//
// `length` counts the whole option (3 + 4*slots); `pointer` is 1-based from
// the start of the option and points at the next free slot byte (smallest
// legal value 4). A router with a packet whose pointer exceeds the length
// forwards without recording; otherwise it writes the outgoing interface
// address at the pointer and advances it by four. Nine slots (39 bytes, plus
// one byte of padding) exhaust the 40-byte IPv4 option area — that is where
// the paper's "nine hop limit" comes from.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "netbase/address.h"
#include "netbase/byte_io.h"

namespace rr::pkt {

inline constexpr std::uint8_t kOptEndOfList = 0;
inline constexpr std::uint8_t kOptNop = 1;
inline constexpr std::uint8_t kOptRecordRoute = 7;
inline constexpr std::uint8_t kOptTimestamp = 68;

inline constexpr int kMaxOptionBytes = 40;   // IPv4 header option area
inline constexpr int kMaxRrSlots = 9;        // (40 - 3) / 4
inline constexpr std::uint8_t kRrMinPointer = 4;

/// Single-byte padding option (type 1).
struct NopOption {
  [[nodiscard]] bool operator==(const NopOption&) const = default;
};

/// Record Route option state, decoupled from wire bytes.
///
/// `recorded` holds the addresses stamped so far (slots before the pointer);
/// the remaining `capacity - recorded.size()` slots are zero on the wire.
struct RecordRouteOption {
  std::uint8_t capacity = kMaxRrSlots;
  std::vector<net::IPv4Address> recorded;

  /// A fresh, empty 9-slot option as the prober emits it.
  [[nodiscard]] static RecordRouteOption empty(
      std::uint8_t slots = kMaxRrSlots) noexcept {
    RecordRouteOption opt;
    opt.capacity = slots;
    return opt;
  }

  [[nodiscard]] int remaining_slots() const noexcept {
    return capacity - static_cast<int>(recorded.size());
  }
  [[nodiscard]] bool full() const noexcept { return remaining_slots() <= 0; }

  /// Records an address if a slot is free; returns whether it was recorded.
  bool stamp(net::IPv4Address addr) {
    if (full()) return false;
    recorded.push_back(addr);
    return true;
  }

  /// Wire pointer value for the current fill level.
  [[nodiscard]] std::uint8_t pointer() const noexcept {
    return static_cast<std::uint8_t>(kRrMinPointer + 4 * recorded.size());
  }

  /// Whole-option length on the wire (type + len + ptr + slots).
  [[nodiscard]] std::uint8_t wire_length() const noexcept {
    return static_cast<std::uint8_t>(3 + 4 * capacity);
  }

  [[nodiscard]] bool operator==(const RecordRouteOption&) const = default;
};

/// IP Timestamp option (type 68, RFC 791 §3.1) in its address+timestamp
/// form (flag 1). Each entry consumes eight bytes, so the 40-byte option
/// area caps it at FOUR hops — less than half of Record Route's nine,
/// which is one reason the paper centres on RR. A 4-bit overflow counter
/// tallies routers that found no room.
struct TimestampOption {
  static constexpr std::uint8_t kFlagTimestampOnly = 0;
  static constexpr std::uint8_t kFlagAddressAndTimestamp = 1;

  struct Entry {
    net::IPv4Address address;
    std::uint32_t timestamp_ms = 0;  // milliseconds since midnight UT

    [[nodiscard]] bool operator==(const Entry&) const = default;
  };

  std::uint8_t flags = kFlagAddressAndTimestamp;
  std::uint8_t capacity = 4;  // entries (max 4 with addresses, 9 without)
  std::uint8_t overflow = 0;  // 4-bit counter of routers that missed out
  std::vector<Entry> entries;

  [[nodiscard]] static TimestampOption empty(std::uint8_t slots = 4) {
    TimestampOption ts;
    ts.capacity = slots;
    return ts;
  }

  [[nodiscard]] int entry_bytes() const noexcept {
    return flags == kFlagTimestampOnly ? 4 : 8;
  }
  [[nodiscard]] int remaining_slots() const noexcept {
    return capacity - static_cast<int>(entries.size());
  }
  [[nodiscard]] bool full() const noexcept { return remaining_slots() <= 0; }

  bool stamp(net::IPv4Address addr, std::uint32_t timestamp_ms) {
    if (full()) {
      if (overflow < 15) ++overflow;
      return false;
    }
    entries.push_back(Entry{addr, timestamp_ms});
    return true;
  }

  [[nodiscard]] std::uint8_t pointer() const noexcept {
    return static_cast<std::uint8_t>(5 + entry_bytes() *
                                             static_cast<int>(entries.size()));
  }
  [[nodiscard]] std::uint8_t wire_length() const noexcept {
    return static_cast<std::uint8_t>(4 + entry_bytes() * capacity);
  }

  [[nodiscard]] bool operator==(const TimestampOption&) const = default;
};

/// Any option we do not model structurally (kept verbatim so the packet
/// round-trips; `data` excludes the type and length bytes).
struct RawOption {
  std::uint8_t type = 0;
  std::vector<std::uint8_t> data;

  [[nodiscard]] bool operator==(const RawOption&) const = default;
};

using IpOption = std::variant<NopOption, RecordRouteOption,
                              TimestampOption, RawOption>;

/// Serialized length of one option in bytes.
[[nodiscard]] std::size_t option_wire_length(const IpOption& option) noexcept;

/// Serializes an option list, padded with End-of-List bytes to a 4-byte
/// multiple. Returns false (writing nothing) if the list exceeds the 40-byte
/// option area or any single option is malformed.
[[nodiscard]] bool serialize_options(const std::vector<IpOption>& options,
                                     net::ByteWriter& out);

/// Parses `option_bytes` (the header area after the fixed 20 bytes).
/// Returns std::nullopt on malformed encodings (bad lengths, overruns).
[[nodiscard]] std::optional<std::vector<IpOption>> parse_options(
    std::span<const std::uint8_t> option_bytes);

/// Convenience: pointer to the first RecordRouteOption, if any.
[[nodiscard]] const RecordRouteOption* find_record_route(
    const std::vector<IpOption>& options) noexcept;
[[nodiscard]] RecordRouteOption* find_record_route(
    std::vector<IpOption>& options) noexcept;

/// Convenience: pointer to the first TimestampOption, if any.
[[nodiscard]] const TimestampOption* find_timestamp(
    const std::vector<IpOption>& options) noexcept;
[[nodiscard]] TimestampOption* find_timestamp(
    std::vector<IpOption>& options) noexcept;

/// Debug rendering, e.g. "RR(3/9: 10.0.0.1, 10.0.1.1, 10.0.2.1)".
[[nodiscard]] std::string to_string(const IpOption& option);

}  // namespace rr::pkt
