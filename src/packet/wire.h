// Zero-allocation wire-format access for the probe hot path.
//
// `Datagram::parse` and the make_*()/serialize() pairs materialize vectors
// of options, ICMP payload copies, and a fresh byte buffer per packet. One
// probe exchange performs that dance four times (build probe, parse at the
// endpoint, build reply, parse at the prober). The functions here do the
// same work directly against byte buffers:
//
//  - `inspect_datagram` / `inspect_header` accept and reject exactly the
//    same buffers as `Datagram::parse` / `Ipv4Header::parse` (same checksum
//    checks, same option grammar, same ICMP type whitelist) but only record
//    offsets and scalar fields — no allocation.
//  - `build_*` write byte-for-byte what make_*().serialize() would produce,
//    into a caller-owned reusable vector.
//  - The reply transforms reproduce what the simulated endpoints in
//    `sim::Network` build via parse → Datagram → serialize. Echo replies
//    that keep the request's options reuse the request buffer in place:
//    the raw option area of every simulator-generated packet (including
//    fault-blanked/truncated/garbled ones) round-trips unchanged through
//    parse_options → serialize_options, so copying the bytes equals
//    re-serializing the parsed options. view_wire_test.cpp asserts all of
//    these equivalences against the legacy paths.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/address.h"

namespace rr::pkt {

/// Scalar summary of a validated packet; all offsets are absolute into the
/// inspected buffer. A populated value means `Datagram::parse` (or
/// `Ipv4Header::parse` for `inspect_header`) would have succeeded.
struct WireInfo {
  std::size_t header_bytes = 0;
  std::uint16_t total_length = 0;
  std::uint8_t ttl = 0;
  std::uint8_t protocol = 0;
  std::uint16_t identification = 0;
  net::IPv4Address source;
  net::IPv4Address destination;
  bool options_present = false;  // any parsed option, NOPs included
  std::size_t rr_offset = 0;     // first RR option; 0 = none
  std::size_t ts_offset = 0;     // first TS option; 0 = none

  // Transport fields (populated by inspect_datagram only).
  std::uint8_t icmp_type = 0;
  std::uint8_t icmp_code = 0;
  std::uint16_t echo_identifier = 0;  // ICMP types 0/8
  std::uint16_t echo_sequence = 0;
  std::size_t quote_offset = 0;  // ICMP types 3/11; 0 = none
  std::size_t quote_length = 0;
  std::uint16_t udp_source_port = 0;
  std::uint16_t udp_destination_port = 0;
};

/// Validates a full datagram with `Datagram::parse` acceptance semantics.
[[nodiscard]] std::optional<WireInfo> inspect_datagram(
    std::span<const std::uint8_t> data) noexcept;

/// Validates a (possibly truncated-quote) header with `Ipv4Header::parse`
/// acceptance semantics: no total-length-vs-buffer or transport checks.
[[nodiscard]] std::optional<WireInfo> inspect_header(
    std::span<const std::uint8_t> data) noexcept;

/// Decoded geometry of a validated RR / TS option (fields were already
/// checked by inspect_*, so these never fail on an inspected buffer).
struct RrWire {
  std::uint8_t capacity = 0;
  std::uint8_t filled = 0;
  std::size_t offset = 0;
};
struct TsWire {
  std::uint8_t flags = 0;
  std::uint8_t overflow = 0;
  std::uint8_t capacity = 0;
  std::uint8_t filled = 0;
  std::uint8_t entry_bytes = 4;
  std::size_t offset = 0;
};

[[nodiscard]] RrWire rr_wire(std::span<const std::uint8_t> data,
                             std::size_t rr_offset) noexcept;
[[nodiscard]] net::IPv4Address rr_slot(std::span<const std::uint8_t> data,
                                       const RrWire& rr,
                                       std::size_t index) noexcept;
[[nodiscard]] TsWire ts_wire(std::span<const std::uint8_t> data,
                             std::size_t ts_offset) noexcept;
struct TsEntryWire {
  net::IPv4Address address;
  std::uint32_t timestamp_ms = 0;
};
[[nodiscard]] TsEntryWire ts_entry(std::span<const std::uint8_t> data,
                                   const TsWire& ts,
                                   std::size_t index) noexcept;

// --- probe builders (byte-identical to make_*().serialize()) -------------

void build_ping(std::vector<std::uint8_t>& out, net::IPv4Address source,
                net::IPv4Address destination, std::uint16_t identifier,
                std::uint16_t sequence, std::uint8_t ttl, int rr_slots);

void build_ping_ts(std::vector<std::uint8_t>& out, net::IPv4Address source,
                   net::IPv4Address destination, std::uint16_t identifier,
                   std::uint16_t sequence, std::uint8_t ttl, int ts_slots);

void build_udp_probe(std::vector<std::uint8_t>& out, net::IPv4Address source,
                     net::IPv4Address destination, std::uint16_t source_port,
                     std::uint16_t destination_port, std::uint8_t ttl,
                     int rr_slots);

// --- endpoint reply construction ------------------------------------------

/// Turns a validated echo request into the echo reply the simulated host
/// would serialize, reusing the buffer: addresses swapped, ttl 64, fresh
/// IP-ID, ICMP type 0, options kept verbatim. Checksums are NOT final —
/// callers apply any endpoint stamps, then call `finalize_checksums`.
void echo_reply_inplace(std::span<std::uint8_t> bytes, const WireInfo& info,
                        std::uint16_t ip_id) noexcept;

/// Recomputes the ICMP checksum over [header_bytes, total) and then the
/// header checksum, in serialize order.
void finalize_checksums(std::span<std::uint8_t> bytes,
                        std::size_t header_bytes, std::size_t total) noexcept;

/// Builds the option-less echo reply (host strips options, or router does
/// not stamp) into `out`, byte-identical to the legacy reply serialize.
void build_echo_reply_stripped(std::vector<std::uint8_t>& out,
                               std::span<const std::uint8_t> request,
                               const WireInfo& info, std::uint16_t ip_id);

/// Builds an ICMP error (time-exceeded / dest-unreachable) quoting the
/// offending datagram, byte-identical to the legacy
/// IcmpMessage::error + serialize path.
void build_icmp_error(std::vector<std::uint8_t>& out, std::uint8_t icmp_type,
                      std::uint8_t icmp_code, net::IPv4Address source,
                      net::IPv4Address destination, std::uint16_t ip_id,
                      std::span<const std::uint8_t> offending,
                      std::size_t quoted_payload_bytes);

}  // namespace rr::pkt
