#include "packet/icmp.h"

#include <algorithm>

#include "netbase/checksum.h"
#include "packet/ipv4.h"

namespace rr::pkt {

IcmpMessage IcmpMessage::echo_request(std::uint16_t identifier,
                                      std::uint16_t sequence,
                                      std::size_t payload_bytes) {
  IcmpMessage msg;
  msg.type = IcmpType::kEchoRequest;
  msg.code = 0;
  IcmpEcho echo;
  echo.identifier = identifier;
  echo.sequence = sequence;
  echo.payload.resize(payload_bytes);
  // Deterministic cookie pattern so replies are recognizable in dumps.
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    echo.payload[i] = static_cast<std::uint8_t>(0xa5 ^ (i * 29));
  }
  msg.body = std::move(echo);
  return msg;
}

IcmpMessage IcmpMessage::echo_reply_for(const IcmpEcho& request) {
  IcmpMessage msg;
  msg.type = IcmpType::kEchoReply;
  msg.code = 0;
  msg.body = request;  // id, seq and payload are echoed back verbatim
  return msg;
}

IcmpMessage IcmpMessage::error(IcmpType type, std::uint8_t code,
                               std::span<const std::uint8_t> offending_datagram,
                               std::size_t quoted_payload_bytes) {
  IcmpMessage msg;
  msg.type = type;
  msg.code = code;
  IcmpErrorBody body;
  // Quote the full IP header (IHL * 4 bytes, options included) plus the
  // leading transport bytes.
  std::size_t quote_len = offending_datagram.size();
  if (!offending_datagram.empty()) {
    const std::size_t header_bytes =
        static_cast<std::size_t>(offending_datagram[0] & 0x0f) * 4;
    quote_len = std::min(offending_datagram.size(),
                         header_bytes + quoted_payload_bytes);
  }
  body.quoted_datagram.assign(offending_datagram.begin(),
                              offending_datagram.begin() +
                                  static_cast<std::ptrdiff_t>(quote_len));
  msg.body = std::move(body);
  return msg;
}

void IcmpMessage::serialize(net::ByteWriter& out) const {
  const std::size_t start = out.size();
  out.u8(static_cast<std::uint8_t>(type));
  out.u8(code);
  const std::size_t checksum_offset = out.size();
  out.u16(0);
  if (const auto* echo = std::get_if<IcmpEcho>(&body)) {
    out.u16(echo->identifier);
    out.u16(echo->sequence);
    out.bytes(echo->payload);
  } else {
    const auto& err = std::get<IcmpErrorBody>(body);
    out.u32(0);  // unused / reserved word
    out.bytes(err.quoted_datagram);
  }
  const std::uint16_t sum =
      net::internet_checksum(out.view().subspan(start, out.size() - start));
  out.patch_u16(checksum_offset, sum);
}

std::optional<IcmpMessage> IcmpMessage::parse(
    std::span<const std::uint8_t> data) {
  if (data.size() < 8) return std::nullopt;
  if (!net::checksum_ok(data)) return std::nullopt;

  IcmpMessage msg;
  const std::uint8_t raw_type = data[0];
  msg.code = data[1];
  switch (raw_type) {
    case static_cast<std::uint8_t>(IcmpType::kEchoReply):
    case static_cast<std::uint8_t>(IcmpType::kDestUnreachable):
    case static_cast<std::uint8_t>(IcmpType::kEchoRequest):
    case static_cast<std::uint8_t>(IcmpType::kTimeExceeded):
      msg.type = static_cast<IcmpType>(raw_type);
      break;
    default:
      return std::nullopt;  // type we do not model
  }

  net::ByteReader reader{data};
  reader.skip(4);  // type, code, checksum
  if (msg.is_echo()) {
    IcmpEcho echo;
    echo.identifier = reader.u16();
    echo.sequence = reader.u16();
    const auto rest = reader.rest();
    echo.payload.assign(rest.begin(), rest.end());
    msg.body = std::move(echo);
  } else {
    reader.skip(4);  // unused word
    IcmpErrorBody body;
    const auto rest = reader.rest();
    body.quoted_datagram.assign(rest.begin(), rest.end());
    msg.body = std::move(body);
  }
  return msg;
}

std::string IcmpMessage::to_string() const {
  std::string out = "icmp type=" + std::to_string(static_cast<int>(type)) +
                    " code=" + std::to_string(code);
  if (const auto* e = echo()) {
    out += " id=" + std::to_string(e->identifier) +
           " seq=" + std::to_string(e->sequence);
  } else if (const auto* err = error_body()) {
    out += " quoted=" + std::to_string(err->quoted_datagram.size()) + "B";
  }
  return out;
}

}  // namespace rr::pkt
