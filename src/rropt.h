// Umbrella header for the rropt toolkit.
//
// Pulls in the full public API: wire formats, topology generation, policy
// routing, the network simulator, the prober, and the measurement/analysis
// layers. Individual components can of course be included directly.
#pragma once

#include "analysis/cdf.h"
#include "data/dataset.h"
#include "data/jsonl.h"
#include "analysis/series.h"
#include "analysis/table.h"
#include "measure/as_stamping.h"
#include "measure/campaign.h"
#include "measure/classify.h"
#include "measure/cloud.h"
#include "measure/midar.h"
#include "measure/ratelimit.h"
#include "measure/reachability.h"
#include "measure/reclassify.h"
#include "measure/testbed.h"
#include "measure/ttl_study.h"
#include "netbase/address.h"
#include "netbase/checksum.h"
#include "netbase/lpm_trie.h"
#include "netbase/prefix.h"
#include "packet/datagram.h"
#include "packet/mutate.h"
#include "probe/prober.h"
#include "revtr/reverse_traceroute.h"
#include "routing/oracle.h"
#include "routing/stitcher.h"
#include "sim/behavior.h"
#include "sim/network.h"
#include "topology/generator.h"
#include "util/flags.h"
#include "util/rng.h"
