#include "sim/behavior.h"

#include <algorithm>

#include "sim/element.h"

namespace rr::sim {

Behaviors::Behaviors(std::shared_ptr<const topo::Topology> topology,
                     const BehaviorParams& params)
    : topology_(std::move(topology)), params_(params) {
  util::Rng rng{params_.seed};
  util::Rng as_rng = rng.fork("as");
  util::Rng router_rng = rng.fork("router");
  util::Rng host_rng = rng.fork("host");
  util::Rng ipid_rng = rng.fork("ipid");

  // ----------------------------------------------------------------- ASes
  const auto& ases = topology_->ases();
  ases_.resize(ases.size());
  for (std::size_t i = 0; i < ases.size(); ++i) {
    const auto type = static_cast<std::size_t>(ases[i].type);
    AsBehavior& b = ases_[i];
    const bool is_transit_role =
        ases[i].tier != topo::AsTier::kStub || ases[i].cloud;
    // Edge filtering applies to the AS's own hosts/probes; transit-role
    // networks are less trigger-happy than enterprise edges.
    b.filters_edge = as_rng.chance(params_.as_filters_edge[type] *
                                   (is_transit_role ? 0.5 : 1.0));
    b.filters_transit = as_rng.chance(params_.as_filters_transit);
    b.dark = as_rng.chance(params_.as_dark[type]);
    const double stamp_roll = as_rng.next_double();
    if (stamp_roll < params_.as_never_stamps) {
      b.stamping = StampPolicy::kNever;
    } else if (stamp_roll <
               params_.as_never_stamps + params_.as_sometimes_stamps) {
      b.stamping = StampPolicy::kSometimes;
    } else {
      b.stamping = StampPolicy::kAlways;
    }
  }

  // -------------------------------------------------------------- routers
  const auto& routers = topology_->routers();
  routers_.resize(routers.size());
  router_ipid_velocity_.resize(routers.size());
  for (std::size_t i = 0; i < routers.size(); ++i) {
    RouterBehavior& b = routers_[i];
    const AsBehavior& as_b = ases_[routers[i].as_id];
    switch (as_b.stamping) {
      case StampPolicy::kAlways: b.stamps = true; break;
      case StampPolicy::kNever: b.stamps = false; break;
      case StampPolicy::kSometimes:
        b.stamps = !router_rng.chance(params_.router_no_stamp_in_mixed_as);
        break;
    }
    b.hidden = router_rng.chance(params_.router_hidden);
    b.anonymous = router_rng.chance(params_.router_anonymous);
    b.responds_ping = router_rng.chance(params_.router_responds_ping);
    if (router_rng.chance(params_.router_rate_limited)) {
      b.options_rate_pps = static_cast<float>(
          router_rng.next_in(static_cast<std::int64_t>(
                                 params_.generous_limit_pps_min),
                             static_cast<std::int64_t>(
                                 params_.generous_limit_pps_max)));
      b.options_burst = std::max(5.0f, b.options_rate_pps / 10.0f);
    }
    router_ipid_velocity_[i] =
        params_.ipid_velocity_min +
        ipid_rng.next_double() *
            (params_.ipid_velocity_max - params_.ipid_velocity_min);
  }

  // ---------------------------------------------------------------- hosts
  const auto& hosts = topology_->hosts();
  hosts_.resize(hosts.size());
  host_ipid_velocity_.resize(hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    HostBehavior& b = hosts_[i];
    const topo::Host& host = hosts[i];
    const auto type =
        static_cast<std::size_t>(topology_->as_at(host.as_id).type);
    const AsBehavior& as_b = ases_[host.as_id];
    b.ping_responsive =
        !as_b.dark && host_rng.chance(params_.host_ping_responsive[type]);
    const double rr_roll = host_rng.next_double();
    if (rr_roll < params_.host_drops_rr[type]) {
      b.rr_handling = RrHandling::kDrop;
    } else if (rr_roll <
               params_.host_drops_rr[type] + params_.host_strips_rr[type]) {
      b.rr_handling = RrHandling::kStrip;
    } else {
      b.rr_handling = RrHandling::kCopy;
    }
    b.stamps_self = !host_rng.chance(params_.host_no_self_stamp);
    b.responds_udp = host_rng.chance(params_.host_responds_udp);
    b.stamp_address = host.address;
    if (!host.aliases.empty() && host_rng.chance(params_.host_stamps_alias)) {
      b.stamp_address =
          host.aliases[host_rng.next_below(host.aliases.size())];
    }
    host_ipid_velocity_[i] =
        params_.ipid_velocity_min +
        ipid_rng.next_double() *
            (params_.ipid_velocity_max - params_.ipid_velocity_min);
  }

  // ------------------------------------- strict source-proximate limiters
  // Pick a handful of vantage points and clamp the options rate of every
  // router on their access chain.
  const auto vps = topology_->vantage_points();
  std::vector<std::size_t> candidates;
  std::size_t active_2016 = 0;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    // Only 2016-active VPs matter for the rate study.
    if (!vps[i].exists_in_2016) continue;
    candidates.push_back(i);
    ++active_2016;
  }
  util::Rng strict_rng = rng.fork("strict");
  strict_rng.shuffle(candidates);
  // The paper saw ~8 of 141 VPs behind strict limiters (~6%); scale the
  // absolute parameter down for small worlds so the fraction holds.
  const std::size_t fraction_cap =
      std::max<std::size_t>(1, (active_2016 * 6 + 99) / 100);
  const std::size_t want = std::min(
      {static_cast<std::size_t>(std::max(params_.strict_limited_vps, 0)),
       fraction_cap, candidates.size()});
  for (std::size_t i = 0; i < want; ++i) {
    const std::size_t vp_index = candidates[i];
    const topo::Host& host = topology_->host_at(vps[vp_index].host);
    const auto chain = topology_->access_chain(host.access_router);
    const float pps = static_cast<float>(strict_rng.next_in(
        static_cast<std::int64_t>(params_.strict_limit_pps_min),
        static_cast<std::int64_t>(params_.strict_limit_pps_max)));
    for (topo::RouterId router : chain) {
      routers_[router].options_rate_pps = pps;
      routers_[router].options_burst = std::max(4.0f, pps / 4.0f);
    }
    strict_vps_.push_back(vp_index);
  }
}

std::uint8_t personality_flags(const RouterBehavior& rb,
                               const AsBehavior& ab) noexcept {
  std::uint8_t flags = 0;
  if (rb.hidden) flags |= HopRow::kHidden;
  if (rb.stamps) flags |= HopRow::kStamps;
  if (rb.options_rate_pps > 0.0f) flags |= HopRow::kRateLimited;
  if (ab.filters_transit) flags |= HopRow::kFiltersTransit;
  if (ab.filters_edge) flags |= HopRow::kFiltersEdge;
  return flags;
}

}  // namespace rr::sim
