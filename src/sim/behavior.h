// Per-AS, per-router and per-host behaviour models.
//
// Everything the study measures is an aggregate of these small policies:
// whether a host answers ping or ping-RR, whether an AS filters IP-options
// packets at its edge, whether routers stamp RR slots, hide from TTL, stay
// anonymous to traceroute, or rate-limit the options slow path.
//
// Default probabilities are calibrated against the paper's own findings
// (Table 1 ratios, the Fonseca et al. edge-filtering result, §3.5's stamp
// audit, §4.1's source-proximate limiters); see DESIGN.md for the
// derivation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "topology/topology.h"
#include "util/rng.h"

namespace rr::sim {

struct BehaviorParams {
  std::uint64_t seed = 0xbeefcafe;

  // ------------------------------------------------------------- host ping
  /// P(host answers plain ping), by AS type (Table 1 by-IP, corrected for
  /// the dark-AS share below).
  std::array<double, topo::kNumAsTypes> host_ping_responsive{0.78, 0.89,
                                                             0.85, 0.71};
  /// P(an AS is entirely dark — nothing in it answers), by type.
  std::array<double, topo::kNumAsTypes> as_dark{0.02, 0.05, 0.01, 0.12};

  // ----------------------------------------------------- host RR handling
  /// Among hosts that answer ping, how the host itself treats a ping-RR.
  /// P(drop): silently ignores echo requests carrying options.
  std::array<double, topo::kNumAsTypes> host_drops_rr{0.08, 0.10, 0.08, 0.01};
  /// P(strip): replies but without copying the option (counts as
  /// non-RR-responsive under the paper's definition).
  std::array<double, topo::kNumAsTypes> host_strips_rr{0.04, 0.05, 0.04, 0.01};
  /// P(a copying host never records its own address) — §3.3's second
  /// false-negative case, recovered by ping-RRudp.
  double host_no_self_stamp = 0.045;
  /// P(a multi-addressed destination stamps an alias instead of the probed
  /// address) — §3.3's first case, recovered by alias resolution.
  double host_stamps_alias = 0.60;
  /// P(host answers UDP to a closed port with ICMP port-unreachable).
  double host_responds_udp = 0.85;

  // ------------------------------------------------------- AS option policy
  /// P(AS drops IP-options packets at its edge) when it is the source or
  /// destination AS of the packet, by type. Dominant failure mode (the
  /// 91%-at-edges result).
  std::array<double, topo::kNumAsTypes> as_filters_edge{0.13, 0.20, 0.12,
                                                        0.16};
  /// P(AS drops options packets even in transit). Rare.
  double as_filters_transit = 0.004;
  /// AS-wide stamping policy: almost everyone stamps; a tiny number never
  /// do; some have a mix of stamping and non-stamping routers (§3.5: 2 and
  /// 143 of 7,185 ASes respectively).
  double as_never_stamps = 0.0004;
  double as_sometimes_stamps = 0.02;
  /// Within a "sometimes" AS, P(an individual router does not stamp).
  double router_no_stamp_in_mixed_as = 0.5;

  // ---------------------------------------------------------- router quirks
  double router_hidden = 0.01;      // forwards without decrementing TTL
  double router_anonymous = 0.025;  // sends no TTL-exceeded
  double router_responds_ping = 0.90;

  // ----------------------------------------------------------- rate limits
  /// P(router polices its options slow path at all); most limits are far
  /// above study probing rates.
  double router_rate_limited = 0.05;
  double generous_limit_pps_min = 250;
  double generous_limit_pps_max = 4000;
  /// A few vantage points sit behind strict source-proximate limiters
  /// (Figure 4 shows ~8 of 79 losing >25% at 100pps).
  int strict_limited_vps = 8;
  double strict_limit_pps_min = 12;
  double strict_limit_pps_max = 45;

  // ------------------------------------------------------------------ loss
  double base_loss = 0.0012;        // any packet, any hop segment
  double options_extra_loss = 0.0018;  // extra per-hop risk on the slow path

  // ------------------------------------------------------------- ip-id gen
  double ipid_velocity_min = 2.0;    // background counter speed, ids/sec
  double ipid_velocity_max = 1500.0;
};

/// How a host treats an echo request that carries IP options.
enum class RrHandling : std::uint8_t { kCopy = 0, kStrip = 1, kDrop = 2 };

/// AS-wide stamping policy (§3.5).
enum class StampPolicy : std::uint8_t { kAlways = 0, kSometimes = 1,
                                        kNever = 2 };

struct HostBehavior {
  bool ping_responsive = true;
  RrHandling rr_handling = RrHandling::kCopy;
  bool stamps_self = true;
  bool responds_udp = true;
  /// Address the device writes into RR slots (normally the probed address;
  /// an alias for some multi-addressed devices).
  net::IPv4Address stamp_address;
};

struct RouterBehavior {
  bool stamps = true;
  bool hidden = false;
  bool anonymous = false;
  bool responds_ping = true;
  /// 0 disables the limiter.
  float options_rate_pps = 0.0f;
  float options_burst = 0.0f;
};

struct AsBehavior {
  bool filters_edge = false;
  bool filters_transit = false;
  bool dark = false;
  StampPolicy stamping = StampPolicy::kAlways;
};

/// Folds a router's behaviour (AS policy already applied) into the 5-bit
/// personality key that selects its dataplane run list — the HopRow flags
/// byte (sim/element.h). Pipeline compilation calls this once per router
/// at freeze; the walk never consults behaviour structs again.
[[nodiscard]] std::uint8_t personality_flags(const RouterBehavior& rb,
                                             const AsBehavior& ab) noexcept;

/// Immutable behaviour assignment for a topology.
class Behaviors {
 public:
  Behaviors(std::shared_ptr<const topo::Topology> topology,
            const BehaviorParams& params);

  [[nodiscard]] const BehaviorParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] const HostBehavior& host(topo::HostId id) const noexcept {
    return hosts_[id];
  }
  [[nodiscard]] const RouterBehavior& router(
      topo::RouterId id) const noexcept {
    return routers_[id];
  }
  [[nodiscard]] const AsBehavior& as_behavior(topo::AsId id) const noexcept {
    return ases_[id];
  }

  /// Effective "does this router stamp RR slots" (router flag already folds
  /// in the AS stamping policy).
  [[nodiscard]] bool router_stamps(topo::RouterId id) const noexcept {
    return routers_[id].stamps;
  }

  /// Background IP-ID velocity of a device (ids per second).
  [[nodiscard]] double router_ipid_velocity(topo::RouterId id) const noexcept {
    return router_ipid_velocity_[id];
  }
  [[nodiscard]] double host_ipid_velocity(topo::HostId id) const noexcept {
    return host_ipid_velocity_[id];
  }

  /// Vantage points that were assigned strict source-proximate limiters
  /// (useful for tests and for Figure 4's expectations).
  [[nodiscard]] const std::vector<std::size_t>& strict_limited_vp_indices()
      const noexcept {
    return strict_vps_;
  }

  [[nodiscard]] const topo::Topology& topology() const noexcept {
    return *topology_;
  }

 private:
  std::shared_ptr<const topo::Topology> topology_;
  BehaviorParams params_;
  std::vector<HostBehavior> hosts_;
  std::vector<RouterBehavior> routers_;
  std::vector<AsBehavior> ases_;
  std::vector<double> router_ipid_velocity_;
  std::vector<double> host_ipid_velocity_;
  std::vector<std::size_t> strict_vps_;
};

}  // namespace rr::sim
