// Deterministic fault injection for the probe/sim stack.
//
// The paper's central claim — that RR probing is viable despite hosts that
// drop, strip, or mis-stamp options, ASes that filter at edges, and routers
// that rate-limit the options slow path (§3.3, §3.5, §4.1) — is a claim
// about behaviour under adversarial conditions. sim::BehaviorParams models
// the *calibrated* probabilities; a FaultPlan layers byzantine misbehaviour
// on top of them so the measurement pipeline can be exercised (and its
// invariants proven) under hostile inputs:
//
//   * RR option truncation (a middlebox rewinds the pointer, erasing the
//     record) and slot garbling (a stamped address overwritten with junk),
//   * header checksum corruption in flight (receivers must reject, not
//     crash or mis-parse),
//   * mid-path IP-option stripping (the §3.3 "option is an option" pun:
//     some paths silently remove it),
//   * byzantine stampers that record a bogus address instead of their
//     egress interface (§3.5's mis-stamping routers, taken adversarial),
//   * ICMP errors whose quoted inner header is mangled (quotation-matching
//     probers must classify these as mismatches),
//   * duplicated and late (reordered) replies at the capture point,
//   * bursty rate-limit storms: windows of virtual time in which a
//     router's options slow path drops everything ("Your Router is My
//     Prober"-style policer bursts).
//
// Every decision is a counter-keyed draw — a pure function of
// (fault seed, flow key, leg, hop, fault kind) — exactly the discipline
// the parallel campaign engine uses for loss (see sim/network.h), so a
// faulted campaign is still bit-for-bit reproducible at any thread count,
// and a plan with all rates at zero is byte-identical to no plan at all.
//
// Corrupted addresses are always drawn from class E (240.0.0.0/4), which
// the topology generator never allocates: an injected fault can *remove*
// evidence of reachability but can never fabricate it. The differential
// test suite leans on exactly that monotonicity.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/address.h"
#include "topology/types.h"
#include "util/rng.h"

namespace rr::sim {

/// Injectable fault kinds (indices into FaultCounters::injected).
enum class FaultKind : std::uint8_t {
  kRrTruncate = 0,
  kRrGarble,
  kChecksumCorrupt,
  kOptionStrip,
  kByzantineStamp,
  kQuoteMangle,
  kDuplicateReply,
  kReorderReply,
  kStorm,
};
inline constexpr std::size_t kNumFaultKinds = 9;

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// Per-kind injection probabilities. All zero (the default) means the plan
/// is inert and the simulator behaves exactly as if no plan existed.
struct FaultParams {
  std::uint64_t seed = 0xFA017BAD;

  double rr_truncate = 0.0;       // per hop, options packets
  double rr_garble = 0.0;         // per hop, options packets
  double checksum_corrupt = 0.0;  // per hop, any packet
  double option_strip = 0.0;      // per hop, options packets
  double byzantine_stamp = 0.0;   // per stamping router
  double quote_mangle = 0.0;      // per ICMP error emitted
  double duplicate_reply = 0.0;   // per delivered reply
  double reorder_reply = 0.0;     // per delivered reply (late arrival)
  double storm = 0.0;             // P(router storms in a given window)
  double storm_period_s = 0.5;    // storm window length (virtual seconds)
  double reorder_delay_s = 0.25;  // max extra delay of a reordered reply

  /// Every per-packet rate set to `rate` (storm windows included).
  [[nodiscard]] static FaultParams uniform(double rate) noexcept;

  /// True if any fault can ever fire.
  [[nodiscard]] bool any() const noexcept;

  [[nodiscard]] bool operator==(const FaultParams&) const = default;
};

/// Parses a --fault-plan specification:
///   "none"                  — inert plan
///   "0.01" / "uniform:0.01" — every rate at 1%
///   "rr_garble=0.1,storm=0.05,seed=7" — individual knobs
/// Returns std::nullopt (with no partial effect) on unknown keys or
/// unparseable numbers.
[[nodiscard]] std::optional<FaultParams> parse_fault_plan(
    std::string_view spec);

/// Human-readable one-line summary ("faults: rr_garble=0.1 storm=0.05").
[[nodiscard]] std::string to_string(const FaultParams& params);

/// Tally of injected faults by kind. Incremented with relaxed atomics from
/// concurrent walkers; totals are diagnostics (they count optimistic
/// walks, so unlike NetCounters they are not bit-identical across thread
/// counts — tests assert on them only in single-threaded runs or as > 0).
struct FaultCounters {
  std::array<std::atomic<std::uint64_t>, kNumFaultKinds> injected{};

  [[nodiscard]] std::uint64_t count(FaultKind kind) const noexcept {
    return injected[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& c : injected) sum += c.load(std::memory_order_relaxed);
    return sum;
  }
  void note(FaultKind kind) noexcept {
    injected[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& c : injected) c.store(0, std::memory_order_relaxed);
  }
};

/// A seeded, counter-keyed schedule of faults. Copyable, immutable once
/// built; all draw methods are const and thread-safe.
class FaultPlan {
 public:
  /// The inert plan: enabled() is false and no draw ever fires.
  FaultPlan() = default;

  explicit FaultPlan(const FaultParams& params)
      : params_(params), enabled_(params.any()) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] const FaultParams& params() const noexcept { return params_; }

  // ------------------------------------------------------- per-hop draws
  // `flow` is the packet's flow key (sim/network.h), `leg` 0/1 for the
  // forward/reply walk, `hop` the hop index within the leg.
  [[nodiscard]] bool truncate_rr(std::uint64_t flow, int leg,
                                 std::size_t hop) const noexcept {
    return draw(FaultKind::kRrTruncate, flow, leg, hop, params_.rr_truncate);
  }
  [[nodiscard]] bool garble_rr(std::uint64_t flow, int leg,
                               std::size_t hop) const noexcept {
    return draw(FaultKind::kRrGarble, flow, leg, hop, params_.rr_garble);
  }
  [[nodiscard]] bool corrupt_checksum(std::uint64_t flow, int leg,
                                      std::size_t hop) const noexcept {
    return draw(FaultKind::kChecksumCorrupt, flow, leg, hop,
                params_.checksum_corrupt);
  }
  [[nodiscard]] bool strip_options(std::uint64_t flow, int leg,
                                   std::size_t hop) const noexcept {
    return draw(FaultKind::kOptionStrip, flow, leg, hop,
                params_.option_strip);
  }
  [[nodiscard]] bool byzantine_stamp(std::uint64_t flow, int leg,
                                     std::size_t hop) const noexcept {
    return draw(FaultKind::kByzantineStamp, flow, leg, hop,
                params_.byzantine_stamp);
  }

  // ---------------------------------------------------- per-packet draws
  [[nodiscard]] bool mangle_quote(std::uint64_t flow) const noexcept {
    return draw(FaultKind::kQuoteMangle, flow, 1, 0, params_.quote_mangle);
  }
  [[nodiscard]] bool duplicate_reply(std::uint64_t flow) const noexcept {
    return draw(FaultKind::kDuplicateReply, flow, 1, 0,
                params_.duplicate_reply);
  }
  [[nodiscard]] bool reorder_reply(std::uint64_t flow) const noexcept {
    return draw(FaultKind::kReorderReply, flow, 1, 0, params_.reorder_reply);
  }
  /// Extra delivery delay of a reordered reply, in (0, reorder_delay_s].
  [[nodiscard]] double reorder_delay(std::uint64_t flow) const noexcept;

  // -------------------------------------------------------------- storms
  /// Whether `router`'s options slow path is inside a storm window at
  /// virtual time `now`. Stateless — a pure function of (router, window) —
  /// so it needs no deferred replay and cannot race.
  [[nodiscard]] bool storm_active(topo::RouterId router,
                                  double now) const noexcept;

  /// A corrupted address for byzantine stamps / garbled slots: always in
  /// class E (240.0.0.0/4), which the topology never allocates.
  [[nodiscard]] net::IPv4Address bogus_address(std::uint64_t key)
      const noexcept {
    return net::IPv4Address(
        0xF0000000u |
        static_cast<std::uint32_t>(util::mix64(params_.seed ^ key) &
                                   0x0FFFFFFFu));
  }

 private:
  [[nodiscard]] std::uint64_t key(FaultKind kind, std::uint64_t flow,
                                  int leg, std::size_t hop) const noexcept {
    return util::mix64(params_.seed ^ flow ^
                       (static_cast<std::uint64_t>(leg) << 62) ^
                       (static_cast<std::uint64_t>(hop) << 16) ^
                       (0xFA00 + static_cast<std::uint64_t>(kind)));
  }
  [[nodiscard]] bool draw(FaultKind kind, std::uint64_t flow, int leg,
                          std::size_t hop, double p) const noexcept;

  FaultParams params_;
  bool enabled_ = false;
};

}  // namespace rr::sim
