// The packet-level network simulator.
//
// Network::send() injects a serialized IPv4 datagram at a source host at a
// virtual time and returns the response datagram (if any) exactly as the
// probing host would capture it. In between, the packet is walked hop by
// hop along the policy-routed forward path, each router applying its
// behaviour to the real wire bytes:
//
//   * slow-path diversion for packets with IP options (rate limiting,
//     AS edge/transit filtering),
//   * TTL decrement (unless hidden) with Time-Exceeded generation
//     (unless anonymous), quoting the packet *with its RR stamps so far*,
//   * Record Route stamping of the outgoing interface,
//   * random loss.
//
// Replies traverse the independently-routed reverse path with the same
// treatment, which is how a ping-RR reply keeps recording hops on the way
// back (the reverse-traceroute mechanism the paper builds on).
//
// Measurement code never sees simulator internals — only response bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "routing/stitcher.h"
#include "sim/behavior.h"
#include "sim/token_bucket.h"
#include "util/rng.h"

namespace rr::sim {

using topo::HostId;
using topo::RouterId;

struct NetParams {
  std::uint64_t seed = 0x51C0FFEE;
  double hop_delay_s = 0.0005;          // per router hop
  std::size_t quoted_payload_bytes = 8;  // ICMP error quotation depth
};

/// Why a probe got no (useful) answer — simulator-side diagnostics used by
/// tests and sanity benches, never by the measurement pipeline itself.
struct NetCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;          // reached the final device
  std::uint64_t responses = 0;          // any packet returned to the source
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_filter = 0;
  std::uint64_t dropped_rate_limit = 0;
  std::uint64_t dropped_ttl = 0;        // expired anonymously
  std::uint64_t dropped_unroutable = 0;
  std::uint64_t ttl_errors = 0;         // Time-Exceeded returned
  std::uint64_t port_unreachables = 0;
};

class Network {
 public:
  Network(std::shared_ptr<const topo::Topology> topology,
          std::shared_ptr<const Behaviors> behaviors,
          route::RoutingOracle& oracle, NetParams params = {});

  struct Delivery {
    std::vector<std::uint8_t> bytes;
    double time = 0.0;
    /// Host that actually received the response. Equals the injecting host
    /// unless the probe's header named another source (spoofing, as used
    /// by Reverse Traceroute): responses always follow the *header*.
    HostId receiver = topo::kNoHost;
  };

  /// Injects `bytes` (a full IPv4 datagram) from `src` at virtual time
  /// `time` (seconds). Returns the response, delivered to whichever host
  /// owns the datagram's source address, or nullopt if nothing comes back
  /// (including when the named source is not a host).
  std::optional<Delivery> send(HostId src, std::vector<std::uint8_t> bytes,
                               double time);

  /// Resets token buckets and the loss RNG (fresh measurement campaign).
  void reset();

  [[nodiscard]] const NetCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const topo::Topology& topology() const noexcept {
    return *topology_;
  }
  [[nodiscard]] const Behaviors& behaviors() const noexcept {
    return *behaviors_;
  }
  [[nodiscard]] route::PathStitcher& stitcher() noexcept { return stitcher_; }

 private:
  enum class WalkOutcome { kDelivered, kDropped, kTtlExpired };

  struct WalkResult {
    WalkOutcome outcome = WalkOutcome::kDropped;
    std::size_t expired_hop = 0;  // valid when kTtlExpired
    double time = 0.0;
  };

  /// Runs the per-hop pipeline over `hops`, mutating `bytes` in place.
  WalkResult walk(std::vector<std::uint8_t>& bytes,
                  const std::vector<route::PathHop>& hops, double start,
                  topo::AsId src_as, topo::AsId dst_as);

  /// Host owning an address, if any (responses are routed to it).
  [[nodiscard]] std::optional<HostId> host_owning(
      net::IPv4Address addr) const;

  /// Builds + routes an ICMP error from a router back to `reply_to`.
  std::optional<Delivery> emit_router_error(
      RouterId router, net::IPv4Address from, std::uint8_t icmp_type,
      std::uint8_t code, const std::vector<std::uint8_t>& offending,
      HostId reply_to, double time);

  /// Response from the destination host for an echo request / UDP probe.
  std::optional<Delivery> host_respond(HostId dst, HostId reply_to,
                                       const std::vector<std::uint8_t>& bytes,
                                       double time);

  /// Response from a directly probed router interface.
  std::optional<Delivery> router_respond(
      RouterId router, net::IPv4Address probed, HostId reply_to,
      const std::vector<std::uint8_t>& bytes, double time);

  /// Walks a response along the reverse path to `receiver`.
  std::optional<Delivery> deliver_back(std::vector<std::uint8_t> bytes,
                                       const std::vector<route::PathHop>& hops,
                                       double start, topo::AsId src_as,
                                       topo::AsId dst_as, HostId receiver);

  [[nodiscard]] std::uint16_t next_ip_id(bool is_router, std::uint32_t id,
                                         double now);

  TokenBucket& bucket_for(RouterId router);

  std::shared_ptr<const topo::Topology> topology_;
  std::shared_ptr<const Behaviors> behaviors_;
  route::PathStitcher stitcher_;
  NetParams params_;
  util::Rng rng_;
  NetCounters counters_;
  std::unordered_map<RouterId, TokenBucket> buckets_;
  std::vector<std::uint32_t> router_ipid_count_;
  std::vector<std::uint32_t> host_ipid_count_;
  std::vector<route::PathHop> fwd_hops_;
  std::vector<route::PathHop> rev_hops_;
};

}  // namespace rr::sim
