// The packet-level network simulator.
//
// Network::send() injects a serialized IPv4 datagram at a source host at a
// virtual time and returns the response datagram (if any) exactly as the
// probing host would capture it. In between, the packet is walked hop by
// hop along the policy-routed forward path, each router applying its
// behaviour to the real wire bytes:
//
//   * slow-path diversion for packets with IP options (rate limiting,
//     AS edge/transit filtering),
//   * TTL decrement (unless hidden) with Time-Exceeded generation
//     (unless anonymous), quoting the packet *with its RR stamps so far*,
//   * Record Route stamping of the outgoing interface,
//   * random loss.
//
// Replies traverse the independently-routed reverse path with the same
// treatment, which is how a ping-RR reply keeps recording hops on the way
// back (the reverse-traceroute mechanism the paper builds on).
//
// Measurement code never sees simulator internals — only response bytes.
//
// Determinism and concurrency
// ---------------------------
// Every per-packet random decision (loss on either leg) is a counter-based
// draw keyed on (seed, source, destination, send time, leg, hop), so a
// packet's fate is a pure function of the packet — independent of how many
// other packets are in flight or of the order threads execute them. The
// only cross-packet state is the per-router options token buckets and the
// aggregate counters:
//
//   * in the default serial mode (ctx == nullptr) buckets are consulted
//     live and counters accumulate in the network, exactly as before;
//   * in concurrent mode the caller passes a SendContext per worker:
//     counters accumulate in the context, and bucket consumes are not
//     decided — they are *recorded* as BucketEvents (assumed to succeed)
//     for the caller to resolve later in virtual-time order via
//     try_consume_options_token(). A rate-limit drop is silent, so a probe
//     whose deferred consume fails simply has its optimistic response
//     discarded; nothing else about the walk would have differed.
//
// Device IP-ID counters are atomics: response IP-IDs depend on global send
// order (they model background traffic on a shared counter), but they
// never enter campaign observations, so campaign output stays bit-for-bit
// reproducible at any thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "routing/fib.h"
#include "routing/path_cache.h"
#include "routing/stitcher.h"
#include "sim/behavior.h"
#include "sim/fault.h"
#include "sim/pipeline.h"
#include "sim/token_bucket.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/rng.h"

namespace rr::sim {

using topo::HostId;
using topo::RouterId;

struct NetParams {
  std::uint64_t seed = 0x51C0FFEE;
  double hop_delay_s = 0.0005;          // per router hop
  std::size_t quoted_payload_bytes = 8;  // ICMP error quotation depth
  /// Router-level path cache capacity (paths, across all shards).
  std::size_t path_cache_entries = 1 << 18;
};

/// Reusable buffer for building replies whose geometry differs from the
/// request (stripped echo replies, ICMP errors). The network swaps it with
/// the probe buffer after building, so the two storages circulate between
/// the caller and the scratch and the steady state allocates nothing.
/// `growths` counts capacity growths — flat after warm-up.
struct ReplyScratch {
  std::vector<std::uint8_t> bytes;
  std::uint64_t growths = 0;
};

/// Per-worker state for concurrent sends: a private counter tally (merge
/// into the network with merge_counters()) plus the trace of the most
/// recent send. One context must never be used by two threads at once.
struct SendContext {
  NetCounters counters;
  ProbeTrace trace;
  ReplyScratch scratch;
  /// Hop-list scratch for compiled-FIB lookups (routing/fib.h): the FIB
  /// copies a path spine into these instead of handing out shared cache
  /// entries. Forward and reverse are separate because the forward hops
  /// must stay valid while the reply leg resolves its own path.
  std::vector<route::PathHop> fwd_path_scratch;
  std::vector<route::PathHop> rev_path_scratch;
};

class Network {
 public:
  Network(std::shared_ptr<const topo::Topology> topology,
          std::shared_ptr<const Behaviors> behaviors,
          route::RoutingOracle& oracle, NetParams params = {});

  struct Delivery {
    std::vector<std::uint8_t> bytes;
    double time = 0.0;
    /// Host that actually received the response. Equals the injecting host
    /// unless the probe's header named another source (spoofing, as used
    /// by Reverse Traceroute): responses always follow the *header*.
    HostId receiver = topo::kNoHost;
    /// Number of *extra* identical copies the capture point saw (injected
    /// duplicate-reply faults). Diagnostics only: a dedup-correct prober
    /// ignores repeats, so campaign contents are unaffected.
    std::uint8_t duplicates = 0;
  };

  /// Injects `bytes` (a full IPv4 datagram) from `src` at virtual time
  /// `time` (seconds). Returns the response, delivered to whichever host
  /// owns the datagram's source address, or nullopt if nothing comes back
  /// (including when the named source is not a host).
  ///
  /// With `ctx == nullptr` the call is serial-mode: counters and token
  /// buckets live in the network and the call must not race other sends.
  /// With a context, the call is safe to run concurrently with other
  /// sends holding *different* contexts; bucket consumes are deferred into
  /// `ctx->trace` (see the header comment) and the returned delivery is
  /// optimistic until the caller resolves those events.
  std::optional<Delivery> send(HostId src, std::vector<std::uint8_t> bytes,
                               double time, SendContext* ctx = nullptr);

  /// Allocation-free variant of send(): the probe is consumed from (and
  /// replies are built by recycling) `bytes`, whose storage ends up either
  /// in the returned Delivery (reclaim it from there) or back in `bytes`.
  /// Steady-state callers that reuse one buffer per worker — and reclaim
  /// the delivery's bytes after parsing — allocate nothing per exchange.
  std::optional<Delivery> send_reusing(HostId src,
                                       std::vector<std::uint8_t>& bytes,
                                       double time, SendContext* ctx = nullptr);

  /// One slot of a batched send (send_batch). `bytes` and `ctx` follow the
  /// send_reusing contract per slot; batch sends are deferred-mode only,
  /// so `ctx` must be non-null and distinct per slot. On return `delivery`
  /// holds exactly what send_reusing would have returned for the probe.
  struct BatchProbe {
    std::vector<std::uint8_t>* bytes = nullptr;
    double time = 0.0;
    SendContext* ctx = nullptr;
    std::optional<Delivery> delivery;
  };

  /// Batched variant of send_reusing: up to WalkBatch::kMaxProbes probes
  /// from one source, resolved per slot and then walked element-pass-major
  /// across the whole batch (walk_batch_pipeline) — all forward legs
  /// together, then all reply legs together. Bit-identical to calling
  /// send_reusing per slot with the same contexts: every random decision
  /// is a counter-based draw keyed on the packet, and bucket consumes are
  /// deferred per slot into each ctx's trace exactly as in scalar deferred
  /// mode, so slot interleaving is unobservable. Probes aimed at router
  /// interfaces — and every probe when the legacy engine is selected —
  /// take the scalar path per slot (identical by per-slot purity).
  void send_batch(HostId src, std::span<BatchProbe> probes);

  /// Serial-phase resolution of one deferred options-token consume.
  /// Callers must feed events in their chosen canonical order (the
  /// campaign uses virtual-time order); concurrent calls are not allowed —
  /// the serial gate (util/mutex.h) turns that sentence into a capability
  /// the thread-safety analysis checks on every bucket access.
  bool try_consume_options_token(RouterId router, double now)
      RROPT_EXCLUDES(serial_gate_) {
    util::SerialGateLock gate(serial_gate_);
    return bucket_for(router).try_consume(now);
  }

  /// Snapshot of one router's options token bucket, for the campaign's
  /// sharded Pass B replay: shards replay per-router event queues against
  /// campaign-owned copies (TokenBucket is a four-field value type) and
  /// commit the survivors back with set_options_bucket_state. Both are
  /// serial-phase operations, like try_consume_options_token — the
  /// network's buckets are never touched from pool threads.
  [[nodiscard]] TokenBucket options_bucket_state(RouterId router)
      RROPT_EXCLUDES(serial_gate_) {
    util::SerialGateLock gate(serial_gate_);
    return bucket_for(router);
  }
  void set_options_bucket_state(RouterId router, const TokenBucket& state)
      RROPT_EXCLUDES(serial_gate_) {
    util::SerialGateLock gate(serial_gate_);
    bucket_for(router) = state;
  }

  /// Folds a per-worker counter tally into the network totals. Serial
  /// phase only: must not race sends or other merges.
  void merge_counters(const NetCounters& tally) RROPT_EXCLUDES(serial_gate_);

  /// Resets token buckets and counters (fresh measurement campaign).
  void reset() RROPT_EXCLUDES(serial_gate_);

  /// Installs a fault-injection schedule (see sim/fault.h). The default
  /// plan is inert; installing an inert plan restores exact no-fault
  /// behaviour — every fault draw uses its own key space, so baseline
  /// loss/bucket decisions are untouched either way. Installs are a
  /// serial-phase operation (sends read the plan lock-free). The pipeline
  /// recompiles its run lists so fault elements appear (or vanish) and the
  /// stamp elements flip between fault-aware and trusted.
  void set_fault_plan(const FaultPlan& plan) RROPT_EXCLUDES(serial_gate_) {
    util::SerialGateLock gate(serial_gate_);
    fault_plan_ = plan;
    pipeline_.set_faults_enabled(fault_plan_.enabled());
  }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept {
    return fault_plan_;
  }
  /// Installs (or, with nullptr, removes) a compiled forwarding table for
  /// host-to-host campaign traffic. While installed, send() resolves
  /// covered forward/reverse host paths from the table — bit-identical to
  /// the stitcher's output — and falls back to the path cache for pairs
  /// outside its coverage. Swapping tables between campaign blocks is a
  /// caller-serialized operation; concurrent sends must not be in flight.
  void set_compiled_fib(std::shared_ptr<const route::CompiledFib> fib)
      RROPT_EXCLUDES(serial_gate_) {
    util::SerialGateLock gate(serial_gate_);
    fib_ = std::move(fib);
  }
  [[nodiscard]] const route::CompiledFib* compiled_fib() const noexcept {
    return fib_.get();
  }

  /// Per-kind injected-fault tallies. Diagnostics only: in deferred mode
  /// they include faults on optimistically-walked probes that replay later
  /// kills, so unlike NetCounters they are not thread-count-exact.
  [[nodiscard]] const FaultCounters& fault_counters() const noexcept {
    return fault_counters_;
  }

  [[nodiscard]] const NetCounters& counters() const noexcept {
    // Reading totals mid-campaign would race worker merges; callers read
    // them between phases, which is exactly the serial contract.
    serial_gate_.assert_held();
    return counters_;
  }
  [[nodiscard]] const topo::Topology& topology() const noexcept {
    return *topology_;
  }
  [[nodiscard]] const Behaviors& behaviors() const noexcept {
    return *behaviors_;
  }
  [[nodiscard]] route::PathStitcher& stitcher() noexcept { return stitcher_; }
  [[nodiscard]] const route::PathCache& path_cache() const noexcept {
    return paths_;
  }
  /// The compiled dataplane (sim/pipeline.h): per-router HopRows plus the
  /// per-personality element run lists walk executes.
  [[nodiscard]] const CompiledPipeline& pipeline() const noexcept {
    return pipeline_;
  }

  /// Selects the walk engine: the compiled element pipeline (default) or
  /// the legacy branch-forest walk, kept in-tree for one release so the
  /// differential conformance harness can run both (see DESIGN.md §11 for
  /// the remove-by date). The environment variable RROPT_LEGACY_WALK
  /// selects legacy at construction; this setter lets the harness flip a
  /// live network between campaigns (serial-phase only).
  void set_walk_engine(bool use_legacy) noexcept { legacy_walk_ = use_legacy; }
  [[nodiscard]] bool using_legacy_walk() const noexcept {
    return legacy_walk_;
  }

 private:
  enum class WalkOutcome : std::uint8_t { kDelivered, kDropped, kTtlExpired };

  struct WalkResult {
    WalkOutcome outcome = WalkOutcome::kDropped;
    std::size_t expired_hop = 0;  // valid when kTtlExpired
    double time = 0.0;
    // The packet walked the full path — consuming every token a fault-free
    // walk would — but a fault discarded it; it must not be observed.
    bool doomed = false;
  };

  /// Runs the per-hop pipeline over `hops`, mutating `bytes` in place.
  /// `flow` keys the packet's counter-based draws; `leg` is 0 on the
  /// forward walk and 1 on any reply walk. `doomed_in` marks a ghost
  /// continuation of an exchange a fault already discarded: the walk
  /// consumes shared state exactly as the baseline would but charges no
  /// further counters and the result stays doomed. Dispatches to the
  /// compiled-pipeline interpreter or the legacy branch forest; the two
  /// are bit-identical at every observable byte (the differential harness
  /// proves it).
  WalkResult walk(std::vector<std::uint8_t>& bytes,
                  std::span<const route::PathHop> hops, double start,
                  topo::AsId src_as, topo::AsId dst_as, std::uint64_t flow,
                  int leg, SendContext* ctx, bool doomed_in = false);

  WalkResult walk_pipeline(std::vector<std::uint8_t>& bytes,
                           std::span<const route::PathHop> hops, double start,
                           topo::AsId src_as, topo::AsId dst_as,
                           std::uint64_t flow, int leg, SendContext* ctx,
                           bool doomed_in);

  WalkResult walk_legacy(std::vector<std::uint8_t>& bytes,
                         std::span<const route::PathHop> hops, double start,
                         topo::AsId src_as, topo::AsId dst_as,
                         std::uint64_t flow, int leg, SendContext* ctx,
                         bool doomed_in);

  /// Host owning an address, if any (responses are routed to it).
  [[nodiscard]] std::optional<HostId> host_owning(
      net::IPv4Address addr) const;

  /// Builds + routes an ICMP error from a router back to `reply_to`. The
  /// error is built in the reply scratch and swapped into `offending`.
  std::optional<Delivery> emit_router_error(RouterId router,
                                            net::IPv4Address from,
                                            std::uint8_t icmp_type,
                                            std::uint8_t code,
                                            std::vector<std::uint8_t>& offending,
                                            HostId reply_to, double time,
                                            std::uint64_t flow,
                                            SendContext* ctx);

  /// Response from the destination host for an echo request / UDP probe.
  /// `doomed` continues a ghost exchange (see walk()). The reply is built
  /// by mutating `bytes` in place (echo replies that keep the request's
  /// options) or by swapping in the reply scratch.
  std::optional<Delivery> host_respond(HostId dst, HostId reply_to,
                                       std::vector<std::uint8_t>& bytes,
                                       double time, std::uint64_t flow,
                                       SendContext* ctx, bool doomed);

  /// Host-side reply staging for a batched delivery: everything
  /// host_respond does before the reverse walk — drop-policy checks,
  /// IP-ID draw, reply construction (in place or via the scratch swap),
  /// and reverse-path resolution. `out.has_reply` is false when no reply
  /// would be generated; otherwise `bytes` holds the built reply and
  /// `out` pins/views the reverse path to walk. The scalar host_respond
  /// is this followed by deliver_back, so the two paths share every
  /// observable byte.
  struct PendingReply {
    bool has_reply = false;
    route::PathCache::EntryPtr rev_entry;  // pins cache-backed rev_hops
    std::span<const route::PathHop> rev_hops;
    topo::AsId src_as = 0;
    topo::AsId dst_as = 0;
    HostId receiver = topo::kNoHost;
  };

  void host_prepare_reply(HostId dst, HostId reply_to,
                          std::vector<std::uint8_t>& bytes, double time,
                          std::uint64_t flow, SendContext* ctx, bool doomed,
                          PendingReply& out);

  /// The arrival tail of deliver_back, shared by the scalar and batched
  /// reply legs: response accounting plus the capture-point faults.
  /// `delivered_undoomed` is "the reverse walk delivered and the exchange
  /// is not a fault ghost"; anything else never arrives.
  std::optional<Delivery> finish_delivery(std::vector<std::uint8_t>& bytes,
                                          bool delivered_undoomed, double time,
                                          HostId receiver, std::uint64_t flow,
                                          SendContext* ctx);

  /// Response from a directly probed router interface.
  std::optional<Delivery> router_respond(RouterId router,
                                         net::IPv4Address probed,
                                         HostId reply_to,
                                         std::vector<std::uint8_t>& bytes,
                                         double time, std::uint64_t flow,
                                         SendContext* ctx, bool doomed);

  /// Walks a response along the reverse path to `receiver`, moving `bytes`
  /// into the returned Delivery on arrival.
  std::optional<Delivery> deliver_back(std::vector<std::uint8_t>& bytes,
                                       std::span<const route::PathHop> hops,
                                       double start, topo::AsId src_as,
                                       topo::AsId dst_as, HostId receiver,
                                       std::uint64_t flow, SendContext* ctx,
                                       bool doomed);

  [[nodiscard]] NetCounters& counters_for(SendContext* ctx) noexcept {
    if (ctx != nullptr) return ctx->counters;
    // ctx == nullptr is the serial-mode promise (see send()): the caller
    // asserted no concurrent sends, so the network totals are safe to
    // mutate directly.
    serial_gate_.assert_held();
    return counters_;
  }

  [[nodiscard]] ReplyScratch& scratch_for(SendContext* ctx) noexcept {
    return ctx != nullptr ? ctx->scratch : serial_scratch_;
  }

  /// Resolves the reverse host path for a response (`dst` -> `reply_to`)
  /// via the compiled FIB when installed, else the path cache. Returns
  /// false when unroutable; on success `hops` views either the context's
  /// reverse scratch or the cache entry kept alive by `entry`.
  bool reverse_hops(HostId dst, HostId reply_to, SendContext* ctx,
                    route::PathCache::EntryPtr& entry,
                    std::span<const route::PathHop>& hops);

  [[nodiscard]] std::uint16_t next_ip_id(bool is_router, std::uint32_t id,
                                         double now);

  TokenBucket& bucket_for(RouterId router) noexcept
      RROPT_REQUIRES(serial_gate_) {
    return buckets_[router];
  }

  std::shared_ptr<const topo::Topology> topology_;
  std::shared_ptr<const Behaviors> behaviors_;
  route::PathStitcher stitcher_;
  route::PathCache paths_;
  std::shared_ptr<const route::CompiledFib> fib_;
  NetParams params_;
  /// Phase capability for the caller-serialized state below. Not a lock
  /// (zero cost): it names the campaign's structural guarantee — buckets
  /// and aggregate counters are only consulted live in serial phases
  /// (serial-mode sends, deferred replay, reset/merge between chunks) —
  /// so the compiler can reject code that touches them without it.
  /// `fault_plan_` and `fib_` are deliberately outside the capability:
  /// they are written only between campaigns but *read* concurrently by
  /// every send, so a guarded-by would demand a capability on the hot
  /// path; installs go through the gate-acquiring setters instead.
  mutable util::SerialGate serial_gate_;
  NetCounters counters_ RROPT_GUARDED_BY(serial_gate_);
  FaultPlan fault_plan_;
  FaultCounters fault_counters_;
  /// One bucket per router, indexed by RouterId and initialised from the
  /// router's behaviour at construction (satellite of the compiled
  /// forwarding plane: the old lazy hash map cost a probe-path lookup per
  /// policed hop).
  std::vector<TokenBucket> buckets_ RROPT_GUARDED_BY(serial_gate_);
  /// The compiled dataplane: HopRows + run lists + element set. Immutable
  /// after construction except for the serial-phase run-list recompile in
  /// set_fault_plan.
  CompiledPipeline pipeline_;
  /// Selected walk engine (see set_walk_engine).
  bool legacy_walk_ = false;
  ReplyScratch serial_scratch_;  // ctx == nullptr sends only
  std::vector<route::PathHop> serial_fwd_path_scratch_;
  std::vector<route::PathHop> serial_rev_path_scratch_;
  std::vector<std::atomic<std::uint32_t>> router_ipid_count_;
  std::vector<std::atomic<std::uint32_t>> host_ipid_count_;
};

}  // namespace rr::sim
