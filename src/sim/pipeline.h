// Per-personality element run lists, compiled at topology freeze.
//
// sim/element.h defines the behaviour elements; this header compiles them
// into the flat structure Network::walk executes:
//
//   * one packed HopRow per router (element.h) — as_id plus the 5-bit
//     personality flags byte, built from the frozen topology and the
//     behaviour assignment (the routing/fib path spines feed walk exactly
//     these rows: each route::PathHop names the router whose row — and
//     hence whose run list — the next hop executes);
//
//   * one *run list* per (personality flags, packet class) — the ordered
//     element sequence that personality applies to an options packet or a
//     plain packet. A run list is a single uint64: up to eight 4-bit
//     element opcodes, terminated by kEnd. run_hop() walks the nibbles in
//     a tight switch — no virtual dispatch, no per-hop memory traversal
//     beyond one table load, and nothing allocates (the interpreter is
//     subject to rropt_lint's hot-path rules like the element bodies).
//
// Compilation folds campaign-constant knowledge into the lists the way a
// compiler folds constants into code:
//
//   * zero-probability loss gates are elided (hash_chance(p<=0) is
//     identically false, so the element is a no-op);
//   * fault elements appear only when the installed plan is enabled —
//     and their absence *proves* option bytes cannot change mid-walk,
//     which licenses the trusted stamping fast path (TrustedStampElement)
//     that skips per-stamp option revalidation;
//   * a transit filter shadows an edge filter (it drops strictly more);
//   * hidden routers simply have no TTL element.
//
// The result is bit-identical to the legacy branch forest at every
// observable byte (proven by tests/pipeline_differential_test.cpp) while
// making personalities data: a new router behaviour is a new element plus
// a compilation rule, not a new branch in Network::walk.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <span>

#include "routing/stitcher.h"
#include "sim/behavior.h"
#include "sim/element.h"
#include "topology/topology.h"

/// Software prefetch of the cache line holding `p`. Advisory only: the
/// batched walk issues one per slot for the *next* pass's HopRow while the
/// current pass executes, hiding the dependent row load behind the
/// element work of the pass in flight.
#if defined(__GNUC__) || defined(__clang__)
#define RROPT_PREFETCH(p) __builtin_prefetch(p)
#else
#define RROPT_PREFETCH(p) ((void)0)
#endif

namespace rr::sim {

/// Element opcodes — nibble values in a packed run list. kEnd terminates
/// (and zero-initialised lists are therefore empty, not malformed).
enum class ElementOp : std::uint8_t {
  kEnd = 0,
  kFaultInject = 1,
  kBaseLoss = 2,
  kSlowPathLoss = 3,
  kStormGate = 4,
  kCoppGate = 5,
  kTransitFilter = 6,
  kEdgeFilter = 7,
  kTtl = 8,
  kStamp = 9,
  kStampTrusted = 10,
  /// Peephole fusion of kTtl + kStampTrusted (see TtlTrustedStampElement).
  kTtlStampTrusted = 11,
};

/// A run list packed into one machine word: nibble k holds step k's
/// ElementOp; the first kEnd nibble terminates. Eight steps of four bits
/// fit the longest legal composition (fault, base loss, slow loss, storm,
/// CoPP, edge filter, TTL, stamp) with room to spare.
using PackedRunList = std::uint64_t;

/// One configured instance of every element; run lists index into this.
/// Elements are a few words each, so the whole set stays in two cache
/// lines next to the run-list table.
struct ElementSet {
  FaultInjectorElement fault;
  BaseLossElement base_loss;
  SlowPathLossElement slow_loss;
  StormGateElement storm;
  CoppGateElement copp;
  TransitFilterElement transit;
  EdgeFilterElement edge;
  TtlDecrementElement ttl;
  StampElement stamp;
  TrustedStampElement stamp_trusted;
  TtlTrustedStampElement ttl_stamp_trusted;
};

/// Campaign-constant knowledge folded into run lists at compile time.
struct PipelineConfig {
  bool faults_enabled = false;
  double base_loss = 0.0;
  double options_extra_loss = 0.0;
};

/// Opcode capacity of a packed list. Eight steps of four bits fit the
/// longest legal composition (fault, base loss, slow loss, storm, CoPP,
/// one filter, TTL, stamp); the high eight nibbles stay zero so the
/// interpreter's first-kEnd termination always holds.
inline constexpr std::size_t kRunListCapacity = 8;

/// True when `list` already holds kRunListCapacity opcodes.
[[nodiscard]] constexpr bool run_list_full(PackedRunList list) noexcept {
  return ((list >> (4 * (kRunListCapacity - 1))) & 0xF) != 0;
}

/// Appends one opcode to a packed list (helper for compilation & tests).
/// Appending to a full list is a compile bug — the opcode would have been
/// silently dropped behaviour — so it asserts in debug builds and returns
/// the list unchanged in release builds (rropt_verify's "overflow"
/// invariant flags the truncated compile either way).
[[nodiscard]] constexpr PackedRunList run_list_append(PackedRunList list,
                                                      ElementOp op) noexcept {
  assert(!run_list_full(list) &&
         "run_list_append: packed run list already holds 8 opcodes");
  if (run_list_full(list)) return list;
  std::size_t shift = 0;
  while (((list >> shift) & 0xF) != 0) shift += 4;
  return list | (static_cast<PackedRunList>(op) << shift);
}

/// Number of steps in a packed list (tests & diagnostics).
[[nodiscard]] constexpr std::size_t run_list_size(PackedRunList list) noexcept {
  std::size_t n = 0;
  while ((list & 0xF) != 0) {
    ++n;
    list >>= 4;
  }
  return n;
}

/// Step `k` of a packed list (tests & diagnostics).
[[nodiscard]] constexpr ElementOp run_list_at(PackedRunList list,
                                              std::size_t k) noexcept {
  return static_cast<ElementOp>((list >> (4 * k)) & 0xF);
}

/// The run-list table: one packed list per (personality flags, packet
/// class). Index = flags | (has_options << 5).
using RunTable = std::array<PackedRunList, 2 * HopRow::kNumPersonalities>;

/// Compiles the run-list table for a configuration. Pure: the bench and
/// the property tests drive this directly, without a Network.
[[nodiscard]] RunTable compile_run_table(const PipelineConfig& config);

/// Executes one hop's run list over the context. Inline: this *is* the
/// per-hop inner loop of Network::walk — one table word in a register,
/// a predictable switch per element.
inline HopVerdict run_hop(PackedRunList list, const ElementSet& es,
                          HopContext& ctx) noexcept {
  // RROPT_HOT_BEGIN(pipeline-run-hop)
  for (PackedRunList w = list; (w & 0xF) != 0; w >>= 4) {
    HopVerdict verdict = HopVerdict::kContinue;
    switch (static_cast<ElementOp>(w & 0xF)) {
      case ElementOp::kFaultInject: verdict = es.fault.process(ctx); break;
      case ElementOp::kBaseLoss: verdict = es.base_loss.process(ctx); break;
      case ElementOp::kSlowPathLoss: verdict = es.slow_loss.process(ctx); break;
      case ElementOp::kStormGate: verdict = es.storm.process(ctx); break;
      case ElementOp::kCoppGate: verdict = es.copp.process(ctx); break;
      case ElementOp::kTransitFilter: verdict = es.transit.process(ctx); break;
      case ElementOp::kEdgeFilter: verdict = es.edge.process(ctx); break;
      case ElementOp::kTtl: verdict = es.ttl.process(ctx); break;
      case ElementOp::kStamp: verdict = es.stamp.process(ctx); break;
      case ElementOp::kStampTrusted:
        verdict = es.stamp_trusted.process(ctx);
        break;
      case ElementOp::kTtlStampTrusted:
        verdict = es.ttl_stamp_trusted.process(ctx);
        break;
      case ElementOp::kEnd: break;  // unreachable: loop guard
    }
    if (verdict != HopVerdict::kContinue) return verdict;
  }
  return HopVerdict::kContinue;
  // RROPT_HOT_END(pipeline-run-hop)
}

/// Per-slot outcome of a batched walk — the pipeline-level mirror of
/// Network's private WalkResult. A default-constructed result is a drop
/// (time 0, not doomed), exactly what the scalar walk returns for one.
struct BatchWalkResult {
  enum class Outcome : std::uint8_t {
    kDropped = 0,
    kDelivered = 1,
    kTtlExpired = 2,
  };
  Outcome outcome = Outcome::kDropped;
  std::uint32_t expired_hop = 0;  // valid when kTtlExpired
  double time = 0.0;
  bool doomed = false;  // walked the full path but a fault discarded it
};

/// A structure-of-arrays batch of in-flight walks for
/// walk_batch_pipeline: each slot holds a bound header view, its per-leg
/// HopContext, its run-list bank, its path spine, and its result.
/// The caller binds up to kMaxProbes slots (bind()), fills the per-leg
/// context fields the scalar walk would have filled, and hands the batch
/// to the kernel. Non-copyable: each slot's HopContext points at the
/// view stored in the same batch.
struct WalkBatch {
  static constexpr std::size_t kMaxProbes = 16;

  WalkBatch() = default;
  WalkBatch(const WalkBatch&) = delete;
  WalkBatch& operator=(const WalkBatch&) = delete;

  std::size_t size = 0;
  std::uint32_t live = 0;  // bitmask of slots still walking
  pkt::Ipv4HeaderView views[kMaxProbes];
  HopContext hc[kMaxProbes];
  const PackedRunList* banks[kMaxProbes] = {};
  std::span<const route::PathHop> hops[kMaxProbes];
  BatchWalkResult results[kMaxProbes];

  /// Empties the batch for reuse (slot state is rebuilt by bind()).
  void clear() noexcept {
    size = 0;
    live = 0;
  }

  /// Binds slot `i` to a datagram buffer and a path spine starting at
  /// virtual time `start`, resetting the slot's context and result.
  /// Returns the slot's HopContext so the caller can fill the remaining
  /// per-leg fields (flow, leg, ASes, counters, trace, doomed) and pick
  /// the slot's run-list bank from `hc.has_options`.
  HopContext& bind(std::size_t i, std::span<std::uint8_t> bytes,
                   std::span<const route::PathHop> path,
                   double start) noexcept {
    views[i] = pkt::Ipv4HeaderView{bytes};
    HopContext& ctx = hc[i];
    ctx = HopContext{};
    ctx.view = &views[i];
    ctx.bytes = bytes;
    ctx.has_options = views[i].has_options();
    ctx.now = start;
    hops[i] = path;
    results[i] = BatchWalkResult{};
    live |= 1u << i;
    if (i >= size) size = i + 1;
    return ctx;
  }
};

/// Drives every live slot of `b` through the compiled pipeline. Each
/// slot's walk executes as bursts: maximal runs of the census's dominant
/// single-op TTL/stamp personalities run against a register-resident copy
/// of the slot's header view (written back only at run boundaries), with
/// the next hop's HopRow prefetched a hop ahead and every slot's first
/// row prefetched before any slot walks; everything else goes through the
/// scalar run_hop interpreter on the slot's own HopContext. Results land
/// in b.results; semantics are bit-identical to running the scalar walk
/// loop over each slot (the batch differential test proves it at dataset
/// level).
void walk_batch_pipeline(WalkBatch& b, const HopRow* rows,
                         const ElementSet& es, double hop_delay_s);

/// The frozen dataplane: per-router HopRows plus the run-list table and
/// the configured element set. Built once when the Network binds a frozen
/// topology to a behaviour assignment; only the run-list table is
/// recompiled when a fault plan is installed (a serial-phase operation —
/// sends read the table lock-free).
class CompiledPipeline {
 public:
  CompiledPipeline() = default;

  /// Compiles rows and run lists. `plan` must outlive the pipeline (the
  /// fault elements keep a pointer; the Network passes its own member,
  /// whose address is stable across set_fault_plan installs).
  [[nodiscard]] static CompiledPipeline compile(const topo::Topology& topology,
                                                const Behaviors& behaviors,
                                                const FaultPlan* plan);

  /// Recompiles the run-list table after a fault plan install/remove.
  void set_faults_enabled(bool enabled);

  [[nodiscard]] HopRow row(topo::RouterId id) const noexcept {
    return rows_[id];
  }
  [[nodiscard]] std::span<const HopRow> rows() const noexcept { return rows_; }

  /// Base of the 32-entry run-list bank for one packet class; index with
  /// the HopRow flags byte. Hoisting the bank selection out of the walk
  /// loop saves an add per hop.
  [[nodiscard]] const PackedRunList* list_bank(bool has_options)
      const noexcept {
    return table_.data() + (has_options ? HopRow::kNumPersonalities : 0);
  }
  [[nodiscard]] PackedRunList list(std::uint8_t flags,
                                   bool has_options) const noexcept {
    return list_bank(has_options)[flags];
  }

  [[nodiscard]] const ElementSet& elements() const noexcept {
    return elements_;
  }
  [[nodiscard]] const PipelineConfig& config() const noexcept {
    return config_;
  }

 private:
  std::vector<HopRow> rows_;
  RunTable table_{};
  ElementSet elements_;
  PipelineConfig config_;
};

}  // namespace rr::sim
