// CoPP-style token bucket for the router options slow path.
//
// Cisco's control-plane policing guidance rate-limits packets with IP
// options to a small budget; we model each policed router with one bucket
// over virtual time. Time comes from the probing schedule, so probing
// faster than the refill rate produces exactly the drop patterns Figure 4
// investigates.
//
// A bucket is plain serial state with virtual-time-ordered semantics: its
// outcome sequence is fully determined by the ordered sequence of consume
// times it is fed. Concurrent campaign execution exploits this by
// *recording* would-be consumes during the parallel phase and replaying
// them through Network::try_consume_options_token() in a canonical
// virtual-time order — the bucket itself is never touched from two
// threads.
#pragma once

#include <algorithm>

namespace rr::sim {

class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_s, double burst) noexcept
      : rate_(rate_per_s), burst_(burst), tokens_(burst) {}

  /// Consumes one token at virtual time `now` (seconds); returns false
  /// when the bucket is empty (the packet is policed). Tolerates
  /// non-monotonic time by never refilling backwards.
  bool try_consume(double now) noexcept {
    if (rate_ <= 0.0) return true;  // unpoliced
    if (now > last_) {
      tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
      last_ = now;
    }
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  void reset() noexcept {
    tokens_ = burst_;
    last_ = 0.0;
  }

  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  double last_ = 0.0;
};

}  // namespace rr::sim
