#include "sim/fault.h"

#include <charconv>
#include <cmath>
#include <sstream>

namespace rr::sim {

namespace {

/// Uniform [0,1) from a mixed key — same construction as the loss draws in
/// sim/network.cpp so fault decisions share their statistical quality.
double unit_from_key(std::uint64_t key) noexcept {
  return static_cast<double>(util::mix64(key) >> 11) * 0x1.0p-53;
}

bool parse_double(std::string_view text, double& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kRrTruncate: return "rr_truncate";
    case FaultKind::kRrGarble: return "rr_garble";
    case FaultKind::kChecksumCorrupt: return "checksum_corrupt";
    case FaultKind::kOptionStrip: return "option_strip";
    case FaultKind::kByzantineStamp: return "byzantine_stamp";
    case FaultKind::kQuoteMangle: return "quote_mangle";
    case FaultKind::kDuplicateReply: return "duplicate_reply";
    case FaultKind::kReorderReply: return "reorder_reply";
    case FaultKind::kStorm: return "storm";
  }
  return "unknown";
}

FaultParams FaultParams::uniform(double rate) noexcept {
  FaultParams p;
  p.rr_truncate = rate;
  p.rr_garble = rate;
  p.checksum_corrupt = rate;
  p.option_strip = rate;
  p.byzantine_stamp = rate;
  p.quote_mangle = rate;
  p.duplicate_reply = rate;
  p.reorder_reply = rate;
  p.storm = rate;
  return p;
}

bool FaultParams::any() const noexcept {
  return rr_truncate > 0.0 || rr_garble > 0.0 || checksum_corrupt > 0.0 ||
         option_strip > 0.0 || byzantine_stamp > 0.0 || quote_mangle > 0.0 ||
         duplicate_reply > 0.0 || reorder_reply > 0.0 || storm > 0.0;
}

std::optional<FaultParams> parse_fault_plan(std::string_view spec) {
  FaultParams params;
  if (spec.empty() || spec == "none") return params;

  if (spec.rfind("uniform:", 0) == 0) {
    double rate = 0.0;
    if (!parse_double(spec.substr(8), rate) || rate < 0.0 || rate > 1.0) {
      return std::nullopt;
    }
    return FaultParams::uniform(rate);
  }

  // A bare number is shorthand for uniform:<rate>.
  if (spec.find('=') == std::string_view::npos) {
    double rate = 0.0;
    if (!parse_double(spec, rate) || rate < 0.0 || rate > 1.0) {
      return std::nullopt;
    }
    return FaultParams::uniform(rate);
  }

  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "seed") {
      if (!parse_u64(value, params.seed)) return std::nullopt;
      continue;
    }
    double number = 0.0;
    if (!parse_double(value, number)) return std::nullopt;
    if (key == "rr_truncate") {
      params.rr_truncate = number;
    } else if (key == "rr_garble") {
      params.rr_garble = number;
    } else if (key == "checksum_corrupt") {
      params.checksum_corrupt = number;
    } else if (key == "option_strip") {
      params.option_strip = number;
    } else if (key == "byzantine_stamp") {
      params.byzantine_stamp = number;
    } else if (key == "quote_mangle") {
      params.quote_mangle = number;
    } else if (key == "duplicate_reply") {
      params.duplicate_reply = number;
    } else if (key == "reorder_reply") {
      params.reorder_reply = number;
    } else if (key == "storm") {
      params.storm = number;
    } else if (key == "storm_period_s") {
      params.storm_period_s = number;
    } else if (key == "reorder_delay_s") {
      params.reorder_delay_s = number;
    } else {
      return std::nullopt;
    }
  }
  return params;
}

std::string to_string(const FaultParams& params) {
  std::ostringstream out;
  out << "faults:";
  bool wrote = false;
  const auto emit = [&](const char* name, double value) {
    if (value <= 0.0) return;
    out << ' ' << name << '=' << value;
    wrote = true;
  };
  emit("rr_truncate", params.rr_truncate);
  emit("rr_garble", params.rr_garble);
  emit("checksum_corrupt", params.checksum_corrupt);
  emit("option_strip", params.option_strip);
  emit("byzantine_stamp", params.byzantine_stamp);
  emit("quote_mangle", params.quote_mangle);
  emit("duplicate_reply", params.duplicate_reply);
  emit("reorder_reply", params.reorder_reply);
  emit("storm", params.storm);
  if (!wrote) out << " none";
  return out.str();
}

bool FaultPlan::draw(FaultKind kind, std::uint64_t flow, int leg,
                     std::size_t hop, double p) const noexcept {
  if (!enabled_ || p <= 0.0) return false;
  if (p >= 1.0) return true;
  return unit_from_key(key(kind, flow, leg, hop)) < p;
}

double FaultPlan::reorder_delay(std::uint64_t flow) const noexcept {
  // Strictly positive so a reordered reply is always strictly later than
  // its in-order arrival would have been.
  const double unit =
      unit_from_key(key(FaultKind::kReorderReply, flow, 1, 1));
  return params_.reorder_delay_s * (0.5 + 0.5 * unit);
}

bool FaultPlan::storm_active(topo::RouterId router,
                             double now) const noexcept {
  if (!enabled_ || params_.storm <= 0.0) return false;
  const double period =
      params_.storm_period_s > 0.0 ? params_.storm_period_s : 0.5;
  const auto window =
      static_cast<std::uint64_t>(std::floor(std::max(0.0, now) / period));
  const std::uint64_t storm_key =
      util::mix64(params_.seed ^ (static_cast<std::uint64_t>(router) << 32) ^
                  window ^ 0x53544F524DULL);  // "STORM"
  if (params_.storm >= 1.0) return true;
  return unit_from_key(storm_key) < params_.storm;
}

}  // namespace rr::sim
