#include "sim/network.h"

#include <array>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <utility>

#include "packet/icmp.h"
#include "packet/ipv4.h"
#include "packet/mutate.h"
#include "packet/view.h"
#include "packet/wire.h"

namespace rr::sim {

namespace {

/// Runs a reply build against the scratch, counting capacity growths so
/// steady-state allocation-freedom is observable.
template <typename BuildFn>
void build_into_scratch(ReplyScratch& scratch, BuildFn&& build) {
  const std::size_t capacity = scratch.bytes.capacity();
  build(scratch.bytes);
  if (scratch.bytes.capacity() != capacity) ++scratch.growths;
}

}  // namespace

Network::Network(std::shared_ptr<const topo::Topology> topology,
                 std::shared_ptr<const Behaviors> behaviors,
                 route::RoutingOracle& oracle, NetParams params)
    : topology_(std::move(topology)),
      behaviors_(std::move(behaviors)),
      stitcher_(topology_, oracle),
      paths_(stitcher_, params.path_cache_entries),
      params_(params),
      router_ipid_count_(topology_->routers().size()),
      host_ipid_count_(topology_->hosts().size()) {
  util::SerialGateLock gate(serial_gate_);
  buckets_.reserve(topology_->routers().size());
  for (RouterId id = 0; id < topology_->routers().size(); ++id) {
    const RouterBehavior& b = behaviors_->router(id);
    buckets_.emplace_back(b.options_rate_pps, b.options_burst);
  }
  // Freeze-time dataplane compilation: per-router HopRows plus the
  // per-personality element run lists (sim/pipeline.h). The fault elements
  // keep a pointer to our fault_plan_ member, whose address is stable
  // across set_fault_plan installs.
  pipeline_ = CompiledPipeline::compile(*topology_, *behaviors_, &fault_plan_);
  // Escape hatch for the one-release deprecation window: the legacy branch
  // forest stays selectable for differential debugging in the field.
  legacy_walk_ = std::getenv("RROPT_LEGACY_WALK") != nullptr;
}

void Network::reset() {
  util::SerialGateLock gate(serial_gate_);
  for (auto& bucket : buckets_) bucket.reset();
  counters_ = NetCounters{};
  fault_counters_.reset();
}

void Network::merge_counters(const NetCounters& tally) {
  util::SerialGateLock gate(serial_gate_);
  counters_.merge(tally);
}

bool Network::reverse_hops(HostId dst, HostId reply_to, SendContext* ctx,
                           route::PathCache::EntryPtr& entry,
                           std::span<const route::PathHop>& hops) {
  if (fib_ != nullptr) {
    std::vector<route::PathHop>& scratch =
        ctx != nullptr ? ctx->rev_path_scratch : serial_rev_path_scratch_;
    switch (fib_->reverse(dst, reply_to, scratch)) {
      case route::CompiledFib::Lookup::kHit:
        hops = scratch;
        return true;
      case route::CompiledFib::Lookup::kUnroutable:
        return false;
      case route::CompiledFib::Lookup::kMiss:
        break;  // pair not compiled; consult the cache
    }
  }
  entry = paths_.host_path(dst, reply_to);
  if (!entry->routable) return false;
  hops = entry->hops;
  return true;
}

std::uint16_t Network::next_ip_id(bool is_router, std::uint32_t id,
                                  double now) {
  const double velocity = is_router ? behaviors_->router_ipid_velocity(id)
                                    : behaviors_->host_ipid_velocity(id);
  std::atomic<std::uint32_t>& count =
      is_router ? router_ipid_count_[id] : host_ipid_count_[id];
  const std::uint32_t base = static_cast<std::uint32_t>(
      util::mix64((std::uint64_t{is_router} << 40) | id) & 0xffff);
  const std::uint32_t n = count.fetch_add(1, std::memory_order_relaxed) + 1;
  return static_cast<std::uint16_t>(
      (base + n + static_cast<std::uint32_t>(velocity * now)) & 0xffff);
}

Network::WalkResult Network::walk(std::vector<std::uint8_t>& bytes,
                                  std::span<const route::PathHop> hops,
                                  double start, topo::AsId src_as,
                                  topo::AsId dst_as, std::uint64_t flow,
                                  int leg, SendContext* ctx, bool doomed_in) {
  if (legacy_walk_) {
    return walk_legacy(bytes, hops, start, src_as, dst_as, flow, leg, ctx,
                       doomed_in);
  }
  return walk_pipeline(bytes, hops, start, src_as, dst_as, flow, leg, ctx,
                       doomed_in);
}

Network::WalkResult Network::walk_pipeline(
    std::vector<std::uint8_t>& bytes, std::span<const route::PathHop> hops,
    double start, topo::AsId src_as, topo::AsId dst_as, std::uint64_t flow,
    int leg, SendContext* ctx, bool doomed_in) {
  // RROPT_HOT_BEGIN(network-walk): the per-hop run list executes once per
  // router per leg at campaign scale. rropt_lint bans heap-allocating
  // calls between these markers unless the line carries an RROPT_HOT_OK
  // waiver explaining why the allocation is steady-state-free.
  WalkResult result;
  // One view per leg: option offsets are located once, and every per-hop
  // TTL decrement and RR/TS stamp is an O(1) in-place mutation with an
  // RFC 1624 incremental checksum update (see packet/view.h). The
  // HopContext is also per leg; only the per-hop fields below are
  // refreshed inside the loop.
  pkt::Ipv4HeaderView view{bytes};
  HopContext hc;
  hc.view = &view;
  hc.bytes = bytes;
  hc.has_options = view.has_options();
  hc.doomed = doomed_in;
  hc.leg = leg;
  hc.flow = flow;
  hc.src_as = src_as;
  hc.dst_as = dst_as;
  hc.counters = &counters_for(ctx);
  hc.fault_counters = &fault_counters_;
  if (ctx != nullptr) {
    // Deferred mode: CoPP consumes are recorded into the trace for serial
    // resolution (see the header comment on Network).
    hc.trace = &ctx->trace;
  } else {
    // Serial mode: ctx == nullptr is the caller's no-concurrency promise,
    // which is what holding the serial gate means; the bucket array is
    // only handed to the elements under that promise.
    serial_gate_.assert_held();
    hc.buckets = buckets_.data();
  }
  const ElementSet& es = pipeline_.elements();
  const PackedRunList* bank = pipeline_.list_bank(hc.has_options);
  const HopRow* rows = pipeline_.rows().data();
  double now = start;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    now += params_.hop_delay_s;
    const RouterId router = hops[i].router;
    const HopRow row = rows[router];
    hc.router = router;
    hc.egress = hops[i].egress;
    hc.as_id = row.as_id;
    hc.hop = i;
    hc.now = now;
    switch (run_hop(bank[row.flags], es, hc)) {
      case HopVerdict::kContinue:
        break;
      case HopVerdict::kDrop:
        return result;
      case HopVerdict::kExpire:
        result.outcome = WalkOutcome::kTtlExpired;
        result.expired_hop = i;
        result.time = now;
        return result;
    }
  }
  // A doomed packet that walked the full path is still "delivered" so the
  // endpoint raises its ghost reply — the caller must treat a doomed
  // delivery as unobservable.
  result.outcome = WalkOutcome::kDelivered;
  result.doomed = hc.doomed;
  result.time = now + params_.hop_delay_s;  // final hop to the device
  return result;
  // RROPT_HOT_END(network-walk)
}

// The pre-pipeline branch forest, kept verbatim (modulo reading HopRows
// from the compiled pipeline) as the differential-conformance reference.
// Scheduled for removal — see DESIGN.md §11 for the date.
Network::WalkResult Network::walk_legacy(
    std::vector<std::uint8_t>& bytes, std::span<const route::PathHop> hops,
    double start, topo::AsId src_as, topo::AsId dst_as, std::uint64_t flow,
    int leg, SendContext* ctx, bool doomed_in) {
  // RROPT_HOT_BEGIN(network-walk-legacy)
  WalkResult result;
  NetCounters& c = counters_for(ctx);
  double now = start;
  // One view per leg: option offsets are located once, and every per-hop
  // TTL decrement and RR/TS stamp below is an O(1) in-place mutation with
  // an RFC 1624 incremental checksum update — bit-identical to the full
  // rescan-and-recompute mutate.h path (see packet/view.h).
  pkt::Ipv4HeaderView view{bytes};
  const bool has_options = view.has_options();
  // A fault-doomed packet keeps walking (and keeps consuming the exact
  // same per-router slow-path budget a fault-free walk would have) but is
  // discarded instead of delivered — and the doom follows the *exchange*,
  // not just this leg: a doomed probe still raises a ghost reply whose
  // reverse walk consumes the reverse path's budget. Returning early here
  // (or skipping the ghost reply) would *refund* token buckets, and probes
  // that were rate-limited in the baseline could suddenly get through — a
  // fault must never add reachability evidence, not even by side effect on
  // shared state. At most one doom charge is made per exchange.
  bool doomed = doomed_in;
  const double base_loss = behaviors_->params().base_loss;
  const double options_loss = behaviors_->params().options_extra_loss;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    now += params_.hop_delay_s;
    const RouterId router = hops[i].router;
    const HopRow row = pipeline_.row(router);

    // Injected mid-path faults (sim/fault.h). Each draw is a pure function
    // of (fault seed, flow, leg, hop, kind), so a faulted packet's fate is
    // as reproducible as an unfaulted one, at any thread count. Faults
    // only corrupt or remove: a stripped/garbled/corrupted packet can lose
    // evidence of reachability downstream but can never fabricate it.
    // They rewrite option *content* in place without moving option
    // boundaries, so the view's cached offsets stay valid.
    if (fault_plan_.enabled()) {
      // "Stripping" blanks the option area to NOPs rather than erasing it:
      // the header geometry (and hence every router's slow-path and
      // filtering decision, and every host's drop policy) is identical to
      // the baseline walk, so the fault removes RR evidence and nothing
      // else. See pkt::blank_options.
      if (has_options && fault_plan_.strip_options(flow, leg, i) &&
          pkt::blank_options(bytes)) {
        fault_counters_.note(FaultKind::kOptionStrip);
      }
      if (has_options && fault_plan_.truncate_rr(flow, leg, i) &&
          pkt::rr_truncate(bytes)) {
        fault_counters_.note(FaultKind::kRrTruncate);
      }
      if (has_options && fault_plan_.garble_rr(flow, leg, i) &&
          pkt::rr_garble(bytes, fault_plan_.bogus_address(walk_draw_key(
                                    flow, leg, i, kDrawFaultAddress)))) {
        fault_counters_.note(FaultKind::kRrGarble);
      }
      // A corrupted header checksum kills the packet at the next router's
      // header verification, so it dooms the exchange outright. Deliberately
      // NOT modelled by corrupting the bytes and letting an endpoint parse
      // fail: under two corruptions with TTL decrements in between, XOR
      // and one's-complement addition do not commute, and whether the
      // corruptions cancel would depend on the stored checksum value —
      // which includes the thread-order-dependent IP ID, breaking the
      // any-thread-count determinism contract. (The bytes stay intact so
      // the ghost exchange parses and walks exactly like the baseline.)
      if (!doomed && fault_plan_.corrupt_checksum(flow, leg, i)) {
        fault_counters_.note(FaultKind::kChecksumCorrupt);
        ++c.dropped_loss;
        doomed = true;
        if (ctx != nullptr) {
          ctx->trace.doomed = true;
          ctx->trace.doom_charged_loss = true;
          ctx->trace.doom_after_events =
              static_cast<std::uint32_t>(ctx->trace.events.size());
        }
      }
    }

    // Plain fast-path loss. A doomed packet takes the same exits the
    // baseline walk would (so shared bucket state evolves identically) but
    // its drop was already charged at the storm hop.
    if (hash_chance(walk_draw_key(flow, leg, i, kDrawBaseLoss), base_loss)) {
      if (!doomed) ++c.dropped_loss;
      return result;
    }

    if (has_options) {
      // Slow path: the route processor sees this packet.
      if (hash_chance(walk_draw_key(flow, leg, i, kDrawOptionsLoss),
                      options_loss)) {
        if (!doomed) ++c.dropped_loss;
        return result;
      }
      // A rate-limit storm closes the slow path outright for a window of
      // virtual time. The check is a stateless pure function of (router,
      // window), so serial and deferred modes agree without replay. The
      // packet is doomed — not returned — so it still consumes this and
      // every downstream router's slow-path budget exactly as the
      // baseline walk did.
      if (!doomed && fault_plan_.enabled() &&
          fault_plan_.storm_active(router, now)) {
        fault_counters_.note(FaultKind::kStorm);
        ++c.dropped_rate_limit;
        doomed = true;
        if (ctx != nullptr) {
          ctx->trace.doomed = true;
          ctx->trace.doom_charged_loss = false;
          ctx->trace.doom_after_events =
              static_cast<std::uint32_t>(ctx->trace.events.size());
        }
      }
      if ((row.flags & HopRow::kRateLimited) != 0) {
        if (ctx != nullptr) {
          // Deferred mode: record the consume for serial resolution and
          // continue as if it succeeded. A failed consume is a silent
          // drop, so nothing later in the walk would have differed.
          ctx->trace.events.push_back(  // RROPT_HOT_OK: capacity recycled
              {router, now, leg != 0});
        } else {
          // Serial mode: ctx == nullptr is the caller's no-concurrency
          // promise, which is what holding the serial gate means.
          serial_gate_.assert_held();
          if (!bucket_for(router).try_consume(now)) {
            if (!doomed) ++c.dropped_rate_limit;
            return result;
          }
        }
      }
      const bool at_edge = (row.as_id == src_as) || (row.as_id == dst_as);
      if ((row.flags & HopRow::kFiltersTransit) != 0 ||
          (at_edge && (row.flags & HopRow::kFiltersEdge) != 0)) {
        if (!doomed) ++c.dropped_filter;
        return result;
      }
    }

    // TTL handling (hidden routers forward without decrementing).
    if ((row.flags & HopRow::kHidden) == 0) {
      const auto ttl = view.decrement_ttl();
      if (!ttl) {
        if (!doomed) ++c.dropped_ttl;
        return result;  // malformed or already expired
      }
      if (*ttl == 0) {
        // A doomed packet was discarded before it could expire: no
        // Time-Exceeded is raised. That is bucket-safe — ICMP errors carry
        // no options, so the skipped error walk consumes no shared budget.
        if (doomed) return result;
        result.outcome = WalkOutcome::kTtlExpired;
        result.expired_hop = i;
        result.time = now;
        return result;
      }
    }

    // Record Route / Timestamp stamping of the outgoing interface. A
    // byzantine stamper records a class-E bogus address instead — noise
    // that analysis must tolerate but can never mistake for a real hop.
    if (has_options && (row.flags & HopRow::kStamps) != 0) {
      net::IPv4Address egress = hops[i].egress;
      if (fault_plan_.enabled() &&
          fault_plan_.byzantine_stamp(flow, leg, i)) {
        egress = fault_plan_.bogus_address(
            walk_draw_key(flow, leg, i, kDrawFaultAddress));
        fault_counters_.note(FaultKind::kByzantineStamp);
      }
      view.rr_stamp(egress);
      view.ts_stamp(egress, static_cast<std::uint32_t>(now * 1000.0));
    }
  }
  // A doomed packet that walked the full path is still "delivered" so the
  // endpoint raises its ghost reply — the caller must treat a doomed
  // delivery as unobservable.
  result.outcome = WalkOutcome::kDelivered;
  result.doomed = doomed;
  result.time = now + params_.hop_delay_s;  // final hop to the device
  return result;
  // RROPT_HOT_END(network-walk-legacy)
}

std::optional<HostId> Network::host_owning(net::IPv4Address addr) const {
  const auto owner = topology_->owner_of(addr);
  if (!owner || owner->kind != topo::AddressOwner::Kind::kHost) {
    return std::nullopt;
  }
  return owner->id;
}

std::optional<Network::Delivery> Network::send(HostId src,
                                               std::vector<std::uint8_t> bytes,
                                               double time, SendContext* ctx) {
  return send_reusing(src, bytes, time, ctx);
}

std::optional<Network::Delivery> Network::send_reusing(
    HostId src, std::vector<std::uint8_t>& bytes, double time,
    SendContext* ctx) {
  NetCounters& c = counters_for(ctx);
  if (ctx != nullptr) ctx->trace.reset();
  ++c.sent;
  const auto dst_addr = pkt::peek_destination(bytes);
  if (!dst_addr) return std::nullopt;
  const auto owner = topology_->owner_of(*dst_addr);
  if (!owner) {
    ++c.dropped_unroutable;
    return std::nullopt;
  }

  // Responses chase the header's source address, which may be spoofed.
  const auto src_addr = pkt::peek_source(bytes);
  if (!src_addr) return std::nullopt;
  const auto reply_to = host_owning(*src_addr);
  if (!reply_to) {
    ++c.dropped_unroutable;
    return std::nullopt;
  }

  // The packet's flow key: every random decision along both legs derives
  // from it, so the probe's fate is a pure function of (seed, injecting
  // host, destination address, send time). Serial mode additionally folds
  // in the global send counter so that back-to-back retries of an
  // identical packet redraw their luck, matching pre-existing behaviour of
  // interactive tests; campaign mode relies on unique send times instead.
  std::uint64_t flow = util::mix64(params_.seed ^ 0x5252464c4f57ULL);
  flow = util::mix64(flow ^
                     ((std::uint64_t{src} << 32) ^ dst_addr->value()));
  flow = util::mix64(flow ^ std::bit_cast<std::uint64_t>(time));
  // `c` is counters_ exactly when ctx == nullptr, so this reads the
  // global send counter through the serial-gate-checked reference.
  if (ctx == nullptr) flow = util::mix64(flow ^ c.sent);

  const topo::AsId src_as = topology_->host_at(src).as_id;
  topo::AsId dst_as;
  route::PathCache::EntryPtr fwd_entry;
  std::span<const route::PathHop> fwd_hops;
  bool fwd_routable = false;
  if (owner->kind == topo::AddressOwner::Kind::kHost) {
    dst_as = topology_->host_at(owner->id).as_id;
    bool resolved = false;
    if (fib_ != nullptr) {
      // Compiled fast path: the table copies the spine into the per-send
      // scratch, so no cache shard is touched and no entry is pinned.
      std::vector<route::PathHop>& scratch =
          ctx != nullptr ? ctx->fwd_path_scratch : serial_fwd_path_scratch_;
      switch (fib_->forward(src, owner->id, scratch)) {
        case route::CompiledFib::Lookup::kHit:
          fwd_hops = scratch;
          fwd_routable = true;
          resolved = true;
          break;
        case route::CompiledFib::Lookup::kUnroutable:
          resolved = true;
          break;
        case route::CompiledFib::Lookup::kMiss:
          break;  // pair not compiled; consult the cache
      }
    }
    if (!resolved) {
      fwd_entry = paths_.host_path(src, owner->id);
      fwd_routable = fwd_entry->routable;
      if (fwd_routable) fwd_hops = fwd_entry->hops;
    }
  } else {
    dst_as = topology_->router_at(owner->id).as_id;
    fwd_entry = paths_.host_to_router_path(src, owner->id);
    fwd_routable = fwd_entry->routable;
    if (fwd_routable) fwd_hops = fwd_entry->hops;
  }
  if (!fwd_routable) {
    ++c.dropped_unroutable;
    return std::nullopt;
  }
  if (owner->kind == topo::AddressOwner::Kind::kRouter &&
      !fwd_hops.empty()) {
    // The probed router is the final element; it answers rather than
    // forwards, so exclude it from the forwarding walk.
    fwd_hops = fwd_hops.first(fwd_hops.size() - 1);
  }

  const auto fwd =
      walk(bytes, fwd_hops, time, src_as, dst_as, flow, /*leg=*/0, ctx);
  switch (fwd.outcome) {
    case WalkOutcome::kDropped:
      return std::nullopt;
    case WalkOutcome::kTtlExpired: {
      const auto& hop = fwd_hops[fwd.expired_hop];
      const RouterBehavior& rb = behaviors_->router(hop.router);
      if (rb.anonymous) {
        ++c.dropped_ttl;
        return std::nullopt;
      }
      ++c.ttl_errors;
      if (ctx != nullptr) ctx->trace.counted_ttl_error = true;
      return emit_router_error(
          hop.router, hop.ingress,
          static_cast<std::uint8_t>(pkt::IcmpType::kTimeExceeded),
          pkt::kCodeTtlExceededInTransit, bytes, *reply_to, fwd.time, flow,
          ctx);
    }
    case WalkOutcome::kDelivered:
      break;
  }
  if (!fwd.doomed) {
    ++c.delivered;
    if (ctx != nullptr) ctx->trace.counted_delivered = true;
  }

  if (owner->kind == topo::AddressOwner::Kind::kHost) {
    return host_respond(owner->id, *reply_to, bytes, fwd.time, flow, ctx,
                        fwd.doomed);
  }
  return router_respond(owner->id, *dst_addr, *reply_to, bytes, fwd.time,
                        flow, ctx, fwd.doomed);
}

void Network::send_batch(HostId src, std::span<BatchProbe> probes) {
  // The legacy branch forest has no batch kernel; per-slot scalar sends
  // are the definition of correct there.
  if (legacy_walk_) {
    for (BatchProbe& probe : probes) {
      probe.delivery = send_reusing(src, *probe.bytes, probe.time, probe.ctx);
    }
    return;
  }
  const std::size_t n = probes.size();
  assert(n <= WalkBatch::kMaxProbes);

  // Per-slot resolution state that must outlive the batched walks: the
  // forward spine (scratch- or cache-backed) is still consulted after the
  // walk for TTL-expiry error generation.
  struct SlotState {
    bool active = false;
    std::uint64_t flow = 0;
    topo::AsId dst_as = 0;
    HostId dst_host = topo::kNoHost;
    HostId reply_to = topo::kNoHost;
    route::PathCache::EntryPtr fwd_entry;
    std::span<const route::PathHop> fwd_hops;
  };
  std::array<SlotState, WalkBatch::kMaxProbes> slots;
  WalkBatch batch;
  const HopRow* rows = pipeline_.rows().data();
  const topo::AsId src_as = topology_->host_at(src).as_id;

  // Phase 1 — stage: replicate send_reusing's per-probe preamble exactly
  // (trace reset, sent/unroutable accounting, flow key, forward-path
  // resolution) and bind the survivors into the batch. Each slot works
  // against its own SendContext, so per-slot work is order-independent.
  for (std::size_t k = 0; k < n; ++k) {
    BatchProbe& probe = probes[k];
    probe.delivery.reset();
    SendContext* ctx = probe.ctx;
    assert(ctx != nullptr);  // batch sends are deferred-mode only
    std::vector<std::uint8_t>& bytes = *probe.bytes;
    SlotState& slot = slots[k];

    // Probed router interfaces answer rather than forward; they are rare
    // (alias-resolution traffic, never the campaign hot path), so peek —
    // before any counter is touched — and take the scalar path per slot,
    // which is bit-identical because a send's fate is a pure function of
    // the packet given its own context.
    const auto dst_addr = pkt::peek_destination(bytes);
    std::optional<topo::AddressOwner> owner;
    if (dst_addr) owner = topology_->owner_of(*dst_addr);
    if (owner && owner->kind == topo::AddressOwner::Kind::kRouter) {
      probe.delivery = send_reusing(src, bytes, probe.time, ctx);
      continue;
    }

    NetCounters& c = ctx->counters;
    ctx->trace.reset();
    ++c.sent;
    if (!dst_addr) continue;  // delivery stays nullopt, like send_reusing
    if (!owner) {
      ++c.dropped_unroutable;
      continue;
    }
    const auto src_addr = pkt::peek_source(bytes);
    if (!src_addr) continue;
    const auto reply_to = host_owning(*src_addr);
    if (!reply_to) {
      ++c.dropped_unroutable;
      continue;
    }

    // Same flow key as send_reusing; the serial-mode send-counter fold
    // does not apply (ctx is always non-null here).
    std::uint64_t flow = util::mix64(params_.seed ^ 0x5252464c4f57ULL);
    flow = util::mix64(flow ^
                       ((std::uint64_t{src} << 32) ^ dst_addr->value()));
    flow = util::mix64(flow ^ std::bit_cast<std::uint64_t>(probe.time));

    slot.dst_as = topology_->host_at(owner->id).as_id;
    bool resolved = false;
    bool routable = false;
    if (fib_ != nullptr) {
      switch (fib_->forward(src, owner->id, ctx->fwd_path_scratch)) {
        case route::CompiledFib::Lookup::kHit:
          slot.fwd_hops = ctx->fwd_path_scratch;
          routable = true;
          resolved = true;
          break;
        case route::CompiledFib::Lookup::kUnroutable:
          resolved = true;
          break;
        case route::CompiledFib::Lookup::kMiss:
          break;  // pair not compiled; consult the cache
      }
    }
    if (!resolved) {
      slot.fwd_entry = paths_.host_path(src, owner->id);
      routable = slot.fwd_entry->routable;
      if (routable) slot.fwd_hops = slot.fwd_entry->hops;
    }
    if (!routable) {
      ++c.dropped_unroutable;
      continue;
    }

    slot.flow = flow;
    slot.dst_host = owner->id;
    slot.reply_to = *reply_to;
    slot.active = true;

    HopContext& hc = batch.bind(k, bytes, slot.fwd_hops, probe.time);
    hc.leg = 0;
    hc.flow = flow;
    hc.src_as = src_as;
    hc.dst_as = slot.dst_as;
    hc.counters = &c;
    hc.fault_counters = &fault_counters_;
    hc.trace = &ctx->trace;
    batch.banks[k] = pipeline_.list_bank(hc.has_options);
    // Warm the first pass's row while later slots resolve their paths.
    if (!slot.fwd_hops.empty()) {
      RROPT_PREFETCH(&rows[slot.fwd_hops[0].router]);
    }
  }

  // Phase 2 — all forward legs, element-pass-major.
  if (batch.live != 0) {
    walk_batch_pipeline(batch, rows, pipeline_.elements(),
                        params_.hop_delay_s);
  }

  // Phase 3 — per-slot outcome handling, mirroring send_reusing's
  // post-walk switch, then reply staging: delivered slots build their
  // reply (host_prepare_reply — the exact front half of host_respond) and
  // rebind into the batch for the reverse leg.
  std::array<BatchWalkResult, WalkBatch::kMaxProbes> fwd_results;
  std::array<PendingReply, WalkBatch::kMaxProbes> pending;
  for (std::size_t k = 0; k < n; ++k) {
    if (slots[k].active) fwd_results[k] = batch.results[k];
  }
  batch.clear();
  for (std::size_t k = 0; k < n; ++k) {
    SlotState& slot = slots[k];
    if (!slot.active) continue;
    BatchProbe& probe = probes[k];
    SendContext* ctx = probe.ctx;
    NetCounters& c = ctx->counters;
    std::vector<std::uint8_t>& bytes = *probe.bytes;
    const BatchWalkResult& fwd = fwd_results[k];
    switch (fwd.outcome) {
      case BatchWalkResult::Outcome::kDropped:
        slot.active = false;
        break;
      case BatchWalkResult::Outcome::kTtlExpired: {
        slot.active = false;
        const auto& hop = slot.fwd_hops[fwd.expired_hop];
        const RouterBehavior& rb = behaviors_->router(hop.router);
        if (rb.anonymous) {
          ++c.dropped_ttl;
          break;
        }
        ++c.ttl_errors;
        ctx->trace.counted_ttl_error = true;
        // ICMP errors carry no options and are a cold path; the scalar
        // emit helper (which walks the error home itself) is exact.
        probe.delivery = emit_router_error(
            hop.router, hop.ingress,
            static_cast<std::uint8_t>(pkt::IcmpType::kTimeExceeded),
            pkt::kCodeTtlExceededInTransit, bytes, slot.reply_to, fwd.time,
            slot.flow, ctx);
        break;
      }
      case BatchWalkResult::Outcome::kDelivered: {
        if (!fwd.doomed) {
          ++c.delivered;
          ctx->trace.counted_delivered = true;
        }
        host_prepare_reply(slot.dst_host, slot.reply_to, bytes, fwd.time,
                           slot.flow, ctx, fwd.doomed, pending[k]);
        if (!pending[k].has_reply) {
          slot.active = false;
          break;
        }
        HopContext& hc = batch.bind(k, bytes, pending[k].rev_hops, fwd.time);
        hc.doomed = fwd.doomed;
        hc.leg = 1;
        hc.flow = slot.flow;
        hc.src_as = pending[k].src_as;
        hc.dst_as = pending[k].dst_as;
        hc.counters = &c;
        hc.fault_counters = &fault_counters_;
        hc.trace = &ctx->trace;
        batch.banks[k] = pipeline_.list_bank(hc.has_options);
        break;
      }
    }
  }

  // Phase 4 — all reply legs together.
  if (batch.live != 0) {
    walk_batch_pipeline(batch, rows, pipeline_.elements(),
                        params_.hop_delay_s);
  }

  // Phase 5 — arrivals: the deliver_back tail per surviving slot.
  for (std::size_t k = 0; k < n; ++k) {
    if (!slots[k].active) continue;
    const BatchWalkResult& rev = batch.results[k];
    probes[k].delivery = finish_delivery(
        *probes[k].bytes,
        rev.outcome == BatchWalkResult::Outcome::kDelivered && !rev.doomed,
        rev.time, pending[k].receiver, slots[k].flow, probes[k].ctx);
  }
}

std::optional<Network::Delivery> Network::emit_router_error(
    RouterId router, net::IPv4Address from, std::uint8_t icmp_type,
    std::uint8_t code, std::vector<std::uint8_t>& offending, HostId reply_to,
    double time, std::uint64_t flow, SendContext* ctx) {
  const auto probe_src = pkt::peek_source(offending);
  if (!probe_src) return std::nullopt;

  const std::uint16_t ip_id = next_ip_id(/*is_router=*/true, router, time);
  ReplyScratch& scratch = scratch_for(ctx);
  build_into_scratch(scratch, [&](std::vector<std::uint8_t>& out) {
    pkt::build_icmp_error(out, icmp_type, code, from, *probe_src, ip_id,
                          offending, params_.quoted_payload_bytes);
  });
  // A buggy/byzantine error generator quotes a mangled inner header: the
  // message still parses, but quotation matching must reject it.
  if (fault_plan_.enabled() && fault_plan_.mangle_quote(flow) &&
      pkt::mangle_icmp_quote(scratch.bytes)) {
    fault_counters_.note(FaultKind::kQuoteMangle);
  }
  std::swap(offending, scratch.bytes);

  // Route the error from the originating router back to the prober. The
  // error itself carries no options, so edge filters leave it alone.
  const auto rev_entry = paths_.router_path(router, reply_to);
  if (!rev_entry->routable) {
    ++counters_for(ctx).dropped_unroutable;
    return std::nullopt;
  }
  const topo::AsId router_as = topology_->router_at(router).as_id;
  const topo::AsId reply_as = topology_->host_at(reply_to).as_id;
  return deliver_back(offending, rev_entry->hops, time, router_as, reply_as,
                      reply_to, flow, ctx, /*doomed=*/false);
}

void Network::host_prepare_reply(HostId dst, HostId reply_to,
                                 std::vector<std::uint8_t>& bytes, double time,
                                 std::uint64_t flow, SendContext* ctx,
                                 bool doomed, PendingReply& out) {
  out.has_reply = false;
  out.rev_entry = route::PathCache::EntryPtr{};
  NetCounters& c = counters_for(ctx);
  const HostBehavior& hb = behaviors_->host(dst);
  const auto info = pkt::inspect_datagram(bytes);
  if (!info) return;

  // A host that ignores options packets ignores them for every transport.
  const bool has_options = info->options_present;
  if (has_options && hb.rr_handling == RrHandling::kDrop) return;

  // The host's IP-ID counter ticks for any accepted datagram, matching the
  // legacy reply construction which drew the ID before deciding whether a
  // reply would actually be produced.
  const std::uint16_t ip_id = next_ip_id(/*is_router=*/false, dst, time);

  if (info->protocol == static_cast<std::uint8_t>(pkt::IpProto::kIcmp)) {
    if (info->icmp_type !=
        static_cast<std::uint8_t>(pkt::IcmpType::kEchoRequest)) {
      return;
    }
    if (!hb.ping_responsive) return;
    if (has_options && hb.rr_handling == RrHandling::kCopy) {
      // RFC 1122 behaviour: the reply carries the request's Record Route
      // option; the destination records itself if a slot remains (and some
      // devices record an alias rather than the probed address). Same
      // geometry as the request, so the reply is the request buffer
      // transformed in place.
      pkt::echo_reply_inplace(bytes, *info, ip_id);
      if (hb.stamps_self) {
        pkt::rr_stamp(bytes, hb.stamp_address);
        pkt::ts_stamp(bytes, hb.stamp_address,
                      static_cast<std::uint32_t>(time * 1000.0));
      }
      pkt::finalize_checksums(bytes, info->header_bytes, info->total_length);
    } else {
      ReplyScratch& scratch = scratch_for(ctx);
      build_into_scratch(scratch, [&](std::vector<std::uint8_t>& out_bytes) {
        pkt::build_echo_reply_stripped(out_bytes, bytes, *info, ip_id);
      });
      std::swap(bytes, scratch.bytes);
    }
  } else {
    // inspect_datagram only accepts ICMP or UDP, so this is the UDP
    // branch: every probed UDP port is closed in this world.
    if (!hb.ping_responsive || !hb.responds_udp) return;
    if (!doomed) {
      ++c.port_unreachables;
      if (ctx != nullptr) ctx->trace.counted_port_unreachable = true;
    }
    // Port unreachable, quoting the datagram as it arrived — including
    // any RR stamps it accrued on the forward path.
    const std::uint16_t error_id = next_ip_id(false, dst, time);
    ReplyScratch& scratch = scratch_for(ctx);
    build_into_scratch(scratch, [&](std::vector<std::uint8_t>& out_bytes) {
      pkt::build_icmp_error(
          out_bytes, static_cast<std::uint8_t>(pkt::IcmpType::kDestUnreachable),
          pkt::kCodePortUnreachable, info->destination, info->source, error_id,
          bytes, params_.quoted_payload_bytes);
    });
    if (fault_plan_.enabled() && fault_plan_.mangle_quote(flow) &&
        pkt::mangle_icmp_quote(scratch.bytes)) {
      fault_counters_.note(FaultKind::kQuoteMangle);
    }
    std::swap(bytes, scratch.bytes);
  }

  if (!reverse_hops(dst, reply_to, ctx, out.rev_entry, out.rev_hops)) {
    ++c.dropped_unroutable;
    return;
  }
  out.src_as = topology_->host_at(dst).as_id;
  out.dst_as = topology_->host_at(reply_to).as_id;
  out.receiver = reply_to;
  out.has_reply = true;
}

std::optional<Network::Delivery> Network::host_respond(
    HostId dst, HostId reply_to, std::vector<std::uint8_t>& bytes, double time,
    std::uint64_t flow, SendContext* ctx, bool doomed) {
  // Prepare + reverse walk: the batched path runs the same two pieces
  // with a batch kernel between them, so both paths share every
  // observable byte by construction.
  PendingReply pending;
  host_prepare_reply(dst, reply_to, bytes, time, flow, ctx, doomed, pending);
  if (!pending.has_reply) return std::nullopt;
  return deliver_back(bytes, pending.rev_hops, time, pending.src_as,
                      pending.dst_as, pending.receiver, flow, ctx, doomed);
}

std::optional<Network::Delivery> Network::router_respond(
    RouterId router, net::IPv4Address probed, HostId reply_to,
    std::vector<std::uint8_t>& bytes, double time, std::uint64_t flow,
    SendContext* ctx, bool doomed) {
  const RouterBehavior& rb = behaviors_->router(router);
  if (!rb.responds_ping) return std::nullopt;
  const auto info = pkt::inspect_datagram(bytes);
  if (!info) return std::nullopt;
  if (info->protocol != static_cast<std::uint8_t>(pkt::IpProto::kIcmp) ||
      info->icmp_type !=
          static_cast<std::uint8_t>(pkt::IcmpType::kEchoRequest)) {
    return std::nullopt;
  }

  const std::uint16_t ip_id = next_ip_id(/*is_router=*/true, router, time);
  if (info->options_present && rb.stamps) {
    // The reply keeps the request's options; the probed interface stamps
    // itself. `probed` is the request's destination address, so the
    // in-place transform already puts it in the source field.
    pkt::echo_reply_inplace(bytes, *info, ip_id);
    pkt::rr_stamp(bytes, probed);
    pkt::finalize_checksums(bytes, info->header_bytes, info->total_length);
  } else {
    ReplyScratch& scratch = scratch_for(ctx);
    build_into_scratch(scratch, [&](std::vector<std::uint8_t>& out) {
      pkt::build_echo_reply_stripped(out, bytes, *info, ip_id);
    });
    std::swap(bytes, scratch.bytes);
  }
  const auto rev_entry = paths_.router_path(router, reply_to);
  if (!rev_entry->routable) {
    ++counters_for(ctx).dropped_unroutable;
    return std::nullopt;
  }
  return deliver_back(bytes, rev_entry->hops, time,
                      topology_->router_at(router).as_id,
                      topology_->host_at(reply_to).as_id, reply_to, flow,
                      ctx, doomed);
}

std::optional<Network::Delivery> Network::deliver_back(
    std::vector<std::uint8_t>& bytes, std::span<const route::PathHop> hops,
    double start, topo::AsId src_as, topo::AsId dst_as, HostId receiver,
    std::uint64_t flow, SendContext* ctx, bool doomed) {
  const auto result =
      walk(bytes, hops, start, src_as, dst_as, flow, /*leg=*/1, ctx, doomed);
  return finish_delivery(
      bytes, result.outcome == WalkOutcome::kDelivered && !result.doomed,
      result.time, receiver, flow, ctx);
}

std::optional<Network::Delivery> Network::finish_delivery(
    std::vector<std::uint8_t>& bytes, bool delivered_undoomed, double time,
    HostId receiver, std::uint64_t flow, SendContext* ctx) {
  if (!delivered_undoomed) {
    // A reply that expires or is dropped on the way back simply never
    // arrives (errors about errors are not generated, RFC 1122) — and the
    // ghost leg of a fault-doomed exchange consumed the reverse path's
    // budget exactly as in the baseline, but nothing arrives either.
    return std::nullopt;
  }
  NetCounters& c = counters_for(ctx);
  ++c.responses;
  if (ctx != nullptr) ctx->trace.counted_response = true;
  Delivery delivery{std::move(bytes), time, receiver};
  if (fault_plan_.enabled()) {
    // Capture-point faults: an extra identical copy, or a late arrival.
    // Neither changes the bytes, so campaign contents are untouched; the
    // prober dedups repeats and timestamps are not observations.
    if (fault_plan_.duplicate_reply(flow)) {
      delivery.duplicates = 1;
      fault_counters_.note(FaultKind::kDuplicateReply);
    }
    if (fault_plan_.reorder_reply(flow)) {
      delivery.time += fault_plan_.reorder_delay(flow);
      fault_counters_.note(FaultKind::kReorderReply);
    }
  }
  return delivery;
}

}  // namespace rr::sim
