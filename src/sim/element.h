// Composable per-hop behaviour elements — the Click-inspired dataplane.
//
// Network::walk used to be a monolithic branch forest: every router
// personality (stamping, hidden, rate-limited, edge-filtering, ...) and
// every fault mode was another hand-threaded branch inside one function.
// This header decomposes that forest into small, individually testable
// elements, each owning exactly one per-hop behaviour:
//
//   FaultInjectorElement   mid-path option corruption + checksum dooms
//   BaseLossElement        fast-path Bernoulli loss
//   SlowPathLossElement    extra loss risk on the options slow path
//   StormGateElement       rate-limit storm windows (fault plan)
//   CoppGateElement        CoPP options token bucket (live or deferred)
//   TransitFilterElement   AS drops options packets in transit
//   EdgeFilterElement      AS drops options packets at its own edge
//   TtlDecrementElement    TTL decrement + Time-Exceeded trigger
//   StampElement           RR/TS stamping, byzantine-stamper aware
//   TrustedStampElement    RR/TS stamping, compiled fault-free fast path
//
// An element reads and mutates one HopContext and returns a HopVerdict;
// sim/pipeline.h compiles per-personality run lists of these elements at
// topology freeze and Network::walk just executes the list. New router
// personalities become new element compositions, not new branches.
//
// Contract: element semantics are *bit-identical* to the legacy branch
// forest (kept behind RROPT_LEGACY_WALK for one release). Every random
// decision is a counter-based draw via walk_draw_key/hash_chance below, so
// a packet's fate is a pure function of (seed, flow, leg, hop) no matter
// which engine walks it or how many threads are running. The differential
// conformance harness (tests/pipeline_differential_test.cpp) proves the
// equivalence across golden datasets, fault plans and thread counts.
//
// Hot-path rules: element process() bodies are hot regions — rropt_lint
// bans heap allocation and stream IO inside them without needing explicit
// RROPT_HOT markers (tools/lint). The one allocation-shaped call, the
// deferred bucket event push, carries the standard RROPT_HOT_OK waiver:
// its vector's capacity is recycled across probes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netbase/address.h"
#include "packet/mutate.h"
#include "packet/view.h"
#include "sim/fault.h"
#include "sim/token_bucket.h"
#include "topology/types.h"
#include "util/rng.h"

namespace rr::sim {

// Purposes for per-hop counter-based draws; folded into the draw key so a
// hop's fast-path and slow-path loss draws are independent. Fault-plan
// decisions (sim/fault.h) key on their own 0xFA00+ purpose space inside
// FaultPlan, so enabling faults never perturbs these draws.
inline constexpr std::uint64_t kDrawBaseLoss = 1;
inline constexpr std::uint64_t kDrawOptionsLoss = 2;
inline constexpr std::uint64_t kDrawFaultAddress = 3;

[[nodiscard]] inline std::uint64_t walk_draw_key(std::uint64_t flow, int leg,
                                                 std::size_t hop,
                                                 std::uint64_t purpose) {
  return util::mix64(flow ^ (static_cast<std::uint64_t>(leg) << 62) ^
                     (static_cast<std::uint64_t>(hop) << 8) ^ purpose);
}

/// Bernoulli(p) as a pure function of the key: the draw is the same no
/// matter which thread evaluates it or in what order.
[[nodiscard]] inline bool hash_chance(std::uint64_t key, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return static_cast<double>(util::mix64(key) >> 11) * 0x1.0p-53 < p;
}

/// Why a probe got no (useful) answer — simulator-side diagnostics used by
/// tests and sanity benches, never by the measurement pipeline itself.
struct NetCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;          // reached the final device
  std::uint64_t responses = 0;          // any packet returned to the source
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_filter = 0;
  std::uint64_t dropped_rate_limit = 0;
  std::uint64_t dropped_ttl = 0;        // expired anonymously
  std::uint64_t dropped_unroutable = 0;
  std::uint64_t ttl_errors = 0;         // Time-Exceeded returned
  std::uint64_t port_unreachables = 0;

  /// Folds another tally into this one (per-worker accumulation).
  void merge(const NetCounters& other) noexcept {
    sent += other.sent;
    delivered += other.delivered;
    responses += other.responses;
    dropped_loss += other.dropped_loss;
    dropped_filter += other.dropped_filter;
    dropped_rate_limit += other.dropped_rate_limit;
    dropped_ttl += other.dropped_ttl;
    dropped_unroutable += other.dropped_unroutable;
    ttl_errors += other.ttl_errors;
    port_unreachables += other.port_unreachables;
  }
};

/// One deferred options-token consume: a policed router saw an options
/// packet at a virtual time. Recorded in probe order (forward leg first,
/// then the reply leg); times increase within a leg.
struct BucketEvent {
  topo::RouterId router = topo::kNoRouter;
  double time = 0.0;
  bool reply_leg = false;
};

/// Per-send bookkeeping for deferred-bucket (concurrent) execution. The
/// counted_* flags remember which optimistic aggregate counters this send
/// incremented before any reply-leg bucket event, so the serial replay
/// phase (Campaign::run pass B) can reconstruct exactly the counters a
/// serial run would have recorded when a deferred consume fails: a
/// forward-leg kill keeps none of them, a reply-leg kill keeps all but
/// counted_response.
struct ProbeTrace {
  std::vector<BucketEvent> events;
  bool counted_delivered = false;
  bool counted_response = false;
  bool counted_ttl_error = false;
  bool counted_port_unreachable = false;
  // A fault doomed this exchange: the drop was charged when the fault
  // fired (as dropped_loss or dropped_rate_limit), after the first
  // `doom_after_events` bucket events had been recorded. The serial
  // replay uses this to reconstruct which drop a serial run would have
  // charged when a deferred consume fails: the doom charge stands only if
  // the serial walk actually reaches the doom point.
  bool doomed = false;
  bool doom_charged_loss = false;
  std::uint32_t doom_after_events = 0;

  void reset() {
    events.clear();
    counted_delivered = false;
    counted_response = false;
    counted_ttl_error = false;
    counted_port_unreachable = false;
    doomed = false;
    doom_charged_loss = false;
    doom_after_events = 0;
  }
};

/// Everything the per-hop run list reads about a router, packed into one
/// 8-byte row so the ~half-billion hop iterations of a census issue a
/// single indexed load instead of three dependent loads across the router
/// table, the topology and the per-AS behaviour array. The flags byte is
/// the router's *personality key*: sim/pipeline.h compiles one element run
/// list per distinct flags value, and the AS filter policy is folded per
/// router at freeze (see sim::personality_flags in behavior.h).
struct HopRow {
  static constexpr std::uint8_t kHidden = 1 << 0;
  static constexpr std::uint8_t kStamps = 1 << 1;
  static constexpr std::uint8_t kRateLimited = 1 << 2;
  static constexpr std::uint8_t kFiltersTransit = 1 << 3;
  static constexpr std::uint8_t kFiltersEdge = 1 << 4;
  /// Number of distinct personality keys (flags fit in 5 bits).
  static constexpr std::size_t kNumPersonalities = 1u << 5;
  std::uint32_t as_id = 0;
  std::uint8_t flags = 0;
};

/// What an element decided about the packet at this hop.
enum class HopVerdict : std::uint8_t {
  kContinue = 0,  // next element (or next hop)
  kDrop = 1,      // walk ends; WalkResult stays kDropped
  kExpire = 2,    // TTL hit zero here: Time-Exceeded handling
};

/// The per-hop state an element reads and mutates. One HopContext is set
/// up per leg; the per-hop fields (router, egress, as_id, hop, now) are
/// refreshed by the walk loop before each run list executes. Exactly one
/// of `trace` (deferred/concurrent mode) and `buckets` (serial mode, only
/// formed under the serial gate) is non-null when a CoppGateElement runs.
struct HopContext {
  // ------------------------------------------------------------ per leg
  pkt::Ipv4HeaderView* view = nullptr;
  std::span<std::uint8_t> bytes;  // same storage the view is bound to
  bool has_options = false;
  bool doomed = false;
  int leg = 0;
  std::uint64_t flow = 0;
  topo::AsId src_as = 0;
  topo::AsId dst_as = 0;
  NetCounters* counters = nullptr;
  FaultCounters* fault_counters = nullptr;
  ProbeTrace* trace = nullptr;      // deferred mode; null in serial mode
  TokenBucket* buckets = nullptr;   // serial mode; null in deferred mode
  // ------------------------------------------------------------ per hop
  topo::RouterId router = topo::kNoRouter;
  net::IPv4Address egress;
  std::uint32_t as_id = 0;
  std::size_t hop = 0;
  double now = 0.0;
};

/// Injected mid-path faults (sim/fault.h). Each draw is a pure function
/// of (fault seed, flow, leg, hop, kind), so a faulted packet's fate is
/// as reproducible as an unfaulted one, at any thread count. Faults only
/// corrupt or remove: a stripped/garbled/corrupted packet can lose
/// evidence of reachability downstream but can never fabricate it. They
/// rewrite option *content* in place without moving option boundaries, so
/// the view's cached offsets stay valid. Only compiled into run lists
/// when the installed fault plan is enabled.
struct FaultInjectorElement {
  const FaultPlan* plan = nullptr;

  HopVerdict process(HopContext& ctx) const noexcept {
    // "Stripping" blanks the option area to NOPs rather than erasing it:
    // the header geometry (and hence every router's slow-path and
    // filtering decision, and every host's drop policy) is identical to
    // the baseline walk, so the fault removes RR evidence and nothing
    // else. See pkt::blank_options.
    if (ctx.has_options && plan->strip_options(ctx.flow, ctx.leg, ctx.hop) &&
        pkt::blank_options(ctx.bytes)) {
      ctx.fault_counters->note(FaultKind::kOptionStrip);
    }
    if (ctx.has_options && plan->truncate_rr(ctx.flow, ctx.leg, ctx.hop) &&
        pkt::rr_truncate(ctx.bytes)) {
      ctx.fault_counters->note(FaultKind::kRrTruncate);
    }
    if (ctx.has_options && plan->garble_rr(ctx.flow, ctx.leg, ctx.hop) &&
        pkt::rr_garble(ctx.bytes,
                       plan->bogus_address(walk_draw_key(
                           ctx.flow, ctx.leg, ctx.hop, kDrawFaultAddress)))) {
      ctx.fault_counters->note(FaultKind::kRrGarble);
    }
    // A corrupted header checksum kills the packet at the next router's
    // header verification, so it dooms the exchange outright. Deliberately
    // NOT modelled by corrupting the bytes and letting an endpoint parse
    // fail: under two corruptions with TTL decrements in between, XOR
    // and one's-complement addition do not commute, and whether the
    // corruptions cancel would depend on the stored checksum value —
    // which includes the thread-order-dependent IP ID, breaking the
    // any-thread-count determinism contract. (The bytes stay intact so
    // the ghost exchange parses and walks exactly like the baseline.)
    if (!ctx.doomed && plan->corrupt_checksum(ctx.flow, ctx.leg, ctx.hop)) {
      ctx.fault_counters->note(FaultKind::kChecksumCorrupt);
      ++ctx.counters->dropped_loss;
      ctx.doomed = true;
      if (ctx.trace != nullptr) {
        ctx.trace->doomed = true;
        ctx.trace->doom_charged_loss = true;
        ctx.trace->doom_after_events =
            static_cast<std::uint32_t>(ctx.trace->events.size());
      }
    }
    return HopVerdict::kContinue;
  }
};

/// Plain fast-path loss. A doomed packet takes the same exits the
/// baseline walk would (so shared bucket state evolves identically) but
/// its drop was already charged at the fault hop.
struct BaseLossElement {
  double probability = 0.0;

  HopVerdict process(HopContext& ctx) const noexcept {
    if (!hash_chance(walk_draw_key(ctx.flow, ctx.leg, ctx.hop, kDrawBaseLoss),
                     probability)) {
      return HopVerdict::kContinue;
    }
    if (!ctx.doomed) ++ctx.counters->dropped_loss;
    return HopVerdict::kDrop;
  }
};

/// Slow path: the route processor sees this packet. Only compiled into
/// options run lists.
struct SlowPathLossElement {
  double probability = 0.0;

  HopVerdict process(HopContext& ctx) const noexcept {
    if (!hash_chance(
            walk_draw_key(ctx.flow, ctx.leg, ctx.hop, kDrawOptionsLoss),
            probability)) {
      return HopVerdict::kContinue;
    }
    if (!ctx.doomed) ++ctx.counters->dropped_loss;
    return HopVerdict::kDrop;
  }
};

/// A rate-limit storm closes the slow path outright for a window of
/// virtual time. The check is a stateless pure function of (router,
/// window), so serial and deferred modes agree without replay. The
/// packet is doomed — not dropped — so it still consumes this and every
/// downstream router's slow-path budget exactly as the baseline walk did.
/// Only compiled into options run lists when the fault plan is enabled.
struct StormGateElement {
  const FaultPlan* plan = nullptr;

  HopVerdict process(HopContext& ctx) const noexcept {
    if (ctx.doomed || !plan->storm_active(ctx.router, ctx.now)) {
      return HopVerdict::kContinue;
    }
    ctx.fault_counters->note(FaultKind::kStorm);
    ++ctx.counters->dropped_rate_limit;
    ctx.doomed = true;
    if (ctx.trace != nullptr) {
      ctx.trace->doomed = true;
      ctx.trace->doom_charged_loss = false;
      ctx.trace->doom_after_events =
          static_cast<std::uint32_t>(ctx.trace->events.size());
    }
    return HopVerdict::kContinue;
  }
};

/// CoPP options token bucket. In deferred (concurrent) mode the consume is
/// recorded for serial resolution and assumed to succeed — a failed
/// consume is a silent drop, so nothing later in the walk would have
/// differed. In serial mode the bucket is consulted live; the walk loop
/// only forms `ctx.buckets` under the serial gate, which is what makes
/// that access the caller's no-concurrency promise.
struct CoppGateElement {
  HopVerdict process(HopContext& ctx) const noexcept {
    if (ctx.trace != nullptr) {
      ctx.trace->events.push_back(  // RROPT_HOT_OK: capacity recycled
          {ctx.router, ctx.now, ctx.leg != 0});
      return HopVerdict::kContinue;
    }
    if (ctx.buckets[ctx.router].try_consume(ctx.now)) {
      return HopVerdict::kContinue;
    }
    if (!ctx.doomed) ++ctx.counters->dropped_rate_limit;
    return HopVerdict::kDrop;
  }
};

/// AS drops options packets even in transit (rare). Compiled for routers
/// whose AS filters transit traffic; it shadows the edge filter — a
/// transit filter drops everything the edge filter would have.
struct TransitFilterElement {
  HopVerdict process(HopContext& ctx) const noexcept {
    if (!ctx.doomed) ++ctx.counters->dropped_filter;
    return HopVerdict::kDrop;
  }
};

/// AS drops options packets at its edge: only when this router's AS is
/// the packet's source or destination AS (the paper's dominant RR failure
/// mode — filtering happens at the edges, not the core).
struct EdgeFilterElement {
  HopVerdict process(HopContext& ctx) const noexcept {
    if (ctx.as_id != ctx.src_as && ctx.as_id != ctx.dst_as) {
      return HopVerdict::kContinue;
    }
    if (!ctx.doomed) ++ctx.counters->dropped_filter;
    return HopVerdict::kDrop;
  }
};

/// TTL decrement; omitted from the run list for hidden routers (they
/// forward without decrementing). A doomed packet that would have expired
/// is discarded instead: no Time-Exceeded is raised, which is bucket-safe
/// because ICMP errors carry no options and consume no shared budget.
struct TtlDecrementElement {
  HopVerdict process(HopContext& ctx) const noexcept {
    const auto ttl = ctx.view->decrement_ttl();
    if (!ttl) {
      if (!ctx.doomed) ++ctx.counters->dropped_ttl;
      return HopVerdict::kDrop;  // malformed or already expired
    }
    if (*ttl == 0) {
      return ctx.doomed ? HopVerdict::kDrop : HopVerdict::kExpire;
    }
    return HopVerdict::kContinue;
  }
};

/// Record Route / Timestamp stamping of the outgoing interface, byzantine-
/// stamper aware: a byzantine stamper records a class-E bogus address
/// instead — noise that analysis must tolerate but can never mistake for a
/// real hop. Compiled into options run lists of stamping routers when the
/// fault plan is enabled.
struct StampElement {
  const FaultPlan* plan = nullptr;

  HopVerdict process(HopContext& ctx) const noexcept {
    net::IPv4Address egress = ctx.egress;
    if (plan->byzantine_stamp(ctx.flow, ctx.leg, ctx.hop)) {
      egress = plan->bogus_address(
          walk_draw_key(ctx.flow, ctx.leg, ctx.hop, kDrawFaultAddress));
      ctx.fault_counters->note(FaultKind::kByzantineStamp);
    }
    ctx.view->rr_stamp(egress);
    ctx.view->ts_stamp(egress, static_cast<std::uint32_t>(ctx.now * 1000.0));
    return HopVerdict::kContinue;
  }
};

/// Fault-free stamping fast path. With no fault elements in the run list,
/// nothing can rewrite option bytes between hops, so the per-stamp option
/// revalidation the fault-aware path performs is provably redundant —
/// the pipeline compiler selects this element exactly when that proof
/// holds (fault plan disabled), and the bytes produced are identical
/// (see Ipv4HeaderView::rr_stamp_trusted).
struct TrustedStampElement {
  HopVerdict process(HopContext& ctx) const noexcept {
    ctx.view->rr_stamp_trusted(ctx.egress);
    if (ctx.view->has_ts()) {
      ctx.view->ts_stamp(ctx.egress,
                         static_cast<std::uint32_t>(ctx.now * 1000.0));
    }
    return HopVerdict::kContinue;
  }
};

/// Peephole fusion of TtlDecrementElement + TrustedStampElement — the
/// census's single hottest personality (a visible stamping router on a
/// fault-free walk). One view call performs the TTL decrement and the RR
/// stamp under a single combined RFC 1624 checksum update; deltas compose
/// exactly, so the bytes match the unfused pair at every hop. The run-list
/// compiler emits this whenever both elements would be adjacent and the
/// trusted-stamp proof holds.
struct TtlTrustedStampElement {
  HopVerdict process(HopContext& ctx) const noexcept {
    const auto ttl = ctx.view->ttl_rr_stamp_trusted(ctx.egress);
    if (!ttl) {
      if (!ctx.doomed) ++ctx.counters->dropped_ttl;
      return HopVerdict::kDrop;  // malformed or already expired
    }
    if (*ttl == 0) {
      // Expired before stamping, exactly like the unfused pair (the view
      // call skips the stamp when the decremented TTL is zero).
      return ctx.doomed ? HopVerdict::kDrop : HopVerdict::kExpire;
    }
    if (ctx.view->has_ts()) {
      ctx.view->ts_stamp(ctx.egress,
                         static_cast<std::uint32_t>(ctx.now * 1000.0));
    }
    return HopVerdict::kContinue;
  }
};

}  // namespace rr::sim
