#include "sim/pipeline.h"

#include "routing/stitcher.h"

namespace rr::sim {

// The walk consumes routing/fib path spines hop by hop: each PathHop's
// router indexes the packed HopRow (and hence the run list) executed at
// that hop, and its egress is what the stamp elements record. The spine
// layout is part of the dataplane contract.
static_assert(sizeof(route::PathHop) ==
                  sizeof(topo::RouterId) + 2 * sizeof(net::IPv4Address),
              "PathHop must stay a packed (router, ingress, egress) row");

RunTable compile_run_table(const PipelineConfig& config) {
  RunTable table{};
  for (std::size_t flags = 0; flags < HopRow::kNumPersonalities; ++flags) {
    for (int options = 0; options < 2; ++options) {
      PackedRunList list = 0;
      const auto add = [&list](ElementOp op) {
        list = run_list_append(list, op);
      };
      // Element order is the legacy walk's branch order — load-bearing
      // for bit-identity (a storm doom must precede the CoPP gate so the
      // doomed packet still consumes budget; filters run after the gate;
      // TTL after the whole slow path; stamping last).
      if (config.faults_enabled) add(ElementOp::kFaultInject);
      if (config.base_loss > 0.0) add(ElementOp::kBaseLoss);
      if (options != 0) {
        if (config.options_extra_loss > 0.0) add(ElementOp::kSlowPathLoss);
        if (config.faults_enabled) add(ElementOp::kStormGate);
        if ((flags & HopRow::kRateLimited) != 0) add(ElementOp::kCoppGate);
        if ((flags & HopRow::kFiltersTransit) != 0) {
          add(ElementOp::kTransitFilter);
        } else if ((flags & HopRow::kFiltersEdge) != 0) {
          add(ElementOp::kEdgeFilter);
        }
      }
      const bool decrements = (flags & HopRow::kHidden) == 0;
      const bool stamps = options != 0 && (flags & HopRow::kStamps) != 0;
      if (decrements && stamps && !config.faults_enabled) {
        // Peephole fusion: the hottest personality (visible stamping
        // router, fault-free) collapses to one element with a single
        // combined checksum update. Deltas compose exactly, so the bytes
        // match the unfused pair (tests/element_test.cpp proves it).
        add(ElementOp::kTtlStampTrusted);
      } else {
        if (decrements) add(ElementOp::kTtl);
        if (stamps) {
          add(config.faults_enabled ? ElementOp::kStamp
                                    : ElementOp::kStampTrusted);
        }
      }
      table[(options != 0 ? HopRow::kNumPersonalities : 0) + flags] = list;
    }
  }
  return table;
}

CompiledPipeline CompiledPipeline::compile(const topo::Topology& topology,
                                           const Behaviors& behaviors,
                                           const FaultPlan* plan) {
  CompiledPipeline pipeline;
  const std::span<const topo::AsId> router_as = topology.router_as_ids();
  pipeline.rows_.reserve(router_as.size());
  for (topo::RouterId id = 0; id < router_as.size(); ++id) {
    HopRow row;
    row.as_id = router_as[id];
    row.flags = personality_flags(behaviors.router(id),
                                  behaviors.as_behavior(row.as_id));
    pipeline.rows_.push_back(row);
  }
  pipeline.elements_.fault.plan = plan;
  pipeline.elements_.storm.plan = plan;
  pipeline.elements_.stamp.plan = plan;
  const BehaviorParams& params = behaviors.params();
  pipeline.elements_.base_loss.probability = params.base_loss;
  pipeline.elements_.slow_loss.probability = params.options_extra_loss;
  pipeline.config_ = {plan != nullptr && plan->enabled(), params.base_loss,
                      params.options_extra_loss};
  pipeline.table_ = compile_run_table(pipeline.config_);
  return pipeline;
}

void CompiledPipeline::set_faults_enabled(bool enabled) {
  if (config_.faults_enabled == enabled) return;
  config_.faults_enabled = enabled;
  table_ = compile_run_table(config_);
}

}  // namespace rr::sim
