#include "sim/pipeline.h"

#include "routing/stitcher.h"

#ifndef NDEBUG
// Freeze-time verification: debug builds prove every run-list entry sound
// (abstract interpretation, tools/verify) before the table is ever walked.
// Header-only dependency on the verifier's API; rr_sim links rr_verify.
#include "verify/verify.h"
#endif

namespace rr::sim {

// The walk consumes routing/fib path spines hop by hop: each PathHop's
// router indexes the packed HopRow (and hence the run list) executed at
// that hop, and its egress is what the stamp elements record. The spine
// layout is part of the dataplane contract.
static_assert(sizeof(route::PathHop) ==
                  sizeof(topo::RouterId) + 2 * sizeof(net::IPv4Address),
              "PathHop must stay a packed (router, ingress, egress) row");

namespace {

/// Single-opcode run lists the batched walk special-cases: the fused
/// visible-stamper personality (options bank, fault-free) and the plain
/// TTL personality (no-options bank). A one-nibble list's packed value is
/// its opcode.
constexpr PackedRunList kFusedStampList =
    static_cast<PackedRunList>(ElementOp::kTtlStampTrusted);
constexpr PackedRunList kTtlOnlyList =
    static_cast<PackedRunList>(ElementOp::kTtl);

/// Walks one batch slot to completion: bursts of single-op TTL/stamp hops
/// run against a *local copy* of the slot's header view, everything else
/// through the scalar run_hop interpreter on the slot's HopContext.
///
/// The burst is the whole point of the batched engine. Stores through the
/// packet's byte pointer may alias any object the compiler can't prove
/// disjoint — including the slot's HopContext and its Ipv4HeaderView,
/// whose addresses escape at bind — so a straight pass-major loop reloads
/// every cached header offset after every stamp. (We measured that
/// variant: 0.8x the scalar walk, with the reloads and per-slot-pass
/// bookkeeping outweighing the cross-slot overlap it was built for; see
/// DESIGN.md §12.) Copying the view into a local whose address never
/// escapes lets the compiler keep the offsets and checksum state in
/// registers across the run, and the copy is written back only at run
/// boundaries. Times accumulate (now += delay per hop) in the exact order
/// the scalar walk adds them, so every double compares bit-equal.
void walk_batch_slot(WalkBatch& b, std::size_t p, const HopRow* rows,
                     const ElementSet& es, double hop_delay_s) {
  HopContext& hc = b.hc[p];
  const std::span<const route::PathHop> path = b.hops[p];
  const PackedRunList* bank = b.banks[p];
  BatchWalkResult& r = b.results[p];
  const std::size_t n = path.size();
  std::size_t pass = 0;
  while (true) {
    if (pass >= n) {
      // A doomed slot that walked the full path is still "delivered" so
      // the endpoint raises its ghost reply; the caller must treat a
      // doomed delivery as unobservable (same contract as the scalar
      // walk).
      r.outcome = BatchWalkResult::Outcome::kDelivered;
      r.doomed = hc.doomed;
      r.time = hc.now + hop_delay_s;  // final hop to the device
      return;
    }
    const HopRow row = rows[path[pass].router];
    const PackedRunList list = bank[row.flags];
    if (list == kFusedStampList || list == kTtlOnlyList) {
      // Maximal run of the census's two dominant personalities (visible
      // stamping router / visible plain router, fault-free): the header
      // RMW runs on TrustedBurst registers and is folded back once at the
      // run boundary — one checksum read-modify-write per run instead of
      // per hop. Semantics are the element bodies' exactly; the batched-
      // vs-scalar differential test holds this path to bit-identity.
      pkt::Ipv4HeaderView::TrustedBurst burst{b.views[p]};
      if (burst.eligible()) [[likely]] {
        double now = hc.now;
        PackedRunList cur = list;
        const route::PathHop* hop = &path[pass];
        while (true) {
          now += hop_delay_s;
          const auto ttl = cur == kFusedStampList
                               ? burst.ttl_rr_stamp(hop->egress)
                               : burst.ttl_only();
          if (!ttl) [[unlikely]] {
            burst.commit();
            hc.now = now;
            if (!hc.doomed) ++hc.counters->dropped_ttl;
            return;  // malformed or already expired: default kDropped
          }
          if (*ttl == 0) [[unlikely]] {
            burst.commit();
            hc.now = now;
            if (hc.doomed) return;  // doomed TTL death is a silent drop
            r.outcome = BatchWalkResult::Outcome::kTtlExpired;
            r.expired_hop = static_cast<std::uint32_t>(pass);
            r.time = now;
            return;
          }
          ++pass;
          ++hop;
          if (pass >= n) {
            burst.commit();
            hc.now = now;
            r.outcome = BatchWalkResult::Outcome::kDelivered;
            r.doomed = hc.doomed;
            r.time = now + hop_delay_s;
            return;
          }
          if (pass + 1 < n) {
            RROPT_PREFETCH(&rows[hop[1].router]);
          }
          const HopRow next_row = rows[hop->router];
          const PackedRunList next_list = bank[next_row.flags];
          if (next_list != kFusedStampList && next_list != kTtlOnlyList) {
            // Hand the slot back to the interpreter at this pass.
            burst.commit();
            hc.now = now;
            break;
          }
          cur = next_list;
        }
        continue;
      }
      // Ineligible view (timestamp option, dirty checksum): same run, but
      // per-hop fused calls against a local view copy — still bit-exact,
      // just without the amortized checksum fold.
      pkt::Ipv4HeaderView view = b.views[p];
      double now = hc.now;
      PackedRunList cur = list;
      const route::PathHop* hop = &path[pass];
      while (true) {
        now += hop_delay_s;
        const auto ttl = cur == kFusedStampList
                             ? view.ttl_rr_stamp_trusted(hop->egress)
                             : view.decrement_ttl();
        if (!ttl) [[unlikely]] {
          b.views[p] = view;
          hc.now = now;
          if (!hc.doomed) ++hc.counters->dropped_ttl;
          return;  // malformed or already expired: default kDropped result
        }
        if (*ttl == 0) [[unlikely]] {
          b.views[p] = view;
          hc.now = now;
          if (hc.doomed) return;  // doomed TTL death is a silent drop
          r.outcome = BatchWalkResult::Outcome::kTtlExpired;
          r.expired_hop = static_cast<std::uint32_t>(pass);
          r.time = now;
          return;
        }
        if (cur == kFusedStampList && view.has_ts()) [[unlikely]] {
          view.ts_stamp(hop->egress,
                        static_cast<std::uint32_t>(now * 1000.0));
        }
        ++pass;
        ++hop;
        if (pass >= n) {
          b.views[p] = view;
          hc.now = now;
          r.outcome = BatchWalkResult::Outcome::kDelivered;
          r.doomed = hc.doomed;
          r.time = now + hop_delay_s;
          return;
        }
        if (pass + 1 < n) {
          RROPT_PREFETCH(&rows[hop[1].router]);
        }
        const HopRow next_row = rows[hop->router];
        const PackedRunList next_list = bank[next_row.flags];
        if (next_list != kFusedStampList && next_list != kTtlOnlyList) {
          // Hand the slot back to the interpreter at this pass.
          b.views[p] = view;
          hc.now = now;
          break;
        }
        cur = next_list;
      }
      continue;
    }
    // Interpreter hop: run lists with loss gates, filters, CoPP, or fault
    // elements — the exact scalar semantics on the slot's own context.
    hc.now += hop_delay_s;
    hc.router = path[pass].router;
    hc.egress = path[pass].egress;
    hc.as_id = row.as_id;
    hc.hop = pass;
    switch (run_hop(list, es, hc)) {
      case HopVerdict::kContinue:
        ++pass;
        break;
      case HopVerdict::kDrop:
        return;  // default kDropped result
      case HopVerdict::kExpire:
        r.outcome = BatchWalkResult::Outcome::kTtlExpired;
        r.expired_hop = static_cast<std::uint32_t>(pass);
        r.time = hc.now;
        return;
    }
  }
}

}  // namespace

void walk_batch_pipeline(WalkBatch& b, const HopRow* rows,
                         const ElementSet& es, double hop_delay_s) {
  // Every mutation below reproduces the scalar walk's order of operations
  // per slot, only the slot interleaving differs — and every cross-slot
  // interaction is either a counter-based draw (order-free) or a deferred
  // bucket event (recorded per slot), so the interleaving is
  // unobservable. Before any slot walks, prime the cache with every
  // slot's first HopRow: by the time slot k's burst dereferences its row,
  // the line has had k slots' worth of work to arrive — the batch analog
  // of the per-slot next-hop prefetch inside the burst.
  const std::uint32_t live = b.live;
  for (std::uint32_t m = live; m != 0; m &= m - 1) {
    const auto p = static_cast<std::size_t>(std::countr_zero(m));
    if (!b.hops[p].empty()) {
      RROPT_PREFETCH(&rows[b.hops[p][0].router]);
    }
  }
  for (std::uint32_t m = live; m != 0; m &= m - 1) {
    const auto p = static_cast<std::size_t>(std::countr_zero(m));
    walk_batch_slot(b, p, rows, es, hop_delay_s);
  }
  b.live = 0;
}

RunTable compile_run_table(const PipelineConfig& config) {
  RunTable table{};
  for (std::size_t flags = 0; flags < HopRow::kNumPersonalities; ++flags) {
    for (int options = 0; options < 2; ++options) {
      PackedRunList list = 0;
      const auto add = [&list](ElementOp op) {
        list = run_list_append(list, op);
      };
      // Element order is the legacy walk's branch order — load-bearing
      // for bit-identity (a storm doom must precede the CoPP gate so the
      // doomed packet still consumes budget; filters run after the gate;
      // TTL after the whole slow path; stamping last).
      if (config.faults_enabled) add(ElementOp::kFaultInject);
      if (config.base_loss > 0.0) add(ElementOp::kBaseLoss);
      if (options != 0) {
        if (config.options_extra_loss > 0.0) add(ElementOp::kSlowPathLoss);
        if (config.faults_enabled) add(ElementOp::kStormGate);
        if ((flags & HopRow::kRateLimited) != 0) add(ElementOp::kCoppGate);
        if ((flags & HopRow::kFiltersTransit) != 0) {
          add(ElementOp::kTransitFilter);
        } else if ((flags & HopRow::kFiltersEdge) != 0) {
          add(ElementOp::kEdgeFilter);
        }
      }
      const bool decrements = (flags & HopRow::kHidden) == 0;
      const bool stamps = options != 0 && (flags & HopRow::kStamps) != 0;
      if (decrements && stamps && !config.faults_enabled) {
        // Peephole fusion: the hottest personality (visible stamping
        // router, fault-free) collapses to one element with a single
        // combined checksum update. Deltas compose exactly, so the bytes
        // match the unfused pair (tests/element_test.cpp proves it).
        add(ElementOp::kTtlStampTrusted);
      } else {
        if (decrements) add(ElementOp::kTtl);
        if (stamps) {
          add(config.faults_enabled ? ElementOp::kStamp
                                    : ElementOp::kStampTrusted);
        }
      }
      table[(options != 0 ? HopRow::kNumPersonalities : 0) + flags] = list;
    }
  }
  return table;
}

CompiledPipeline CompiledPipeline::compile(const topo::Topology& topology,
                                           const Behaviors& behaviors,
                                           const FaultPlan* plan) {
  CompiledPipeline pipeline;
  const std::span<const topo::AsId> router_as = topology.router_as_ids();
  pipeline.rows_.reserve(router_as.size());
  for (topo::RouterId id = 0; id < router_as.size(); ++id) {
    HopRow row;
    row.as_id = router_as[id];
    row.flags = personality_flags(behaviors.router(id),
                                  behaviors.as_behavior(row.as_id));
    pipeline.rows_.push_back(row);
  }
  pipeline.elements_.fault.plan = plan;
  pipeline.elements_.storm.plan = plan;
  pipeline.elements_.stamp.plan = plan;
  const BehaviorParams& params = behaviors.params();
  pipeline.elements_.base_loss.probability = params.base_loss;
  pipeline.elements_.slow_loss.probability = params.options_extra_loss;
  pipeline.config_ = {plan != nullptr && plan->enabled(), params.base_loss,
                      params.options_extra_loss};
  pipeline.table_ = compile_run_table(pipeline.config_);
  // Freeze-time proof: the exact table the sim will run is sound for its
  // config (debug builds only — the tier-1 RroptVerify test and the CLI
  // cover release trains).
  assert(verify::run_table_sound(pipeline.table_, pipeline.config_) &&
         "compile: run table failed abstract-interpretation verification");
  return pipeline;
}

void CompiledPipeline::set_faults_enabled(bool enabled) {
  if (config_.faults_enabled == enabled) return;
  config_.faults_enabled = enabled;
  table_ = compile_run_table(config_);
  assert(verify::run_table_sound(table_, config_) &&
         "set_faults_enabled: recompiled run table failed verification");
}

}  // namespace rr::sim
