// Deterministic Internet generator.
//
// Builds a Topology from TopologyParams: AS-level structure (types, tiers,
// Gao-Rexford relationships, epoch-tagged peering), router-level expansion
// (cores, borders, access chains), the address plan, destination hosts (one
// per advertised prefix), vantage points and cloud providers.
//
// The same seed always yields the same Internet, byte for byte.
#pragma once

#include <memory>

#include "topology/params.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace rr::topo {

class Generator {
 public:
  explicit Generator(TopologyParams params) : params_(params) {}

  /// Generates the full topology. Call once.
  [[nodiscard]] std::shared_ptr<const Topology> generate();

 private:
  struct AllocState;

  void assign_types_and_tiers(Topology& topo, util::Rng& rng);
  void select_site_ases(Topology& topo, util::Rng& rng);
  void build_provider_links(Topology& topo, util::Rng& rng);
  void build_peering_links(Topology& topo, util::Rng& rng);
  void build_routers(Topology& topo, AllocState& alloc, util::Rng& rng);
  void build_destinations(Topology& topo, AllocState& alloc, util::Rng& rng);
  void place_vantage_points(Topology& topo, AllocState& alloc, util::Rng& rng);

  TopologyParams params_;

  // Site selections made early so that link construction can shape
  // connectivity around them (mega-colo peering, campus uplinks).
  std::vector<AsId> mega_colos_;
  std::vector<AsId> mlab_site_ases_;
  std::vector<AsId> plab_site_ases_;
};

/// Convenience: generate with default paper-scale parameters and a seed.
[[nodiscard]] std::shared_ptr<const Topology> generate_paper_topology(
    std::uint64_t seed = TopologyParams{}.seed);

/// Convenience: generate a small test topology.
[[nodiscard]] std::shared_ptr<const Topology> generate_test_topology(
    std::uint64_t seed = 7);

}  // namespace rr::topo
