// Deterministic Internet generator.
//
// Builds a Topology from TopologyParams: AS-level structure (types, tiers,
// Gao-Rexford relationships, epoch-tagged peering), router-level expansion
// (cores, borders, access chains), the address plan, destination hosts (one
// per advertised prefix), vantage points and cloud providers.
//
// The same seed always yields the same Internet, byte for byte — at any
// thread count. Generation is split into a serial *plan* pass, which makes
// every RNG draw, ID assignment and address allocation in one fixed order
// and records them as flat arrays, and a *materialize* pass that expands
// those records into the heavyweight per-entity structures (router
// interface sets, host alias sets, the address index) across a
// util::ThreadPool. Each worker owns a disjoint index range and the merged
// result is a pure function of the plan, so threads only change wall-clock
// time, never a byte of the output.
#pragma once

#include <memory>

#include "topology/params.h"
#include "topology/topology.h"
#include "util/rng.h"

namespace rr::util {
class ThreadPool;
}  // namespace rr::util

namespace rr::topo {

class Generator {
 public:
  explicit Generator(TopologyParams params) : params_(params) {}

  /// Generates the full topology. Call once. Builds into a mutable local
  /// Topology, freezes it (compile()), and hands out a const handle; debug
  /// builds assert that no mutation path runs after the freeze.
  [[nodiscard]] std::shared_ptr<const Topology> generate();

 private:
  struct AllocState;
  struct BuildPlan;

  void assign_types_and_tiers(Topology& topo, util::Rng& rng);
  void select_site_ases(Topology& topo, util::Rng& rng);
  void build_provider_links(Topology& topo, util::Rng& rng);
  void build_peering_links(Topology& topo, util::Rng& rng);
  void build_routers(Topology& topo, BuildPlan& plan, AllocState& alloc,
                     util::Rng& rng);
  void build_destinations(Topology& topo, BuildPlan& plan, AllocState& alloc,
                          util::Rng& rng);
  void place_vantage_points(Topology& topo, BuildPlan& plan,
                            AllocState& alloc, util::Rng& rng);

  /// Expands the plan's flat records into routers_, hosts_, the prefix
  /// trie and the address index. Parallel over disjoint index ranges;
  /// bit-identical at any thread count.
  void materialize(Topology& topo, BuildPlan& plan, util::ThreadPool& pool);

  TopologyParams params_;

  // Site selections made early so that link construction can shape
  // connectivity around them (mega-colo peering, campus uplinks).
  std::vector<AsId> mega_colos_;
  std::vector<AsId> mlab_site_ases_;
  std::vector<AsId> plab_site_ases_;
};

/// Convenience: generate with default paper-scale parameters and a seed.
[[nodiscard]] std::shared_ptr<const Topology> generate_paper_topology(
    std::uint64_t seed = TopologyParams{}.seed);

/// Convenience: generate a small test topology.
[[nodiscard]] std::shared_ptr<const Topology> generate_test_topology(
    std::uint64_t seed = 7);

}  // namespace rr::topo
