#include "topology/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "util/log.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rr::topo {

namespace {

/// Knuth's Poisson sampler; fine for the small means used here.
int poisson(util::Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  const double limit = std::exp(-mean);
  double product = rng.next_double();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= rng.next_double();
  }
  return count;
}

/// Shifted geometric with the requested mean >= 1: 1 + Geom.
int shifted_geometric(util::Rng& rng, double mean, int cap) {
  if (mean <= 1.0) return 1;
  const double extra_mean = mean - 1.0;
  const double continue_prob = extra_mean / (1.0 + extra_mean);
  int count = 1;
  while (count < cap && rng.chance(continue_prob)) ++count;
  return count;
}

std::size_t tier_index(AsTier tier) noexcept {
  return static_cast<std::size_t>(tier);
}

}  // namespace

/// Flat records accumulated by the serial plan pass. Every RNG draw, every
/// ID and every address is fixed here, in exactly the order the old
/// all-in-one builder produced them; materialize() then expands the records
/// into the heavyweight structures in parallel. Records, not structures,
/// because records append O(1) with no per-entity allocation — the plan
/// pass stays cheap enough that Amdahl leaves the expensive expansion to
/// the pool.
struct Generator::BuildPlan {
  struct RouterRec {
    AsId as = kNoAs;
    bool border = false;
  };
  struct HostRec {
    AsId as = kNoAs;
    RouterId access = kNoRouter;
    net::IPv4Address address;
    net::Prefix prefix;
    std::uint32_t alias_begin = 0;
    std::uint32_t alias_count = 0;
  };

  std::vector<RouterRec> routers;
  /// (router, address) in creation order; a router's first entry is its
  /// loopback. Routers gain interfaces at several distinct moments (core
  /// fan-out, then one interface per incident link), so the pairs are
  /// grouped per router by a stable counting sort in materialize().
  std::vector<std::pair<RouterId, net::IPv4Address>> interfaces;
  std::vector<HostRec> hosts;
  std::vector<net::IPv4Address> alias_arena;  // HostRec spans point here
  /// Prefix-trie inserts in legacy insertion order.
  std::vector<std::pair<net::Prefix, AsId>> prefixes;
  /// Address-index inserts in legacy insertion order.
  std::vector<std::pair<net::IPv4Address, AddressOwner>> owners;

  RouterId add_router(AsId as, bool border, net::IPv4Address loopback) {
    const RouterId id = static_cast<RouterId>(routers.size());
    routers.push_back({as, border});
    interfaces.emplace_back(id, loopback);
    owners.push_back({loopback, {AddressOwner::Kind::kRouter, id}});
    return id;
  }
  void add_interface(RouterId id, net::IPv4Address addr) {
    interfaces.emplace_back(id, addr);
    owners.push_back({addr, {AddressOwner::Kind::kRouter, id}});
  }
};

struct Generator::AllocState {
  std::uint32_t next_block = 0x10000000;  // 16.0.0.0, grows upward

  struct Chunk {
    std::uint32_t next = 0;
    std::uint32_t end = 0;
  };
  std::vector<Chunk> infra;  // per-AS current infrastructure /24 chunk
  BuildPlan* plan = nullptr;

  net::Prefix alloc_slash24() {
    const net::Prefix prefix{net::IPv4Address{next_block}, 24};
    next_block += 256;
    return prefix;
  }

  /// Next unique infrastructure address for an AS, pulling fresh /24
  /// chunks (recorded for the AS in the LPM trie) as needed.
  net::IPv4Address infra_addr(Topology& topo, AsId as) {
    Chunk& chunk = infra[as];
    if (chunk.next >= chunk.end) {
      const net::Prefix block = alloc_slash24();
      plan->prefixes.emplace_back(block, as);
      if (topo.ases_[as].infra_prefix.length() == 0) {
        topo.ases_[as].infra_prefix = block;
      }
      chunk.next = block.base().value() + 1;  // skip .0
      chunk.end = block.base().value() + 255;  // skip .255
    }
    return net::IPv4Address{chunk.next++};
  }
};

std::shared_ptr<const Topology> Generator::generate() {
  auto topo = std::make_shared<Topology>();
  util::Rng rng{params_.seed};
  AllocState alloc;
  BuildPlan plan;
  alloc.plan = &plan;

  // Serial plan: consumes the whole RNG stream in the fixed legacy order.
  assign_types_and_tiers(*topo, rng);
  select_site_ases(*topo, rng);
  alloc.infra.resize(topo->ases_.size());
  build_provider_links(*topo, rng);
  build_peering_links(*topo, rng);
  build_routers(*topo, plan, alloc, rng);
  build_destinations(*topo, plan, alloc, rng);
  place_vantage_points(*topo, plan, alloc, rng);

  // Parallel materialize + freeze. The thread count changes wall-clock
  // time only; every byte of the result is fixed by the plan.
  util::ThreadPool pool{util::resolve_thread_count(params_.threads)};
  materialize(*topo, plan, pool);
  topo->compile(pool);

  util::log_info() << "generated topology: " << topo->summary();
  return topo;
}

void Generator::materialize(Topology& topo, BuildPlan& plan,
                            util::ThreadPool& pool) {
  topo.assert_mutable();

  // Group interface addresses by router with a stable counting sort: the
  // per-router order equals plan order, which equals the order the legacy
  // builder pushed them (loopback first).
  const std::size_t n_routers = plan.routers.size();
  std::vector<std::uint32_t> iface_offset(n_routers + 1, 0);
  for (const auto& [rid, addr] : plan.interfaces) ++iface_offset[rid + 1];
  std::partial_sum(iface_offset.begin(), iface_offset.end(),
                   iface_offset.begin());
  std::vector<net::IPv4Address> iface_arena(plan.interfaces.size());
  {
    std::vector<std::uint32_t> cursor(iface_offset.begin(),
                                      iface_offset.end() - 1);
    for (const auto& [rid, addr] : plan.interfaces) {
      iface_arena[cursor[rid]++] = addr;
    }
  }

  // Expand entities across the pool in disjoint index blocks.
  constexpr std::size_t kBlock = 4096;
  topo.routers_.resize(n_routers);
  const std::size_t router_blocks = (n_routers + kBlock - 1) / kBlock;
  pool.parallel_for(router_blocks, [&](std::size_t b) {
    const std::size_t end = std::min(n_routers, (b + 1) * kBlock);
    for (std::size_t r = b * kBlock; r < end; ++r) {
      Router& out = topo.routers_[r];
      out.as_id = plan.routers[r].as;
      out.is_border = plan.routers[r].border;
      out.interfaces.assign(iface_arena.begin() + iface_offset[r],
                            iface_arena.begin() + iface_offset[r + 1]);
      out.loopback = out.interfaces.front();
    }
  });

  const std::size_t n_hosts = plan.hosts.size();
  topo.hosts_.resize(n_hosts);
  const std::size_t host_blocks = (n_hosts + kBlock - 1) / kBlock;
  pool.parallel_for(host_blocks, [&](std::size_t b) {
    const std::size_t end = std::min(n_hosts, (b + 1) * kBlock);
    for (std::size_t h = b * kBlock; h < end; ++h) {
      const BuildPlan::HostRec& rec = plan.hosts[h];
      Host& out = topo.hosts_[h];
      out.as_id = rec.as;
      out.access_router = rec.access;
      out.address = rec.address;
      out.prefix = rec.prefix;
      out.aliases.assign(
          plan.alias_arena.begin() + rec.alias_begin,
          plan.alias_arena.begin() + rec.alias_begin + rec.alias_count);
    }
  });

  // The prefix trie is one pooled structure; replaying the records in plan
  // order keeps even its node layout identical to the legacy interleaved
  // build. The address index build is internally sharded and parallel.
  for (const auto& [prefix, as] : plan.prefixes) {
    topo.address_to_as_.insert(prefix, as);
  }
  topo.address_index_.build(plan.owners, pool);
}

void Generator::assign_types_and_tiers(Topology& topo, util::Rng& rng) {
  const int n = params_.num_ases;
  std::vector<AsType> types;
  types.reserve(static_cast<std::size_t>(n));
  // Deterministic per-type counts from the fractions; remainder -> unknown.
  int assigned = 0;
  for (int t = 0; t < kNumAsTypes - 1; ++t) {
    const int count = static_cast<int>(
        std::lround(params_.type_fraction[static_cast<std::size_t>(t)] * n));
    for (int i = 0; i < count && assigned < n; ++i, ++assigned) {
      types.push_back(static_cast<AsType>(t));
    }
  }
  while (assigned < n) {
    types.push_back(AsType::kUnknown);
    ++assigned;
  }
  rng.shuffle(types);

  topo.ases_.resize(static_cast<std::size_t>(n));
  std::vector<AsId> transit_ases;
  for (int i = 0; i < n; ++i) {
    AsInfo& as = topo.ases_[static_cast<std::size_t>(i)];
    as.asn = static_cast<std::uint32_t>(i + 1);
    as.type = types[static_cast<std::size_t>(i)];
    if (as.type == AsType::kTransitAccess) {
      transit_ases.push_back(static_cast<AsId>(i));
    }
  }

  // Hierarchy within the transit ASes: tier-1 core, large transits,
  // regional transits (a quarter of which sit one level deeper).
  rng.shuffle(transit_ases);
  const std::size_t n_tier1 = std::min<std::size_t>(
      static_cast<std::size_t>(params_.num_tier1), transit_ases.size());
  const std::size_t n_large = std::min<std::size_t>(
      static_cast<std::size_t>(
          std::lround(params_.large_transit_fraction *
                      static_cast<double>(transit_ases.size()))) +
          1,
      transit_ases.size() - n_tier1);
  for (std::size_t i = 0; i < transit_ases.size(); ++i) {
    AsInfo& as = topo.ases_[transit_ases[i]];
    if (i < n_tier1) {
      as.tier = AsTier::kTier1;
      as.depth = 1;
    } else if (i < n_tier1 + n_large) {
      as.tier = AsTier::kLargeTransit;
      as.depth = 2;
    } else {
      as.tier = AsTier::kRegionalTransit;
      // Regional transit comes in layers: metro fabrics at the colos
      // (depth 3), in-country regionals (4), and remote/rural chains (5).
      const double roll = rng.next_double();
      as.depth = roll < 0.45 ? 3 : (roll < 0.78 ? 4 : 5);
    }
  }

  // Everything non-transit is a stub; depth is set once providers are known.
  for (auto& as : topo.ases_) {
    if (as.type != AsType::kTransitAccess) {
      as.tier = AsTier::kStub;
      as.depth = 5;
    }
    const auto t = tier_index(as.tier);
    const int lo = params_.internal_hops_min[t];
    const int hi = params_.internal_hops_max[t];
    as.internal_hops =
        static_cast<std::uint8_t>(rng.next_in(lo, hi));
  }

  // Colo/IXP presence: a slice of the shallow regional transits.
  for (AsId id : transit_ases) {
    AsInfo& as = topo.ases_[id];
    if (as.tier == AsTier::kRegionalTransit && as.depth == 3 &&
        rng.chance(params_.colo_fraction /
                   (0.75 /* fraction of regionals at depth 3 */))) {
      as.colo_presence = true;
    }
    if (as.tier == AsTier::kLargeTransit && rng.chance(0.35)) {
      as.colo_presence = true;
    }
    // Colo fabrics are a single switching stage: crossing them costs no
    // extra core hops. Deep regional chains run real backbones.
    if (as.colo_presence) as.internal_hops = 0;
    if (as.tier == AsTier::kRegionalTransit && as.depth >= 4) {
      as.internal_hops = static_cast<std::uint8_t>(rng.next_in(1, 2));
    }
  }

  // Cloud providers: flat, content-heavy networks at depth 2.
  int clouds_needed = params_.num_cloud_providers;
  for (auto& as : topo.ases_) {
    if (clouds_needed == 0) break;
    if (as.type == AsType::kContent && as.tier == AsTier::kStub) {
      as.cloud = true;
      as.tier = AsTier::kLargeTransit;  // backbone build-out
      as.depth = 2;
      as.internal_hops = 1;
      --clouds_needed;
    }
  }
}

void Generator::select_site_ases(Topology& topo, util::Rng& rng) {
  std::vector<AsId> colos, regionals, enterprise_stubs;
  for (AsId id = 0; id < topo.ases_.size(); ++id) {
    const AsInfo& as = topo.ases_[id];
    if (as.cloud) continue;
    if (as.colo_presence) colos.push_back(id);
    if (as.tier == AsTier::kRegionalTransit && !as.colo_presence) {
      regionals.push_back(id);
    }
    if (as.tier == AsTier::kStub && as.type == AsType::kEnterprise) {
      enterprise_stubs.push_back(id);
    }
  }
  rng.shuffle(colos);
  rng.shuffle(regionals);
  rng.shuffle(enterprise_stubs);

  const std::size_t mega = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(params_.mega_colo_count, 0)),
      colos.size());
  mega_colos_.assign(colos.begin(), colos.begin() + mega);

  // M-Lab pool: hubs first, then ordinary colos, then regionals.
  std::vector<AsId> mlab_pool = colos;
  mlab_pool.insert(mlab_pool.end(), regionals.begin(), regionals.end());
  const std::size_t mlab_needed = static_cast<std::size_t>(
      params_.mlab_sites_2016 +
      std::max(0, params_.mlab_sites_2011 - params_.mlab_common_sites));
  mlab_site_ases_.assign(
      mlab_pool.begin(),
      mlab_pool.begin() + std::min(mlab_needed, mlab_pool.size()));

  const std::size_t plab_needed = static_cast<std::size_t>(
      params_.planetlab_sites_2016 +
      std::max(0, params_.planetlab_sites_2011 -
                      params_.planetlab_common_sites) +
      1 /* the plain-ping probe host */);
  plab_site_ases_.assign(
      enterprise_stubs.begin(),
      enterprise_stubs.begin() +
          std::min(plab_needed, enterprise_stubs.size()));
}

void Generator::build_provider_links(Topology& topo, util::Rng& rng) {
  std::vector<AsId> tier1, large, regional_shallow, regional_deep;
  for (AsId id = 0; id < topo.ases_.size(); ++id) {
    const AsInfo& as = topo.ases_[id];
    if (as.cloud) continue;  // clouds handled explicitly below
    switch (as.tier) {
      case AsTier::kTier1: tier1.push_back(id); break;
      case AsTier::kLargeTransit: large.push_back(id); break;
      case AsTier::kRegionalTransit:
        (as.depth == 3 ? regional_shallow : regional_deep).push_back(id);
        break;
      case AsTier::kStub: break;
    }
  }

  auto add_c2p = [&](AsId customer, AsId provider, bool in_2011 = true) {
    const auto key = Topology::pair_key(customer, provider);
    if (topo.link_by_pair_.contains(key)) return;
    AsLink link;
    link.a = customer;
    link.b = provider;
    link.kind = LinkKind::kCustomerProvider;
    link.exists_in_2011 = in_2011;  // most of the hierarchy is long-lived
    const LinkId id = static_cast<LinkId>(topo.links_.size());
    topo.links_.push_back(link);
    topo.link_by_pair_.emplace(key, id);
    topo.ases_[customer].links.push_back(id);
    topo.ases_[provider].links.push_back(id);
  };

  auto pick_providers = [&](AsId customer, const std::vector<AsId>& pool,
                            int count) {
    if (pool.empty()) return;
    for (int i = 0; i < count; ++i) {
      const AsId provider = rng.pick(pool);
      if (provider != customer) add_c2p(customer, provider);
    }
  };

  const auto provider_count = [&](util::Rng& r) {
    return 1 + r.next_geometric(params_.extra_provider_prob,
                                params_.max_providers - 1);
  };

  for (AsId id : large) pick_providers(id, tier1, provider_count(rng));
  for (AsId id : regional_shallow) {
    // Shallow regionals buy mostly from large transits, sometimes tier-1.
    const int count = provider_count(rng);
    for (int i = 0; i < count; ++i) {
      const auto& pool = (rng.chance(0.75) && !large.empty()) ? large : tier1;
      if (!pool.empty()) add_c2p(id, rng.pick(pool));
    }
  }
  for (AsId id : regional_deep) {
    // Depth-4 regionals buy from the metro fabric; depth-5 chains hang off
    // depth-4s (keeping the provider graph acyclic by construction).
    std::vector<AsId> pool;
    if (topo.ases_[id].depth == 4) {
      pool = regional_shallow.empty() ? large : regional_shallow;
    } else {
      for (AsId candidate : regional_deep) {
        if (topo.ases_[candidate].depth == 4) pool.push_back(candidate);
      }
      if (pool.empty()) pool = regional_shallow.empty() ? large
                                                        : regional_shallow;
    }
    pick_providers(id, pool, provider_count(rng));
  }

  std::vector<AsId> colo_ases;
  for (AsId id = 0; id < topo.ases_.size(); ++id) {
    if (topo.ases_[id].colo_presence) colo_ases.push_back(id);
  }
  const std::unordered_set<AsId> plab_set(plab_site_ases_.begin(),
                                          plab_site_ases_.end());

  // Stubs attach below the transit hierarchy.
  for (AsId id = 0; id < topo.ases_.size(); ++id) {
    AsInfo& as = topo.ases_[id];
    if (as.tier != AsTier::kStub || as.cloud) continue;
    const int count = provider_count(rng);
    std::uint8_t min_provider_depth = 255;
    // PlanetLab campuses: by 2016 their R&E fabrics land at the colos
    // (half of them at the big hubs), but that interconnection is part of
    // the flattening — in 2011 the same campuses sat behind deep regional
    // chains.
    if (plab_set.contains(id)) {
      if (!colo_ases.empty() &&
          rng.chance(params_.plab_colo_provider_prob)) {
        const AsId provider = (!mega_colos_.empty() && rng.chance(0.8))
                                  ? rng.pick(mega_colos_)
                                  : rng.pick(colo_ases);
        add_c2p(id, provider, /*in_2011=*/false);
        min_provider_depth = topo.ases_[provider].depth;
      }
      const auto& pool_2011 =
          !regional_deep.empty() ? regional_deep
          : (!regional_shallow.empty() ? regional_shallow : large);
      if (!pool_2011.empty()) {
        const AsId provider = rng.pick(pool_2011);
        add_c2p(id, provider, /*in_2011=*/true);
        min_provider_depth =
            std::min(min_provider_depth, topo.ases_[provider].depth);
      }
      as.depth = static_cast<std::uint8_t>(min_provider_depth + 1);
      continue;  // no further random providers for campuses
    }
    for (int i = 0; i < count; ++i) {
      const double roll = rng.next_double();
      const std::vector<AsId>* pool = nullptr;
      if (roll < 0.40 && !regional_shallow.empty()) {
        pool = &regional_shallow;
      } else if (roll < 0.75 && !regional_deep.empty()) {
        pool = &regional_deep;
      } else if (!large.empty()) {
        pool = &large;
      } else {
        pool = &tier1;
      }
      if (pool->empty()) continue;
      const AsId provider = rng.pick(*pool);
      add_c2p(id, provider);
      min_provider_depth =
          std::min(min_provider_depth, topo.ases_[provider].depth);
    }
    if (min_provider_depth == 255 && !tier1.empty()) {
      const AsId provider = rng.pick(tier1);
      add_c2p(id, provider);
      min_provider_depth = topo.ases_[provider].depth;
    }
    as.depth = static_cast<std::uint8_t>(min_provider_depth + 1);
  }

  // Clouds multihome to tier-1s.
  for (AsId id = 0; id < topo.ases_.size(); ++id) {
    if (!topo.ases_[id].cloud) continue;
    pick_providers(id, tier1, 2);
  }
}

void Generator::build_peering_links(Topology& topo, util::Rng& rng) {
  std::vector<AsId> tier1, large, regional, colo, transit_all;
  for (AsId id = 0; id < topo.ases_.size(); ++id) {
    const AsInfo& as = topo.ases_[id];
    if (as.tier == AsTier::kTier1) tier1.push_back(id);
    if (as.tier == AsTier::kLargeTransit && !as.cloud) large.push_back(id);
    if (as.tier == AsTier::kRegionalTransit) regional.push_back(id);
    if (as.colo_presence) colo.push_back(id);
    if (!as.cloud && (as.tier == AsTier::kLargeTransit ||
                      as.tier == AsTier::kRegionalTransit ||
                      as.tier == AsTier::kTier1)) {
      transit_all.push_back(id);
    }
  }

  auto add_peer = [&](AsId a, AsId b, bool in_2011) {
    if (a == b) return;
    const auto key = Topology::pair_key(a, b);
    if (topo.link_by_pair_.contains(key)) return;
    AsLink link;
    link.a = a;
    link.b = b;
    link.kind = LinkKind::kPeerPeer;
    link.exists_in_2011 = in_2011;
    const LinkId id = static_cast<LinkId>(topo.links_.size());
    topo.links_.push_back(link);
    topo.link_by_pair_.emplace(key, id);
    topo.ases_[a].links.push_back(id);
    topo.ases_[b].links.push_back(id);
  };

  // Tier-1 clique (stable across epochs).
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1.size(); ++j) {
      add_peer(tier1[i], tier1[j], /*in_2011=*/true);
    }
  }

  const auto thinned = [&](double mean2011, double mean2016) {
    return mean2016 > 0.0 && rng.chance(mean2011 / mean2016);
  };

  // Large transits peer among themselves.
  for (AsId id : large) {
    const int count = poisson(rng, params_.peers_large_transit_2016 / 2.0);
    for (int i = 0; i < count; ++i) {
      add_peer(id, rng.pick(large),
               thinned(params_.peers_large_transit_2011,
                       params_.peers_large_transit_2016));
    }
  }

  // Regional transits peer regionally and upward.
  for (AsId id : regional) {
    const int count = poisson(rng, params_.peers_regional_2016 / 2.0);
    for (int i = 0; i < count; ++i) {
      const auto& pool =
          (rng.chance(0.7) || large.empty()) ? regional : large;
      if (pool.empty()) continue;
      add_peer(id, rng.pick(pool),
               thinned(params_.peers_regional_2011,
                       params_.peers_regional_2016));
    }
  }

  // Content stubs peer into the transit fabric (the "flattening").
  for (AsId id = 0; id < topo.ases_.size(); ++id) {
    const AsInfo& as = topo.ases_[id];
    if (as.type != AsType::kContent || as.tier != AsTier::kStub) continue;
    const int count = poisson(rng, params_.peers_content_2016);
    for (int i = 0; i < count; ++i) {
      const double roll = rng.next_double();
      const std::vector<AsId>* pool = &regional;
      if (roll < 0.5 && !colo.empty()) {
        pool = &colo;
      } else if (roll < 0.7 && !large.empty()) {
        pool = &large;
      }
      if (pool->empty()) continue;
      add_peer(id, rng.pick(*pool),
               thinned(params_.peers_content_2011,
                       params_.peers_content_2016));
    }
  }

  // Colo-present ASes pick up extra IXP peers (2016 only).
  for (AsId id : colo) {
    const int count = poisson(rng, params_.colo_extra_peers_2016);
    for (int i = 0; i < count; ++i) {
      const auto& pool = (rng.chance(0.5) && colo.size() > 1) ? colo : regional;
      if (pool.empty()) continue;
      add_peer(id, rng.pick(pool), /*in_2011=*/false);
    }
  }

  // Mega colos (interconnection hubs) peer with most of the regional
  // fabric and with every large transit by 2016.
  for (AsId id : mega_colos_) {
    for (AsId partner : large) {
      add_peer(id, partner, /*in_2011=*/rng.chance(0.08));
    }
    for (AsId partner : regional) {
      if (topo.ases_[partner].depth != 3) continue;  // hubs meet the fabric
      if (!rng.chance(params_.mega_colo_regional_peer_fraction_2016)) {
        continue;
      }
      const bool in_2011 =
          rng.chance(params_.mega_colo_regional_peer_fraction_2011 /
                     std::max(params_.mega_colo_regional_peer_fraction_2016,
                              1e-9));
      add_peer(id, partner, in_2011);
    }
    for (AsId partner : colo) add_peer(id, partner, /*in_2011=*/false);
  }

  // Clouds peer very broadly by 2016; the breadth differs per provider
  // (Google's footprint in the paper dwarfs EC2's and Softlayer's).
  std::size_t cloud_index = 0;
  for (AsId id = 0; id < topo.ases_.size(); ++id) {
    if (!topo.ases_[id].cloud) continue;
    const double fraction =
        params_.cloud_peer_fraction_2016[std::min<std::size_t>(
            cloud_index, params_.cloud_peer_fraction_2016.size() - 1)];
    ++cloud_index;
    for (AsId partner : transit_all) {
      if (!rng.chance(fraction)) continue;
      const bool in_2011 = rng.chance(params_.cloud_peer_fraction_2011 /
                                      std::max(fraction, 1e-9));
      add_peer(id, partner, in_2011);
    }
  }
}

void Generator::build_routers(Topology& topo, BuildPlan& plan,
                              AllocState& alloc, util::Rng& rng) {
  (void)rng;
  topo.assert_mutable();
  auto new_router = [&](AsId as, bool border) {
    const RouterId id =
        plan.add_router(as, border, alloc.infra_addr(topo, as));
    topo.ases_[as].routers.push_back(id);
    return id;
  };

  auto add_interface = [&](RouterId id) {
    const net::IPv4Address addr =
        alloc.infra_addr(topo, plan.routers[id].as);
    plan.add_interface(id, addr);
    return addr;
  };

  // Core routers.
  for (AsId as = 0; as < topo.ases_.size(); ++as) {
    const int cores = params_.core_routers[tier_index(topo.ases_[as].tier)];
    for (int i = 0; i < cores; ++i) {
      const RouterId id = new_router(as, /*border=*/false);
      topo.ases_[as].core.push_back(id);
      for (int k = 0; k < params_.core_interfaces; ++k) add_interface(id);
    }
  }

  // Border routers: stubs reuse their single core router; transit ASes
  // terminate each inter-AS link on its own border router, so crossing a
  // transit AS always enters and leaves through distinct devices (as real
  // backbone POPs do).
  auto border_for = [&](AsId as) -> RouterId {
    AsInfo& info = topo.ases_[as];
    if (info.tier == AsTier::kStub) {
      const RouterId id = info.core.front();
      plan.routers[id].border = true;
      return id;
    }
    return new_router(as, /*border=*/true);
  };

  for (LinkId link_id = 0; link_id < topo.links_.size(); ++link_id) {
    AsLink& link = topo.links_[link_id];
    link.router_a = border_for(link.a);
    link.router_b = border_for(link.b);
    link.addr_a = add_interface(link.router_a);
    link.addr_b = add_interface(link.router_b);
  }
}

void Generator::build_destinations(Topology& topo, BuildPlan& plan,
                                   AllocState& alloc, util::Rng& rng) {
  topo.assert_mutable();
  auto new_chain_router = [&](AsId as) {
    const RouterId id =
        plan.add_router(as, /*border=*/false, alloc.infra_addr(topo, as));
    topo.ases_[as].routers.push_back(id);
    // One downstream-facing interface besides the loopback.
    plan.add_interface(id, alloc.infra_addr(topo, as));
    return id;
  };

  // Per-AS open access router (chains are shared by up to 32 prefixes).
  struct AccessSlot {
    RouterId access = kNoRouter;
    int served = 0;
  };
  std::vector<AccessSlot> open_access(topo.ases_.size());

  auto access_router_for = [&](AsId as) -> RouterId {
    AccessSlot& slot = open_access[as];
    if (slot.access != kNoRouter && slot.served < 32) {
      ++slot.served;
      return slot.access;
    }
    // Build a fresh chain: core -> aggregation* -> access.
    const AsInfo& info = topo.ases_[as];
    std::vector<RouterId> chain;
    chain.push_back(
        info.core[rng.next_below(info.core.size())]);
    // Metro/last-mile aggregation depth is strongly bimodal in practice:
    // many prefixes terminate right at the core POP, while consumer
    // access networks hang several aggregation stages below it.
    // Consumer access networks (transit/access ASes) run deeper
    // aggregation trees than enterprise or content stubs.
    static const std::vector<double> kAccessWeights{0.30, 0.25, 0.22, 0.14,
                                                    0.09};
    static const std::vector<double> kStubWeights{0.50, 0.30, 0.14, 0.06};
    const bool consumer = info.type == AsType::kTransitAccess;
    const int extra = static_cast<int>(
        rng.pick_weighted(consumer ? kAccessWeights : kStubWeights));
    for (int i = 0; i < extra; ++i) chain.push_back(new_chain_router(as));
    const RouterId access = new_chain_router(as);
    chain.push_back(access);
    topo.access_chain_.emplace(access, std::move(chain));
    slot.access = access;
    slot.served = 1;
    return access;
  };

  for (AsId as = 0; as < topo.ases_.size(); ++as) {
    AsInfo& info = topo.ases_[as];
    const double mean =
        params_.prefixes_per_as[static_cast<std::size_t>(info.type)];
    const int count =
        shifted_geometric(rng, mean, params_.max_prefixes_per_as);
    for (int i = 0; i < count; ++i) {
      const net::Prefix block = alloc.alloc_slash24();
      plan.prefixes.emplace_back(block, as);

      BuildPlan::HostRec host;
      host.as = as;
      host.access = access_router_for(as);
      host.address = block.address_at(1);
      host.prefix = block;
      host.alias_begin = static_cast<std::uint32_t>(plan.alias_arena.size());
      if (rng.chance(params_.host_alias_fraction)) {
        const int aliases = static_cast<int>(
            rng.next_in(1, params_.max_host_aliases));
        for (int k = 0; k < aliases; ++k) {
          plan.alias_arena.push_back(
              block.address_at(2 + static_cast<std::uint64_t>(k)));
        }
        host.alias_count = static_cast<std::uint32_t>(aliases);
      }

      const HostId host_id = static_cast<HostId>(plan.hosts.size());
      plan.hosts.push_back(host);
      info.hosts.push_back(host_id);
      topo.destinations_.push_back(host_id);
      plan.owners.push_back(
          {host.address, {AddressOwner::Kind::kHost, host_id}});
      for (std::uint32_t k = 0; k < host.alias_count; ++k) {
        plan.owners.push_back({plan.alias_arena[host.alias_begin + k],
                               {AddressOwner::Kind::kHost, host_id}});
      }
    }
  }
}

void Generator::place_vantage_points(Topology& topo, BuildPlan& plan,
                                     AllocState& alloc, util::Rng& rng) {
  topo.assert_mutable();
  // Attach a VP host to its hosting AS. `campus_depth` is the number of
  // extra routers between the AS core and the machine: M-Lab servers sit
  // in colo racks practically on the transit fabric (0); PlanetLab nodes
  // live deep inside university networks (2).
  auto make_vp_host = [&](AsId as, int campus_depth) -> HostId {
    const AsInfo& info = topo.ases_[as];
    const RouterId core = info.core[rng.next_below(info.core.size())];

    auto new_router = [&](AsId owner_as) {
      const RouterId id = plan.add_router(owner_as, /*border=*/false,
                                          alloc.infra_addr(topo, owner_as));
      topo.ases_[owner_as].routers.push_back(id);
      return id;
    };

    std::vector<RouterId> chain{core};
    for (int i = 0; i < campus_depth; ++i) chain.push_back(new_router(as));
    const RouterId access = chain.back();
    if (!topo.access_chain_.contains(access)) {
      topo.access_chain_.emplace(access, chain);
    }

    BuildPlan::HostRec host;
    host.as = as;
    host.access = access;
    host.address = alloc.infra_addr(topo, as);
    host.prefix = topo.ases_[as].infra_prefix;
    host.alias_begin = static_cast<std::uint32_t>(plan.alias_arena.size());
    const HostId host_id = static_cast<HostId>(plan.hosts.size());
    plan.hosts.push_back(host);
    plan.owners.push_back(
        {host.address, {AddressOwner::Kind::kHost, host_id}});
    return host_id;
  };

  // Site ASes were chosen before link construction (so connectivity could
  // be shaped around them); hand them out in order. The M-Lab list leads
  // with the mega-colo hubs.
  std::vector<AsId> cloud_ases;
  for (AsId id = 0; id < topo.ases_.size(); ++id) {
    if (topo.ases_[id].cloud) cloud_ases.push_back(id);
  }
  std::vector<AsId> mlab_pool(mlab_site_ases_.rbegin(),
                              mlab_site_ases_.rend());
  std::vector<AsId> plab_pool(plab_site_ases_.rbegin(),
                              plab_site_ases_.rend());

  auto take = [](std::vector<AsId>& pool, std::size_t count) {
    std::vector<AsId> out;
    while (out.size() < count && !pool.empty()) {
      out.push_back(pool.back());
      pool.pop_back();
    }
    return out;
  };

  char name[32];
  // M-Lab: 2016 sites first (the leading `common` ones also exist in 2011),
  // then 2011-only sites.
  const auto mlab_2016 = take(
      mlab_pool, static_cast<std::size_t>(params_.mlab_sites_2016));
  for (std::size_t i = 0; i < mlab_2016.size(); ++i) {
    VantagePoint vp;
    vp.host = make_vp_host(mlab_2016[i], /*campus_depth=*/0);
    vp.platform = Platform::kMLab;
    std::snprintf(name, sizeof(name), "mlab-%03zu", i + 1);
    vp.site = name;
    vp.exists_in_2016 = true;
    vp.exists_in_2011 =
        i < static_cast<std::size_t>(params_.mlab_common_sites);
    topo.vantage_points_.push_back(std::move(vp));
  }
  const std::size_t mlab_2011_only = static_cast<std::size_t>(
      std::max(0, params_.mlab_sites_2011 - params_.mlab_common_sites));
  const auto mlab_old = take(mlab_pool, mlab_2011_only);
  for (std::size_t i = 0; i < mlab_old.size(); ++i) {
    VantagePoint vp;
    vp.host = make_vp_host(mlab_old[i], /*campus_depth=*/0);
    vp.platform = Platform::kMLab;
    std::snprintf(name, sizeof(name), "mlab-old-%03zu", i + 1);
    vp.site = name;
    vp.exists_in_2016 = false;
    vp.exists_in_2011 = true;
    topo.vantage_points_.push_back(std::move(vp));
  }

  // PlanetLab, same pattern.
  const auto plab_2016 = take(
      plab_pool, static_cast<std::size_t>(params_.planetlab_sites_2016));
  for (std::size_t i = 0; i < plab_2016.size(); ++i) {
    VantagePoint vp;
    const int depth_roll = static_cast<int>(rng.next_below(5));
    vp.host = make_vp_host(plab_2016[i],
                           /*campus_depth=*/depth_roll < 2 ? 0
                                            : depth_roll < 4 ? 1 : 2);
    vp.platform = Platform::kPlanetLab;
    std::snprintf(name, sizeof(name), "plab-%03zu", i + 1);
    vp.site = name;
    vp.exists_in_2016 = true;
    vp.exists_in_2011 =
        i < static_cast<std::size_t>(params_.planetlab_common_sites);
    topo.vantage_points_.push_back(std::move(vp));
  }
  const std::size_t plab_2011_only = static_cast<std::size_t>(std::max(
      0, params_.planetlab_sites_2011 - params_.planetlab_common_sites));
  const auto plab_old = take(plab_pool, plab_2011_only);
  for (std::size_t i = 0; i < plab_old.size(); ++i) {
    VantagePoint vp;
    const int depth_roll = static_cast<int>(rng.next_below(5));
    vp.host = make_vp_host(plab_old[i],
                           /*campus_depth=*/depth_roll < 2 ? 0
                                            : depth_roll < 4 ? 1 : 2);
    vp.platform = Platform::kPlanetLab;
    std::snprintf(name, sizeof(name), "plab-old-%03zu", i + 1);
    vp.site = name;
    vp.exists_in_2016 = false;
    vp.exists_in_2011 = true;
    topo.vantage_points_.push_back(std::move(vp));
  }

  // The single probe host used for the plain-ping study (USC-like).
  if (!plab_pool.empty()) {
    topo.probe_host_ = make_vp_host(plab_pool.back(), /*campus_depth=*/1);
  } else if (!topo.vantage_points_.empty()) {
    topo.probe_host_ = topo.vantage_points_.front().host;
  }

  // Cloud providers.
  static constexpr const char* kCloudNames[] = {"gce", "ec2", "softlayer"};
  for (std::size_t i = 0; i < cloud_ases.size(); ++i) {
    CloudProvider cloud;
    cloud.name = i < 3 ? kCloudNames[i] : ("cloud-" + std::to_string(i));
    cloud.as_id = cloud_ases[i];
    cloud.probe_host = make_vp_host(cloud_ases[i], /*campus_depth=*/0);
    topo.clouds_.push_back(std::move(cloud));
  }
}

std::shared_ptr<const Topology> generate_paper_topology(std::uint64_t seed) {
  TopologyParams params = TopologyParams::paper_scale();
  params.seed = seed;
  return Generator{params}.generate();
}

std::shared_ptr<const Topology> generate_test_topology(std::uint64_t seed) {
  TopologyParams params = TopologyParams::test_scale();
  params.seed = seed;
  return Generator{params}.generate();
}

}  // namespace rr::topo
