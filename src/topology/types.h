// Core entity types for the simulated Internet: autonomous systems,
// routers, hosts (probe-able destinations), inter-AS links, vantage points
// and cloud providers.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "netbase/address.h"
#include "netbase/prefix.h"

namespace rr::topo {

using AsId = std::uint32_t;      // dense index into Topology::ases()
using RouterId = std::uint32_t;  // dense index into Topology::routers()
using HostId = std::uint32_t;    // dense index into Topology::hosts()
using LinkId = std::uint32_t;    // dense index into Topology::links()

inline constexpr AsId kNoAs = std::numeric_limits<AsId>::max();
inline constexpr RouterId kNoRouter = std::numeric_limits<RouterId>::max();
inline constexpr HostId kNoHost = std::numeric_limits<HostId>::max();
inline constexpr LinkId kNoLink = std::numeric_limits<LinkId>::max();

/// CAIDA-style AS classification, the breakdown used by Table 1.
enum class AsType : std::uint8_t {
  kTransitAccess = 0,
  kEnterprise = 1,
  kContent = 2,
  kUnknown = 3,
};
inline constexpr int kNumAsTypes = 4;

[[nodiscard]] const char* to_string(AsType type) noexcept;

/// Position in the provider hierarchy. Tier-1s form a peering clique at the
/// top; larger depth = further from the core.
enum class AsTier : std::uint8_t {
  kTier1 = 0,
  kLargeTransit = 1,
  kRegionalTransit = 2,
  kStub = 3,
};

/// Measurement epochs compared by Figure 2.
enum class Epoch : std::uint8_t { k2011 = 0, k2016 = 1 };

/// Business relationship of an inter-AS link (Gao-Rexford model).
enum class LinkKind : std::uint8_t {
  kCustomerProvider = 0,  // `a` is the customer of `b`
  kPeerPeer = 1,
};

struct AsInfo {
  std::uint32_t asn = 0;  // display AS number
  AsType type = AsType::kUnknown;
  AsTier tier = AsTier::kStub;
  std::uint8_t depth = 0;       // hierarchy depth (tier1 == 1)
  bool colo_presence = false;   // well-peered colo/IXP presence (M-Lab-like)
  bool cloud = false;           // hyperscale cloud/content provider
  std::uint8_t internal_hops = 1;  // typical extra router hops across the AS

  std::vector<LinkId> links;        // all incident inter-AS links
  std::vector<RouterId> routers;    // all routers owned by this AS
  std::vector<RouterId> core;       // backbone routers used for transit
  std::vector<HostId> hosts;        // destination hosts in this AS
  net::Prefix infra_prefix;         // block for router interfaces
};

struct AsLink {
  AsId a = kNoAs;
  AsId b = kNoAs;
  LinkKind kind = LinkKind::kCustomerProvider;
  bool exists_in_2011 = true;   // peering links may be 2016-only
  RouterId router_a = kNoRouter;
  RouterId router_b = kNoRouter;
  net::IPv4Address addr_a;      // router_a's interface on this link
  net::IPv4Address addr_b;      // router_b's interface on this link

  [[nodiscard]] AsId other(AsId self) const noexcept {
    return self == a ? b : a;
  }
  [[nodiscard]] bool exists_in(Epoch epoch) const noexcept {
    return epoch == Epoch::k2016 || exists_in_2011;
  }
};

struct Router {
  AsId as_id = kNoAs;
  net::IPv4Address loopback;
  /// Every address owned by this device (loopback + link/core interfaces).
  /// These form the ground-truth alias set that MIDAR-style resolution
  /// tries to rediscover.
  std::vector<net::IPv4Address> interfaces;
  bool is_border = false;
};

/// A probe-able end host: one per advertised destination prefix, plus the
/// hosts that vantage points run on.
struct Host {
  AsId as_id = kNoAs;
  RouterId access_router = kNoRouter;
  net::IPv4Address address;
  net::Prefix prefix;  // the advertised BGP prefix this host represents
  /// Extra addresses owned by the same destination device (CPE boxes are
  /// often multi-addressed). When non-empty the device may stamp one of
  /// these instead of `address` — the alias false-negative of §3.3.
  std::vector<net::IPv4Address> aliases;
};

enum class Platform : std::uint8_t {
  kPlanetLab = 0,
  kMLab = 1,
  kProbeHost = 2,  // the single USC-like machine used for plain pings
  kCloud = 3,
};

[[nodiscard]] const char* to_string(Platform platform) noexcept;

struct VantagePoint {
  HostId host = kNoHost;
  Platform platform = Platform::kPlanetLab;
  std::string site;        // e.g. "mlab-nyc01"
  bool exists_in_2011 = false;
  bool exists_in_2016 = true;
};

struct CloudProvider {
  std::string name;        // e.g. "gce"
  AsId as_id = kNoAs;
  HostId probe_host = kNoHost;  // host inside the provider used to traceroute
};

}  // namespace rr::topo
