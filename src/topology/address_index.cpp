#include "topology/address_index.h"

#include <cassert>
#include <cmath>

#include "util/thread_pool.h"

namespace rr::topo {

std::uint32_t AddressIndex::pack(AddressOwner owner) noexcept {
  assert(owner.id < kHostBit);
  return owner.id |
         (owner.kind == AddressOwner::Kind::kHost ? kHostBit : 0u);
}

void AddressIndex::insert_into_shard(std::size_t shard, std::uint32_t key,
                                     std::uint32_t packed) noexcept {
  const std::size_t base = shard << shard_bits_;
  for (std::size_t i = util::mix64(key) & shard_mask_;;
       i = (i + 1) & shard_mask_) {
    Slot& slot = slots_[base + i];
    if (slot.key == key) {
      slot.owner = packed;
      return;
    }
    if (slot.key == 0) {
      slot = {key, packed};
      ++shard_sizes_[shard];
      return;
    }
  }
}

void AddressIndex::insert(net::IPv4Address addr, AddressOwner owner) {
  const std::uint32_t key = addr.value();
  if (key == 0) {
    zero_owner_ = owner;
    return;
  }
  const std::size_t shard = shard_of(util::mix64(key));
  // Grow at ~0.75 per-shard load so probe chains stay short. Growth is
  // global (every shard doubles): with a uniform hash the shards fill in
  // lock-step, and a shared capacity keeps the addressing arithmetic flat.
  if (shard_full(shard)) rehash((shard_mask_ + 1) * 2);
  const std::uint32_t before = shard_sizes_[shard];
  insert_into_shard(shard, key, pack(owner));
  size_ += shard_sizes_[shard] - before;
}

void AddressIndex::reserve(std::size_t expected) {
  // Per-shard capacity for the mean load plus imbalance slack (the keys
  // spread Poisson-ish across shards; 6 sigma + a constant covers the
  // worst shard far beyond any realistic failure probability). Growth in
  // insert() still backstops a shard that beats the estimate.
  const double mean =
      static_cast<double>(expected) / static_cast<double>(kShards);
  const double worst = mean + 6.0 * std::sqrt(mean) + 8.0;
  std::size_t capacity = 16;
  while (static_cast<double>(capacity) * 3.0 < worst * 4.0) capacity *= 2;
  if (capacity > shard_mask_ + 1 || slots_.empty()) rehash(capacity);
}

void AddressIndex::rehash(std::size_t shard_capacity) {
  assert((shard_capacity & (shard_capacity - 1)) == 0);
  std::vector<Slot> old = std::move(slots_);
  const std::size_t old_bits = shard_bits_;
  const auto old_sizes = shard_sizes_;
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < shard_capacity) ++bits;
  shard_bits_ = bits;
  shard_mask_ = shard_capacity - 1;
  shard_sizes_.fill(0);
  slots_.assign(kShards * shard_capacity, Slot{});
  size_ = 0;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    if (old.empty()) break;
    const std::size_t base = shard << old_bits;
    std::size_t remaining = old_sizes[shard];
    for (std::size_t i = 0; remaining > 0; ++i) {
      const Slot& slot = old[base + i];
      if (slot.key == 0) continue;
      --remaining;
      // Same shard before and after (the shard is picked by high hash
      // bits, independent of capacity).
      insert_into_shard(shard, slot.key, slot.owner);
      ++size_;
    }
  }
}

void AddressIndex::build(
    std::span<const std::pair<net::IPv4Address, AddressOwner>> records,
    util::ThreadPool& pool) {
  reserve(size_ + records.size());
  // Route records to shards in input order; each shard's insert sequence
  // is then a pure function of the input, not of the thread count.
  std::array<std::vector<std::uint32_t>, kShards> per_shard;
  const std::size_t estimate = records.size() / kShards + 16;
  for (auto& list : per_shard) list.reserve(estimate);
  for (std::uint32_t r = 0; r < records.size(); ++r) {
    const std::uint32_t key = records[r].first.value();
    if (key == 0) {
      zero_owner_ = records[r].second;
      continue;
    }
    per_shard[shard_of(util::mix64(key))].push_back(r);
  }
  // reserve() sized for the mean; make sure every shard fits its actual
  // load before the race-free parallel fill (growth must not happen
  // inside it).
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    while ((shard_sizes_[shard] + per_shard[shard].size() + 1) * 4 >
           (shard_mask_ + 1) * 3) {
      rehash((shard_mask_ + 1) * 2);
    }
  }
  pool.parallel_for(kShards, [&](std::size_t shard) {
    for (const std::uint32_t r : per_shard[shard]) {
      insert_into_shard(shard, records[r].first.value(),
                        pack(records[r].second));
    }
  });
  std::size_t total = 0;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    total += shard_sizes_[shard];
  }
  size_ = total;
}

}  // namespace rr::topo
