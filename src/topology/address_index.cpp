#include "topology/address_index.h"

#include <cassert>

namespace rr::topo {

void AddressIndex::insert(net::IPv4Address addr, AddressOwner owner) {
  assert(owner.id < kHostBit);
  const std::uint32_t packed =
      owner.id |
      (owner.kind == AddressOwner::Kind::kHost ? kHostBit : 0u);
  const std::uint32_t key = addr.value();
  if (key == 0) {
    zero_owner_ = owner;
    return;
  }
  // Grow at ~0.75 load so probe chains stay short.
  if ((size_ + 1) * 4 > slots_.size() * 3) rehash(slots_.size() * 2);
  for (std::size_t i = util::mix64(key) & mask_;; i = (i + 1) & mask_) {
    Slot& slot = slots_[i];
    if (slot.key == key) {
      slot.owner = packed;
      return;
    }
    if (slot.key == 0) {
      slot = {key, packed};
      ++size_;
      return;
    }
  }
}

void AddressIndex::rehash(std::size_t expected) {
  std::size_t capacity = 16;
  while (capacity * 3 < expected * 4) capacity *= 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  size_ = 0;
  for (const Slot& slot : old) {
    if (slot.key == 0) continue;
    for (std::size_t i = util::mix64(slot.key) & mask_;;
         i = (i + 1) & mask_) {
      if (slots_[i].key == 0) {
        slots_[i] = slot;
        ++size_;
        break;
      }
    }
  }
}

}  // namespace rr::topo
