// The generated Internet: ASes, routers, hosts, links, vantage points,
// cloud providers, and the address plan tying them together.
//
// Topology is immutable after generation. Routing (src/routing) computes
// paths over it per epoch; the simulator (src/sim) adds per-device
// behaviour on top.
//
// Address services run on a compiled forwarding plane: the generator fills
// a mutable LpmTrie and then calls compile(), which freezes it into a flat
// DIR-24-8 table (netbase/flat_lpm.h), precomputes the per-epoch vantage-
// point lists, and lays host alias sets out in one arena — so the per-
// packet queries (`as_of_address`, `owner_of`, `aliases_of`) are array
// loads with no per-call allocation. See DESIGN.md §8.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netbase/flat_lpm.h"
#include "netbase/lpm_trie.h"
#include "topology/address_index.h"
#include "topology/types.h"

namespace rr::util {
class ThreadPool;
}  // namespace rr::util

namespace rr::topo {

class Topology {
 public:
  // ------------------------------------------------------------- accessors
  [[nodiscard]] std::span<const AsInfo> ases() const noexcept { return ases_; }
  [[nodiscard]] std::span<const Router> routers() const noexcept {
    return routers_;
  }
  [[nodiscard]] std::span<const Host> hosts() const noexcept { return hosts_; }
  [[nodiscard]] std::span<const AsLink> links() const noexcept {
    return links_;
  }
  [[nodiscard]] std::span<const VantagePoint> vantage_points() const noexcept {
    return vantage_points_;
  }
  [[nodiscard]] std::span<const CloudProvider> clouds() const noexcept {
    return clouds_;
  }

  [[nodiscard]] const AsInfo& as_at(AsId id) const noexcept {
    return ases_[id];
  }
  [[nodiscard]] const Router& router_at(RouterId id) const noexcept {
    return routers_[id];
  }
  [[nodiscard]] const Host& host_at(HostId id) const noexcept {
    return hosts_[id];
  }
  [[nodiscard]] const AsLink& link_at(LinkId id) const noexcept {
    return links_[id];
  }

  /// The single machine used for the plain-ping study (USC in the paper).
  [[nodiscard]] HostId probe_host() const noexcept { return probe_host_; }

  /// Destination hosts only (one per advertised prefix), excluding VP and
  /// infrastructure hosts.
  [[nodiscard]] std::span<const HostId> destinations() const noexcept {
    return destinations_;
  }

  /// Vantage points available in a given epoch (precompiled, stable order).
  [[nodiscard]] std::span<const VantagePoint* const> vantage_points_in(
      Epoch epoch) const noexcept {
    return epoch == Epoch::k2011 ? vps_2011_ : vps_2016_;
  }

  /// RouterId-indexed AS membership, flattened at freeze for dataplane
  /// compilation: sim/pipeline.h folds this with the behaviour assignment
  /// into packed per-router HopRows without chasing Router structs.
  [[nodiscard]] std::span<const AsId> router_as_ids() const noexcept {
    return router_as_;
  }

  // ------------------------------------------------------ address services
  /// AS owning an address, via longest-prefix match over advertised +
  /// infrastructure blocks (this is what AS-path extraction from RR or
  /// traceroute data uses).
  [[nodiscard]] std::optional<AsId> as_of_address(
      net::IPv4Address addr) const noexcept {
    const AsId* found = flat_address_to_as_.lookup(addr);
    if (!found) return std::nullopt;
    return *found;
  }

  /// Device-level owner (exact match), for the simulator and for alias
  /// ground truth. Nullopt for addresses that were never assigned.
  [[nodiscard]] std::optional<AddressOwner> owner_of(
      net::IPv4Address addr) const noexcept {
    return address_index_.find(addr);
  }

  /// Ground-truth alias set (all addresses of the owning device),
  /// or empty if the address is unassigned. The view aliases storage
  /// owned by the topology; no per-call allocation.
  [[nodiscard]] std::span<const net::IPv4Address> aliases_of(
      net::IPv4Address addr) const noexcept;

  /// The inter-AS link between two ASes, if adjacent (at most one link per
  /// AS pair is generated).
  [[nodiscard]] std::optional<LinkId> link_between(AsId a,
                                                   AsId b) const noexcept;

  /// Host owning an exact address, if any.
  [[nodiscard]] std::optional<HostId> host_by_address(
      net::IPv4Address addr) const noexcept;

  /// Routers between an AS's core and an access router (inclusive on both
  /// ends: chain[0] is the core router the chain hangs off; chain.back() is
  /// the access router itself). Used by router-level path stitching.
  [[nodiscard]] std::span<const RouterId> access_chain(
      RouterId access_router) const noexcept;

  /// The mutable-build prefix trie the flat table was compiled from; kept
  /// as the reference structure for equivalence tests.
  [[nodiscard]] const net::LpmTrie<AsId>& address_trie() const noexcept {
    return address_to_as_;
  }

  // ------------------------------------------------------------ statistics
  [[nodiscard]] std::size_t num_destination_prefixes() const noexcept {
    return destinations_.size();
  }
  [[nodiscard]] std::string summary() const;

 private:
  friend class Generator;

  static std::uint64_t pair_key(AsId a, AsId b) noexcept {
    const AsId lo = a < b ? a : b;
    const AsId hi = a < b ? b : a;
    return (std::uint64_t{lo} << 32) | hi;
  }

  /// Freezes the generated world into the compiled forwarding plane:
  /// flattens the prefix trie, caches the per-epoch VP lists, and builds
  /// the host-alias arena — each block-parallel across `pool` with
  /// per-shard results merged in index order, so the compiled bytes are
  /// identical at any thread count. Called once at the end of generation;
  /// queries before compile() see empty flat structures. Sets `frozen_`:
  /// debug builds assert no generator mutation path runs afterwards.
  void compile(util::ThreadPool& pool);

  /// Generator-side guard: every mutation phase asserts the topology has
  /// not been frozen by compile() yet.
  void assert_mutable() const noexcept {
#ifndef NDEBUG
    assert(!frozen_);
#endif
  }

  std::vector<AsInfo> ases_;
  std::vector<Router> routers_;
  std::vector<Host> hosts_;
  std::vector<AsLink> links_;
  std::vector<VantagePoint> vantage_points_;
  std::vector<CloudProvider> clouds_;
  std::vector<HostId> destinations_;
  HostId probe_host_ = kNoHost;

  net::LpmTrie<AsId> address_to_as_;
  AddressIndex address_index_;
  std::unordered_map<std::uint64_t, LinkId> link_by_pair_;
  std::unordered_map<RouterId, std::vector<RouterId>> access_chain_;

  // ---------------------------------------------- compiled (see compile())
  net::FlatLpm<AsId> flat_address_to_as_;
  std::vector<const VantagePoint*> vps_2011_;
  std::vector<const VantagePoint*> vps_2016_;
  /// Per-host offset into host_alias_arena_ (kNoAliasEntry for hosts with
  /// no extra aliases, whose set is just the inline `address` member).
  static constexpr std::uint32_t kNoAliasEntry = 0xffff'ffffu;
  std::vector<std::uint32_t> host_alias_offset_;
  std::vector<net::IPv4Address> host_alias_arena_;  // [addr, aliases...] runs
  std::vector<AsId> router_as_;  // RouterId-indexed AS membership
  /// Set by compile(); generation is over and the object is immutable.
  bool frozen_ = false;
};

}  // namespace rr::topo
