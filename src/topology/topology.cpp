#include "topology/topology.h"

#include <numeric>

#include "util/strings.h"
#include "util/thread_pool.h"

namespace rr::topo {

const char* to_string(AsType type) noexcept {
  switch (type) {
    case AsType::kTransitAccess: return "Transit/Access";
    case AsType::kEnterprise: return "Enterprise";
    case AsType::kContent: return "Content";
    case AsType::kUnknown: return "Unknown";
  }
  return "?";
}

const char* to_string(Platform platform) noexcept {
  switch (platform) {
    case Platform::kPlanetLab: return "PlanetLab";
    case Platform::kMLab: return "M-Lab";
    case Platform::kProbeHost: return "ProbeHost";
    case Platform::kCloud: return "Cloud";
  }
  return "?";
}

void Topology::compile(util::ThreadPool& pool) {
  assert_mutable();
  flat_address_to_as_ = net::FlatLpm<AsId>{address_to_as_, &pool};

  vps_2011_.clear();
  vps_2016_.clear();
  for (const auto& vp : vantage_points_) {
    if (vp.exists_in_2011) vps_2011_.push_back(&vp);
    if (vp.exists_in_2016) vps_2016_.push_back(&vp);
  }

  // Hosts with extra aliases get a contiguous [address, aliases...] run;
  // the common no-alias host is served straight from its inline member.
  // Built block-parallel: each shard of the host range sizes its own
  // arena slice, a serial prefix sum places the slices in index order, and
  // the shards then fill disjoint ranges — the arena bytes are identical
  // to the old single-threaded append loop at any thread count.
  host_alias_offset_.assign(hosts_.size(), kNoAliasEntry);
  constexpr std::size_t kHostShard = 1u << 16;
  const std::size_t n_shards = (hosts_.size() + kHostShard - 1) / kHostShard;
  std::vector<std::size_t> shard_base(n_shards + 1, 0);
  pool.parallel_for(n_shards, [&](std::size_t s) {
    const std::size_t end = std::min(hosts_.size(), (s + 1) * kHostShard);
    std::size_t bytes = 0;
    for (std::size_t h = s * kHostShard; h < end; ++h) {
      if (!hosts_[h].aliases.empty()) bytes += 1 + hosts_[h].aliases.size();
    }
    shard_base[s + 1] = bytes;
  });
  std::partial_sum(shard_base.begin(), shard_base.end(), shard_base.begin());
  host_alias_arena_.resize(shard_base[n_shards]);
  pool.parallel_for(n_shards, [&](std::size_t s) {
    const std::size_t end = std::min(hosts_.size(), (s + 1) * kHostShard);
    std::size_t at = shard_base[s];
    for (std::size_t h = s * kHostShard; h < end; ++h) {
      const Host& host = hosts_[h];
      if (host.aliases.empty()) continue;
      host_alias_offset_[h] = static_cast<std::uint32_t>(at);
      host_alias_arena_[at++] = host.address;
      for (const auto& alias : host.aliases) host_alias_arena_[at++] = alias;
    }
  });

  router_as_.resize(routers_.size());
  for (std::size_t r = 0; r < routers_.size(); ++r) {
    router_as_[r] = routers_[r].as_id;
  }

  frozen_ = true;
}

std::span<const net::IPv4Address> Topology::aliases_of(
    net::IPv4Address addr) const noexcept {
  const auto owner = owner_of(addr);
  if (!owner) return {};
  if (owner->kind == AddressOwner::Kind::kRouter) {
    return routers_[owner->id].interfaces;
  }
  const Host& host = hosts_[owner->id];
  const std::uint32_t offset = host_alias_offset_[owner->id];
  if (offset == kNoAliasEntry) return {&host.address, 1};
  return {host_alias_arena_.data() + offset, 1 + host.aliases.size()};
}

std::optional<LinkId> Topology::link_between(AsId a, AsId b) const noexcept {
  const auto it = link_by_pair_.find(pair_key(a, b));
  if (it == link_by_pair_.end()) return std::nullopt;
  return it->second;
}

std::optional<HostId> Topology::host_by_address(
    net::IPv4Address addr) const noexcept {
  const auto owner = owner_of(addr);
  if (!owner || owner->kind != AddressOwner::Kind::kHost) return std::nullopt;
  return owner->id;
}

std::span<const RouterId> Topology::access_chain(
    RouterId access_router) const noexcept {
  const auto it = access_chain_.find(access_router);
  if (it == access_chain_.end()) return {};
  return it->second;
}

std::string Topology::summary() const {
  std::size_t peering = 0;
  std::size_t links2011 = 0;
  for (const auto& link : links_) {
    if (link.kind == LinkKind::kPeerPeer) ++peering;
    if (link.exists_in_2011) ++links2011;
  }
  std::string out;
  out += "ASes: " + util::with_commas(ases_.size());
  out += ", routers: " + util::with_commas(routers_.size());
  out += ", hosts: " + util::with_commas(hosts_.size());
  out += ", destination prefixes: " + util::with_commas(destinations_.size());
  out += ", links: " + util::with_commas(links_.size());
  out += " (" + util::with_commas(peering) + " peering, ";
  out += util::with_commas(links2011) + " present in 2011)";
  out += ", VPs: " + util::with_commas(vantage_points_.size());
  return out;
}

}  // namespace rr::topo
