#include "topology/topology.h"

#include "util/strings.h"

namespace rr::topo {

const char* to_string(AsType type) noexcept {
  switch (type) {
    case AsType::kTransitAccess: return "Transit/Access";
    case AsType::kEnterprise: return "Enterprise";
    case AsType::kContent: return "Content";
    case AsType::kUnknown: return "Unknown";
  }
  return "?";
}

const char* to_string(Platform platform) noexcept {
  switch (platform) {
    case Platform::kPlanetLab: return "PlanetLab";
    case Platform::kMLab: return "M-Lab";
    case Platform::kProbeHost: return "ProbeHost";
    case Platform::kCloud: return "Cloud";
  }
  return "?";
}

std::vector<const VantagePoint*> Topology::vantage_points_in(
    Epoch epoch) const {
  std::vector<const VantagePoint*> out;
  for (const auto& vp : vantage_points_) {
    const bool exists =
        epoch == Epoch::k2011 ? vp.exists_in_2011 : vp.exists_in_2016;
    if (exists) out.push_back(&vp);
  }
  return out;
}

std::optional<AsId> Topology::as_of_address(
    net::IPv4Address addr) const noexcept {
  const AsId* found = address_to_as_.lookup(addr);
  if (!found) return std::nullopt;
  return *found;
}

std::optional<AddressOwner> Topology::owner_of(
    net::IPv4Address addr) const noexcept {
  const auto it = owner_by_address_.find(addr.value());
  if (it == owner_by_address_.end()) return std::nullopt;
  return it->second;
}

std::vector<net::IPv4Address> Topology::aliases_of(
    net::IPv4Address addr) const {
  const auto owner = owner_of(addr);
  if (!owner) return {};
  if (owner->kind == AddressOwner::Kind::kRouter) {
    return routers_[owner->id].interfaces;
  }
  const Host& host = hosts_[owner->id];
  std::vector<net::IPv4Address> out;
  out.reserve(1 + host.aliases.size());
  out.push_back(host.address);
  out.insert(out.end(), host.aliases.begin(), host.aliases.end());
  return out;
}

std::optional<LinkId> Topology::link_between(AsId a, AsId b) const noexcept {
  const auto it = link_by_pair_.find(pair_key(a, b));
  if (it == link_by_pair_.end()) return std::nullopt;
  return it->second;
}

std::optional<HostId> Topology::host_by_address(
    net::IPv4Address addr) const noexcept {
  const auto owner = owner_of(addr);
  if (!owner || owner->kind != AddressOwner::Kind::kHost) return std::nullopt;
  return owner->id;
}

std::span<const RouterId> Topology::access_chain(
    RouterId access_router) const noexcept {
  const auto it = access_chain_.find(access_router);
  if (it == access_chain_.end()) return {};
  return it->second;
}

std::string Topology::summary() const {
  std::size_t peering = 0;
  std::size_t links2011 = 0;
  for (const auto& link : links_) {
    if (link.kind == LinkKind::kPeerPeer) ++peering;
    if (link.exists_in_2011) ++links2011;
  }
  std::string out;
  out += "ASes: " + util::with_commas(ases_.size());
  out += ", routers: " + util::with_commas(routers_.size());
  out += ", hosts: " + util::with_commas(hosts_.size());
  out += ", destination prefixes: " + util::with_commas(destinations_.size());
  out += ", links: " + util::with_commas(links_.size());
  out += " (" + util::with_commas(peering) + " peering, ";
  out += util::with_commas(links2011) + " present in 2011)";
  out += ", VPs: " + util::with_commas(vantage_points_.size());
  return out;
}

}  // namespace rr::topo
