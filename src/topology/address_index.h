// Open-addressing exact-match index from IPv4 address to owning device.
//
// `Topology::owner_of` sits on the per-packet hot path twice per send
// (destination resolution + reply routing); a std::unordered_map bucket
// walk there is two dependent cache misses plus a modulo. This index is a
// power-of-two linear-probe table of 8-byte slots — one mix64 and usually
// one cache line per hit — and packs the AddressOwner into 32 bits.
//
// The table is split into 64 independent shards (top hash bits pick the
// shard, low bits the probe start inside it; probes wrap within the
// shard). Sharding costs one shift+add on lookup and buys a bulk build
// that is both parallel and deterministic: `build` distributes records to
// shards in input order and fills each shard independently, so the final
// byte layout is identical at any thread count — no atomics, no
// insertion-order races, no rehashing mid-build.
//
// Key 0 (0.0.0.0) doubles as the empty-slot marker; since the generator's
// address plan starts at 16.0.0.0 that address is never assigned, but a
// dedicated side slot keeps the structure fully general (asserted by the
// randomized equivalence test against std::unordered_map).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "netbase/address.h"
#include "topology/types.h"
#include "util/rng.h"

namespace rr::util {
class ThreadPool;
}  // namespace rr::util

namespace rr::topo {

/// Who owns an IP address: a router interface or an end-host device.
struct AddressOwner {
  enum class Kind : std::uint8_t { kRouter, kHost } kind = Kind::kRouter;
  std::uint32_t id = 0;  // RouterId or HostId

  [[nodiscard]] bool operator==(const AddressOwner&) const = default;
};

class AddressIndex {
 public:
  explicit AddressIndex(std::size_t expected = 0) { reserve(expected); }

  /// Inserts or replaces the owner of `addr`.
  void insert(net::IPv4Address addr, AddressOwner owner);

  /// Bulk insert, partitioned across `pool` one shard per work item. The
  /// resulting table bytes are identical to inserting `records` in order
  /// on one thread (records are routed to shards in input order; shards
  /// are independent).
  void build(std::span<const std::pair<net::IPv4Address, AddressOwner>> records,
             util::ThreadPool& pool);

  /// Presizes so that `expected` total keys fit without any further
  /// growth rehash (including per-shard imbalance slack).
  void reserve(std::size_t expected);

  [[nodiscard]] std::optional<AddressOwner> find(
      net::IPv4Address addr) const noexcept {
    const std::uint32_t key = addr.value();
    if (key == 0) return zero_owner_;
    const std::uint64_t h = util::mix64(key);
    const std::size_t base = (h >> (64 - kShardBits)) << shard_bits_;
    for (std::size_t i = h & shard_mask_;; i = (i + 1) & shard_mask_) {
      const Slot& slot = slots_[base + i];
      if (slot.key == key) return unpack(slot.owner);
      if (slot.key == 0) return std::nullopt;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_ + (zero_owner_ ? 1 : 0);
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint32_t key = 0;    // 0 = empty
    std::uint32_t owner = 0;  // bit 31 = kind (host), bits 0..30 = id
  };

  static constexpr int kShardBits = 6;
  static constexpr std::size_t kShards = 1u << kShardBits;
  static constexpr std::uint32_t kHostBit = 0x8000'0000u;

  [[nodiscard]] static AddressOwner unpack(std::uint32_t packed) noexcept {
    return {(packed & kHostBit) ? AddressOwner::Kind::kHost
                                : AddressOwner::Kind::kRouter,
            packed & ~kHostBit};
  }
  [[nodiscard]] static std::uint32_t pack(AddressOwner owner) noexcept;
  [[nodiscard]] static std::size_t shard_of(std::uint64_t hash) noexcept {
    return hash >> (64 - kShardBits);
  }

  /// True when one more key would push the shard past ~0.75 load.
  [[nodiscard]] bool shard_full(std::size_t shard) const noexcept {
    return (static_cast<std::size_t>(shard_sizes_[shard]) + 1) * 4 >
           (shard_mask_ + 1) * 3;
  }

  /// Places a key in its shard; the shard must have room (no growth here,
  /// which is what makes the parallel build race-free).
  void insert_into_shard(std::size_t shard, std::uint32_t key,
                         std::uint32_t packed) noexcept;

  /// Rebuilds with per-shard capacity `shard_capacity` (a power of two).
  void rehash(std::size_t shard_capacity);

  std::vector<Slot> slots_;     // kShards contiguous shards
  std::size_t shard_bits_ = 0;  // log2(per-shard capacity)
  std::size_t shard_mask_ = 0;  // per-shard capacity - 1
  std::array<std::uint32_t, kShards> shard_sizes_{};
  std::size_t size_ = 0;  // non-zero keys stored
  std::optional<AddressOwner> zero_owner_;
};

}  // namespace rr::topo
