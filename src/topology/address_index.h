// Open-addressing exact-match index from IPv4 address to owning device.
//
// `Topology::owner_of` sits on the per-packet hot path twice per send
// (destination resolution + reply routing); a std::unordered_map bucket
// walk there is two dependent cache misses plus a modulo. This index is a
// power-of-two linear-probe table of 8-byte slots — one mix64 and usually
// one cache line per hit — and packs the AddressOwner into 32 bits.
//
// Key 0 (0.0.0.0) doubles as the empty-slot marker; since the generator's
// address plan starts at 16.0.0.0 that address is never assigned, but a
// dedicated side slot keeps the structure fully general (asserted by the
// randomized equivalence test against std::unordered_map).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/address.h"
#include "topology/types.h"
#include "util/rng.h"

namespace rr::topo {

/// Who owns an IP address: a router interface or an end-host device.
struct AddressOwner {
  enum class Kind : std::uint8_t { kRouter, kHost } kind = Kind::kRouter;
  std::uint32_t id = 0;  // RouterId or HostId

  [[nodiscard]] bool operator==(const AddressOwner&) const = default;
};

class AddressIndex {
 public:
  explicit AddressIndex(std::size_t expected = 0) { rehash(expected); }

  /// Inserts or replaces the owner of `addr`.
  void insert(net::IPv4Address addr, AddressOwner owner);

  [[nodiscard]] std::optional<AddressOwner> find(
      net::IPv4Address addr) const noexcept {
    const std::uint32_t key = addr.value();
    if (key == 0) return zero_owner_;
    for (std::size_t i = util::mix64(key) & mask_;; i = (i + 1) & mask_) {
      const Slot& slot = slots_[i];
      if (slot.key == key) return unpack(slot.owner);
      if (slot.key == 0) return std::nullopt;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_ + (zero_owner_ ? 1 : 0);
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint32_t key = 0;    // 0 = empty
    std::uint32_t owner = 0;  // bit 31 = kind (host), bits 0..30 = id
  };

  static constexpr std::uint32_t kHostBit = 0x8000'0000u;

  [[nodiscard]] static AddressOwner unpack(std::uint32_t packed) noexcept {
    return {(packed & kHostBit) ? AddressOwner::Kind::kHost
                                : AddressOwner::Kind::kRouter,
            packed & ~kHostBit};
  }

  void rehash(std::size_t expected);

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;  // non-zero keys stored
  std::optional<AddressOwner> zero_owner_;
};

}  // namespace rr::topo
