// Generation parameters for the simulated Internet.
//
// Defaults are calibrated so that a `paper_scale()` topology reproduces the
// *shape* of the IMC'17 study: AS-type mix and prefix counts follow Table 1
// (at one-tenth the census size), hierarchy depth and peering densities are
// set so that closest-VP RR distances land near the paper's Figure 1/2
// distributions, and the 2011 epoch strips most peering links to recreate
// the pre-flattening Internet.
#pragma once

#include <array>
#include <cstdint>

#include "topology/types.h"

namespace rr::topo {

struct TopologyParams {
  std::uint64_t seed = 20160924;  // RouteViews snapshot date in the paper

  /// Worker threads for the materialize/compile phases (0 = resolve from
  /// RROPT_THREADS / hardware concurrency). The generated topology is
  /// bit-identical at every thread count; this only affects wall-clock.
  int threads = 0;

  // ------------------------------------------------------------------ scale
  int num_ases = 5200;

  /// Fraction of ASes per type, following Table 1's by-AS breakdown
  /// (transit/access 38.3%, enterprise 48.0%, content 4.3%, unknown 9.4%).
  std::array<double, kNumAsTypes> type_fraction{0.383, 0.480, 0.043, 0.094};

  /// Mean advertised prefixes per AS of each type (Table 1 by-IP / by-AS:
  /// 19.6, 2.5, 19.7, 3.3). Drawn from a geometric-like distribution.
  std::array<double, kNumAsTypes> prefixes_per_as{19.6, 2.5, 19.7, 3.3};

  /// Hard cap so one AS cannot dominate a small topology.
  int max_prefixes_per_as = 400;

  // -------------------------------------------------------------- hierarchy
  int num_tier1 = 12;
  /// Fraction of transit/access ASes that are large (depth-2) transits.
  double large_transit_fraction = 0.08;
  /// Providers per non-tier1 AS: 1 + geometric(extra_provider_prob).
  double extra_provider_prob = 0.35;
  int max_providers = 3;

  // ---------------------------------------------------------------- peering
  /// Mean peer links per AS, by tier, for each epoch. Flattening means the
  /// 2016 values are much larger (Labovitz/Chiu-style evolution).
  double peers_large_transit_2016 = 6.0;
  double peers_large_transit_2011 = 0.8;
  double peers_regional_2016 = 3.0;
  double peers_regional_2011 = 0.1;
  double peers_content_2016 = 8.0;
  double peers_content_2011 = 0.2;
  /// Cloud providers peer with this fraction of transit ASes in 2016
  /// (per provider: GCE-like hyper-peered first, then EC2/Softlayer).
  std::array<double, 3> cloud_peer_fraction_2016{0.85, 0.40, 0.45};
  double cloud_peer_fraction_2011 = 0.01;
  /// Colo-present ASes get extra peers in 2016 (IXP effect).
  double colo_extra_peers_2016 = 8.0;

  /// Fraction of regional transit ASes with a colo/IXP presence.
  double colo_fraction = 0.06;

  /// A handful of colos are giant interconnection hubs (NYC/LA-style):
  /// they peer with most of the regional fabric by 2016. The best M-Lab
  /// sites live here, which is what makes one site cover 73% of the
  /// RR-reachable set in the paper's greedy analysis.
  int mega_colo_count = 6;
  double mega_colo_regional_peer_fraction_2016 = 0.75;
  double mega_colo_regional_peer_fraction_2011 = 0.02;

  /// PlanetLab-hosting campuses uplink through R&E fabrics that meet the
  /// colos, so one of their providers is drawn from the colo pool.
  double plab_colo_provider_prob = 0.9;

  // ---------------------------------------------------------------- routers
  /// Core routers per AS by tier (tier1, large transit, regional, stub).
  std::array<int, 4> core_routers{4, 3, 2, 1};
  /// internal_hops: extra router hops to cross an AS, by tier. Actual value
  /// per AS is drawn in [min, max].
  std::array<int, 4> internal_hops_min{3, 2, 0, 0};
  std::array<int, 4> internal_hops_max{4, 3, 1, 1};
  /// Extra hops from a destination's /24 access router into the AS core
  /// (last-mile depth): drawn in [0, last_mile_extra_max].
  int last_mile_extra_max = 3;

  /// Interface addresses allocated per core router beyond the loopback.
  int core_interfaces = 2;

  /// Fraction of destination devices that own extra (alias) addresses.
  double host_alias_fraction = 0.05;
  int max_host_aliases = 3;

  // ------------------------------------------------------------------- VPs
  int planetlab_sites_2016 = 55;
  int mlab_sites_2016 = 86;
  int planetlab_sites_2011 = 294;
  int mlab_sites_2011 = 14;
  /// Sites available in both years (paper: 34 PlanetLab + 11 M-Lab).
  int planetlab_common_sites = 34;
  int mlab_common_sites = 11;

  int num_cloud_providers = 3;

  /// Builds the default paper-scale parameter set (one-tenth census).
  [[nodiscard]] static TopologyParams paper_scale() { return {}; }

  /// Full-census scale: ~510k destination prefixes, matching the paper's
  /// survey size (Table 1 reports 511,119 prefixes). The AS count stays at
  /// 20k — a quarter of the real table — with per-AS prefix means scaled
  /// up 2.65x so the destination census reaches paper size while the
  /// O(AS^2) BGP sweep stays tractable on one machine. VP counts are the
  /// paper's real 141 (55 PlanetLab + 86 M-Lab sites in 2016).
  [[nodiscard]] static TopologyParams census_scale() {
    TopologyParams p;
    p.num_ases = 20000;
    for (double& mean : p.prefixes_per_as) mean *= 2.65;
    return p;
  }

  /// A small topology for unit tests (hundreds of hosts, sub-second).
  [[nodiscard]] static TopologyParams test_scale() {
    TopologyParams p;
    p.num_ases = 120;
    p.num_tier1 = 4;
    p.planetlab_sites_2016 = 6;
    p.mlab_sites_2016 = 8;
    p.planetlab_sites_2011 = 10;
    p.mlab_sites_2011 = 3;
    p.planetlab_common_sites = 4;
    p.mlab_common_sites = 2;
    p.max_prefixes_per_as = 40;
    return p;
  }
};

}  // namespace rr::topo
