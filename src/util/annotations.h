// Clang Thread Safety Analysis annotations for the rropt concurrency spine.
//
// The repo's core contract — bit-identical datasets at any thread count —
// rests on a small set of lock and phase disciplines (ThreadPool region
// state, PathCache shards, RoutingOracle fallback cache, Network's
// serial-replay phases). These macros turn those disciplines into
// compile-time facts: a clang build with -Wthread-safety (wired into the
// static-analysis CI job as -Werror=thread-safety) refuses code that
// touches guarded state without the declared capability. On non-clang
// compilers every macro expands to nothing.
//
// Vocabulary (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   RROPT_CAPABILITY(name)   — marks a class as a lockable capability
//   RROPT_SCOPED_CAPABILITY  — marks an RAII lock holder
//   RROPT_GUARDED_BY(mu)     — data member readable/writable only under mu
//   RROPT_PT_GUARDED_BY(mu)  — pointee guarded by mu (pointer itself free)
//   RROPT_REQUIRES(mu)       — function must be called with mu held
//   RROPT_ACQUIRE(mu)        — function acquires mu and does not release it
//   RROPT_RELEASE(mu)        — function releases mu
//   RROPT_TRY_ACQUIRE(b, mu) — acquires mu iff the function returns b
//   RROPT_EXCLUDES(mu)       — function must NOT be called with mu held
//   RROPT_ASSERT_CAPABILITY  — runtime claim that mu is held (AssertHeld)
//   RROPT_RETURN_CAPABILITY  — accessor returning a reference to mu
//
// Use util::Mutex / util::MutexLock (util/mutex.h) rather than annotating
// std::mutex directly: libstdc++'s std::mutex carries no annotations, so
// the analysis cannot see its lock/unlock pairs (and rropt_lint bans raw
// std::mutex members outside util/ for exactly that reason).
#pragma once

#if defined(__clang__)
#define RROPT_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define RROPT_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

#define RROPT_CAPABILITY(x) \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define RROPT_SCOPED_CAPABILITY \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define RROPT_GUARDED_BY(x) \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define RROPT_PT_GUARDED_BY(x) \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define RROPT_REQUIRES(...) \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define RROPT_REQUIRES_SHARED(...) \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define RROPT_ACQUIRE(...) \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define RROPT_RELEASE(...) \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RROPT_TRY_ACQUIRE(...) \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define RROPT_EXCLUDES(...) \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define RROPT_ASSERT_CAPABILITY(...) \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(__VA_ARGS__))

#define RROPT_RETURN_CAPABILITY(x) \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define RROPT_NO_THREAD_SAFETY_ANALYSIS \
  RROPT_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
