#include "util/strings.h"

#include <cstdio>

namespace rr::util {

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter != 0 && counter % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++counter;
  }
  return {out.rbegin(), out.rend()};
}

std::string percent(double ratio, int decimals) {
  return fixed(ratio * 100.0, decimals) + "%";
}

std::string fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string{text.substr(0, width)};
  std::string out(width - text.size(), ' ');
  out.append(text);
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) return std::string{text.substr(0, width)};
  std::string out{text};
  out.append(width - text.size(), ' ');
  return out;
}

}  // namespace rr::util
