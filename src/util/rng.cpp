#include "util/rng.h"

#include <cmath>

namespace rr::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t s = value;
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's method: multiply a 64-bit draw by the bound and keep the high
  // word, rejecting draws in the biased low fringe.
  if (bound == 0) return 0;  // defensive; callers must pass bound > 0
  __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    while (low < threshold) {
      m = static_cast<__uint128_t>((*this)()) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  // 53 random bits scaled into [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) noexcept {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::next_normal(double mean, double stddev) noexcept {
  // Irwin-Hall approximation: sum of 12 uniforms has mean 6, variance 1.
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += next_double();
  return mean + stddev * (sum - 6.0);
}

int Rng::next_geometric(double continue_prob, int cap) noexcept {
  int n = 0;
  while (n < cap && chance(continue_prob)) ++n;
  return n;
}

Rng Rng::fork(std::string_view label) noexcept {
  const std::uint64_t child_seed = (*this)() ^ hash_label(label);
  return Rng{child_seed};
}

std::size_t Rng::pick_weighted(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

}  // namespace rr::util
