#include "util/rng.h"

#include <cmath>

namespace rr::util {

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_exponential(double mean) noexcept {
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::next_normal(double mean, double stddev) noexcept {
  // Irwin-Hall approximation: sum of 12 uniforms has mean 6, variance 1.
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += next_double();
  return mean + stddev * (sum - 6.0);
}

int Rng::next_geometric(double continue_prob, int cap) noexcept {
  int n = 0;
  while (n < cap && chance(continue_prob)) ++n;
  return n;
}

Rng Rng::fork(std::string_view label) noexcept {
  const std::uint64_t child_seed = (*this)() ^ hash_label(label);
  return Rng{child_seed};
}

std::size_t Rng::pick_weighted(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double target = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

std::uint64_t hash_label(std::string_view label) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

}  // namespace rr::util
