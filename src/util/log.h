// Minimal leveled logger for harness/bench progress output.
//
// The library itself never logs on hot paths; logging is for experiment
// drivers. Output goes to stderr so that table/figure data on stdout stays
// machine-readable.
#pragma once

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace rr::util {

enum class LogLevel : std::uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Default: kInfo.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Redirects log output (nullptr restores stderr). The sink is shared
/// mutable state guarded by the logger's mutex; callers keep ownership of
/// the stream and must not close it while a redirect is installed.
void set_log_sink(std::FILE* sink);

/// Lines actually emitted (post level filter) since process start. Meant
/// for tests asserting hot paths stay silent.
[[nodiscard]] std::uint64_t log_lines_emitted();

/// Emits one formatted line ("[level] message") to the sink if enabled.
/// Whole lines are serialized under the sink mutex, so concurrent
/// harness threads never interleave mid-line.
void log_line(LogLevel level, std::string_view message);

namespace detail {

/// Stream-style one-line logger; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

[[nodiscard]] inline detail::LogMessage log_debug() {
  return detail::LogMessage{LogLevel::kDebug};
}
[[nodiscard]] inline detail::LogMessage log_info() {
  return detail::LogMessage{LogLevel::kInfo};
}
[[nodiscard]] inline detail::LogMessage log_warn() {
  return detail::LogMessage{LogLevel::kWarn};
}
[[nodiscard]] inline detail::LogMessage log_error() {
  return detail::LogMessage{LogLevel::kError};
}

}  // namespace rr::util
