// Minimal leveled logger for harness/bench progress output.
//
// The library itself never logs on hot paths; logging is for experiment
// drivers. Output goes to stderr so that table/figure data on stdout stays
// machine-readable.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace rr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded. Default: kInfo.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one formatted line ("[level] message") to stderr if enabled.
void log_line(LogLevel level, std::string_view message);

namespace detail {

/// Stream-style one-line logger; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

[[nodiscard]] inline detail::LogMessage log_debug() {
  return detail::LogMessage{LogLevel::kDebug};
}
[[nodiscard]] inline detail::LogMessage log_info() {
  return detail::LogMessage{LogLevel::kInfo};
}
[[nodiscard]] inline detail::LogMessage log_warn() {
  return detail::LogMessage{LogLevel::kWarn};
}
[[nodiscard]] inline detail::LogMessage log_error() {
  return detail::LogMessage{LogLevel::kError};
}

}  // namespace rr::util
