// Small string helpers shared by the analysis/report layers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rr::util {

/// Formats `value` with thousands separators: 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(std::uint64_t value);

/// Formats a ratio as a percentage with the given precision: 0.754 -> "75%".
[[nodiscard]] std::string percent(double ratio, int decimals = 0);

/// Formats a double with fixed decimals.
[[nodiscard]] std::string fixed(double value, int decimals);

/// Splits on a delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

/// Joins pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               std::string_view separator);

/// Left/right padding to a fixed width (truncates if longer).
[[nodiscard]] std::string pad_left(std::string_view text, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view text, std::size_t width);

}  // namespace rr::util
