// Annotated synchronisation primitives (see util/annotations.h).
//
// util::Mutex wraps std::mutex with Clang Thread Safety Analysis
// capability annotations, so RROPT_GUARDED_BY members are actually
// checkable — libstdc++'s std::mutex carries no annotations and is
// invisible to the analysis. rropt_lint enforces the flip side: raw
// std::mutex members are allowed only under src/util/ (i.e. here), every
// other layer must hold its locks through these wrappers.
//
// util::SerialGate is a *zero-cost phase capability*: it is not a lock at
// all, but a compile-time token for "the caller promised this code runs
// with no concurrent sends in flight". Network's token buckets and
// aggregate counters are consulted live only during serial phases (the
// deferred-replay pass B, reset between campaigns); guarding them with a
// real mutex would tax the hot path for a discipline that is enforced by
// campaign structure, not by blocking. The gate gives the structure a name
// the compiler can check: direct accesses to RROPT_GUARDED_BY(serial_gate_)
// state must either hold a SerialGateLock or assert the contract with
// assert_held().
#pragma once

#include <mutex>

#include "util/annotations.h"

namespace rr::util {

class RROPT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RROPT_ACQUIRE() { mu_.lock(); }
  void unlock() RROPT_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() RROPT_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  /// The wrapped mutex, for APIs that need the concrete type (currently
  /// std::condition_variable via CvLock). The returned reference carries
  /// no annotations; lock it only through this class.
  [[nodiscard]] std::mutex& native_handle() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII exclusive lock over a util::Mutex (std::lock_guard shape).
class RROPT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RROPT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RROPT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock that exposes a std::unique_lock for condition-
/// variable waits. The analysis treats the capability as held for the
/// whole scope; a cv wait releases and reacquires inside one statement,
/// which is sound at the statement granularity the analysis checks.
/// Keep waited-on predicates as plain loops in the holding function
/// (`while (!pred()) cv.wait(lock.native());`) — lambda bodies are
/// analysed with an empty capability set and would warn spuriously.
class RROPT_SCOPED_CAPABILITY CvLock {
 public:
  explicit CvLock(Mutex& mu) RROPT_ACQUIRE(mu) : lock_(mu.native_handle()) {}
  ~CvLock() RROPT_RELEASE() {}

  CvLock(const CvLock&) = delete;
  CvLock& operator=(const CvLock&) = delete;

  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Zero-cost capability for caller-serialized phases (see file comment).
/// acquire()/release() compile to nothing; the value is entirely in the
/// annotations they carry.
class RROPT_CAPABILITY("serial-phase") SerialGate {
 public:
  SerialGate() = default;
  SerialGate(const SerialGate&) = delete;
  SerialGate& operator=(const SerialGate&) = delete;

  void acquire() RROPT_ACQUIRE() {}
  void release() RROPT_RELEASE() {}

  /// Claims the serial contract holds here without a scoped acquisition —
  /// the annotated equivalent of "the caller passed ctx == nullptr and
  /// thereby promised not to race this call" (Network's send contract).
  void assert_held() const RROPT_ASSERT_CAPABILITY() {}
};

/// RAII holder for a SerialGate phase. Zero runtime cost.
class RROPT_SCOPED_CAPABILITY SerialGateLock {
 public:
  explicit SerialGateLock(SerialGate& gate) RROPT_ACQUIRE(gate)
      : gate_(gate) {
    gate_.acquire();
  }
  ~SerialGateLock() RROPT_RELEASE() { gate_.release(); }

  SerialGateLock(const SerialGateLock&) = delete;
  SerialGateLock& operator=(const SerialGateLock&) = delete;

 private:
  SerialGate& gate_;
};

}  // namespace rr::util
