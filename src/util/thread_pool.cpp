#include "util/thread_pool.h"

#include <cassert>
#include <cstdlib>

namespace rr::util {

int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("RROPT_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::claim_index(std::uint64_t generation, std::size_t n,
                             std::size_t& out) {
  std::uint64_t cur = claim_.load(std::memory_order_relaxed);
  while ((cur >> 32) == (generation & 0xffffffffu)) {
    const std::size_t i = static_cast<std::size_t>(cur & 0xffffffffu);
    if (i >= n) return false;
    // CAS rather than fetch_add: the compared value includes the
    // generation bits, so a claim against a region that has since been
    // replaced fails instead of consuming an index of the new region.
    if (claim_.compare_exchange_weak(cur, cur + 1,
                                     std::memory_order_relaxed)) {
      out = i;
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t n = 0;
    {
      // Manual wait loop rather than the predicate overload: the guarded
      // reads stay in this function, where the analysis sees the lock
      // (a predicate lambda is analysed with an empty capability set).
      CvLock lock(mu_);
      while (!stop_ && generation_ == seen) work_cv_.wait(lock.native());
      if (stop_) return;
      seen = generation_;
      job = job_;
      n = job_n_;
    }
    // If this worker was preempted here until after region `seen`
    // completed and a new one began, claim_index refuses every claim
    // (generation mismatch), done_here stays 0, and the worker re-parks —
    // then wakes again immediately for the newer generation.
    std::size_t done_here = 0;
    std::size_t i = 0;
    while (claim_index(seen, n, i)) {
      (*job)(i);
      ++done_here;
    }
    // Every claimed index is counted here before the region can complete,
    // so parallel_for cannot return — and reset completed_ — while any
    // worker still owes a contribution for its generation.
    if (done_here > 0 &&
        completed_.fetch_add(done_here, std::memory_order_acq_rel) +
                done_here == n) {
      MutexLock lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  assert(n <= 0xffffffffu && "region too large for 32-bit claim index");
  std::uint64_t gen;
  {
    MutexLock lock(mu_);
    job_ = &fn;
    job_n_ = n;
    completed_.store(0, std::memory_order_relaxed);
    gen = ++generation_;
    claim_.store((gen & 0xffffffffu) << 32, std::memory_order_relaxed);
  }
  work_cv_.notify_all();

  // The calling thread works too.
  std::size_t done_here = 0;
  std::size_t i = 0;
  while (claim_index(gen, n, i)) {
    fn(i);
    ++done_here;
  }
  if (done_here > 0) {
    completed_.fetch_add(done_here, std::memory_order_acq_rel);
  }

  CvLock lock(mu_);
  while (completed_.load(std::memory_order_acquire) != n) {
    done_cv_.wait(lock.native());
  }
  job_ = nullptr;
}

}  // namespace rr::util
