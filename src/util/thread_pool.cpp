#include "util/thread_pool.h"

#include <cstdlib>

namespace rr::util {

int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("RROPT_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      n = job_n_;
    }
    std::size_t done_here = 0;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*job)(i);
      ++done_here;
    }
    if (done_here > 0 &&
        completed_.fetch_add(done_here, std::memory_order_acq_rel) +
                done_here == n) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();

  // The calling thread works too.
  std::size_t done_here = 0;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i);
    ++done_here;
  }
  completed_.fetch_add(done_here, std::memory_order_acq_rel);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock,
                [&] { return completed_.load(std::memory_order_acquire) == n; });
  job_ = nullptr;
}

}  // namespace rr::util
