#include "util/flags.h"

#include <cstdlib>

namespace rr::util {

Flags Flags::parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg.size() < 3 || arg.substr(0, 2) != "--") {
      flags.positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string{body.substr(0, eq)}] =
          std::string{body.substr(eq + 1)};
      continue;
    }
    // "--key value" unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string_view{argv[i + 1]}.substr(0, 2) != "--") {
      flags.values_[std::string{body}] = argv[i + 1];
      ++i;
    } else {
      flags.values_[std::string{body}] = "true";
    }
  }
  return flags;
}

bool Flags::has(std::string_view key) const {
  queried_[std::string{key}] = true;
  return values_.contains(std::string{key});
}

std::string Flags::get(std::string_view key, std::string_view fallback) const {
  queried_[std::string{key}] = true;
  const auto it = values_.find(std::string{key});
  return it == values_.end() ? std::string{fallback} : it->second;
}

std::int64_t Flags::get_int(std::string_view key,
                            std::int64_t fallback) const {
  queried_[std::string{key}] = true;
  const auto it = values_.find(std::string{key});
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(std::string_view key, double fallback) const {
  queried_[std::string{key}] = true;
  const auto it = values_.find(std::string{key});
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!queried_.contains(key)) out.push_back(key);
  }
  return out;
}

}  // namespace rr::util
