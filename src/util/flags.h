// Minimal command-line flag parsing for the CLI tools.
//
// Supports "--key value", "--key=value" and boolean "--key"; everything
// else is collected as positional arguments.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rr::util {

class Flags {
 public:
  static Flags parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view key) const;
  [[nodiscard]] std::string get(std::string_view key,
                                std::string_view fallback = {}) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key,
                                  double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Keys that were provided but never queried — typo detection for tools.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::unordered_map<std::string, bool> queried_;
};

}  // namespace rr::util
