// Deterministic pseudo-random number generation for reproducible
// measurement simulations.
//
// Everything in rropt that needs randomness draws from an Rng seeded from a
// single experiment seed, so a whole study (topology generation, behaviour
// assignment, probe ordering) replays bit-for-bit. The generator is
// xoshiro256** (public domain, Blackman & Vigna), seeded via splitmix64 so
// that nearby seeds still produce uncorrelated streams.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace rr::util {

/// splitmix64 step: used for seeding and for cheap stateless hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of a value (one splitmix64 round).
[[nodiscard]] std::uint64_t mix64(std::uint64_t value) noexcept;

/// Deterministic xoshiro256** generator.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// used with <random> distributions as well as with the convenience methods
/// below (which are preferred: they are stable across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 bits.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Exponentially distributed double with the given mean (> 0).
  [[nodiscard]] double next_exponential(double mean) noexcept;

  /// Approximately normal draw (sum of uniforms; adequate for jitter).
  [[nodiscard]] double next_normal(double mean, double stddev) noexcept;

  /// Geometric-ish small count: number of successes before failure, capped.
  [[nodiscard]] int next_geometric(double continue_prob, int cap) noexcept;

  /// Derives an independent child generator from this one plus a label.
  /// Children with distinct labels have uncorrelated streams, and forking
  /// does not perturb the parent's sequence position relative to replays
  /// with the same fork structure.
  [[nodiscard]] Rng fork(std::string_view label) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Picks a uniformly random element (by reference). Requires non-empty.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) noexcept {
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

  /// Weighted index selection: returns i with probability
  /// weights[i] / sum(weights). Requires a positive total weight.
  [[nodiscard]] std::size_t pick_weighted(
      const std::vector<double>& weights) noexcept;

 private:
  std::uint64_t state_[4];
};

/// Hashes a string to 64 bits (FNV-1a folded through mix64); used to derive
/// labelled child seeds.
[[nodiscard]] std::uint64_t hash_label(std::string_view label) noexcept;

}  // namespace rr::util
