// Deterministic pseudo-random number generation for reproducible
// measurement simulations.
//
// Everything in rropt that needs randomness draws from an Rng seeded from a
// single experiment seed, so a whole study (topology generation, behaviour
// assignment, probe ordering) replays bit-for-bit. The generator is
// xoshiro256** (public domain, Blackman & Vigna), seeded via splitmix64 so
// that nearby seeds still produce uncorrelated streams.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace rr::util {

/// splitmix64 step: used for seeding and for cheap stateless hashing.
/// Inline: the simulator hashes flow keys with this billions of times per
/// census, and an out-of-line call costs more than the mix itself.
[[nodiscard]] inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of a value (one splitmix64 round).
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t s = value;
  return splitmix64(s);
}

namespace detail {
[[nodiscard]] constexpr std::uint64_t rotl64(std::uint64_t x,
                                             int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace detail

/// Deterministic xoshiro256** generator.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// used with <random> distributions as well as with the convenience methods
/// below (which are preferred: they are stable across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 bits.
  result_type operator()() noexcept {
    const std::uint64_t result = detail::rotl64(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = detail::rotl64(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;  // defensive; callers must pass bound > 0
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
      while (low < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    // 53 random bits scaled into [0,1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Exponentially distributed double with the given mean (> 0).
  [[nodiscard]] double next_exponential(double mean) noexcept;

  /// Approximately normal draw (sum of uniforms; adequate for jitter).
  [[nodiscard]] double next_normal(double mean, double stddev) noexcept;

  /// Geometric-ish small count: number of successes before failure, capped.
  [[nodiscard]] int next_geometric(double continue_prob, int cap) noexcept;

  /// Derives an independent child generator from this one plus a label.
  /// Children with distinct labels have uncorrelated streams, and forking
  /// does not perturb the parent's sequence position relative to replays
  /// with the same fork structure.
  [[nodiscard]] Rng fork(std::string_view label) noexcept;

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Picks a uniformly random element (by reference). Requires non-empty.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) noexcept {
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

  /// Weighted index selection: returns i with probability
  /// weights[i] / sum(weights). Requires a positive total weight.
  [[nodiscard]] std::size_t pick_weighted(
      const std::vector<double>& weights) noexcept;

 private:
  std::uint64_t state_[4];
};

/// Hashes a string to 64 bits (FNV-1a folded through mix64); used to derive
/// labelled child seeds.
[[nodiscard]] std::uint64_t hash_label(std::string_view label) noexcept;

}  // namespace rr::util
