// A small reusable worker pool for data-parallel loops.
//
// The campaign executor fans per-VP probe streams across these workers;
// anything else that wants a parallel sweep (benches, future studies) can
// reuse the same pool. Design goals, in order: determinism of the *caller*
// (the pool never reorders a caller's own work, it only partitions an index
// space), low dispatch overhead for repeated small regions (persistent
// workers, no per-call thread spawn), and graceful degradation to a plain
// loop at one thread so the single-threaded path stays allocation- and
// lock-free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.h"
#include "util/mutex.h"

namespace rr::util {

/// Resolves a thread-count request against the environment:
///   requested > 0          -> requested;
///   RROPT_THREADS set > 0  -> that value;
///   otherwise              -> hardware_concurrency (at least 1).
[[nodiscard]] int resolve_thread_count(int requested = 0);

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread participates in
  /// every region, so `threads == 1` spawns nothing).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept { return threads_; }

  /// Runs `fn(i)` for every i in [0, n), partitioned dynamically across
  /// the pool; blocks until all indices are done. `fn` must be safe to
  /// call concurrently for distinct indices. Exceptions from `fn` must not
  /// escape (workers would terminate the process).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      RROPT_EXCLUDES(mu_);

 private:
  void worker_loop();

  /// Claims the next index of region `generation`, storing it in `out`.
  /// Returns false when the region is exhausted — or when `claim_` already
  /// belongs to a *newer* region, which happens to a worker that woke for
  /// an old region but was preempted until after it completed. The
  /// generation check makes such stale claims impossible: the worker
  /// contributes nothing and re-parks instead of stealing an index (and
  /// invoking a dangling job pointer) from the region that replaced it.
  bool claim_index(std::uint64_t generation, std::size_t n, std::size_t& out);

  int threads_;
  std::vector<std::thread> workers_;

  /// Guards the region descriptor below: which job is current, how many
  /// indices it spans, and the region generation workers key their wakeups
  /// on. claim_ and completed_ are lock-free and deliberately outside the
  /// capability (their ordering story is the CAS protocol in claim_index).
  Mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ RROPT_GUARDED_BY(mu_) =
      nullptr;
  std::size_t job_n_ RROPT_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ RROPT_GUARDED_BY(mu_) = 0;
  /// Generation (high 32 bits) | next unclaimed index (low 32 bits), in
  /// one atomic so a claim can atomically verify it targets the current
  /// region. Limits a single region to < 2^32 indices; generation reuse
  /// would need a worker to sleep through 2^32 regions.
  std::atomic<std::uint64_t> claim_{0};
  std::atomic<std::size_t> completed_{0};
  bool stop_ RROPT_GUARDED_BY(mu_) = false;
};

}  // namespace rr::util
