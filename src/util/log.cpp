#include "util/log.h"

#include <atomic>
#include <cstdio>

#include "util/annotations.h"
#include "util/mutex.h"

namespace rr::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Sink state shared by every logging thread. The level check stays a
// lock-free atomic (it is the common case — discarded messages), but an
// emitting thread takes the mutex for the whole line so concurrent
// harness/bench threads never interleave mid-line, and so the sink
// pointer cannot be swapped out from under a write.
Mutex g_sink_mu;
std::FILE* g_sink RROPT_GUARDED_BY(g_sink_mu) = nullptr;  // nullptr = stderr
std::uint64_t g_lines RROPT_GUARDED_BY(g_sink_mu) = 0;

constexpr const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo:  return "info";
    case LogLevel::kWarn:  return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void set_log_sink(std::FILE* sink) {
  MutexLock lock(g_sink_mu);
  g_sink = sink;
}

std::uint64_t log_lines_emitted() {
  MutexLock lock(g_sink_mu);
  return g_lines;
}

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  MutexLock lock(g_sink_mu);
  std::FILE* out = g_sink != nullptr ? g_sink : stderr;
  std::fprintf(out, "[%s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
  ++g_lines;
}

}  // namespace rr::util
