// Figure builders: the exact series the paper's figures plot, produced
// from study results as analysis::FigureData. The bench binaries print
// these; tests validate their structure independently of any bench.
#pragma once

#include "analysis/series.h"
#include "measure/campaign.h"
#include "measure/cloud.h"
#include "measure/ratelimit.h"
#include "measure/reachability.h"
#include "measure/ttl_study.h"

namespace rr::measure {

/// Figure 1: CDFs of RR hops from the closest VP (all M-Lab / 10 greedy
/// M-Lab / 1 greedy M-Lab / all PlanetLab) over RR-responsive
/// destinations. `greedy` supplies the ranked M-Lab sites.
[[nodiscard]] analysis::FigureData figure1(const Campaign& campaign,
                                           const GreedySelection& greedy);

/// Figure 2: 2016 vs 2011 closest-VP CDFs, all VPs and common VPs.
[[nodiscard]] analysis::FigureData figure2(const Campaign& campaign_2016,
                                           const Campaign& campaign_2011);

/// Figure 3: hop-count CDFs for the first provider (GCE analogue) and the
/// M-Lab calibration distribution.
[[nodiscard]] analysis::FigureData figure3(const CloudStudyResult& result);

/// Figure 4: per-VP response counts at the two probing rates (sorted by
/// low-rate responses for readability).
[[nodiscard]] analysis::FigureData figure4(const RateLimitResult& result);

/// Figure 5: reply rate vs initial TTL for the in-range and out-of-range
/// destination classes.
[[nodiscard]] analysis::FigureData figure5(const TtlStudyResult& result);

/// Extra (§3.2): CDF of per-destination responding-VP counts.
[[nodiscard]] analysis::FigureData vp_response_figure(
    const Campaign& campaign);

}  // namespace rr::measure
