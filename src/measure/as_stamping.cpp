#include "measure/as_stamping.h"

#include <algorithm>

#include "util/log.h"
#include "util/rng.h"

namespace rr::measure {

std::size_t AsStampingResult::always() const {
  std::size_t count = 0;
  for (const auto& [as, tally] : per_as) {
    if (tally.seen_in_both == tally.seen_in_traceroute) ++count;
  }
  return count;
}

std::size_t AsStampingResult::sometimes() const {
  std::size_t count = 0;
  for (const auto& [as, tally] : per_as) {
    if (tally.seen_in_both > 0 &&
        tally.seen_in_both < tally.seen_in_traceroute) {
      ++count;
    }
  }
  return count;
}

std::size_t AsStampingResult::never() const {
  std::size_t count = 0;
  for (const auto& [as, tally] : per_as) {
    if (tally.seen_in_both == 0) ++count;
  }
  return count;
}

AsStampingResult audit_as_stamping(Testbed& testbed, const Campaign& campaign,
                                   const AsStampingConfig& config) {
  AsStampingResult result;
  const auto& topology = campaign.topology();
  util::Rng rng{config.seed};

  for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
    if (campaign.vps()[v]->platform != topo::Platform::kMLab) continue;

    // This VP's directly RR-reachable destinations.
    std::vector<std::size_t> reachable;
    for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
      if (campaign.at(v, d).rr_reachable()) reachable.push_back(d);
    }
    if (reachable.size() > config.max_dests_per_vp) {
      rng.shuffle(reachable);
      reachable.resize(config.max_dests_per_vp);
    }

    auto prober = testbed.make_prober(campaign.vps()[v]->host, config.pps);
    for (std::size_t d : reachable) {
      const auto target =
          topology.host_at(campaign.destinations()[d]).address;

      // Fresh ping-RR for the full recorded address list (the campaign
      // stores only compact observations).
      const auto rr = prober.probe(probe::ProbeSpec::ping_rr(target));
      if (rr.kind != probe::ResponseKind::kEchoReply ||
          !rr.rr_option_in_reply) {
        continue;
      }
      const auto dest_it =
          std::find(rr.rr_recorded.begin(), rr.rr_recorded.end(), target);
      if (dest_it == rr.rr_recorded.end()) continue;  // not reachable now

      // Forward RR AS set: addresses recorded before the destination's own
      // stamp, mapped to ASes with the public prefix->AS table.
      std::vector<topo::AsId> rr_ases;
      for (auto it = rr.rr_recorded.begin(); it != dest_it; ++it) {
        if (const auto as = topology.as_of_address(*it)) {
          rr_ases.push_back(*as);
        }
      }

      const auto trace =
          prober.traceroute(target, config.traceroute_max_ttl);
      if (!trace.reached) continue;

      // AS set seen on the traceroute (exclude the source and destination
      // ASes: the source side is below the first stamping router and the
      // destination stamps as a host, not a router).
      const topo::AsId dst_as =
          topology.host_at(campaign.destinations()[d]).as_id;
      const topo::AsId src_as =
          topology.host_at(campaign.vps()[v]->host).as_id;
      std::vector<topo::AsId> trace_ases;
      for (const auto& hop : trace.hops) {
        if (!hop.responded ||
            hop.kind != probe::ResponseKind::kTtlExceeded) {
          continue;
        }
        if (const auto as = topology.as_of_address(hop.address)) {
          if (*as == dst_as || *as == src_as) continue;
          if (trace_ases.empty() || trace_ases.back() != *as) {
            trace_ases.push_back(*as);
          }
        }
      }
      if (trace_ases.empty()) continue;

      ++result.pairs_compared;
      for (topo::AsId as : trace_ases) {
        auto& tally = result.per_as[as];
        ++tally.seen_in_traceroute;
        if (std::find(rr_ases.begin(), rr_ases.end(), as) != rr_ases.end()) {
          ++tally.seen_in_both;
        }
      }
    }
  }

  util::log_info() << "as-stamping audit: " << result.pairs_compared
                   << " pairs, " << result.total_ases() << " ASes";
  return result;
}

}  // namespace rr::measure
