// Responsiveness classification — Table 1 and the §3.2 analyses.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "measure/campaign.h"

namespace rr::measure {

struct ResponseCounts {
  std::uint64_t probed = 0;
  std::uint64_t ping_responsive = 0;
  std::uint64_t rr_responsive = 0;

  [[nodiscard]] double ping_rate() const noexcept {
    return probed ? static_cast<double>(ping_responsive) /
                        static_cast<double>(probed)
                  : 0.0;
  }
  [[nodiscard]] double rr_rate() const noexcept {
    return probed ? static_cast<double>(rr_responsive) /
                        static_cast<double>(probed)
                  : 0.0;
  }
  /// The paper's headline ratio: RR-responsive / ping-responsive.
  [[nodiscard]] double rr_over_ping() const noexcept {
    return ping_responsive ? static_cast<double>(rr_responsive) /
                                 static_cast<double>(ping_responsive)
                           : 0.0;
  }
};

/// Table 1: by-IP and by-AS counts, total and per AS type.
struct ResponseTable {
  /// Index 0 = total, 1.. = AsType order (Transit/Access, Enterprise,
  /// Content, Unknown).
  std::array<ResponseCounts, 1 + topo::kNumAsTypes> by_ip;
  std::array<ResponseCounts, 1 + topo::kNumAsTypes> by_as;
};

[[nodiscard]] ResponseTable build_response_table(const Campaign& campaign);

/// §3.2: per RR-responsive destination, the number of VPs whose ping-RR it
/// answered with the option copied.
[[nodiscard]] std::vector<int> responding_vp_counts(const Campaign& campaign);

/// Fraction of RR-responsive destinations answering more than
/// `threshold` VPs (the paper reports ~80% answering > 90 of 141).
[[nodiscard]] double fraction_answering_more_than(const Campaign& campaign,
                                                  int threshold);

}  // namespace rr::measure
