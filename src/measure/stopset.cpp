#include "measure/stopset.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/rng.h"

namespace rr::measure {
namespace {

// Key tags (2 bits at 56..57; bits 58+ stay zero pre-mix so the packed
// value is lossless in 58 bits).
constexpr std::uint64_t kTagLocal = 0;
constexpr std::uint64_t kTagGlobal = 1;
constexpr std::uint64_t kTagPathPoint = 2;
constexpr std::uint64_t kTagReachPoint = 3;

/// Bijective: distinct packed facts map to distinct keys, so the set has
/// no cross-fact collisions — only deliberate Doubletree sharing.
[[nodiscard]] std::uint64_t key_of(std::uint64_t packed) noexcept {
  const std::uint64_t mixed = util::mix64(packed);
  // 0 is the empty-slot sentinel; remap the single colliding input.
  return mixed != 0 ? mixed : 0x9e3779b97f4a7c15ULL;
}

}  // namespace

net::IPv4Address stopset_prefix_of(net::IPv4Address a) noexcept {
  return net::IPv4Address{a.value() & 0xffffff00u};
}

std::uint64_t local_stop_key(net::IPv4Address iface, int ttl) noexcept {
  return key_of((kTagLocal << 56) | (std::uint64_t{iface.value()} << 8) |
                (static_cast<std::uint64_t>(ttl) & 0xff));
}

std::uint64_t global_stop_key(net::IPv4Address iface,
                              net::IPv4Address dest) noexcept {
  // iface (32b) + dest /24 (24b) + tag = 58 bits.
  return key_of((kTagGlobal << 56) | (std::uint64_t{iface.value()} << 24) |
                (stopset_prefix_of(dest).value() >> 8));
}

std::uint64_t path_point_key(net::IPv4Address dest, int ttl) noexcept {
  return key_of((kTagPathPoint << 56) |
                (std::uint64_t{stopset_prefix_of(dest).value()} << 8) |
                (static_cast<std::uint64_t>(ttl) & 0xff));
}

std::uint64_t reach_point_key(net::IPv4Address dest, int ttl) noexcept {
  return key_of((kTagReachPoint << 56) |
                (std::uint64_t{stopset_prefix_of(dest).value()} << 8) |
                (static_cast<std::uint64_t>(ttl) & 0xff));
}

// ------------------------------------------------------------- StopSet

StopSet::StopSet(std::size_t expected_keys) {
  // 2x headroom over the expectation, split across stripes, each a power
  // of two and at least 64 slots; inserts cap at 3/4 load per stripe so
  // the lock-free probe loop always terminates on an empty slot.
  const std::size_t per_stripe =
      std::max<std::size_t>(64, (expected_keys * 2) / kStripes + 1);
  stripe_capacity_ = std::bit_ceil(per_stripe);
  stripe_mask_ = stripe_capacity_ - 1;
  stripe_limit_ = stripe_capacity_ - stripe_capacity_ / 4;
  slots_ = std::make_unique<std::atomic<std::uint64_t>[]>(kStripes *
                                                          stripe_capacity_);
  for (std::size_t i = 0; i < kStripes * stripe_capacity_; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
  stripes_ = std::make_unique<Stripe[]>(kStripes);
}

bool StopSet::contains(std::uint64_t key) const noexcept {
  // RROPT_HOT_BEGIN(stopset-contains): membership sits on the probing hot
  // path (one check per candidate probe); lock-free acquire loads over
  // the stripe's open-addressing run, no allocation, no mutex.
  const std::atomic<std::uint64_t>* slots = stripe_slots(stripe_of(key));
  std::size_t i = key & stripe_mask_;
  for (;;) {
    const std::uint64_t v = slots[i].load(std::memory_order_acquire);
    if (v == key) return true;
    if (v == 0) return false;
    i = (i + 1) & stripe_mask_;
  }
  // RROPT_HOT_END(stopset-contains)
}

bool StopSet::insert(std::uint64_t key) {
  const std::size_t s = stripe_of(key);
  Stripe& stripe = stripes_[s];
  std::atomic<std::uint64_t>* slots = stripe_slots(s);
  util::MutexLock lock(stripe.mu);
  std::size_t i = key & stripe_mask_;
  for (;;) {
    // Writers are serialized per stripe, so a relaxed read of our own
    // stripe is exact; the release store below pairs with readers'
    // acquire loads.
    const std::uint64_t v = slots[i].load(std::memory_order_relaxed);
    if (v == key) return false;
    if (v == 0) break;
    i = (i + 1) & stripe_mask_;
  }
  if (stripe.size >= stripe_limit_) {
    overflows_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots[i].store(key, std::memory_order_release);
  ++stripe.size;
  return true;
}

std::size_t StopSet::insert_all(std::span<const std::uint64_t> keys) {
  std::size_t inserted = 0;
  for (const std::uint64_t key : keys) {
    if (insert(key)) ++inserted;
  }
  return inserted;
}

std::size_t StopSet::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < kStripes; ++s) {
    util::MutexLock lock(stripes_[s].mu);
    total += stripes_[s].size;
  }
  return total;
}

// ------------------------------------------------------ DoubletreeGate

DoubletreeGate::DoubletreeGate(StopSet* local, StopSet* global, Config config)
    : local_(local), global_(global), config_(config) {
  if (config_.remember_paths) {
    chain_.resize(static_cast<std::size_t>(config_.max_ttl) + 1);
    chain_seen_.resize(static_cast<std::size_t>(config_.max_ttl) + 1, false);
  }
}

int DoubletreeGate::begin(net::IPv4Address target) {
  finish_trace();
  target_prefix_ = stopset_prefix_of(target);
  return config_.first_hop;
}

void DoubletreeGate::finish_trace() {
  if (!config_.remember_paths) return;
  // Memoize every (interface, TTL) fact whose below-chain this trace saw
  // completely: a later backward stop at that fact can then backfill the
  // exact hops probing would have re-discovered. Facts above the first
  // unresponsive hop are not certifiable and stay out of the local set.
  std::size_t complete_below = 0;  // hops 1..complete_below all seen
  while (complete_below + 1 < chain_seen_.size() &&
         chain_seen_[complete_below + 1]) {
    ++complete_below;
  }
  for (std::size_t ttl = 1; ttl <= complete_below; ++ttl) {
    const std::uint64_t key =
        local_stop_key(chain_[ttl], static_cast<int>(ttl));
    if (local_ != nullptr && local_->insert(key)) {
      memo_[key].assign(chain_.begin() + 1,
                        chain_.begin() + static_cast<std::ptrdiff_t>(ttl));
    }
  }
  std::fill(chain_seen_.begin(), chain_seen_.end(), false);
}

bool DoubletreeGate::stop_forward(net::IPv4Address iface, int ttl) {
  (void)ttl;
  if (global_ == nullptr || !config_.forward_stop) return false;
  ++stats_.checks;
  if (global_->contains(global_stop_key(iface, target_prefix_))) {
    ++stats_.hits;
    return true;
  }
  return false;
}

bool DoubletreeGate::stop_backward(net::IPv4Address iface, int ttl) {
  if (local_ == nullptr || !config_.backward_stop) return false;
  ++stats_.checks;
  const std::uint64_t key = local_stop_key(iface, ttl);
  if (!local_->contains(key)) return false;
  if (config_.remember_paths && memo_.find(key) == memo_.end()) {
    // Path-memo mode only stops where it can reproduce the skipped hops.
    return false;
  }
  ++stats_.hits;
  return true;
}

void DoubletreeGate::record(net::IPv4Address iface, int ttl) {
  if (config_.remember_paths) {
    if (ttl >= 1 && static_cast<std::size_t>(ttl) < chain_.size()) {
      chain_[static_cast<std::size_t>(ttl)] = iface;
      chain_seen_[static_cast<std::size_t>(ttl)] = true;
    }
  } else if (local_ != nullptr) {
    local_->insert(local_stop_key(iface, ttl));
  }
  if (global_ != nullptr) {
    const std::uint64_t key = global_stop_key(iface, target_prefix_);
    if (config_.live_global_inserts) {
      global_->insert(key);
    } else {
      pending_global_.push_back(key);
    }
  }
}

std::span<const net::IPv4Address> DoubletreeGate::backfill(
    net::IPv4Address iface, int ttl) {
  if (!config_.remember_paths) return {};
  const auto it = memo_.find(local_stop_key(iface, ttl));
  if (it == memo_.end()) return {};
  return it->second;
}

}  // namespace rr::measure
