// The base measurement campaign of §3.1:
//
//  * three plain pings to every destination from the single probe host,
//  * one ping-RR to every destination from every vantage point, probed in
//    a per-VP random order at a paced rate, with all VPs running
//    concurrently on the shared virtual timeline.
//
// The result is the dataset every later analysis consumes: per-destination
// ping responsiveness, a compact per-(VP, destination) Record Route
// observation, and the per-destination union of addresses ever seen in RR
// response headers (the input to alias resolution).
//
// Execution model: the campaign fans the per-VP probe streams across a
// worker pool (see util::ThreadPool and CampaignConfig::threads) in fixed
// chunks. All probe randomness is counter-based (sim::Network), so a
// probe's fate is a pure function of the probe; the one piece of shared
// mutable state — router token buckets — is resolved in a serial replay
// phase per chunk, in exactly the order a single-threaded run would have
// consumed tokens. Campaign contents are therefore bit-for-bit identical
// at any thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "measure/testbed.h"
#include "sim/fault.h"

namespace rr::measure {

/// Compact per-(VP, destination) record of one ping-RR exchange.
struct RrObservation {
  static constexpr std::uint8_t kResponded = 1 << 0;     // any reply came back
  static constexpr std::uint8_t kEchoReply = 1 << 1;     // reply was an echo
  static constexpr std::uint8_t kOptionPresent = 1 << 2;  // reply carried RR

  std::uint8_t flags = 0;
  std::uint8_t stamp_count = 0;  // addresses recorded in the reply's option
  std::uint8_t dest_slot = 0;    // 1-based slot holding the probed address
  std::uint8_t free_slots = 0;   // empty slots remaining in the reply

  [[nodiscard]] bool responded() const noexcept {
    return flags & kResponded;
  }
  /// The paper's RR-responsive test: an Echo Reply with the option copied.
  [[nodiscard]] bool rr_responsive() const noexcept {
    return (flags & kEchoReply) && (flags & kOptionPresent);
  }
  /// The paper's direct RR-reachable test: the probed address appears in
  /// the response header. dest_slot is then the RR hop distance.
  [[nodiscard]] bool rr_reachable() const noexcept { return dest_slot > 0; }

  [[nodiscard]] bool operator==(const RrObservation&) const = default;
};

struct CampaignConfig {
  double vp_pps = 20.0;      // §3.1: 20 probes/sec/machine
  int ping_attempts = 3;     // plain pings per destination
  std::uint64_t seed = 20161001;
  /// Probe only every k-th destination (1 = all); sub-sampling knob for
  /// fast iteration at large scales.
  int destination_stride = 1;
  /// Worker threads for campaign execution. 0 = inherit the testbed's
  /// setting, which itself defaults to RROPT_THREADS or the hardware
  /// concurrency; 1 = single-threaded. Results are identical at any value.
  int threads = 0;
  /// Fault-injection schedule applied to the network for this run (see
  /// sim/fault.h). The default is inert: a campaign with all fault rates
  /// at zero is bit-identical to one that predates fault injection.
  sim::FaultParams faults;
  /// Resolve campaign host paths through a compiled forwarding table
  /// (routing/fib.h) built per destination block instead of the shared
  /// path cache. Contents are bit-identical either way (asserted by the
  /// FIB equivalence test); this knob exists for A/B benchmarking and as
  /// a kill switch.
  bool use_compiled_fib = true;
  /// Probes driven through the network per batched walk in the ping-RR
  /// study (see sim::WalkBatch). 1 = the scalar probe_into path, kept as a
  /// differential baseline; values are clamped to
  /// [1, sim::WalkBatch::kMaxProbes]. Contents are bit-identical at any
  /// batch width: every per-probe decision is counter-based and token
  /// consumption is deferred to the serial replay either way.
  int probe_batch = 16;
  /// Replay each chunk's recorded token consumes sharded by router on the
  /// worker pool (buckets are per-router independent, so per-router
  /// canonical order equals global canonical order). Chunks where a kill
  /// would have suppressed later consumes fall back to the serial replay
  /// for that chunk, keeping results bit-identical to shard_replay=false.
  /// Effective only when the pool has more than one thread.
  bool shard_replay = true;
  /// Streaming mode: process destinations in blocks of this many,
  /// compiling the forwarding table per block, so resident path state is
  /// bounded by the block size instead of the census size. 0 = one block
  /// spanning every destination, which is bit-identical to the
  /// pre-streaming campaign. Nonzero blocks reorder the per-VP probe
  /// sequences (block-major), so contents differ from block size to block
  /// size — but not with thread count or the FIB knob.
  std::size_t stream_block = 0;

  /// Sizes `stream_block` from a resident-memory budget for the per-block
  /// state (compiled FIB spines + raw sighting buffers) instead of a fixed
  /// count. The model is a calibrated per-destination cost: each block
  /// destination pins roughly `n_vps` spine-pair slots plus two spines'
  /// worth of path hops and its raw sighting buffer — ~0.2 KiB per
  /// (VP, destination) at census shape. Clamped to [1024, 65536] so a tiny
  /// budget still makes progress and a huge one still streams.
  ///
  /// NOTE: the block size shapes dataset *contents* (block-major probe
  /// order), so budget-sized runs are only hash-comparable to runs with
  /// the same resolved block size. Flagship comparisons pin
  /// stream_block = 8192 for exactly that reason.
  [[nodiscard]] static std::size_t stream_block_for_budget(
      std::size_t budget_mib, std::size_t n_vps) {
    constexpr std::size_t kBytesPerVpDest = 200;
    const std::size_t per_dest = kBytesPerVpDest * (n_vps > 0 ? n_vps : 1);
    const std::size_t dests = (budget_mib * 1024 * 1024) / per_dest;
    return std::clamp<std::size_t>(dests, 1024, 65536);
  }
};

/// Aggregate allocation telemetry for one campaign run: how many times the
/// reusable probe buffers and reply scratches had to grow. Each stream's
/// counters go flat once it has seen its largest probe/reply geometry, so
/// identical back-to-back runs report identical (and small) totals —
/// asserted by the steady-state allocation test.
struct CampaignAllocStats {
  std::uint64_t probe_buffer_growths = 0;  // Prober::buffer_growths() sum
  std::uint64_t reply_scratch_growths = 0;  // SendContext scratch growths
  std::uint64_t probe_streams = 0;  // probers contributing to the totals
  /// Distinct recycled probe buffers behind the totals: one per scalar
  /// stream plus one per batch slot. Growth is bounded per *buffer* (each
  /// climbs to its steady geometry once), so this — not probe_streams — is
  /// the denominator the steady-state allocation test checks against.
  std::uint64_t probe_buffers = 0;
};

/// Wall-time split of the ping-RR study: pass A (parallel probe streams)
/// vs pass B (token replay — the campaign's serial tail when sharding is
/// off or falls back). The serial fraction pass_b / (pass_a + pass_b) is
/// the Amdahl ceiling benchmarks track; sharded_chunks /
/// serial_fallback_chunks count how often the replay actually ran wide.
struct CampaignPhaseStats {
  double pass_a_seconds = 0.0;
  double pass_b_seconds = 0.0;
  std::uint64_t sharded_chunks = 0;
  std::uint64_t serial_fallback_chunks = 0;
  /// Probes this campaign drove through the network (ping + ping-RR
  /// studies), from the network's own send accounting — the uniform
  /// probing-cost figure benches report alongside stop-set savings.
  std::uint64_t probes_sent = 0;

  [[nodiscard]] double serial_fraction() const noexcept {
    const double total = pass_a_seconds + pass_b_seconds;
    return total > 0.0 ? pass_b_seconds / total : 0.0;
  }
};

class Campaign {
 public:
  /// Runs the full campaign on a testbed.
  static Campaign run(Testbed& testbed, const CampaignConfig& config = {});

  // ---------------------------------------------------------------- shape
  [[nodiscard]] std::size_t num_vps() const noexcept { return vps_.size(); }
  [[nodiscard]] std::size_t num_destinations() const noexcept {
    return dests_.size();
  }
  [[nodiscard]] const std::vector<const topo::VantagePoint*>& vps()
      const noexcept {
    return vps_;
  }
  [[nodiscard]] const std::vector<topo::HostId>& destinations()
      const noexcept {
    return dests_;
  }
  [[nodiscard]] const topo::Topology& topology() const noexcept {
    return *topology_;
  }

  // ----------------------------------------------------------------- data
  [[nodiscard]] bool ping_responsive(std::size_t dest_index) const noexcept {
    return ping_responsive_[dest_index] != 0;
  }
  [[nodiscard]] const RrObservation& at(std::size_t vp_index,
                                        std::size_t dest_index)
      const noexcept {
    return observations_[vp_index * dests_.size() + dest_index];
  }
  /// Union of addresses ever recorded in RR responses for a destination.
  [[nodiscard]] const std::vector<net::IPv4Address>& recorded_union(
      std::size_t dest_index) const noexcept {
    return recorded_union_[dest_index];
  }

  // ------------------------------------------------------- derived basics
  // Per-destination summaries are folded once at the end of run(), so the
  // predicates analyses hammer in tight loops are O(1) lookups rather than
  // O(num_vps) scans over the observation matrix.

  /// Destination answered at least one VP's ping-RR with the option copied.
  [[nodiscard]] bool rr_responsive(std::size_t dest_index) const noexcept {
    return rr_responsive_bits_[dest_index] != 0;
  }
  /// Number of VPs whose ping-RR the destination answered (option copied).
  [[nodiscard]] int responding_vp_count(std::size_t dest_index)
      const noexcept {
    return responding_vp_counts_[dest_index];
  }
  /// Minimum RR hop distance over a VP subset; 0 when unreachable from all.
  [[nodiscard]] int min_rr_distance(
      std::size_t dest_index,
      const std::vector<std::size_t>& vp_subset) const noexcept;
  /// Direct RR-reachability (the probed address appeared for some VP).
  [[nodiscard]] bool rr_reachable(std::size_t dest_index) const noexcept {
    return rr_reachable_bits_[dest_index] != 0;
  }

  /// Destination indices fulfilling a basic predicate.
  [[nodiscard]] std::vector<std::size_t> rr_responsive_indices() const;
  [[nodiscard]] std::vector<std::size_t> rr_reachable_indices() const;

  /// Allocation telemetry from the run (see CampaignAllocStats).
  [[nodiscard]] const CampaignAllocStats& alloc_stats() const noexcept {
    return alloc_stats_;
  }

  /// Ping-RR study wall-time split and replay sharding telemetry.
  [[nodiscard]] const CampaignPhaseStats& phase_stats() const noexcept {
    return phase_stats_;
  }

  /// Surrenders the raw observation matrix (row-major [vp][destination] —
  /// the exact layout data::CampaignDataset stores). At census scale the
  /// matrix is ~300 MB; freezing a campaign into a dataset moves it
  /// instead of copying. Afterwards at() must not be called, but the
  /// derived per-destination summaries (rr_responsive & co) stay valid.
  [[nodiscard]] std::vector<RrObservation> take_observations() noexcept {
    return std::move(observations_);
  }

 private:
  /// Single pass over the observation matrix filling the per-destination
  /// summary caches above.
  void finalize_derived();

  std::shared_ptr<const topo::Topology> topology_;
  std::vector<const topo::VantagePoint*> vps_;
  std::vector<topo::HostId> dests_;
  std::vector<std::uint8_t> ping_responsive_;
  std::vector<RrObservation> observations_;
  std::vector<std::vector<net::IPv4Address>> recorded_union_;
  std::vector<std::uint8_t> rr_responsive_bits_;
  std::vector<std::uint8_t> rr_reachable_bits_;
  std::vector<std::uint16_t> responding_vp_counts_;
  CampaignAllocStats alloc_stats_;
  CampaignPhaseStats phase_stats_;
};

}  // namespace rr::measure
