// §4.2 TTL-limiting study (Figure 5): what initial TTL lets a ping-RR
// reach in-range destinations while expiring before it pesters the rest of
// the path?
//
// Each VP probes an equal number of destinations it can reach within the
// RR limit ("near") and RR-responsive destinations it cannot ("far"), with
// initial TTLs drawn from {3..23} and the default 64. A destination counts
// as responsive at a TTL if the probe produced an Echo Reply; TTL-exceeded
// errors still deliver the quoted RR data but count as "expired", which is
// the desired outcome for the far set.
#pragma once

#include <cstdint>
#include <vector>

#include "measure/campaign.h"
#include "measure/stopset.h"
#include "measure/testbed.h"

namespace rr::measure {

struct TtlStudyConfig {
  int ttl_min = 3;
  int ttl_max = 23;
  bool include_default_ttl = true;  // also probe at TTL 64
  std::size_t per_vp_per_class = 400;
  double pps = 20.0;
  std::uint64_t seed = 0x771;
  /// Redundancy-aware probing: seed a per-VP stop set (measure/stopset.h)
  /// with the expire/reach facts the census already established — a near
  /// destination stamped at RR slot s expires below TTL s and answers at
  /// or above it; a far one (nine slots full) expires through TTL 9 and
  /// answered the census's TTL-64 probe — and synthesize those outcomes
  /// instead of re-probing. The TTL *schedule* (shuffles, TTL draws) is
  /// identical either way; only the redundant sends are elided.
  bool use_stop_sets = true;
};

struct TtlStudyResult {
  struct Row {
    int ttl = 0;
    std::uint64_t near_sent = 0;
    std::uint64_t near_replied = 0;      // echo reply received
    std::uint64_t near_expired = 0;      // ttl-exceeded received
    std::uint64_t far_sent = 0;
    std::uint64_t far_replied = 0;
    std::uint64_t far_expired = 0;

    [[nodiscard]] double near_reply_rate() const noexcept {
      return near_sent ? static_cast<double>(near_replied) /
                             static_cast<double>(near_sent)
                       : 0.0;
    }
    [[nodiscard]] double far_reply_rate() const noexcept {
      return far_sent ? static_cast<double>(far_replied) /
                            static_cast<double>(far_sent)
                      : 0.0;
    }
  };
  std::vector<Row> rows;  // ordered by TTL

  /// Probing-cost accounting when stop sets are on (zeroed when off):
  /// probes_saved counts synthesized outcomes, probes_sent live sends.
  StopSetStats stats;

  [[nodiscard]] const Row* row_for(int ttl) const noexcept;
};

[[nodiscard]] TtlStudyResult ttl_study(Testbed& testbed,
                                       const Campaign& campaign,
                                       const TtlStudyConfig& config = {});

}  // namespace rr::measure
