// §4.1 rate-limiting study (Figure 4): probe a fixed sample of
// RR-responsive destinations from every VP at two rates and compare the
// per-VP response counts. VPs behind strict source-proximate limiters
// collapse at the higher rate; everyone else loses only a sliver.
#pragma once

#include <cstdint>
#include <vector>

#include "measure/campaign.h"
#include "measure/testbed.h"

namespace rr::measure {

struct RateLimitConfig {
  std::size_t sample_size = 100000;  // destinations drawn from RR-responsive
  double low_pps = 10.0;
  double high_pps = 100.0;
  /// Exclusion threshold as a fraction of the probed sample (the paper
  /// excluded VPs with < 1000 of 100k responses, i.e. 1%... in fact the
  /// paper's cut of 1000 responses is an absolute count; we scale it).
  double min_response_fraction = 0.01;
  std::uint64_t seed = 0x441;
};

struct RateLimitResult {
  struct VpRow {
    std::size_t vp_index = 0;
    std::uint64_t responses_low = 0;
    std::uint64_t responses_high = 0;

    [[nodiscard]] double drop_fraction() const noexcept {
      if (responses_low == 0) return 0.0;
      const double low = static_cast<double>(responses_low);
      const double high = static_cast<double>(responses_high);
      return low > high ? (low - high) / low : 0.0;
    }
  };
  std::vector<VpRow> rows;          // VPs above the exclusion threshold
  std::size_t excluded_vps = 0;     // below threshold at both rates
  std::size_t probed_destinations = 0;

  /// VPs losing more than `threshold` of their responses at the high rate.
  [[nodiscard]] std::size_t severely_limited(double threshold = 0.25) const;
};

[[nodiscard]] RateLimitResult rate_limit_study(
    Testbed& testbed, const Campaign& campaign,
    const RateLimitConfig& config = {});

}  // namespace rr::measure
