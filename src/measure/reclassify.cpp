#include "measure/reclassify.h"

#include <algorithm>

#include "util/log.h"
#include "util/rng.h"

namespace rr::measure {

std::vector<std::size_t> reclassification_candidates(
    const Campaign& campaign) {
  std::vector<std::size_t> out;
  for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
    if (campaign.rr_responsive(d) && !campaign.rr_reachable(d)) {
      out.push_back(d);
    }
  }
  return out;
}

std::vector<net::IPv4Address> midar_candidate_addresses(
    const Campaign& campaign) {
  std::vector<net::IPv4Address> out;
  for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
    if (!campaign.rr_responsive(d)) continue;
    out.push_back(
        campaign.topology().host_at(campaign.destinations()[d]).address);
    const auto& recorded = campaign.recorded_union(d);
    out.insert(out.end(), recorded.begin(), recorded.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ReclassifyResult reclassify(Testbed& testbed, const Campaign& campaign,
                            const AliasSets& aliases,
                            const ReclassifyConfig& config) {
  ReclassifyResult result;
  const auto candidates = reclassification_candidates(campaign);

  // ---------------------------------------------------------- alias test
  std::vector<std::uint8_t> recovered(campaign.num_destinations(), 0);
  for (std::size_t d : candidates) {
    const auto addr =
        campaign.topology().host_at(campaign.destinations()[d]).address;
    if (aliases.aliased_to_any(addr, campaign.recorded_union(d))) {
      recovered[d] = 1;
      result.via_alias.push_back(d);
    }
  }

  // -------------------------------------------------- quoted-packet test
  // For each remaining candidate, issue ping-RRudp from a few VPs that the
  // destination is known to answer; a port-unreachable whose quoted header
  // still has free RR slots proves in-range arrival.
  util::Rng rng{config.seed};
  for (std::size_t d : candidates) {
    if (recovered[d]) continue;
    const auto target =
        campaign.topology().host_at(campaign.destinations()[d]).address;

    // VPs that saw an option-copied reply from this destination.
    std::vector<std::size_t> responsive_vps;
    for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
      if (campaign.at(v, d).rr_responsive()) responsive_vps.push_back(v);
    }
    rng.shuffle(responsive_vps);
    const std::size_t tries = std::min<std::size_t>(
        responsive_vps.size(),
        static_cast<std::size_t>(std::max(config.udp_vps_per_dest, 1)));

    bool proven = false;
    for (std::size_t t = 0; t < tries && !proven; ++t) {
      auto prober = testbed.make_prober(
          campaign.vps()[responsive_vps[t]]->host, config.pps);
      for (int attempt = 0; attempt < config.udp_attempts && !proven;
           ++attempt) {
        ++result.udp_probes_sent;
        const auto r = prober.probe(probe::ProbeSpec::ping_rr_udp(target));
        if (r.kind != probe::ResponseKind::kPortUnreachable) continue;
        ++result.udp_responses;
        if (r.quoted_rr_present && r.quoted_rr_free_slots > 0) {
          proven = true;
        }
      }
    }
    if (proven) {
      recovered[d] = 1;
      result.via_quoted.push_back(d);
    }
  }

  util::log_info() << "reclassify: " << candidates.size() << " candidates, "
                   << result.via_alias.size() << " via alias, "
                   << result.via_quoted.size() << " via quoted RR";
  return result;
}

}  // namespace rr::measure
