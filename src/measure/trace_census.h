// Trace census: every VP traceroutes every destination (the paper's
// traceroute companion campaign to the ping-RR census), with optional
// Doubletree stop sets (measure/stopset.h) eliminating intra- and
// inter-monitor redundancy.
//
// Execution is round-based so the global stop set stays deterministic at
// any thread count: within a round each VP traces a fixed slice of its
// (seeded, per-VP shuffled) destination order on pool workers, reading a
// *frozen* global set and buffering its own discoveries; between rounds
// the buffered insertions are committed serially in canonical VP order —
// the deferred pattern the token-bucket replay established. A VP's probe
// stream is therefore a pure function of (seed, round size, stop-set
// contents at round boundaries), never of thread timing, and the census
// asserts that by folding every VP's schedule into schedule_hash.
#pragma once

#include <cstdint>
#include <vector>

#include "measure/stopset.h"
#include "measure/testbed.h"

namespace rr::measure {

struct TraceCensusConfig {
  /// Destinations traced per VP (0 = the topology's whole destination
  /// list). Each VP walks its own shuffled order over the same set.
  std::size_t per_vp_dests = 0;
  int max_ttl = 30;
  int attempts = 2;
  double pps = 20.0;
  std::uint64_t seed = 0x7261CE;
  /// Master switch: off = classic full traces (the baseline the probe
  /// reduction is measured against).
  bool use_stop_sets = true;
  int first_hop = 5;   // Doubletree's h (forward from h, backward h-1..1)
  int window = 4;      // forward-sweep batch width (TTLs per send_batch)
  /// Destinations each VP advances per commit round (global stop-set
  /// insertions become visible at round boundaries only). Smaller rounds
  /// surface inter-monitor facts sooner (more savings) at the cost of
  /// more serial commit points; 16 keeps the first blind round under a
  /// seventh of typical bench samples.
  std::size_t round = 16;
  int threads = 0;     // 0 = testbed default / RROPT_THREADS
};

struct TraceCensusResult {
  std::uint64_t traces = 0;
  std::uint64_t reached = 0;
  std::uint64_t probes_sent = 0;
  /// TTL slots the backward rule provably skipped (lower bound — forward
  /// stops save an unknowable remaining distance; benches measure the
  /// full reduction by running the census off-vs-on).
  std::uint64_t probes_saved = 0;
  StopSetStats stats;  // merged across VPs (membership checks / hits)

  /// Topology discovered by the census — the redundancy-independent
  /// analysis output: distinct TTL-exceeded responder interfaces and
  /// distinct directed router-router adjacencies, with order-independent
  /// hashes over the sorted sets.
  std::uint64_t interfaces = 0;
  std::uint64_t links = 0;
  std::uint64_t interface_hash = 0;
  std::uint64_t link_hash = 0;
  /// Per-VP probe schedules (every trace's target, probe count, stop
  /// TTLs, and hop list) folded in canonical VP order: bit-identical
  /// schedules <=> equal hashes, at any thread count.
  std::uint64_t schedule_hash = 0;

  std::uint64_t local_keys = 0;   // summed across VPs
  std::uint64_t global_keys = 0;
  std::uint64_t stopset_overflows = 0;
};

/// Runs the census on `testbed` (serial phase: no concurrent sends may be
/// in flight; the census manages its own worker pool).
[[nodiscard]] TraceCensusResult run_trace_census(Testbed& testbed,
                                                 const TraceCensusConfig& config);

}  // namespace rr::measure
