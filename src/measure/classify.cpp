#include "measure/classify.h"

#include <unordered_map>

namespace rr::measure {

ResponseTable build_response_table(const Campaign& campaign) {
  ResponseTable table;
  const auto& topology = campaign.topology();

  struct AsAgg {
    topo::AsType type = topo::AsType::kUnknown;
    bool ping = false;
    bool rr = false;
  };
  std::unordered_map<topo::AsId, AsAgg> per_as;

  for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
    const topo::Host& host =
        topology.host_at(campaign.destinations()[d]);
    const topo::AsType type = topology.as_at(host.as_id).type;
    const std::size_t type_index = 1 + static_cast<std::size_t>(type);
    const bool ping = campaign.ping_responsive(d);
    const bool rr = campaign.rr_responsive(d);

    for (const std::size_t idx : {std::size_t{0}, type_index}) {
      ++table.by_ip[idx].probed;
      if (ping) ++table.by_ip[idx].ping_responsive;
      if (rr) ++table.by_ip[idx].rr_responsive;
    }

    AsAgg& agg = per_as[host.as_id];
    agg.type = type;
    agg.ping = agg.ping || ping;
    agg.rr = agg.rr || rr;
  }

  for (const auto& [as_id, agg] : per_as) {
    const std::size_t type_index = 1 + static_cast<std::size_t>(agg.type);
    for (const std::size_t idx : {std::size_t{0}, type_index}) {
      ++table.by_as[idx].probed;
      if (agg.ping) ++table.by_as[idx].ping_responsive;
      if (agg.rr) ++table.by_as[idx].rr_responsive;
    }
  }
  return table;
}

std::vector<int> responding_vp_counts(const Campaign& campaign) {
  std::vector<int> counts;
  for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
    const int count = campaign.responding_vp_count(d);
    if (count > 0) counts.push_back(count);
  }
  return counts;
}

double fraction_answering_more_than(const Campaign& campaign, int threshold) {
  const auto counts = responding_vp_counts(campaign);
  if (counts.empty()) return 0.0;
  std::size_t above = 0;
  for (int count : counts) {
    if (count > threshold) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(counts.size());
}

}  // namespace rr::measure
