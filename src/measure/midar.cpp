#include "measure/midar.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"
#include "util/rng.h"

namespace rr::measure {

namespace {

struct Sample {
  double time = 0.0;
  std::uint16_t ip_id = 0;
};

struct Candidate {
  net::IPv4Address address;
  double velocity = 0.0;  // ids per second
  std::vector<Sample> samples;
};

/// Forward distance between two 16-bit counter readings.
std::uint32_t id_delta(std::uint16_t from, std::uint16_t to) noexcept {
  return static_cast<std::uint16_t>(to - from);
}

/// Monotonic Bounds Test over the merged series of two candidates: every
/// consecutive gap must advance by roughly velocity * dt (same shared
/// counter); independent counters have random offsets and blow through the
/// bound almost surely.
bool mbt_pass(const Candidate& a, const Candidate& b, double velocity,
              double slack) {
  struct Tagged {
    Sample sample;
    bool from_a;
  };
  std::vector<Tagged> merged;
  merged.reserve(a.samples.size() + b.samples.size());
  for (const auto& s : a.samples) merged.push_back({s, true});
  for (const auto& s : b.samples) merged.push_back({s, false});
  std::sort(merged.begin(), merged.end(), [](const Tagged& x, const Tagged& y) {
    return x.sample.time < y.sample.time;
  });
  // MIDAR only draws an inference when the two series genuinely overlap:
  // without enough alternation between sources, a pair can look consistent
  // by accident. Require several source switches in time order.
  int alternations = 0;
  for (std::size_t i = 1; i < merged.size(); ++i) {
    if (merged[i].from_a != merged[i - 1].from_a) ++alternations;
  }
  if (alternations < 3) return false;
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const double dt = merged[i].sample.time - merged[i - 1].sample.time;
    const double expected = velocity * dt;
    const double actual = static_cast<double>(
        id_delta(merged[i - 1].sample.ip_id, merged[i].sample.ip_id));
    // Relative headroom absorbs velocity-estimation error on long gaps;
    // the small absolute slack covers per-probe increments on short ones.
    // Keeping the absolute term tight is what rejects distinct counters
    // whose base offsets happen to be close.
    if (actual > expected * 1.3 + slack) return false;
    // The counter can also never regress: a "small negative" delta shows
    // up as a near-65536 jump, which the bound above rejects.
  }
  return true;
}

/// Targeted confirmation (MIDAR's corroboration stage): probe the pair in
/// a tight A,B,A,B,A interleave. On a shared counter every consecutive
/// delta is a couple of increments; on distinct counters the base-offset
/// difference shows up with opposite signs in the two directions, so at
/// least one direction jumps — unless the offsets collide within a few
/// ids, which is orders of magnitude rarer than the shard test's window.
bool confirm_pair(probe::Prober& prober, net::IPv4Address a,
                  net::IPv4Address b, double velocity, double slack) {
  std::vector<Sample> merged;
  for (int i = 0; i < 5; ++i) {
    const auto r = prober.probe(
        probe::ProbeSpec::ping((i % 2 == 0) ? a : b));
    if (r.kind != probe::ResponseKind::kEchoReply) return false;
    merged.push_back(Sample{r.send_time + r.rtt, r.reply_ip_id});
  }
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const double dt = merged[i].time - merged[i - 1].time;
    const double expected = velocity * std::max(dt, 0.0);
    const double actual = static_cast<double>(
        id_delta(merged[i - 1].ip_id, merged[i].ip_id));
    if (actual > expected * 1.3 + slack) return false;
  }
  return true;
}

}  // namespace

// ------------------------------------------------------------- AliasSets

std::uint32_t AliasSets::intern(net::IPv4Address addr) {
  const auto [it, inserted] =
      index_.try_emplace(addr.value(),
                         static_cast<std::uint32_t>(addresses_.size()));
  if (inserted) {
    addresses_.push_back(addr);
    parent_.push_back(it->second);
  }
  return it->second;
}

std::uint32_t AliasSets::find(std::uint32_t x) const {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

void AliasSets::add_pair(net::IPv4Address a, net::IPv4Address b) {
  const std::uint32_t ra = find(intern(a));
  const std::uint32_t rb = find(intern(b));
  if (ra != rb) parent_[ra] = rb;
  ++pairs_;
}

bool AliasSets::same_device(net::IPv4Address a, net::IPv4Address b) const {
  const auto ia = index_.find(a.value());
  const auto ib = index_.find(b.value());
  if (ia == index_.end() || ib == index_.end()) return false;
  return find(ia->second) == find(ib->second);
}

bool AliasSets::aliased_to_any(
    net::IPv4Address addr,
    const std::vector<net::IPv4Address>& candidates) const {
  const auto it = index_.find(addr.value());
  if (it == index_.end()) return false;
  const std::uint32_t root = find(it->second);
  for (const auto& candidate : candidates) {
    if (candidate == addr) continue;
    const auto jt = index_.find(candidate.value());
    if (jt != index_.end() && find(jt->second) == root) return true;
  }
  return false;
}

std::vector<std::vector<net::IPv4Address>> AliasSets::sets() const {
  std::unordered_map<std::uint32_t, std::vector<net::IPv4Address>> by_root;
  for (std::uint32_t i = 0; i < addresses_.size(); ++i) {
    by_root[find(i)].push_back(addresses_[i]);
  }
  std::vector<std::vector<net::IPv4Address>> out;
  for (auto& [root, members] : by_root) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return out;
}

// ------------------------------------------------------------- pipeline

AliasSets run_midar(probe::Prober& prober,
                    std::vector<net::IPv4Address> candidates,
                    const MidarConfig& config) {
  AliasSets sets;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  util::Rng rng{config.seed};
  rng.shuffle(candidates);
  if (candidates.size() > config.max_addresses) {
    candidates.resize(config.max_addresses);
  }

  prober.set_pps(config.pps);

  // ---------------------------------------------------- stage 1: estimate
  // Two probes per address, `estimation_gap_s` apart, processed in batches
  // so the gap is realized by interleaving rather than idle waiting.
  std::vector<Candidate> usable;
  const std::size_t batch = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.pps * config.estimation_gap_s));
  for (std::size_t begin = 0; begin < candidates.size(); begin += batch) {
    const std::size_t end = std::min(begin + batch, candidates.size());
    std::vector<Sample> first(end - begin);
    std::vector<std::uint8_t> have(end - begin, 0);
    for (std::size_t i = begin; i < end; ++i) {
      const auto r = prober.probe(probe::ProbeSpec::ping(candidates[i]));
      if (r.kind != probe::ResponseKind::kEchoReply) continue;
      first[i - begin] = Sample{r.send_time + r.rtt, r.reply_ip_id};
      have[i - begin] = 1;
    }
    for (std::size_t i = begin; i < end; ++i) {
      if (!have[i - begin]) continue;
      const auto r = prober.probe(probe::ProbeSpec::ping(candidates[i]));
      if (r.kind != probe::ResponseKind::kEchoReply) continue;
      const Sample second{r.send_time + r.rtt, r.reply_ip_id};
      const double dt = second.time - first[i - begin].time;
      if (dt <= 1e-6) continue;
      const double delta = static_cast<double>(
          id_delta(first[i - begin].ip_id, second.ip_id));
      if (delta > 20000.0) continue;  // wrapped or not a counter; discard
      Candidate c;
      c.address = candidates[i];
      c.velocity = delta / dt;
      c.samples.push_back(first[i - begin]);
      c.samples.push_back(second);
      usable.push_back(std::move(c));
    }
  }

  // --------------------------------------------------- stage 2: eliminate
  std::sort(usable.begin(), usable.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.velocity < b.velocity;
            });

  const std::size_t shard_size = std::max<std::size_t>(8, config.shard_size);
  const std::size_t step = shard_size / 2;  // 50% overlap between shards
  for (std::size_t begin = 0; begin < usable.size(); begin += step) {
    const std::size_t end = std::min(begin + shard_size, usable.size());

    // Interleaved rounds: fresh, closely spaced samples for the MBT.
    for (int round = 0; round < config.elimination_rounds; ++round) {
      for (std::size_t i = begin; i < end; ++i) {
        const auto r =
            prober.probe(probe::ProbeSpec::ping(usable[i].address));
        if (r.kind != probe::ResponseKind::kEchoReply) continue;
        usable[i].samples.push_back(Sample{r.send_time + r.rtt,
                                           r.reply_ip_id});
      }
    }

    // Pairwise MBT within the velocity window. Addresses are
    // velocity-sorted, so only a forward neighbourhood needs testing.
    for (std::size_t i = begin; i < end; ++i) {
      const Candidate& a = usable[i];
      for (std::size_t j = i + 1; j < end; ++j) {
        const Candidate& b = usable[j];
        const double scale = std::max({a.velocity, b.velocity, 1.0});
        if ((b.velocity - a.velocity) / scale > config.velocity_tolerance) {
          break;  // sorted: nothing further can match
        }
        if (sets.same_device(a.address, b.address)) continue;
        const double velocity = 0.5 * (a.velocity + b.velocity);
        if (mbt_pass(a, b, velocity, config.mbt_slack_ids) &&
            confirm_pair(prober, a.address, b.address, velocity,
                         config.confirm_slack_ids)) {
          sets.add_pair(a.address, b.address);
        }
      }
    }
    if (end == usable.size()) break;
  }

  util::log_info() << "midar: " << candidates.size() << " candidates, "
                   << usable.size() << " with usable IP-ID, "
                   << sets.pair_count() << " alias pairs";
  return sets;
}

}  // namespace rr::measure
