#include "measure/cloud.h"

#include <algorithm>

#include "util/log.h"
#include "util/rng.h"

namespace rr::measure {

namespace {

/// Hop count outside the provider AS: the paper counts path length from
/// the first hop past the provider's edge (the probe is assumed to tunnel
/// to the edge for free).
int external_hop_count(const probe::TracerouteResult& trace,
                       const topo::Topology& topology, topo::AsId cloud_as) {
  if (!trace.reached) return -1;
  int internal = 0;
  for (const auto& hop : trace.hops) {
    if (!hop.responded) break;  // conservatively stop discounting at a gap
    if (hop.kind != probe::ResponseKind::kTtlExceeded) break;
    const auto as = topology.as_of_address(hop.address);
    if (!as || *as != cloud_as) break;
    ++internal;
  }
  return static_cast<int>(trace.hops.size()) - internal;
}

}  // namespace

CloudStudyResult cloud_study(Testbed& testbed, const Campaign& campaign,
                             const CloudStudyConfig& config) {
  CloudStudyResult result;
  const auto& topology = campaign.topology();
  util::Rng rng{config.seed};

  // Destination samples, classified by the M-Lab campaign.
  std::vector<std::size_t> reachable, responsive_only;
  for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
    if (campaign.rr_reachable(d)) {
      reachable.push_back(d);
    } else if (campaign.rr_responsive(d)) {
      responsive_only.push_back(d);
    }
  }
  rng.shuffle(reachable);
  rng.shuffle(responsive_only);
  if (reachable.size() > config.max_reachable_dests) {
    reachable.resize(config.max_reachable_dests);
  }
  if (responsive_only.size() > config.max_responsive_dests) {
    responsive_only.resize(config.max_responsive_dests);
  }

  // ---------------------------------------------- M-Lab calibration CDF
  // Traceroute each RR-reachable destination from the M-Lab VP closest to
  // it (by RR distance).
  {
    std::vector<std::size_t> mlab_vps;
    for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
      if (campaign.vps()[v]->platform == topo::Platform::kMLab) {
        mlab_vps.push_back(v);
      }
    }
    std::vector<double> samples;
    for (std::size_t d : reachable) {
      std::size_t best_vp = campaign.num_vps();
      int best = 0;
      for (std::size_t v : mlab_vps) {
        const auto& obs = campaign.at(v, d);
        if (!obs.rr_reachable()) continue;
        if (best == 0 || obs.dest_slot < best) {
          best = obs.dest_slot;
          best_vp = v;
        }
      }
      if (best_vp == campaign.num_vps()) continue;
      auto prober = testbed.make_prober(campaign.vps()[best_vp]->host,
                                        config.pps);
      const auto target =
          topology.host_at(campaign.destinations()[d]).address;
      const auto trace =
          prober.traceroute(target, config.traceroute_max_ttl);
      if (trace.reached) {
        samples.push_back(static_cast<double>(trace.hops.size()));
      }
    }
    result.mlab_to_reachable = analysis::Cdf{std::move(samples)};
  }

  // ------------------------------------------------- per-provider CDFs
  for (const auto& cloud : topology.clouds()) {
    CloudStudyResult::ProviderData data;
    data.name = cloud.name;
    auto prober = testbed.make_prober(cloud.probe_host, config.pps);

    auto run_set = [&](const std::vector<std::size_t>& dests) {
      std::vector<double> samples;
      for (std::size_t d : dests) {
        const auto target =
            topology.host_at(campaign.destinations()[d]).address;
        const auto trace =
            prober.traceroute(target, config.traceroute_max_ttl);
        const int hops = external_hop_count(trace, topology, cloud.as_id);
        if (hops > 0) samples.push_back(static_cast<double>(hops));
      }
      return analysis::Cdf{std::move(samples)};
    };

    data.to_reachable = run_set(reachable);
    data.to_responsive = run_set(responsive_only);
    result.providers.push_back(std::move(data));
  }

  util::log_info() << "cloud study: " << result.providers.size()
                   << " providers, " << reachable.size() << " reachable + "
                   << responsive_only.size() << " responsive-only dests";
  return result;
}

}  // namespace rr::measure
