#include "measure/ratelimit.h"

#include <algorithm>

#include "util/log.h"
#include "util/rng.h"

namespace rr::measure {

std::size_t RateLimitResult::severely_limited(double threshold) const {
  std::size_t count = 0;
  for (const auto& row : rows) {
    if (row.drop_fraction() > threshold) ++count;
  }
  return count;
}

RateLimitResult rate_limit_study(Testbed& testbed, const Campaign& campaign,
                                 const RateLimitConfig& config) {
  RateLimitResult result;
  util::Rng rng{config.seed};

  // Sample of previously RR-responsive destinations.
  auto responsive = campaign.rr_responsive_indices();
  rng.shuffle(responsive);
  if (responsive.size() > config.sample_size) {
    responsive.resize(config.sample_size);
  }
  result.probed_destinations = responsive.size();

  const std::size_t n_vps = campaign.num_vps();
  std::vector<std::uint64_t> counts_low(n_vps, 0), counts_high(n_vps, 0);

  for (const bool high_rate : {false, true}) {
    const double pps = high_rate ? config.high_pps : config.low_pps;
    auto& counts = high_rate ? counts_high : counts_low;

    testbed.network().reset();
    std::vector<probe::Prober> probers;
    std::vector<std::vector<std::uint32_t>> orders(n_vps);
    probers.reserve(n_vps);
    for (std::size_t v = 0; v < n_vps; ++v) {
      probers.push_back(testbed.make_prober(campaign.vps()[v]->host, pps));
      auto& order = orders[v];
      order.resize(responsive.size());
      for (std::size_t i = 0; i < responsive.size(); ++i) {
        order[i] = static_cast<std::uint32_t>(i);
      }
      rng.shuffle(order);  // §4.1: random order per VP
    }

    for (std::size_t k = 0; k < responsive.size(); ++k) {
      for (std::size_t v = 0; v < n_vps; ++v) {
        const std::size_t d = responsive[orders[v][k]];
        const auto target = campaign.topology()
                                .host_at(campaign.destinations()[d])
                                .address;
        const auto r = probers[v].probe(probe::ProbeSpec::ping_rr(target));
        if (r.kind == probe::ResponseKind::kEchoReply &&
            r.rr_option_in_reply) {
          ++counts[v];
        }
      }
    }
  }

  const auto threshold = static_cast<std::uint64_t>(
      config.min_response_fraction *
      static_cast<double>(responsive.size()));
  for (std::size_t v = 0; v < n_vps; ++v) {
    if (counts_low[v] < threshold && counts_high[v] < threshold) {
      ++result.excluded_vps;
      continue;
    }
    result.rows.push_back(
        RateLimitResult::VpRow{v, counts_low[v], counts_high[v]});
  }

  util::log_info() << "rate-limit study: " << result.rows.size()
                   << " VPs kept, " << result.excluded_vps << " excluded, "
                   << result.severely_limited() << " severely limited";
  return result;
}

}  // namespace rr::measure
