#include "measure/campaign.h"

#include <algorithm>

#include "util/log.h"
#include "util/rng.h"

namespace rr::measure {

namespace {

void merge_recorded(std::vector<net::IPv4Address>& into,
                    const std::vector<net::IPv4Address>& addresses) {
  for (const auto& addr : addresses) {
    const auto it = std::lower_bound(into.begin(), into.end(), addr);
    if (it == into.end() || *it != addr) into.insert(it, addr);
  }
}

}  // namespace

Campaign Campaign::run(Testbed& testbed, const CampaignConfig& config) {
  Campaign campaign;
  campaign.topology_ = testbed.topology_ptr();
  campaign.vps_ = testbed.vps();

  const auto all_dests = testbed.topology().destinations();
  const int stride = std::max(1, config.destination_stride);
  for (std::size_t i = 0; i < all_dests.size();
       i += static_cast<std::size_t>(stride)) {
    campaign.dests_.push_back(all_dests[i]);
  }
  const std::size_t n_dests = campaign.dests_.size();
  const std::size_t n_vps = campaign.vps_.size();

  campaign.ping_responsive_.assign(n_dests, 0);
  campaign.observations_.assign(n_vps * n_dests, RrObservation{});
  campaign.recorded_union_.assign(n_dests, {});

  testbed.network().reset();

  // ------------------------------------------------- plain-ping study
  // Three pings per destination from the probe host (USC in the paper).
  {
    auto prober = testbed.make_prober(testbed.topology().probe_host(),
                                      config.vp_pps);
    for (std::size_t d = 0; d < n_dests; ++d) {
      const auto target =
          testbed.topology().host_at(campaign.dests_[d]).address;
      for (int attempt = 0; attempt < config.ping_attempts; ++attempt) {
        const auto result = prober.probe(probe::ProbeSpec::ping(target));
        if (result.kind == probe::ResponseKind::kEchoReply) {
          campaign.ping_responsive_[d] = 1;
          break;
        }
      }
    }
  }

  // ---------------------------------------------------- ping-RR study
  // Every VP probes every destination once, in its own random order; all
  // VPs run concurrently on the shared virtual timeline, so shared rate
  // limiters see the aggregate load.
  util::Rng order_rng{config.seed};
  std::vector<probe::Prober> probers;
  probers.reserve(n_vps);
  std::vector<std::vector<std::uint32_t>> orders(n_vps);
  for (std::size_t v = 0; v < n_vps; ++v) {
    probers.push_back(
        testbed.make_prober(campaign.vps_[v]->host, config.vp_pps));
    auto& order = orders[v];
    order.resize(n_dests);
    for (std::size_t d = 0; d < n_dests; ++d) {
      order[d] = static_cast<std::uint32_t>(d);
    }
    order_rng.shuffle(order);
  }

  for (std::size_t k = 0; k < n_dests; ++k) {
    for (std::size_t v = 0; v < n_vps; ++v) {
      const std::size_t d = orders[v][k];
      const auto target =
          testbed.topology().host_at(campaign.dests_[d]).address;
      const auto result =
          probers[v].probe(probe::ProbeSpec::ping_rr(target));

      RrObservation& obs = campaign.observations_[v * n_dests + d];
      if (!result.responded()) continue;
      obs.flags |= RrObservation::kResponded;
      if (result.kind == probe::ResponseKind::kEchoReply) {
        obs.flags |= RrObservation::kEchoReply;
      }
      if (result.rr_option_in_reply) {
        obs.flags |= RrObservation::kOptionPresent;
        obs.stamp_count =
            static_cast<std::uint8_t>(result.rr_recorded.size());
        obs.free_slots = static_cast<std::uint8_t>(result.rr_free_slots);
        const auto it = std::find(result.rr_recorded.begin(),
                                  result.rr_recorded.end(), target);
        if (it != result.rr_recorded.end()) {
          obs.dest_slot = static_cast<std::uint8_t>(
              (it - result.rr_recorded.begin()) + 1);
        }
        merge_recorded(campaign.recorded_union_[d], result.rr_recorded);
      }
    }
  }

  util::log_info() << "campaign complete: " << n_vps << " VPs x " << n_dests
                   << " destinations";
  return campaign;
}

bool Campaign::rr_responsive(std::size_t dest_index) const noexcept {
  for (std::size_t v = 0; v < vps_.size(); ++v) {
    if (at(v, dest_index).rr_responsive()) return true;
  }
  return false;
}

int Campaign::responding_vp_count(std::size_t dest_index) const noexcept {
  int count = 0;
  for (std::size_t v = 0; v < vps_.size(); ++v) {
    if (at(v, dest_index).rr_responsive()) ++count;
  }
  return count;
}

int Campaign::min_rr_distance(
    std::size_t dest_index,
    const std::vector<std::size_t>& vp_subset) const noexcept {
  int best = 0;
  for (std::size_t v : vp_subset) {
    const RrObservation& obs = at(v, dest_index);
    if (!obs.rr_reachable()) continue;
    if (best == 0 || obs.dest_slot < best) best = obs.dest_slot;
  }
  return best;
}

bool Campaign::rr_reachable(std::size_t dest_index) const noexcept {
  for (std::size_t v = 0; v < vps_.size(); ++v) {
    if (at(v, dest_index).rr_reachable()) return true;
  }
  return false;
}

std::vector<std::size_t> Campaign::rr_responsive_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t d = 0; d < dests_.size(); ++d) {
    if (rr_responsive(d)) out.push_back(d);
  }
  return out;
}

std::vector<std::size_t> Campaign::rr_reachable_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t d = 0; d < dests_.size(); ++d) {
    if (rr_reachable(d)) out.push_back(d);
  }
  return out;
}

}  // namespace rr::measure
