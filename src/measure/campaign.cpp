#include "measure/campaign.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <utility>

#include "util/log.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rr::measure {

namespace {

/// One optimistic ping-RR exchange awaiting token-bucket resolution.
/// Buffers (recorded, trace.events) are recycled across chunks via swap.
struct PendingProbe {
  std::uint32_t dest = 0;
  RrObservation obs;
  std::vector<net::IPv4Address> recorded;
  sim::ProbeTrace trace;
  sim::NetCounters counters;
};

/// The counters a *serial* run would have recorded for a probe whose
/// deferred token consume failed: everything past the policed router never
/// happened, so keep only the optimistic counters the walk accrued before
/// the kill point (which the trace's counted_* flags remember) and charge
/// the policed drop itself. If a fault doomed the exchange *before* the
/// failed consume, the serial run charged the fault's own drop at the fire
/// point and suppressed the policed one; a doom recorded after the kill
/// point never happened serially. Works for any exchange — echo replies,
/// ICMP errors, UDP port unreachables — not just ping-RR.
sim::NetCounters killed_counters(const sim::ProbeTrace& trace,
                                 bool killed_reply, std::size_t kill_index) {
  sim::NetCounters serial;
  serial.sent = 1;
  if (trace.doomed && kill_index >= trace.doom_after_events) {
    if (trace.doom_charged_loss) {
      serial.dropped_loss = 1;
    } else {
      serial.dropped_rate_limit = 1;
    }
  } else {
    serial.dropped_rate_limit = 1;
  }
  if (killed_reply) {
    // The forward leg completed and the response was generated; only the
    // reply leg (and its counted_response) is rolled back. A forward-leg
    // doom left these flags unset, so a ghost exchange keeps none.
    serial.delivered = trace.counted_delivered ? 1 : 0;
    serial.ttl_errors = trace.counted_ttl_error ? 1 : 0;
    serial.port_unreachables = trace.counted_port_unreachable ? 1 : 0;
  }
  return serial;
}

/// One recorded token consume, flattened out of its probe's trace for the
/// sharded replay: `orig` is the event's index in the chunk's canonical
/// (step, VP, event) enumeration, which a stable sort by router preserves
/// within each router — and per-router canonical order is all a bucket can
/// observe.
struct ConsumeRef {
  topo::RouterId router = topo::kNoRouter;
  double time = 0.0;
  std::uint32_t orig = 0;
};

/// Folds a probe result into the compact observation, extracting the
/// recorded RR addresses for the per-destination union.
RrObservation observe(const probe::ProbeResult& result,
                      net::IPv4Address target,
                      std::vector<net::IPv4Address>& recorded_out) {
  RrObservation obs;
  recorded_out.clear();
  if (!result.responded()) return obs;
  obs.flags |= RrObservation::kResponded;
  if (result.kind == probe::ResponseKind::kEchoReply) {
    obs.flags |= RrObservation::kEchoReply;
  }
  if (result.rr_option_in_reply) {
    obs.flags |= RrObservation::kOptionPresent;
    obs.stamp_count = static_cast<std::uint8_t>(result.rr_recorded.size());
    obs.free_slots = static_cast<std::uint8_t>(result.rr_free_slots);
    const auto it = std::find(result.rr_recorded.begin(),
                              result.rr_recorded.end(), target);
    if (it != result.rr_recorded.end()) {
      obs.dest_slot =
          static_cast<std::uint8_t>((it - result.rr_recorded.begin()) + 1);
    }
    recorded_out.assign(result.rr_recorded.begin(), result.rr_recorded.end());
  }
  return obs;
}

}  // namespace

Campaign Campaign::run(Testbed& testbed, const CampaignConfig& config) {
  Campaign campaign;
  campaign.topology_ = testbed.topology_ptr();
  const auto testbed_vps = testbed.vps();
  campaign.vps_.assign(testbed_vps.begin(), testbed_vps.end());

  const auto all_dests = testbed.topology().destinations();
  const int stride = std::max(1, config.destination_stride);
  for (std::size_t i = 0; i < all_dests.size();
       i += static_cast<std::size_t>(stride)) {
    campaign.dests_.push_back(all_dests[i]);
  }
  const std::size_t n_dests = campaign.dests_.size();
  const std::size_t n_vps = campaign.vps_.size();

  campaign.ping_responsive_.assign(n_dests, 0);
  campaign.observations_.assign(n_vps * n_dests, RrObservation{});
  campaign.recorded_union_.assign(n_dests, {});

  sim::Network& net = testbed.network();
  net.reset();
  const std::uint64_t net_sent_before = net.counters().sent;
  // Install the run's fault schedule (inert by default). Setting it every
  // run also clears any plan a previous campaign left on the network.
  net.set_fault_plan(sim::FaultPlan{config.faults});

  const int threads = util::resolve_thread_count(
      config.threads > 0 ? config.threads : testbed.threads());
  util::ThreadPool pool(threads);
  const double interval = 1.0 / config.vp_pps;
  const topo::HostId probe_host = testbed.topology().probe_host();
  const int attempts = std::max(1, config.ping_attempts);

  // Hosts that originate campaign probes — the compiled forwarding
  // table's row set. Stable across blocks.
  std::vector<topo::HostId> fib_sources;
  if (config.use_compiled_fib) {
    fib_sources.reserve(n_vps + 1);
    for (const auto* vp : campaign.vps_) fib_sources.push_back(vp->host);
    if (probe_host != topo::kNoHost) fib_sources.push_back(probe_host);
  }

  // Streaming: destinations are processed in blocks (stream_block == 0 is
  // one block over the whole census, bit-identical to the pre-streaming
  // campaign). Per block: compile the forwarding table for the block's
  // destinations, run the plain-ping sweep and the ping-RR study over the
  // block, then fold the block's RR sightings into the per-destination
  // unions. Probers, their virtual clocks, the token buckets, and the
  // per-destination ping slots all carry across blocks, so the schedule a
  // destination experiences depends only on its global index and the
  // per-VP probe order — not on how blocks chop the census.
  const std::size_t block_size =
      config.stream_block == 0 ? std::max<std::size_t>(1, n_dests)
                               : config.stream_block;

  // ping-RR state persisting across blocks (see the study comment below).
  util::Rng order_rng{config.seed};
  std::vector<probe::Prober> probers;
  probers.reserve(n_vps);
  for (std::size_t v = 0; v < n_vps; ++v) {
    probers.push_back(
        testbed.make_prober(campaign.vps_[v]->host, config.vp_pps));
  }
  constexpr std::size_t kChunkSteps = 64;
  // Probes driven through the network per batched walk; 1 selects the
  // scalar probe_into path bit-for-bit (the differential baseline).
  const std::size_t batch = static_cast<std::size_t>(
      std::clamp(config.probe_batch, 1,
                 static_cast<int>(sim::WalkBatch::kMaxProbes)));
  std::vector<std::vector<std::uint32_t>> orders(n_vps);
  // Slot i of VP v lives at v * batch + i; each batch slot needs its own
  // context so counters and traces stay per-probe. All reused per chunk.
  std::vector<sim::SendContext> contexts(n_vps * batch);
  std::vector<probe::ProbeResult> results(n_vps * batch);
  std::vector<probe::ProbeSpec> specs(n_vps * batch);
  // Probe (j, v)'s pending slot is v * kChunkSteps + j: each VP owns one
  // contiguous row, so pass A's writers touch disjoint cache lines instead
  // of interleaving every VP's slots within a step.
  std::vector<PendingProbe> pending(kChunkSteps * n_vps);
  const bool shard_replay = config.shard_replay && threads > 1;
  // Sharded-replay scratch, reused across chunks.
  std::vector<ConsumeRef> refs;
  std::vector<std::uint32_t> probe_first;
  std::vector<std::uint8_t> consumed;
  std::vector<std::size_t> group_start;
  std::vector<sim::TokenBucket> bucket_copies;
  // Raw per-destination address sightings, deduplicated per block.
  std::vector<std::vector<net::IPv4Address>> collected(n_dests);

  for (std::size_t block_begin = 0; block_begin < n_dests;
       block_begin += block_size) {
    const std::size_t block_end = std::min(block_begin + block_size, n_dests);
    const std::size_t block_len = block_end - block_begin;

    std::shared_ptr<const route::CompiledFib> fib;
    if (config.use_compiled_fib) {
      // Release the previous block's table *before* compiling the next
      // one: the network held the only remaining reference, so this frees
      // the old spine arena immediately and two block tables never
      // coexist — peak RSS sees one compiled FIB, not two.
      net.set_compiled_fib(nullptr);
      fib = route::CompiledFib::build(
          net.stitcher(), fib_sources,
          std::span<const topo::HostId>{campaign.dests_}.subspan(block_begin,
                                                                 block_len));
    }
    net.set_compiled_fib(fib);

    // ------------------------------------------------- plain-ping study
    // Three pings per destination from the probe host (USC in the paper).
    // Each destination owns a reserved slot block keyed by its *global*
    // index, so its probe times — and therefore its outcome — do not
    // depend on how many attempts earlier destinations consumed, nor on
    // the streaming block size. Plain pings carry no IP options, so no
    // token bucket is involved and destinations are fully independent:
    // the sweep parallelizes over destination ranges with no resolution
    // phase.
    {
      constexpr std::size_t kPingChunk = 256;
      const std::size_t n_chunks = (block_len + kPingChunk - 1) / kPingChunk;
      std::vector<sim::NetCounters> tallies(n_chunks);
      std::vector<std::uint64_t> chunk_buf_growths(n_chunks, 0);
      std::vector<std::uint64_t> chunk_scratch_growths(n_chunks, 0);
      pool.parallel_for(n_chunks, [&](std::size_t chunk) {
        const std::size_t begin = block_begin + chunk * kPingChunk;
        const std::size_t end = std::min(begin + kPingChunk, block_end);
        auto prober = testbed.make_prober(probe_host, config.vp_pps);
        sim::SendContext ctx;
        probe::ProbeResult result;
        for (std::size_t d = begin; d < end; ++d) {
          const auto target =
              testbed.topology().host_at(campaign.dests_[d]).address;
          prober.set_clock(static_cast<double>(attempts) *
                           static_cast<double>(d) * interval);
          for (int attempt = 0; attempt < attempts; ++attempt) {
            prober.probe_into(probe::ProbeSpec::ping(target), &ctx, result);
            if (result.kind == probe::ResponseKind::kEchoReply) {
              campaign.ping_responsive_[d] = 1;
              break;
            }
          }
        }
        tallies[chunk] = ctx.counters;
        chunk_buf_growths[chunk] = prober.buffer_growths();
        chunk_scratch_growths[chunk] = ctx.scratch.growths;
      });
      for (std::size_t chunk = 0; chunk < n_chunks; ++chunk) {
        net.merge_counters(tallies[chunk]);
        campaign.alloc_stats_.probe_buffer_growths +=
            chunk_buf_growths[chunk];
        campaign.alloc_stats_.reply_scratch_growths +=
            chunk_scratch_growths[chunk];
      }
      campaign.alloc_stats_.probe_streams += n_chunks;
      campaign.alloc_stats_.probe_buffers += n_chunks;
    }

    // ---------------------------------------------------- ping-RR study
    // Every VP probes every destination of the block once, in its own
    // random order; all VPs run concurrently on the shared virtual
    // timeline, so shared rate limiters see the aggregate load. Prober
    // clocks continue across blocks: with one block, the schedule is the
    // pre-streaming campaign's exactly.
    //
    // Execution is chunked: pass A advances every VP's probe stream a
    // fixed number of steps in parallel (per-VP prober and context,
    // counter-based randomness — no shared mutable state), recording
    // would-be token-bucket consumes instead of performing them. Pass B
    // then replays those consumes serially in (step, VP, event) order —
    // the exact order a single-threaded live run consumes tokens —
    // cancelling any probe or reply whose consume fails and substituting
    // the counters the serial run would have produced. Chunk size is
    // fixed, and chunk boundaries are invisible to both passes, so
    // contents are identical at any thread count.
    for (std::size_t v = 0; v < n_vps; ++v) {
      auto& order = orders[v];
      order.resize(block_len);
      for (std::size_t d = 0; d < block_len; ++d) {
        order[d] = static_cast<std::uint32_t>(block_begin + d);
      }
      order_rng.shuffle(order);
    }

    for (std::size_t k0 = 0; k0 < block_len; k0 += kChunkSteps) {
      const std::size_t steps = std::min(kChunkSteps, block_len - k0);

      // Pass A: per-VP probe streams, one worker at a time per VP, each
      // stream advancing `batch` probes per walk through the network.
      const auto pass_a_begin = std::chrono::steady_clock::now();  // rropt-lint: allow(no-wallclock)
      pool.parallel_for(n_vps, [&](std::size_t v) {
        PendingProbe* vp_pending = pending.data() + v * kChunkSteps;
        for (std::size_t j0 = 0; j0 < steps; j0 += batch) {
          const std::size_t m = std::min(batch, steps - j0);
          for (std::size_t i = 0; i < m; ++i) {
            const std::size_t d = orders[v][k0 + j0 + i];
            vp_pending[j0 + i].dest = static_cast<std::uint32_t>(d);
            specs[v * batch + i] = probe::ProbeSpec::ping_rr(
                campaign.topology_->host_at(campaign.dests_[d]).address);
            contexts[v * batch + i].counters = sim::NetCounters{};
          }
          if (batch == 1) {
            // Scalar baseline: exactly the pre-batching exchange.
            probers[v].probe_into(specs[v], &contexts[v], results[v]);
          } else {
            probers[v].probe_batch_into(
                std::span<const probe::ProbeSpec>{specs.data() + v * batch,
                                                  m},
                std::span<sim::SendContext>{contexts.data() + v * batch, m},
                std::span<probe::ProbeResult>{results.data() + v * batch,
                                              m});
          }
          for (std::size_t i = 0; i < m; ++i) {
            PendingProbe& p = vp_pending[j0 + i];
            sim::SendContext& ctx = contexts[v * batch + i];
            p.counters = ctx.counters;
            std::swap(p.trace, ctx.trace);
            p.obs = observe(results[v * batch + i],
                            specs[v * batch + i].target, p.recorded);
          }
        }
      });
      campaign.phase_stats_.pass_a_seconds +=
          std::chrono::duration<double>(
              std::chrono::steady_clock::now() - pass_a_begin)  // rropt-lint: allow(no-wallclock)
              .count();

      // Pass B: token replay + result application. Buckets are per-router
      // and independent, and the canonical (step, VP, event) order
      // restricted to one router is all that router's bucket can observe —
      // so the replay shards by router across the pool, each shard feeding
      // a campaign-owned copy of its bucket. One serial-semantics wrinkle:
      // a kill suppresses the probe's *later* events, which the optimistic
      // shards still attempted. When that happens anywhere in the chunk
      // (rare — kills themselves are rare), the shard results are
      // discarded unused and the chunk falls back to the classic serial
      // replay against the untouched network buckets; otherwise the shards
      // attempted exactly the serial event set and the copies are
      // committed. Either way, bit-identical to shard_replay = false.
      const auto pass_b_begin = std::chrono::steady_clock::now();  // rropt-lint: allow(no-wallclock)
      bool resolved_sharded = false;
      if (shard_replay) {
        refs.clear();
        probe_first.clear();
        for (std::size_t j = 0; j < steps; ++j) {
          for (std::size_t v = 0; v < n_vps; ++v) {
            probe_first.push_back(static_cast<std::uint32_t>(refs.size()));
            for (const auto& ev : pending[v * kChunkSteps + j].trace.events) {
              refs.push_back({ev.router, ev.time,
                              static_cast<std::uint32_t>(refs.size())});
            }
          }
        }
        probe_first.push_back(static_cast<std::uint32_t>(refs.size()));
        consumed.assign(refs.size(), 0);
        std::stable_sort(refs.begin(), refs.end(),
                         [](const ConsumeRef& a, const ConsumeRef& b) {
                           return a.router < b.router;
                         });
        group_start.clear();
        bucket_copies.clear();
        for (std::size_t i = 0; i < refs.size(); ++i) {
          if (i == 0 || refs[i].router != refs[i - 1].router) {
            group_start.push_back(i);
            bucket_copies.push_back(net.options_bucket_state(refs[i].router));
          }
        }
        group_start.push_back(refs.size());
        const std::size_t n_groups = bucket_copies.size();
        pool.parallel_for(n_groups, [&](std::size_t g) {
          sim::TokenBucket bucket = bucket_copies[g];
          for (std::size_t i = group_start[g]; i < group_start[g + 1]; ++i) {
            consumed[refs[i].orig] = bucket.try_consume(refs[i].time) ? 1 : 0;
          }
          bucket_copies[g] = bucket;
        });
        // Validate: a serial replay attempts a probe's events only up to
        // (and including) its first failure. If every first failure is the
        // probe's last event, the shards attempted exactly the serial set.
        bool phantom = false;
        const std::size_t n_probes = steps * n_vps;
        for (std::size_t pi = 0; pi < n_probes && !phantom; ++pi) {
          const std::size_t begin = probe_first[pi];
          const std::size_t count = probe_first[pi + 1] - begin;
          for (std::size_t e = 0; e < count; ++e) {
            if (consumed[begin + e] == 0) {
              phantom = e + 1 < count;
              break;
            }
          }
        }
        if (!phantom) {
          for (std::size_t g = 0; g < n_groups; ++g) {
            net.set_options_bucket_state(refs[group_start[g]].router,
                                         bucket_copies[g]);
          }
          resolved_sharded = true;
          ++campaign.phase_stats_.sharded_chunks;
        } else {
          ++campaign.phase_stats_.serial_fallback_chunks;
        }
      }
      for (std::size_t j = 0; j < steps; ++j) {
        for (std::size_t v = 0; v < n_vps; ++v) {
          PendingProbe& p = pending[v * kChunkSteps + j];
          bool killed_forward = false;
          bool killed_reply = false;
          std::size_t kill_index = 0;
          if (resolved_sharded) {
            const std::size_t base = probe_first[j * n_vps + v];
            for (std::size_t e = 0; e < p.trace.events.size(); ++e) {
              if (consumed[base + e] == 0) {
                (p.trace.events[e].reply_leg ? killed_reply : killed_forward) =
                    true;
                kill_index = e;
                break;
              }
            }
          } else {
            for (std::size_t e = 0; e < p.trace.events.size(); ++e) {
              const auto& ev = p.trace.events[e];
              if (!net.try_consume_options_token(ev.router, ev.time)) {
                // A policed drop is silent: a forward-leg failure means the
                // probe never arrived anywhere, a reply-leg failure means
                // the response never came home. Later events of this probe
                // would not have happened (reply events always follow
                // forward ones).
                (ev.reply_leg ? killed_reply : killed_forward) = true;
                kill_index = e;
                break;
              }
            }
          }
          if (killed_forward || killed_reply) {
            p.obs = RrObservation{};
            p.recorded.clear();
            p.counters = killed_counters(p.trace, killed_reply, kill_index);
          }
          net.merge_counters(p.counters);
          campaign.observations_[v * n_dests + p.dest] = p.obs;
          if (!p.recorded.empty()) {
            auto& sightings = collected[p.dest];
            sightings.insert(sightings.end(), p.recorded.begin(),
                             p.recorded.end());
          }
        }
      }
      campaign.phase_stats_.pass_b_seconds +=
          std::chrono::duration<double>(
              std::chrono::steady_clock::now() - pass_b_begin)  // rropt-lint: allow(no-wallclock)
              .count();
    }

    // Deduplicate each block destination's sightings in one sort instead
    // of the old per-probe sorted-insert (quadratic in popular
    // destinations). Folding per block keeps the raw sighting buffers
    // bounded by the block, not the census.
    pool.parallel_for(block_len, [&](std::size_t i) {
      const std::size_t d = block_begin + i;
      auto& sightings = collected[d];
      std::sort(sightings.begin(), sightings.end());
      sightings.erase(std::unique(sightings.begin(), sightings.end()),
                      sightings.end());
      sightings.shrink_to_fit();
      campaign.recorded_union_[d] = std::move(sightings);
    });
  }
  net.set_compiled_fib(nullptr);

  for (std::size_t v = 0; v < n_vps; ++v) {
    campaign.alloc_stats_.probe_buffer_growths += probers[v].buffer_growths();
  }
  for (const sim::SendContext& ctx : contexts) {
    campaign.alloc_stats_.reply_scratch_growths += ctx.scratch.growths;
  }
  campaign.alloc_stats_.probe_streams += n_vps;
  campaign.alloc_stats_.probe_buffers += n_vps * batch;

  campaign.phase_stats_.probes_sent = net.counters().sent - net_sent_before;
  campaign.finalize_derived();

  util::log_info() << "campaign complete: " << n_vps << " VPs x " << n_dests
                   << " destinations, " << threads << " threads";
  return campaign;
}

void Campaign::finalize_derived() {
  const std::size_t n_dests = dests_.size();
  rr_responsive_bits_.assign(n_dests, 0);
  rr_reachable_bits_.assign(n_dests, 0);
  responding_vp_counts_.assign(n_dests, 0);
  for (std::size_t v = 0; v < vps_.size(); ++v) {
    const RrObservation* row = observations_.data() + v * n_dests;
    for (std::size_t d = 0; d < n_dests; ++d) {
      if (row[d].rr_responsive()) {
        rr_responsive_bits_[d] = 1;
        ++responding_vp_counts_[d];
      }
      if (row[d].rr_reachable()) rr_reachable_bits_[d] = 1;
    }
  }
}

int Campaign::min_rr_distance(
    std::size_t dest_index,
    const std::vector<std::size_t>& vp_subset) const noexcept {
  int best = 0;
  for (std::size_t v : vp_subset) {
    const RrObservation& obs = at(v, dest_index);
    if (!obs.rr_reachable()) continue;
    if (best == 0 || obs.dest_slot < best) best = obs.dest_slot;
  }
  return best;
}

std::vector<std::size_t> Campaign::rr_responsive_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t d = 0; d < dests_.size(); ++d) {
    if (rr_responsive(d)) out.push_back(d);
  }
  return out;
}

std::vector<std::size_t> Campaign::rr_reachable_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t d = 0; d < dests_.size(); ++d) {
    if (rr_reachable(d)) out.push_back(d);
  }
  return out;
}

}  // namespace rr::measure
