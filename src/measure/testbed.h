// Testbed: the assembled measurement environment.
//
// Owns (or shares) a topology, a behaviour assignment, the routing oracle
// for one epoch, and a Network — everything a study phase needs to create
// probers and send packets. Construct one per epoch; topology and
// behaviours can be shared between epochs so Figure 2 compares the same
// world under different connectivity.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "probe/prober.h"
#include "routing/oracle.h"
#include "sim/network.h"
#include "topology/generator.h"

namespace rr::measure {

struct TestbedConfig {
  topo::TopologyParams topo_params = topo::TopologyParams::paper_scale();
  sim::BehaviorParams behavior_params;
  sim::NetParams net_params;
  topo::Epoch epoch = topo::Epoch::k2016;
  /// Default worker-thread count for campaigns run on this testbed.
  /// 0 = resolve from RROPT_THREADS / hardware concurrency at use time;
  /// 1 = single-threaded. Results do not depend on this value.
  int threads = 0;
};

class Testbed {
 public:
  /// Generates a fresh world and wires everything up.
  explicit Testbed(const TestbedConfig& config);

  /// Reuses an existing world + behaviours (same devices, same policies)
  /// under a different epoch's connectivity.
  Testbed(std::shared_ptr<const topo::Topology> topology,
          std::shared_ptr<const sim::Behaviors> behaviors,
          const TestbedConfig& config);

  [[nodiscard]] const topo::Topology& topology() const noexcept {
    return *topology_;
  }
  [[nodiscard]] std::shared_ptr<const topo::Topology> topology_ptr()
      const noexcept {
    return topology_;
  }
  [[nodiscard]] std::shared_ptr<const sim::Behaviors> behaviors_ptr()
      const noexcept {
    return behaviors_;
  }
  [[nodiscard]] const sim::Behaviors& behaviors() const noexcept {
    return *behaviors_;
  }
  [[nodiscard]] route::RoutingOracle& oracle() noexcept { return *oracle_; }
  [[nodiscard]] sim::Network& network() noexcept { return *network_; }
  [[nodiscard]] topo::Epoch epoch() const noexcept { return config_.epoch; }
  [[nodiscard]] int threads() const noexcept { return config_.threads; }

  /// Vantage points active in this epoch, in a stable order (a view of
  /// the topology's precompiled per-epoch list).
  [[nodiscard]] std::span<const topo::VantagePoint* const> vps()
      const noexcept {
    return vps_;
  }

  /// Creates a prober bound to a VP host.
  [[nodiscard]] probe::Prober make_prober(topo::HostId source,
                                          double pps = 20.0) {
    probe::Prober::Options options;
    options.pps = pps;
    return probe::Prober{*network_, source, options};
  }

 private:
  void init();

  TestbedConfig config_;
  std::shared_ptr<const topo::Topology> topology_;
  std::shared_ptr<const sim::Behaviors> behaviors_;
  std::unique_ptr<route::RoutingOracle> oracle_;
  std::unique_ptr<sim::Network> network_;
  std::span<const topo::VantagePoint* const> vps_;
};

}  // namespace rr::measure
