#include "measure/trace_census.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_set>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace rr::measure {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] std::uint64_t fnv_fold(std::uint64_t h,
                                     std::uint64_t word) noexcept {
  return (h ^ word) * kFnvPrime;
}

/// One VP's census state — prober (persistent clock), gate over its own
/// local set, deferred global discoveries, and private result tallies.
/// Workers touch only their own PerVp plus lock-free global-set reads.
struct PerVp {
  std::unique_ptr<probe::Prober> prober;
  std::unique_ptr<StopSet> local;
  std::unique_ptr<DoubletreeGate> gate;
  std::vector<std::uint32_t> order;  // destination indices, seeded shuffle
  sim::NetCounters tally;

  std::uint64_t traces = 0;
  std::uint64_t reached = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_saved = 0;
  std::uint64_t schedule_hash = kFnvOffset;
  std::unordered_set<std::uint32_t> ifaces;
  std::unordered_set<std::uint64_t> links;
};

void harvest(PerVp& p, const probe::TracerouteResult& trace) {
  ++p.traces;
  if (trace.reached) ++p.reached;
  p.probes_sent += trace.probes_sent;
  p.probes_saved += trace.probes_saved;

  std::uint64_t h = p.schedule_hash;
  h = fnv_fold(h, trace.target.value());
  h = fnv_fold(h, trace.probes_sent);
  h = fnv_fold(h, static_cast<std::uint64_t>(trace.first_ttl) |
                      (static_cast<std::uint64_t>(trace.forward_stop_ttl)
                       << 16) |
                      (static_cast<std::uint64_t>(trace.backward_stop_ttl)
                       << 32) |
                      (static_cast<std::uint64_t>(trace.reached) << 48));

  // Router interfaces and directed router-router adjacencies — the
  // redundancy-independent discovery set. Echo hops (the destination) are
  // excluded: a forward stop elides the last-router->destination pair for
  // *this* destination by design, while router facts are covered by the
  // trace that seeded the stop.
  std::uint32_t prev_iface = 0;
  int prev_ttl = -2;
  for (const auto& hop : trace.hops) {
    h = fnv_fold(h, static_cast<std::uint64_t>(hop.ttl) |
                        (static_cast<std::uint64_t>(hop.responded) << 8) |
                        (static_cast<std::uint64_t>(hop.from_stopset) << 9) |
                        (static_cast<std::uint64_t>(hop.kind) << 10) |
                        (static_cast<std::uint64_t>(hop.address.value())
                         << 16));
    if (hop.responded && hop.kind == probe::ResponseKind::kTtlExceeded) {
      const std::uint32_t iface = hop.address.value();
      p.ifaces.insert(iface);
      if (prev_iface != 0 && prev_ttl + 1 == hop.ttl) {
        p.links.insert((static_cast<std::uint64_t>(prev_iface) << 32) |
                       iface);
      }
      prev_iface = iface;
      prev_ttl = hop.ttl;
    } else {
      prev_iface = 0;
      prev_ttl = -2;
    }
  }
  p.schedule_hash = h;
}

}  // namespace

TraceCensusResult run_trace_census(Testbed& testbed,
                                   const TraceCensusConfig& config) {
  const auto& topology = testbed.topology();
  const auto dests = topology.destinations();
  const std::size_t n_all = dests.size();
  const std::size_t n_dests = config.per_vp_dests == 0
                                  ? n_all
                                  : std::min(config.per_vp_dests, n_all);
  const auto vps = testbed.vps();
  const std::size_t n_vps = vps.size();
  const std::size_t round =
      std::max<std::size_t>(1, std::min(config.round, n_dests));
  const int threads = util::resolve_thread_count(
      config.threads > 0 ? config.threads : testbed.threads());

  // Destination sample shared by every VP: per_vp_dests subsamples the
  // *census*, not each VP's view — all VPs still probe the same targets,
  // which is where the inter-monitor redundancy the global set exploits
  // lives. A seeded shuffle picks the sample; each VP then walks it in
  // its own seeded order.
  std::vector<std::uint32_t> sample(n_all);
  std::iota(sample.begin(), sample.end(), 0u);
  {
    util::Rng sample_rng(config.seed);
    sample_rng.shuffle(sample);
  }
  sample.resize(n_dests);

  // The shared (frozen-per-round) global set. Capacity is a heuristic
  // sized to the key population — roughly the per-prefix union of
  // interfaces over all VP paths; a saturated stripe only rejects new
  // facts (costing savings, never correctness), so a miss-estimate
  // degrades gracefully.
  StopSet global(4096 + n_dests * 256);

  std::vector<std::unique_ptr<PerVp>> per_vp;
  per_vp.reserve(n_vps);
  for (std::size_t v = 0; v < n_vps; ++v) {
    auto p = std::make_unique<PerVp>();
    p->prober = std::make_unique<probe::Prober>(
        testbed.network(), vps[v]->host, [&] {
          probe::Prober::Options options;
          options.pps = config.pps;
          return options;
        }());
    if (config.use_stop_sets) {
      p->local = std::make_unique<StopSet>(4096 + n_dests * 4);
      DoubletreeGate::Config gc;
      gc.first_hop = config.first_hop;
      gc.max_ttl = config.max_ttl;
      p->gate = std::make_unique<DoubletreeGate>(p->local.get(), &global, gc);
    }
    p->order = sample;
    util::Rng rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (v + 1)));
    rng.shuffle(p->order);
    per_vp.push_back(std::move(p));
  }

  util::ThreadPool pool(threads);
  probe::TraceOptions topts;
  topts.max_ttl = config.max_ttl;
  topts.attempts = config.attempts;
  topts.window = config.window;

  for (std::size_t begin = 0; begin < n_dests; begin += round) {
    const std::size_t end = std::min(begin + round, n_dests);
    pool.parallel_for(n_vps, [&](std::size_t v) {
      PerVp& p = *per_vp[v];
      probe::TraceOptions options = topts;
      options.gate = p.gate.get();
      options.counters = &p.tally;
      for (std::size_t i = begin; i < end; ++i) {
        const auto target =
            topology.host_at(dests[p.order[i]]).address;
        harvest(p, p.prober->traceroute(target, options));
      }
    });
    // Commit this round's global discoveries serially in canonical VP
    // order: every worker of the next round sees the identical set no
    // matter how many threads ran this one.
    if (config.use_stop_sets) {
      for (std::size_t v = 0; v < n_vps; ++v) {
        auto& pending = per_vp[v]->gate->pending_global();
        global.insert_all(pending);
        pending.clear();
      }
    }
  }

  TraceCensusResult result;
  std::unordered_set<std::uint32_t> ifaces;
  std::unordered_set<std::uint64_t> links;
  result.schedule_hash = kFnvOffset;
  for (std::size_t v = 0; v < n_vps; ++v) {
    PerVp& p = *per_vp[v];
    testbed.network().merge_counters(p.tally);
    result.traces += p.traces;
    result.reached += p.reached;
    result.probes_sent += p.probes_sent;
    result.probes_saved += p.probes_saved;
    result.schedule_hash = fnv_fold(result.schedule_hash, p.schedule_hash);
    ifaces.insert(p.ifaces.begin(), p.ifaces.end());
    links.insert(p.links.begin(), p.links.end());
    if (p.gate != nullptr) {
      p.gate->finish_trace();
      result.stats.merge(p.gate->stats());
      result.local_keys += p.local->size();
      result.stopset_overflows += p.local->overflows();
    }
  }
  result.stats.probes_sent = result.probes_sent;
  result.stats.probes_saved = result.probes_saved;
  if (config.use_stop_sets) {
    result.global_keys = global.size();
    result.stopset_overflows += global.overflows();
  }

  std::vector<std::uint32_t> iface_sorted(ifaces.begin(), ifaces.end());
  std::sort(iface_sorted.begin(), iface_sorted.end());
  std::vector<std::uint64_t> link_sorted(links.begin(), links.end());
  std::sort(link_sorted.begin(), link_sorted.end());
  result.interfaces = iface_sorted.size();
  result.links = link_sorted.size();
  std::uint64_t ih = kFnvOffset;
  for (const auto a : iface_sorted) ih = fnv_fold(ih, a);
  result.interface_hash = ih;
  std::uint64_t lh = kFnvOffset;
  for (const auto l : link_sorted) lh = fnv_fold(lh, l);
  result.link_hash = lh;
  return result;
}

}  // namespace rr::measure
