#include "measure/ttl_study.h"

#include <algorithm>
#include <map>
#include <memory>

#include "util/log.h"
#include "util/rng.h"

namespace rr::measure {

const TtlStudyResult::Row* TtlStudyResult::row_for(int ttl) const noexcept {
  for (const auto& row : rows) {
    if (row.ttl == ttl) return &row;
  }
  return nullptr;
}

TtlStudyResult ttl_study(Testbed& testbed, const Campaign& campaign,
                         const TtlStudyConfig& config) {
  util::Rng rng{config.seed};
  TtlStudyResult result;
  std::map<int, TtlStudyResult::Row> rows;

  std::vector<int> ttl_values;
  for (int ttl = config.ttl_min; ttl <= config.ttl_max; ++ttl) {
    ttl_values.push_back(ttl);
  }
  if (config.include_default_ttl) ttl_values.push_back(64);

  for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
    // Near: directly RR-reachable from this VP. Far: RR-responsive to this
    // VP but out of RR range of it.
    std::vector<std::size_t> near, far;
    for (std::size_t d = 0; d < campaign.num_destinations(); ++d) {
      const RrObservation& obs = campaign.at(v, d);
      if (obs.rr_reachable()) {
        near.push_back(d);
      } else if (obs.rr_responsive()) {
        far.push_back(d);
      }
    }
    rng.shuffle(near);
    rng.shuffle(far);
    const std::size_t take = std::min(
        {near.size(), far.size(), config.per_vp_per_class});
    near.resize(take);
    far.resize(take);
    if (take == 0) continue;

    // Seed this VP's stop set with what the census proved about each
    // sampled destination. Near (stamped at slot s, s <= 9): a TTL-t
    // probe expires for t < s and reaches for t >= s. Far (nine slots
    // full, so more than nine hops out): expires through TTL 9, and the
    // census's default-TTL probe already drew its echo. Facts are exact
    // in a noiseless world; under loss/rate-limiting they reproduce the
    // modal outcome, trading fidelity of re-measured noise for not
    // re-sending probes whose answer is known (the Doubletree bargain).
    std::unique_ptr<StopSet> stops;
    if (config.use_stop_sets) {
      stops = std::make_unique<StopSet>(take * 64 + 1024);
      for (const bool is_far : {false, true}) {
        for (std::size_t d : is_far ? far : near) {
          const auto target = campaign.topology()
                                  .host_at(campaign.destinations()[d])
                                  .address;
          if (is_far) {
            for (int t = config.ttl_min;
                 t <= std::min(9, config.ttl_max); ++t) {
              stops->insert(path_point_key(target, t));
            }
          } else {
            const int s = campaign.at(v, d).dest_slot;
            for (int t = config.ttl_min; t <= config.ttl_max; ++t) {
              stops->insert(t < s ? path_point_key(target, t)
                                  : reach_point_key(target, t));
            }
          }
          if (config.include_default_ttl) {
            stops->insert(reach_point_key(target, 64));
          }
        }
      }
    }

    auto prober = testbed.make_prober(campaign.vps()[v]->host, config.pps);
    for (const bool is_far : {false, true}) {
      const auto& set = is_far ? far : near;
      for (std::size_t d : set) {
        const int ttl =
            ttl_values[rng.next_below(ttl_values.size())];
        const auto target = campaign.topology()
                                .host_at(campaign.destinations()[d])
                                .address;
        auto& row = rows[ttl];
        row.ttl = ttl;
        auto& sent = is_far ? row.far_sent : row.near_sent;
        auto& replied = is_far ? row.far_replied : row.near_replied;
        auto& expired = is_far ? row.far_expired : row.near_expired;
        ++sent;
        if (stops != nullptr) {
          ++result.stats.checks;
          if (stops->contains(reach_point_key(target, ttl))) {
            ++result.stats.hits;
            ++result.stats.probes_saved;
            ++replied;
            continue;
          }
          ++result.stats.checks;
          if (stops->contains(path_point_key(target, ttl))) {
            ++result.stats.hits;
            ++result.stats.probes_saved;
            ++expired;
            continue;
          }
        }
        const auto r = prober.probe(probe::ProbeSpec::ping_rr(
            target, static_cast<std::uint8_t>(ttl)));
        ++result.stats.probes_sent;
        if (r.kind == probe::ResponseKind::kEchoReply) ++replied;
        if (r.kind == probe::ResponseKind::kTtlExceeded) ++expired;
      }
    }
  }

  for (auto& [ttl, row] : rows) result.rows.push_back(row);
  util::log_info() << "ttl study: " << result.rows.size() << " TTL buckets, "
                   << result.stats.probes_sent << " probes sent, "
                   << result.stats.probes_saved << " saved";
  return result;
}

}  // namespace rr::measure
