// §3.3 "Uncovering Additional Reachability": two tests that recover RR-
// reachable destinations the naive destination-IP-in-header check misses.
//
//  1. Alias test: the destination device stamped one of its *other*
//     addresses. MIDAR-discovered alias sets are intersected with the
//     addresses recorded in the destination's RR responses.
//  2. Quoted-packet test (ping-RRudp): a UDP probe to a closed high port
//     makes the destination quote the offending datagram — byte-for-byte
//     as it arrived — inside the ICMP port-unreachable. Free RR slots in
//     the quoted header prove the probe arrived with room to spare, even
//     though the destination never stamps.
#pragma once

#include <cstdint>
#include <vector>

#include "measure/campaign.h"
#include "measure/midar.h"
#include "measure/testbed.h"

namespace rr::measure {

struct ReclassifyConfig {
  /// VPs tried per destination for the UDP probe (closest first would need
  /// a distance we do not have; responsive-first is the paper's position).
  int udp_vps_per_dest = 3;
  int udp_attempts = 2;
  double pps = 50.0;
  std::uint64_t seed = 0x3c3;
};

struct ReclassifyResult {
  /// Destination indices recovered by the alias test.
  std::vector<std::size_t> via_alias;
  /// Destination indices recovered by the quoted-packet test (exclusive of
  /// the alias recoveries, matching the paper's additive accounting).
  std::vector<std::size_t> via_quoted;
  std::uint64_t udp_probes_sent = 0;
  std::uint64_t udp_responses = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return via_alias.size() + via_quoted.size();
  }
};

/// Candidate set: RR-responsive destinations not directly RR-reachable.
[[nodiscard]] std::vector<std::size_t> reclassification_candidates(
    const Campaign& campaign);

/// Builds the MIDAR input for §3.3: every RR-responsive destination address
/// plus every address that appeared in an RR response header.
[[nodiscard]] std::vector<net::IPv4Address> midar_candidate_addresses(
    const Campaign& campaign);

/// Runs both reclassification tests.
[[nodiscard]] ReclassifyResult reclassify(Testbed& testbed,
                                          const Campaign& campaign,
                                          const AliasSets& aliases,
                                          const ReclassifyConfig& config = {});

}  // namespace rr::measure
