#include "measure/reachability.h"

#include <limits>

namespace rr::measure {

std::vector<std::size_t> vp_indices_where(
    const Campaign& campaign,
    const std::function<bool(const topo::VantagePoint&)>& predicate) {
  std::vector<std::size_t> out;
  for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
    if (predicate(*campaign.vps()[v])) out.push_back(v);
  }
  return out;
}

std::vector<std::size_t> vp_indices_of_platform(const Campaign& campaign,
                                                topo::Platform platform) {
  return vp_indices_where(campaign,
                          [platform](const topo::VantagePoint& vp) {
                            return vp.platform == platform;
                          });
}

analysis::Cdf closest_vp_distance_cdf(
    const Campaign& campaign, const std::vector<std::size_t>& vp_subset,
    const std::vector<std::size_t>& dest_indices) {
  std::vector<double> samples;
  samples.reserve(dest_indices.size());
  for (std::size_t d : dest_indices) {
    const int dist = campaign.min_rr_distance(d, vp_subset);
    samples.push_back(dist > 0 ? static_cast<double>(dist)
                               : std::numeric_limits<double>::infinity());
  }
  return analysis::Cdf{std::move(samples)};
}

double fraction_within(const Campaign& campaign,
                       const std::vector<std::size_t>& vp_subset,
                       const std::vector<std::size_t>& dest_indices,
                       int limit) {
  if (dest_indices.empty()) return 0.0;
  std::size_t within = 0;
  for (std::size_t d : dest_indices) {
    const int dist = campaign.min_rr_distance(d, vp_subset);
    if (dist > 0 && dist <= limit) ++within;
  }
  return static_cast<double>(within) /
         static_cast<double>(dest_indices.size());
}

GreedySelection greedy_vp_selection(
    const Campaign& campaign, const std::vector<std::size_t>& candidate_vps,
    const std::vector<std::size_t>& dest_indices, int max_sites) {
  GreedySelection result;
  if (dest_indices.empty()) return result;

  // covered[i] tracks destinations already reachable from a chosen site.
  std::vector<std::uint8_t> covered(dest_indices.size(), 0);
  std::vector<std::uint8_t> used(campaign.num_vps(), 0);
  std::size_t covered_count = 0;

  for (int round = 0; round < max_sites; ++round) {
    std::size_t best_vp = campaign.num_vps();
    std::size_t best_gain = 0;
    for (std::size_t v : candidate_vps) {
      if (used[v]) continue;
      std::size_t gain = 0;
      for (std::size_t i = 0; i < dest_indices.size(); ++i) {
        if (covered[i]) continue;
        if (campaign.at(v, dest_indices[i]).rr_reachable()) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_vp = v;
      }
    }
    if (best_vp == campaign.num_vps() || best_gain == 0) break;
    used[best_vp] = 1;
    for (std::size_t i = 0; i < dest_indices.size(); ++i) {
      if (!covered[i] &&
          campaign.at(best_vp, dest_indices[i]).rr_reachable()) {
        covered[i] = 1;
        ++covered_count;
      }
    }
    result.chosen_vps.push_back(best_vp);
    result.coverage.push_back(static_cast<double>(covered_count) /
                              static_cast<double>(dest_indices.size()));
  }
  return result;
}

}  // namespace rr::measure
