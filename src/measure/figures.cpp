#include "measure/figures.h"

#include <algorithm>

#include "analysis/cdf.h"
#include "measure/classify.h"

namespace rr::measure {

namespace {

void add_cdf_series(analysis::FigureData& figure, const std::string& label,
                    const Campaign& campaign,
                    const std::vector<std::size_t>& vp_subset,
                    const std::vector<std::size_t>& dest_indices) {
  const auto cdf =
      closest_vp_distance_cdf(campaign, vp_subset, dest_indices);
  auto& series = figure.add_series(label);
  for (const auto& [x, y] : cdf.integer_points(1, 9)) series.add(x, y);
}

std::vector<std::size_t> all_vp_indices(const Campaign& campaign) {
  std::vector<std::size_t> out(campaign.num_vps());
  for (std::size_t v = 0; v < out.size(); ++v) out[v] = v;
  return out;
}

}  // namespace

analysis::FigureData figure1(const Campaign& campaign,
                             const GreedySelection& greedy) {
  analysis::FigureData figure(
      "Figure 1: RR hops from closest VP to RR-responsive destinations",
      "Number of RR hops from closest vantage point",
      "CDF of destinations");
  const auto responsive = campaign.rr_responsive_indices();
  const auto mlab = vp_indices_of_platform(campaign, topo::Platform::kMLab);
  const auto plab =
      vp_indices_of_platform(campaign, topo::Platform::kPlanetLab);

  add_cdf_series(figure, "all M-Lab sites", campaign, mlab, responsive);
  if (greedy.chosen_vps.size() >= 10) {
    add_cdf_series(figure, "10 M-Lab sites", campaign,
                   {greedy.chosen_vps.begin(), greedy.chosen_vps.begin() + 10},
                   responsive);
  }
  if (!greedy.chosen_vps.empty()) {
    add_cdf_series(figure, "1 M-Lab site", campaign,
                   {greedy.chosen_vps.front()}, responsive);
  }
  add_cdf_series(figure, "all PlanetLab sites", campaign, plab, responsive);
  return figure;
}

analysis::FigureData figure2(const Campaign& campaign_2016,
                             const Campaign& campaign_2011) {
  analysis::FigureData figure(
      "Figure 2: RR hops from closest VP, 2011 vs 2016",
      "Number of RR hops from closest vantage point",
      "CDF of RR-responsive destinations");
  auto common_of = [](const Campaign& campaign) {
    std::vector<std::size_t> out;
    for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
      const auto& vp = *campaign.vps()[v];
      if (vp.exists_in_2011 && vp.exists_in_2016) out.push_back(v);
    }
    return out;
  };
  add_cdf_series(figure, "2016 all VPs", campaign_2016,
                 all_vp_indices(campaign_2016),
                 campaign_2016.rr_responsive_indices());
  add_cdf_series(figure, "2016 common VPs", campaign_2016,
                 common_of(campaign_2016),
                 campaign_2016.rr_responsive_indices());
  add_cdf_series(figure, "2011 all VPs", campaign_2011,
                 all_vp_indices(campaign_2011),
                 campaign_2011.rr_responsive_indices());
  add_cdf_series(figure, "2011 common VPs", campaign_2011,
                 common_of(campaign_2011),
                 campaign_2011.rr_responsive_indices());
  return figure;
}

analysis::FigureData figure3(const CloudStudyResult& result) {
  analysis::FigureData figure(
      "Figure 3: hop count from GCE and M-Lab to destinations",
      "Number of traceroute hops", "CDF of destinations");
  if (!result.providers.empty()) {
    const auto& gce = result.providers.front();
    auto& reachable = figure.add_series(gce.name + " RR-reachable");
    for (const auto& [x, y] : gce.to_reachable.integer_points(2, 20)) {
      reachable.add(x, y);
    }
    auto& responsive = figure.add_series(gce.name + " RR-responsive");
    for (const auto& [x, y] : gce.to_responsive.integer_points(2, 20)) {
      responsive.add(x, y);
    }
  }
  auto& mlab = figure.add_series("M-Lab RR-reachable");
  for (const auto& [x, y] :
       result.mlab_to_reachable.integer_points(2, 20)) {
    mlab.add(x, y);
  }
  return figure;
}

analysis::FigureData figure4(const RateLimitResult& result) {
  analysis::FigureData figure("Figure 4: RR responses per VP at two rates",
                              "VP id (sorted by low-rate responses)",
                              "Number of responses");
  auto rows = result.rows;
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.responses_low > b.responses_low;
  });
  auto& low = figure.add_series("10 pps");
  auto& high = figure.add_series("100 pps");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    low.add(static_cast<double>(i),
            static_cast<double>(rows[i].responses_low));
    high.add(static_cast<double>(i),
             static_cast<double>(rows[i].responses_high));
  }
  return figure;
}

analysis::FigureData figure5(const TtlStudyResult& result) {
  analysis::FigureData figure("Figure 5: responsive rate by initial TTL",
                              "Initial TTL", "Fraction answering echo");
  auto& near = figure.add_series("RR-reachable destinations");
  auto& far = figure.add_series("RR-unreachable destinations");
  for (const auto& row : result.rows) {
    near.add(row.ttl, row.near_reply_rate());
    far.add(row.ttl, row.far_reply_rate());
  }
  return figure;
}

analysis::FigureData vp_response_figure(const Campaign& campaign) {
  analysis::FigureData figure(
      "VP response counts (§3.2)",
      "Number of VPs a destination answered",
      "CDF of RR-responsive destinations");
  const auto counts = responding_vp_counts(campaign);
  std::vector<double> samples(counts.begin(), counts.end());
  const analysis::Cdf cdf{std::move(samples)};
  auto& series = figure.add_series("RR-responsive destinations");
  for (const auto& [x, y] :
       cdf.integer_points(0, static_cast<int>(campaign.num_vps()))) {
    series.add(x, y);
  }
  return figure;
}

}  // namespace rr::measure
