// RR reachability analyses — Figures 1 and 2, and the greedy vantage-point
// selection of §3.3.
#pragma once

#include <functional>
#include <vector>

#include "analysis/cdf.h"
#include "measure/campaign.h"

namespace rr::measure {

/// Indices (into campaign.vps()) of VPs matching a predicate.
[[nodiscard]] std::vector<std::size_t> vp_indices_where(
    const Campaign& campaign,
    const std::function<bool(const topo::VantagePoint&)>& predicate);

/// All VPs of one platform.
[[nodiscard]] std::vector<std::size_t> vp_indices_of_platform(
    const Campaign& campaign, topo::Platform platform);

/// Figure 1/2 curve: for each destination in `dest_indices`, the RR hop
/// distance to the closest VP in `vp_subset`. Destinations unreachable from
/// every VP in the subset enter the CDF at +infinity, so the CDF value at
/// x = 9 is exactly the subset's RR-reachable fraction.
[[nodiscard]] analysis::Cdf closest_vp_distance_cdf(
    const Campaign& campaign, const std::vector<std::size_t>& vp_subset,
    const std::vector<std::size_t>& dest_indices);

/// Fraction of `dest_indices` within `limit` RR hops of the subset.
[[nodiscard]] double fraction_within(const Campaign& campaign,
                                     const std::vector<std::size_t>& vp_subset,
                                     const std::vector<std::size_t>&
                                         dest_indices,
                                     int limit);

/// Greedy VP (site) selection: repeatedly picks the VP covering the most
/// still-uncovered destinations (coverage = within 9 RR hops), mirroring
/// the paper's "73% with one site, 95% with ten" analysis.
struct GreedySelection {
  std::vector<std::size_t> chosen_vps;   // in pick order
  std::vector<double> coverage;          // cumulative fraction after each pick
};

[[nodiscard]] GreedySelection greedy_vp_selection(
    const Campaign& campaign, const std::vector<std::size_t>& candidate_vps,
    const std::vector<std::size_t>& dest_indices, int max_sites);

}  // namespace rr::measure
