// Doubletree-style stop sets (Donnet et al., "Efficient Route Tracing
// from a Single Source" — PAPERS.md): redundancy-aware probing for the
// traceroute and TTL-limited campaigns.
//
// Two kinds of knowledge stop a probe before it is sent:
//
//  * a per-VP **local stop set** of (interface, TTL) facts — the monitor
//    has already seen this router at this distance, so the shared tree
//    below it has been explored by this monitor before (Doubletree's
//    backward stopping rule);
//  * a **global stop set** of (interface, destination /24) facts shared by
//    every VP — some monitor has already traced from this interface to
//    this prefix, and destination-based forwarding makes the path suffix
//    from an interface to a prefix source-independent, so re-tracing it
//    discovers nothing (the forward stopping rule).
//
// Both kinds (plus the TTL-study's path-point/reach-point facts) live in
// the same concurrent structure, StopSet: a lock-striped open-addressing
// hash set of 64-bit keys. Readers are lock-free (acquire loads, no
// allocation — membership checks sit on the probing hot path); writers
// serialize per stripe under a util::Mutex. Determinism of *visibility*
// is the caller's job: parallel campaigns buffer their global insertions
// and commit them in canonical VP order at round boundaries (the deferred
// pattern the token-bucket replay established), so the set every worker
// reads is a pure function of the probe stream, never of thread timing.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "netbase/address.h"
#include "probe/types.h"
#include "util/annotations.h"
#include "util/mutex.h"

namespace rr::measure {

// ------------------------------------------------------------------ keys
//
// Every stop fact packs losslessly into 58 bits (tag + address material)
// and is then passed through a bijective 64-bit mix, so distinct facts
// are distinct keys — the set has no false positives, only the sharing
// approximations Doubletree itself makes.

/// Destination prefix used by the global stop set (the paper's campaigns
/// probe one host per advertised prefix, so /24 is a safe refinement).
[[nodiscard]] net::IPv4Address stopset_prefix_of(net::IPv4Address a) noexcept;

/// Local stop fact: this monitor saw `iface` answer at distance `ttl`.
[[nodiscard]] std::uint64_t local_stop_key(net::IPv4Address iface,
                                           int ttl) noexcept;
/// Global stop fact: some monitor traced through `iface` toward the
/// prefix of `dest`.
[[nodiscard]] std::uint64_t global_stop_key(net::IPv4Address iface,
                                            net::IPv4Address dest) noexcept;
/// TTL-study fact: a probe from this monitor toward the prefix of `dest`
/// with initial TTL `ttl` is known to expire in the tree.
[[nodiscard]] std::uint64_t path_point_key(net::IPv4Address dest,
                                           int ttl) noexcept;
/// TTL-study fact: a probe toward the prefix of `dest` with initial TTL
/// `ttl` is known to reach the destination.
[[nodiscard]] std::uint64_t reach_point_key(net::IPv4Address dest,
                                            int ttl) noexcept;

// ------------------------------------------------------------- StopSet

/// Lock-striped concurrent hash set of stop-fact keys.
///
/// Fixed capacity, chosen at construction from the expected fact count:
/// membership checks must be allocation-free and tolerate concurrent
/// writers, which rules out rehashing under readers. A stripe that fills
/// past its load limit stops accepting inserts (counted in overflows());
/// saturation only costs savings, never correctness — an absent fact
/// means the probe is sent, exactly as with stop sets disabled.
class StopSet {
 public:
  static constexpr std::size_t kStripes = 64;

  explicit StopSet(std::size_t expected_keys);

  StopSet(const StopSet&) = delete;
  StopSet& operator=(const StopSet&) = delete;

  /// Lock-free membership: safe concurrently with insert(); sees every
  /// key whose insert() returned before this call began. No allocation.
  [[nodiscard]] bool contains(std::uint64_t key) const noexcept;

  /// Inserts one key. Returns true when the key is new; false when it was
  /// already present or its stripe is full.
  bool insert(std::uint64_t key);

  /// Inserts a batch (the deferred-commit path); returns how many were new.
  std::size_t insert_all(std::span<const std::uint64_t> keys);

  /// Number of keys stored (takes every stripe lock; not for hot paths).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept {
    return kStripes * stripe_capacity_;
  }
  /// Inserts rejected because a stripe was at its load limit.
  [[nodiscard]] std::uint64_t overflows() const noexcept {
    return overflows_.load(std::memory_order_relaxed);
  }

 private:
  struct Stripe {
    util::Mutex mu;
    std::size_t size RROPT_GUARDED_BY(mu) = 0;
  };

  [[nodiscard]] std::size_t stripe_of(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(key >> 58) & (kStripes - 1);
  }
  [[nodiscard]] const std::atomic<std::uint64_t>* stripe_slots(
      std::size_t s) const noexcept {
    return slots_.get() + s * stripe_capacity_;
  }
  [[nodiscard]] std::atomic<std::uint64_t>* stripe_slots(
      std::size_t s) noexcept {
    return slots_.get() + s * stripe_capacity_;
  }

  std::size_t stripe_capacity_;  // power of two
  std::size_t stripe_mask_;
  std::size_t stripe_limit_;     // max keys per stripe (3/4 load)
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::unique_ptr<Stripe[]> stripes_;
  std::atomic<std::uint64_t> overflows_{0};
};

// -------------------------------------------------------------- stats

/// Uniform probing-cost counters recorded by every stop-set consumer and
/// surfaced in bench telemetry (probes_sent / probes_saved /
/// stopset_hit_rate).
struct StopSetStats {
  std::uint64_t probes_sent = 0;   // probes actually driven through the net
  std::uint64_t probes_saved = 0;  // probes a stop fact made unnecessary
  std::uint64_t checks = 0;        // membership queries
  std::uint64_t hits = 0;          // queries that found a fact

  [[nodiscard]] double hit_rate() const noexcept {
    return checks ? static_cast<double>(hits) / static_cast<double>(checks)
                  : 0.0;
  }
  /// Fraction of the off-run probe budget the stop sets eliminated.
  [[nodiscard]] double reduction() const noexcept {
    const std::uint64_t total = probes_sent + probes_saved;
    return total ? static_cast<double>(probes_saved) /
                       static_cast<double>(total)
                 : 0.0;
  }
  void merge(const StopSetStats& other) noexcept {
    probes_sent += other.probes_sent;
    probes_saved += other.probes_saved;
    checks += other.checks;
    hits += other.hits;
  }
};

// ------------------------------------------------------ DoubletreeGate

/// probe::TraceGate implementation over a local + global stop set: the
/// policy half of Doubletree (backward/forward split from hop h), bound
/// to one VP's probe stream.
///
/// Global-set *reads* are always safe; global-set *writes* depend on the
/// execution mode:
///  * deferred (default): discoveries accumulate in pending_global() and
///    the campaign commits them in canonical VP order at round
///    boundaries — bit-identical probe schedules at any thread count;
///  * live (live_global_inserts): discoveries are inserted immediately.
///    Only for serial callers (revtr, tools), where program order is the
///    canonical order.
///
/// remember_paths additionally memoizes the hop chain below every local
/// stop fact, so a backward stop can *backfill* the skipped hops into the
/// trace result. Consumers that need complete paths (revtr's symmetric
/// fallback) only stop where the gate can reproduce what probing would
/// have found — their outputs stay byte-identical with stop sets on.
class DoubletreeGate final : public probe::TraceGate {
 public:
  struct Config {
    int first_hop = 5;        // Doubletree's h: forward from h, backward h-1..1
    bool forward_stop = true;
    bool backward_stop = true;
    bool live_global_inserts = false;
    bool remember_paths = false;
    int max_ttl = 64;
  };

  DoubletreeGate(StopSet* local, StopSet* global, Config config);

  int begin(net::IPv4Address target) override;
  bool stop_forward(net::IPv4Address iface, int ttl) override;
  bool stop_backward(net::IPv4Address iface, int ttl) override;
  void record(net::IPv4Address iface, int ttl) override;
  std::span<const net::IPv4Address> backfill(net::IPv4Address iface,
                                             int ttl) override;

  /// Deferred global-set discoveries; the campaign drains and commits
  /// these (StopSet::insert_all) in canonical VP order.
  [[nodiscard]] std::vector<std::uint64_t>& pending_global() noexcept {
    return pending_global_;
  }
  [[nodiscard]] StopSetStats& stats() noexcept { return stats_; }
  [[nodiscard]] const StopSetStats& stats() const noexcept { return stats_; }

  /// Finalizes the trace in flight (remember_paths memoization happens
  /// here). begin() calls this implicitly; call it after the last trace.
  void finish_trace();

 private:
  StopSet* local_;
  StopSet* global_;
  Config config_;
  net::IPv4Address target_prefix_;
  StopSetStats stats_;
  std::vector<std::uint64_t> pending_global_;
  // remember_paths state: the chain observed by the trace in flight,
  // indexed by TTL, and the memo of complete below-chains per local fact.
  std::vector<net::IPv4Address> chain_;
  std::vector<bool> chain_seen_;
  std::unordered_map<std::uint64_t, std::vector<net::IPv4Address>> memo_;
};

}  // namespace rr::measure
