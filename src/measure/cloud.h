// §3.6 cloud-provider study (Figure 3): would GCE/EC2/Softlayer make good
// RR vantage points?
//
// Clouds filter or strip outgoing IP options (the paper could not send
// ping-RR from any of them), so reachability is *estimated* from
// traceroute hop counts: traceroutes from a host inside each provider to
// destinations known (from the M-Lab campaign) to be RR-responsive or
// RR-reachable. Hops inside the provider's own AS are not counted — the
// paper assumes the packet can be tunnelled to the AS edge without
// consuming RR slots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cdf.h"
#include "measure/campaign.h"
#include "measure/testbed.h"

namespace rr::measure {

struct CloudStudyConfig {
  std::size_t max_reachable_dests = 20000;
  std::size_t max_responsive_dests = 20000;
  int traceroute_max_ttl = 40;
  double pps = 100.0;
  std::uint64_t seed = 0xC10D;
};

struct CloudStudyResult {
  struct ProviderData {
    std::string name;
    /// Hop counts (from the first hop outside the provider AS) to
    /// destinations that are RR-reachable from M-Lab.
    analysis::Cdf to_reachable;
    /// Same, to RR-responsive-but-not-reachable destinations.
    analysis::Cdf to_responsive;

    [[nodiscard]] double fraction_responsive_within(int hops) const {
      return to_responsive.fraction_at_or_below(hops);
    }
  };

  /// Traceroute hop counts from the closest M-Lab VP to RR-reachable
  /// destinations (the calibration distribution).
  analysis::Cdf mlab_to_reachable;
  std::vector<ProviderData> providers;
};

[[nodiscard]] CloudStudyResult cloud_study(Testbed& testbed,
                                           const Campaign& campaign,
                                           const CloudStudyConfig& config = {});

}  // namespace rr::measure
