// §3.5 "Do ASes Refuse to Stamp Packets?" — the coarse-grained audit that
// compares AS paths derived from traceroutes against the AS paths in the
// corresponding ping-RR responses.
//
// Restricting the comparison to RR-reachable destinations sidesteps the
// path-alignment problem: the full forward path fits in the RR header, so
// any AS on the traceroute that never shows up in RR is evidence of
// forward-without-stamping policy.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "measure/campaign.h"
#include "measure/testbed.h"

namespace rr::measure {

struct AsStampingConfig {
  std::size_t max_dests_per_vp = 10000;  // the paper's cap
  double pps = 50.0;
  int traceroute_max_ttl = 32;
  std::uint64_t seed = 0x35a;
};

struct AsStampingResult {
  /// Per-AS tallies across all compared (traceroute, ping-RR) pairs.
  struct AsTally {
    std::uint64_t seen_in_traceroute = 0;
    std::uint64_t seen_in_both = 0;
  };
  std::unordered_map<topo::AsId, AsTally> per_as;
  std::uint64_t pairs_compared = 0;

  /// The paper's three buckets.
  [[nodiscard]] std::size_t always() const;     // in RR whenever traced
  [[nodiscard]] std::size_t sometimes() const;  // usually but not always
  [[nodiscard]] std::size_t never() const;      // traced, never in RR
  [[nodiscard]] std::size_t total_ases() const { return per_as.size(); }
};

/// Runs the audit from every M-Lab VP toward (a sample of) its
/// RR-reachable destinations.
[[nodiscard]] AsStampingResult audit_as_stamping(
    Testbed& testbed, const Campaign& campaign,
    const AsStampingConfig& config = {});

}  // namespace rr::measure
