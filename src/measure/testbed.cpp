#include "measure/testbed.h"

#include "util/log.h"

namespace rr::measure {

Testbed::Testbed(const TestbedConfig& config) : config_(config) {
  topology_ = topo::Generator{config.topo_params}.generate();
  behaviors_ = std::make_shared<sim::Behaviors>(topology_,
                                                config.behavior_params);
  init();
}

Testbed::Testbed(std::shared_ptr<const topo::Topology> topology,
                 std::shared_ptr<const sim::Behaviors> behaviors,
                 const TestbedConfig& config)
    : config_(config),
      topology_(std::move(topology)),
      behaviors_(std::move(behaviors)) {
  init();
}

void Testbed::init() {
  vps_ = topology_->vantage_points_in(config_.epoch);  // view, not a copy

  // Probe sources: every VP of either epoch (so both epochs share one
  // oracle shape), the plain-ping probe host, and the cloud probe hosts.
  std::vector<topo::AsId> sources;
  for (const auto& vp : topology_->vantage_points()) {
    sources.push_back(topology_->host_at(vp.host).as_id);
  }
  if (topology_->probe_host() != topo::kNoHost) {
    sources.push_back(topology_->host_at(topology_->probe_host()).as_id);
  }
  for (const auto& cloud : topology_->clouds()) {
    sources.push_back(topology_->host_at(cloud.probe_host).as_id);
  }
  oracle_ = std::make_unique<route::RoutingOracle>(
      topology_, config_.epoch, std::move(sources), config_.threads);
  network_ = std::make_unique<sim::Network>(topology_, behaviors_, *oracle_,
                                            config_.net_params);
  util::log_info() << "testbed ready (epoch "
                   << (config_.epoch == topo::Epoch::k2016 ? "2016" : "2011")
                   << ", " << vps_.size() << " VPs)";
}

}  // namespace rr::measure
