// MIDAR-style IP alias resolution (Keys et al., IEEE/ACM ToN 2013),
// simplified to the two-stage core:
//
//  1. Estimation: each candidate address is pinged twice a fixed interval
//     apart; the IP-ID delta gives a velocity estimate (ids/second).
//     Addresses that do not return monotonically-advancing IDs are
//     discarded, as MIDAR does.
//  2. Elimination: candidates are sorted by velocity and grouped into
//     overlapping shards of similar velocity; within a shard, several
//     interleaved probe rounds build per-address time series, and the
//     Monotonic Bounds Test (MBT) is applied to nearby pairs: two addresses
//     share a counter iff their *merged* series still advances at the
//     common velocity (disjoint counters produce wild modular jumps).
//
// Pairs that pass are merged with union-find into alias sets. The
// simulator gives routers one IP-ID counter per device across all
// interfaces, so this rediscovers (a subset of) the ground-truth alias
// sets from measurements alone — exactly the role MIDAR plays in §3.3.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netbase/address.h"
#include "probe/prober.h"

namespace rr::measure {

struct MidarConfig {
  double pps = 100.0;              // alias probing is gentler than scanning
  double estimation_gap_s = 2.0;   // spacing of the two estimation probes
  int elimination_rounds = 5;
  std::size_t shard_size = 1024;   // addresses per elimination shard
  double velocity_tolerance = 0.08;  // pairing window (relative)
  double mbt_slack_ids = 30.0;     // absolute slack for the bounds test
  double confirm_slack_ids = 6.0;  // slack for the tight confirmation probes
  std::size_t max_addresses = 250000;
  std::uint64_t seed = 0x41D5;
};

/// Union-find over addresses; exposes the discovered alias sets.
class AliasSets {
 public:
  void add_pair(net::IPv4Address a, net::IPv4Address b);

  [[nodiscard]] bool same_device(net::IPv4Address a,
                                 net::IPv4Address b) const;

  /// True if `addr` is aliased to anything in `candidates`.
  [[nodiscard]] bool aliased_to_any(
      net::IPv4Address addr,
      const std::vector<net::IPv4Address>& candidates) const;

  /// All sets with at least two members.
  [[nodiscard]] std::vector<std::vector<net::IPv4Address>> sets() const;

  [[nodiscard]] std::size_t pair_count() const noexcept { return pairs_; }

 private:
  [[nodiscard]] std::uint32_t find(std::uint32_t x) const;
  std::uint32_t intern(net::IPv4Address addr);

  std::unordered_map<std::uint32_t, std::uint32_t> index_;  // addr -> node
  std::vector<net::IPv4Address> addresses_;
  mutable std::vector<std::uint32_t> parent_;
  std::size_t pairs_ = 0;
};

/// Runs the full MIDAR-lite pipeline from one probing host.
[[nodiscard]] AliasSets run_midar(probe::Prober& prober,
                                  std::vector<net::IPv4Address> candidates,
                                  const MidarConfig& config = {});

}  // namespace rr::measure
