// Longest-prefix-match binary trie mapping IPv4 prefixes to values.
//
// Used for the RouteViews-style prefix table (destination selection), for
// mapping recorded/traceroute IP addresses back to the AS that owns them,
// and as a generic forwarding-table structure. Path-compressed enough for
// our scale by virtue of only allocating nodes along inserted prefixes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "netbase/address.h"
#include "netbase/prefix.h"

namespace rr::net {

template <typename Value>
class LpmTrie {
 public:
  LpmTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or replaces the value for an exact prefix.
  void insert(const Prefix& prefix, Value value) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.base().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      auto& child = node->children[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->value.has_value()) ++size_;
    node->value = std::move(value);
  }

  /// Longest-prefix-match lookup; nullptr when nothing covers `addr`.
  [[nodiscard]] const Value* lookup(IPv4Address addr) const noexcept {
    const Node* node = root_.get();
    const Value* best = node->value ? &*node->value : nullptr;
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32 && node; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (node && node->value) best = &*node->value;
    }
    return best;
  }

  /// Longest matching prefix itself (with its value), if any.
  [[nodiscard]] std::optional<std::pair<Prefix, Value>> lookup_prefix(
      IPv4Address addr) const {
    const Node* node = root_.get();
    std::optional<std::pair<Prefix, Value>> best;
    if (node->value) best = {Prefix{addr, 0}, *node->value};
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32 && node; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
      if (node && node->value) {
        best = {Prefix{addr, static_cast<std::uint8_t>(depth + 1)},
                *node->value};
      }
    }
    return best;
  }

  /// Exact-match lookup (no covering-prefix fallback).
  [[nodiscard]] const Value* exact(const Prefix& prefix) const noexcept {
    const Node* node = root_.get();
    const std::uint32_t bits = prefix.base().value();
    for (int depth = 0; depth < prefix.length() && node; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
    }
    return (node && node->value) ? &*node->value : nullptr;
  }

  /// Removes an exact prefix; returns true if it was present.
  bool erase(const Prefix& prefix) noexcept {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.base().value();
    for (int depth = 0; depth < prefix.length() && node; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->children[bit].get();
    }
    if (!node || !node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Visits every (prefix, value) pair in lexicographic bit order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(root_.get(), 0, 0, fn);
  }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> children[2];
  };

  template <typename Fn>
  static void visit(const Node* node, std::uint32_t bits, int depth, Fn& fn) {
    if (!node) return;
    if (node->value) {
      fn(Prefix{IPv4Address{depth == 0 ? 0 : bits << (32 - depth)},
                static_cast<std::uint8_t>(depth)},
         *node->value);
    }
    if (depth == 32) return;
    visit(node->children[0].get(), bits << 1, depth + 1, fn);
    visit(node->children[1].get(), (bits << 1) | 1, depth + 1, fn);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace rr::net
