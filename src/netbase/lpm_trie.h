// Longest-prefix-match binary trie mapping IPv4 prefixes to values.
//
// Used for the RouteViews-style prefix table (destination selection), for
// mapping recorded/traceroute IP addresses back to the AS that owns them,
// and as a generic forwarding-table structure. Path-compressed enough for
// our scale by virtue of only allocating nodes along inserted prefixes.
//
// Nodes live in one pooled vector and children are 32-bit indices rather
// than heap pointers: a census-scale address plan inserts ~3M nodes, and
// node-per-malloc cost both the build time (an allocator call per node)
// and ~4x the resident bytes (pointer pairs plus allocator headers).
// Traversal order, and therefore for_each's visit order and everything
// compiled from it, is identical to the pointer-based representation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/address.h"
#include "netbase/prefix.h"

namespace rr::net {

template <typename Value>
class LpmTrie {
 public:
  LpmTrie() { nodes_.emplace_back(); }  // index 0 = root

  /// Inserts or replaces the value for an exact prefix.
  void insert(const Prefix& prefix, Value value) {
    std::uint32_t node = 0;
    const std::uint32_t bits = prefix.base().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      std::uint32_t child = nodes_[node].children[bit];
      if (child == kNone) {
        child = static_cast<std::uint32_t>(nodes_.size());
        nodes_[node].children[bit] = child;
        nodes_.emplace_back();
      }
      node = child;
    }
    if (!nodes_[node].value.has_value()) ++size_;
    nodes_[node].value = std::move(value);
  }

  /// Longest-prefix-match lookup; nullptr when nothing covers `addr`.
  [[nodiscard]] const Value* lookup(IPv4Address addr) const noexcept {
    std::uint32_t node = 0;
    const Value* best =
        nodes_[0].value ? &*nodes_[0].value : nullptr;
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = nodes_[node].children[bit];
      if (node == kNone) break;
      if (nodes_[node].value) best = &*nodes_[node].value;
    }
    return best;
  }

  /// Longest matching prefix itself (with its value), if any.
  [[nodiscard]] std::optional<std::pair<Prefix, Value>> lookup_prefix(
      IPv4Address addr) const {
    std::uint32_t node = 0;
    std::optional<std::pair<Prefix, Value>> best;
    if (nodes_[0].value) best = {Prefix{addr, 0}, *nodes_[0].value};
    const std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = nodes_[node].children[bit];
      if (node == kNone) break;
      if (nodes_[node].value) {
        best = {Prefix{addr, static_cast<std::uint8_t>(depth + 1)},
                *nodes_[node].value};
      }
    }
    return best;
  }

  /// Exact-match lookup (no covering-prefix fallback).
  [[nodiscard]] const Value* exact(const Prefix& prefix) const noexcept {
    std::uint32_t node = 0;
    const std::uint32_t bits = prefix.base().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = nodes_[node].children[bit];
      if (node == kNone) return nullptr;
    }
    return nodes_[node].value ? &*nodes_[node].value : nullptr;
  }

  /// Removes an exact prefix; returns true if it was present.
  bool erase(const Prefix& prefix) noexcept {
    std::uint32_t node = 0;
    const std::uint32_t bits = prefix.base().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = nodes_[node].children[bit];
      if (node == kNone) return false;
    }
    if (!nodes_[node].value) return false;
    nodes_[node].value.reset();
    --size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Bytes held by the node pool (diagnostics).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return nodes_.capacity() * sizeof(Node);
  }

  /// Visits every (prefix, value) pair in lexicographic bit order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit(0, 0, 0, fn);
  }

 private:
  /// children[] sentinel: the root is never anyone's child, so index 0 is
  /// free to mean "absent" — which keeps a fresh node all-zero.
  static constexpr std::uint32_t kNone = 0;

  struct Node {
    std::optional<Value> value;
    std::uint32_t children[2] = {kNone, kNone};
  };

  template <typename Fn>
  void visit(std::uint32_t node, std::uint32_t bits, int depth,
             Fn& fn) const {
    const Node& n = nodes_[node];
    if (n.value) {
      fn(Prefix{IPv4Address{depth == 0 ? 0 : bits << (32 - depth)},
                static_cast<std::uint8_t>(depth)},
         *n.value);
    }
    if (depth == 32) return;
    if (n.children[0] != kNone) visit(n.children[0], bits << 1, depth + 1, fn);
    if (n.children[1] != kNone) {
      visit(n.children[1], (bits << 1) | 1, depth + 1, fn);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace rr::net
