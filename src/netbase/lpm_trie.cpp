// LpmTrie is header-only (template); this TU exists to give the target a
// compiled symbol and to catch header self-containment regressions.
#include "netbase/lpm_trie.h"

namespace rr::net {

// Explicit instantiation of the most common use to keep codegen honest.
template class LpmTrie<std::uint32_t>;

}  // namespace rr::net
