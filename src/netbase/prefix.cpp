#include "netbase/prefix.h"

namespace rr::net {

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IPv4Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  if (len_text.empty() || len_text.size() > 2) return std::nullopt;
  unsigned length = 0;
  for (char c : len_text) {
    if (c < '0' || c > '9') return std::nullopt;
    length = length * 10 + static_cast<unsigned>(c - '0');
  }
  if (length > 32) return std::nullopt;
  return Prefix{*addr, static_cast<std::uint8_t>(length)};
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace rr::net
