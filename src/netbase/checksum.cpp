#include "netbase/checksum.h"

namespace rr::net {

std::uint32_t checksum_partial(std::span<const std::uint8_t> data,
                               std::uint32_t initial) noexcept {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::uint32_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum += std::uint32_t{data[i]} << 8;  // pad the odd byte with zero
  }
  return sum;
}

std::uint16_t checksum_finish(std::uint32_t partial) noexcept {
  while (partial >> 16) {
    partial = (partial & 0xffff) + (partial >> 16);
  }
  return static_cast<std::uint16_t>(~partial & 0xffff);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  return checksum_finish(checksum_partial(data));
}

bool checksum_ok(std::span<const std::uint8_t> data) noexcept {
  return checksum_finish(checksum_partial(data)) == 0;
}

}  // namespace rr::net
