#include "netbase/address.h"

#include <cstdio>

namespace rr::net {

std::optional<IPv4Address> IPv4Address::parse(std::string_view text) noexcept {
  std::uint32_t octets[4] = {0, 0, 0, 0};
  int octet_index = 0;
  int digits_in_octet = 0;
  for (char c : text) {
    if (c == '.') {
      if (digits_in_octet == 0 || octet_index == 3) return std::nullopt;
      ++octet_index;
      digits_in_octet = 0;
      continue;
    }
    if (c < '0' || c > '9') return std::nullopt;
    if (digits_in_octet == 3) return std::nullopt;
    // Reject leading zeros ("01") which some parsers read as octal.
    if (digits_in_octet > 0 && octets[octet_index] == 0) return std::nullopt;
    octets[octet_index] =
        octets[octet_index] * 10 + static_cast<std::uint32_t>(c - '0');
    if (octets[octet_index] > 255) return std::nullopt;
    ++digits_in_octet;
  }
  if (octet_index != 3 || digits_in_octet == 0) return std::nullopt;
  return IPv4Address{static_cast<std::uint8_t>(octets[0]),
                     static_cast<std::uint8_t>(octets[1]),
                     static_cast<std::uint8_t>(octets[2]),
                     static_cast<std::uint8_t>(octets[3])};
}

std::string IPv4Address::to_string() const {
  char buffer[16];
  const auto b = to_bytes();
  std::snprintf(buffer, sizeof(buffer), "%u.%u.%u.%u", b[0], b[1], b[2], b[3]);
  return buffer;
}

}  // namespace rr::net
