// DIR-24-8-style flattened longest-prefix-match table.
//
// An LpmTrie answers a lookup by chasing up to 32 heap nodes; at campaign
// rates that pointer walk dominates `Topology::as_of_address`. FlatLpm
// compiles a finished trie into two dense arrays — a direct-indexed table
// of /24 granules plus 256-entry overflow blocks for prefixes longer than
// /24 — so a lookup is one (rarely two) array loads. The direct table is
// range-restricted to the /24 span the inserted prefixes actually cover,
// which keeps a contiguously-allocated address plan (ours grows upward
// from 16.0.0.0) at ~4 bytes per allocated /24 instead of 64 MiB.
//
// Build-then-freeze: a FlatLpm is constructed from an LpmTrie once and is
// immutable afterwards, so concurrent readers need no synchronization.
// Lookups agree with the source trie bit-for-bit — same hit/miss, same
// value, same matched prefix — including /0 and /32 edges (asserted by
// tests/flat_structures_test.cpp on randomized corpora).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "netbase/lpm_trie.h"
#include "netbase/prefix.h"

namespace rr::util {
class ThreadPool;
}  // namespace rr::util

namespace rr::net {

namespace detail {

/// Type-erased core: maps addresses to (value index, matched length).
/// Value storage lives in the templated wrapper.
class FlatLpmCore {
 public:
  struct Entry {
    Prefix prefix;
    std::uint32_t value_index = 0;
  };

  /// Compiles the entry set. Entries may arrive in any order and overlap
  /// arbitrarily; longest-prefix semantics are resolved here. With a pool,
  /// the direct-table fill runs block-parallel over disjoint granule
  /// ranges (each range replays its covering entries in ascending length
  /// order) — the table bytes are identical at any thread count.
  void build(std::vector<Entry> entries, util::ThreadPool* pool = nullptr);

  struct Hit {
    std::uint32_t value_index;
    std::uint8_t matched_length;
  };

  [[nodiscard]] std::optional<Hit> lookup(IPv4Address addr) const noexcept {
    const std::uint32_t granule = addr.value() >> 8;
    std::uint32_t slot;
    if (granule >= lo24_ && granule <= hi24_) {
      slot = tbl24_[granule - lo24_];
      if (slot & kOverflowFlag) {
        slot = tbl8_[((slot & kPayloadMask) << 8) | (addr.value() & 0xff)];
      }
    } else {
      slot = default_slot_;  // only a /0 (or nothing) covers out-of-range
    }
    if ((slot & kPayloadMask) == 0) return std::nullopt;
    return Hit{(slot & kPayloadMask) - 1,
               static_cast<std::uint8_t>(slot >> kLengthShift)};
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return (tbl24_.capacity() + tbl8_.capacity()) * sizeof(std::uint32_t);
  }

 private:
  // Slot layout. Terminal slot: bits 0..23 = value index + 1 (0 = no
  // covering prefix), bits 24..29 = matched prefix length (0..32), bit 31
  // clear. Overflow slot (tbl24 only): bit 31 set, bits 0..23 = tbl8
  // block number. 2^24-1 distinct values / blocks is far beyond our scale
  // and asserted at build time.
  static constexpr std::uint32_t kOverflowFlag = 0x8000'0000u;
  static constexpr std::uint32_t kPayloadMask = 0x00ff'ffffu;
  static constexpr int kLengthShift = 24;

  std::uint32_t lo24_ = 1;  // empty range: lo > hi
  std::uint32_t hi24_ = 0;
  std::uint32_t default_slot_ = 0;  // covers addresses outside [lo, hi]
  std::vector<std::uint32_t> tbl24_;
  std::vector<std::uint32_t> tbl8_;  // concatenated 256-entry blocks
};

}  // namespace detail

template <typename Value>
class FlatLpm {
 public:
  FlatLpm() = default;

  /// Compiles `trie` (which stays untouched and remains the mutable
  /// source of truth; rebuild after any further inserts). An optional pool
  /// parallelizes the direct-table fill; the result is bit-identical.
  explicit FlatLpm(const LpmTrie<Value>& trie,
                   util::ThreadPool* pool = nullptr) {
    std::vector<detail::FlatLpmCore::Entry> entries;
    entries.reserve(trie.size());
    values_.reserve(trie.size());
    trie.for_each([&](const Prefix& prefix, const Value& value) {
      entries.push_back(
          {prefix, static_cast<std::uint32_t>(values_.size())});
      values_.push_back(value);
    });
    core_.build(std::move(entries), pool);
  }

  /// Longest-prefix-match lookup; nullptr when nothing covers `addr`.
  [[nodiscard]] const Value* lookup(IPv4Address addr) const noexcept {
    const auto hit = core_.lookup(addr);
    if (!hit) return nullptr;
    return &values_[hit->value_index];
  }

  /// Longest matching prefix itself (with its value), if any.
  [[nodiscard]] std::optional<std::pair<Prefix, Value>> lookup_prefix(
      IPv4Address addr) const {
    const auto hit = core_.lookup(addr);
    if (!hit) return std::nullopt;
    return std::pair{Prefix{addr, hit->matched_length},
                     values_[hit->value_index]};
  }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return core_.memory_bytes() + values_.capacity() * sizeof(Value);
  }

 private:
  detail::FlatLpmCore core_;
  std::vector<Value> values_;
};

}  // namespace rr::net
