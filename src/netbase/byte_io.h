// Bounds-checked big-endian byte reader/writer.
//
// All wire serialization in rropt goes through these two types, so there is
// exactly one place where byte order and bounds are handled. Readers never
// throw; out-of-range reads mark the reader bad and return zeroes, and
// parsers must check `ok()` before trusting results (mirrors how robust
// packet parsers treat truncated input).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netbase/address.h"

namespace rr::net {

class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve_bytes) { buffer_.reserve(reserve_bytes); }

  void u8(std::uint8_t value) { buffer_.push_back(value); }

  void u16(std::uint16_t value) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
    buffer_.push_back(static_cast<std::uint8_t>(value));
  }

  void u32(std::uint32_t value) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> 24));
    buffer_.push_back(static_cast<std::uint8_t>(value >> 16));
    buffer_.push_back(static_cast<std::uint8_t>(value >> 8));
    buffer_.push_back(static_cast<std::uint8_t>(value));
  }

  void address(IPv4Address addr) { u32(addr.value()); }

  void bytes(std::span<const std::uint8_t> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  void zeros(std::size_t count) { buffer_.insert(buffer_.end(), count, 0); }

  /// Overwrites 2 bytes at `offset` (used to patch checksums in place).
  void patch_u16(std::size_t offset, std::uint16_t value) noexcept {
    if (offset + 2 > buffer_.size()) return;
    buffer_[offset] = static_cast<std::uint8_t>(value >> 8);
    buffer_[offset + 1] = static_cast<std::uint8_t>(value);
  }

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
    return buffer_;
  }

  /// Empties the buffer but keeps its capacity, so a writer can be reused
  /// as a flush-chunk scratch without reallocating per chunk.
  void clear() noexcept { buffer_.clear(); }
  [[nodiscard]] std::vector<std::uint8_t> take() && noexcept {
    return std::move(buffer_);
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint8_t u8() noexcept {
    if (!require(1)) return 0;
    return data_[position_++];
  }

  [[nodiscard]] std::uint16_t u16() noexcept {
    if (!require(2)) return 0;
    const std::uint16_t value = static_cast<std::uint16_t>(
        (std::uint16_t{data_[position_]} << 8) | data_[position_ + 1]);
    position_ += 2;
    return value;
  }

  [[nodiscard]] std::uint32_t u32() noexcept {
    if (!require(4)) return 0;
    const std::uint32_t value = (std::uint32_t{data_[position_]} << 24) |
                                (std::uint32_t{data_[position_ + 1]} << 16) |
                                (std::uint32_t{data_[position_ + 2]} << 8) |
                                std::uint32_t{data_[position_ + 3]};
    position_ += 4;
    return value;
  }

  [[nodiscard]] IPv4Address address() noexcept { return IPv4Address{u32()}; }

  /// Reads `count` bytes; returns an empty span (and marks bad) if short.
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t count) noexcept {
    if (!require(count)) return {};
    auto out = data_.subspan(position_, count);
    position_ += count;
    return out;
  }

  void skip(std::size_t count) noexcept {
    if (require(count)) position_ += count;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - position_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return position_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  /// Remaining bytes without consuming them.
  [[nodiscard]] std::span<const std::uint8_t> rest() const noexcept {
    return data_.subspan(position_);
  }

 private:
  [[nodiscard]] bool require(std::size_t count) noexcept {
    if (position_ + count > data_.size()) {
      ok_ = false;
      return false;
    }
    return ok_;
  }

  std::span<const std::uint8_t> data_;
  std::size_t position_ = 0;
  bool ok_ = true;
};

}  // namespace rr::net
