// ByteWriter/ByteReader are header-only; this TU checks self-containment.
#include "netbase/byte_io.h"
