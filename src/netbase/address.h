// IPv4 address value type.
//
// Stored in host byte order internally; `to_bytes`/`from_bytes` produce and
// consume network byte order, which is what goes on the wire.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace rr::net {

class IPv4Address {
 public:
  constexpr IPv4Address() noexcept = default;

  /// From a host-byte-order 32-bit value (0x7f000001 == 127.0.0.1).
  constexpr explicit IPv4Address(std::uint32_t host_order) noexcept
      : value_(host_order) {}

  /// From dotted-quad octets (a.b.c.d).
  constexpr IPv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad text ("192.0.2.1"); rejects malformed input.
  [[nodiscard]] static std::optional<IPv4Address> parse(
      std::string_view text) noexcept;

  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return value_;
  }

  [[nodiscard]] constexpr bool is_unspecified() const noexcept {
    return value_ == 0;
  }

  /// Network-byte-order (big-endian) wire representation.
  [[nodiscard]] constexpr std::array<std::uint8_t, 4> to_bytes()
      const noexcept {
    return {static_cast<std::uint8_t>(value_ >> 24),
            static_cast<std::uint8_t>(value_ >> 16),
            static_cast<std::uint8_t>(value_ >> 8),
            static_cast<std::uint8_t>(value_)};
  }

  [[nodiscard]] static constexpr IPv4Address from_bytes(
      std::uint8_t b0, std::uint8_t b1, std::uint8_t b2,
      std::uint8_t b3) noexcept {
    return IPv4Address{b0, b1, b2, b3};
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const IPv4Address&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace rr::net

template <>
struct std::hash<rr::net::IPv4Address> {
  std::size_t operator()(const rr::net::IPv4Address& addr) const noexcept {
    return std::hash<std::uint32_t>{}(addr.value());
  }
};
