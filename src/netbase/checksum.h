// RFC 1071 Internet checksum.
//
// Used by the IPv4 header, ICMP messages, and (optionally) UDP. The
// simulator validates checksums at every hop, exactly as real routers and
// hosts do, so serialization bugs surface as drops rather than silent
// mis-measurements.
#pragma once

#include <cstdint>
#include <span>

namespace rr::net {

/// One's-complement sum of 16-bit words (padding an odd trailing byte with
/// zero), not yet complemented. Useful for incremental computation.
[[nodiscard]] std::uint32_t checksum_partial(std::span<const std::uint8_t> data,
                                             std::uint32_t initial = 0) noexcept;

/// Folds a partial sum and complements it, yielding the wire checksum.
[[nodiscard]] std::uint16_t checksum_finish(std::uint32_t partial) noexcept;

/// Complete RFC 1071 checksum of a buffer.
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::uint8_t> data) noexcept;

/// Verifies a buffer whose checksum field is in place: the checksum over the
/// whole buffer must be zero.
[[nodiscard]] bool checksum_ok(std::span<const std::uint8_t> data) noexcept;

}  // namespace rr::net
