// RFC 1071 Internet checksum.
//
// Used by the IPv4 header, ICMP messages, and (optionally) UDP. The
// simulator validates checksums at every hop, exactly as real routers and
// hosts do, so serialization bugs surface as drops rather than silent
// mis-measurements.
#pragma once

#include <cstdint>
#include <span>

namespace rr::net {

/// One's-complement sum of 16-bit words (padding an odd trailing byte with
/// zero), not yet complemented. Useful for incremental computation.
[[nodiscard]] std::uint32_t checksum_partial(std::span<const std::uint8_t> data,
                                             std::uint32_t initial = 0) noexcept;

/// Folds a partial sum and complements it, yielding the wire checksum.
[[nodiscard]] std::uint16_t checksum_finish(std::uint32_t partial) noexcept;

/// Complete RFC 1071 checksum of a buffer.
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::uint8_t> data) noexcept;

/// Verifies a buffer whose checksum field is in place: the checksum over the
/// whole buffer must be zero.
[[nodiscard]] bool checksum_ok(std::span<const std::uint8_t> data) noexcept;

/// RFC 1624 incremental checksum updater: HC' = ~(~HC + sum(~m + m')) over
/// the changed 16-bit words. For a buffer whose stored checksum is valid
/// (i.e. produced by a full RFC 1071 recompute, so it lies in the canonical
/// range 0x0000..0xFFFE), `apply` yields bit-identical results to zeroing
/// the field and recomputing from scratch — including the 0xFFFF-fold edge
/// cases — because both sums reduce to the same nonzero one's-complement
/// representative.
class IncrementalChecksum {
 public:
  /// Notes that the 16-bit word `old_word` was rewritten to `new_word`.
  void update(std::uint16_t old_word, std::uint16_t new_word) noexcept {
    sum_ += static_cast<std::uint32_t>(~old_word & 0xffff);
    sum_ += new_word;
    if (sum_ >= 0xffff0000u) sum_ = (sum_ & 0xffff) + (sum_ >> 16);
  }

  /// Returns the updated checksum given the previously stored one.
  [[nodiscard]] std::uint16_t apply(std::uint16_t old_checksum) const noexcept {
    std::uint32_t sum =
        sum_ + static_cast<std::uint32_t>(~old_checksum & 0xffff);
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum & 0xffff);
  }

 private:
  std::uint32_t sum_ = 0;
};

}  // namespace rr::net
