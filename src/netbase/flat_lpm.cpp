#include "netbase/flat_lpm.h"

#include <algorithm>
#include <cassert>
#include <span>

#include "util/thread_pool.h"

namespace rr::net::detail {

namespace {

constexpr std::uint32_t slot_of(std::uint32_t value_index,
                                std::uint8_t length) noexcept {
  return (static_cast<std::uint32_t>(length) << 24) | (value_index + 1);
}

/// Granules per parallel fill shard. Big enough that short prefixes (which
/// span many shards and get re-bucketed per shard) stay cheap; small
/// enough that a census-scale table (~1.5M granules) splits into dozens of
/// independent work items.
constexpr std::uint32_t kShardGranules = 1u << 16;

}  // namespace

void FlatLpmCore::build(std::vector<Entry> entries, util::ThreadPool* pool) {
  assert(entries.size() < kPayloadMask);

  // Shorter prefixes first, so a longer (more specific) prefix written
  // later simply overwrites the granules (or tbl8 bytes) it covers.
  // Equal-length prefixes never overlap, so ties need no ordering.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.prefix.length() < b.prefix.length();
            });

  // The /0, if present, backs every address — inside and outside the
  // direct table's range — without forcing the table to span all 2^24
  // granules.
  default_slot_ = 0;
  lo24_ = 1;
  hi24_ = 0;
  bool have_range = false;
  const auto granule_range = [](const Entry& e) {
    const std::uint32_t base = e.prefix.base().value();
    const std::uint32_t first = base >> 8;
    const std::uint32_t last = static_cast<std::uint32_t>(
        (std::uint64_t{base} +
         (std::uint64_t{1} << (32 - e.prefix.length())) - 1) >>
        8);
    return std::pair{first, last};
  };
  for (const Entry& e : entries) {
    if (e.prefix.length() == 0) {
      default_slot_ = slot_of(e.value_index, 0);
      continue;
    }
    const auto [first, last] = granule_range(e);
    if (!have_range) {
      lo24_ = first;
      hi24_ = last;
      have_range = true;
    } else {
      lo24_ = std::min(lo24_, first);
      hi24_ = std::max(hi24_, last);
    }
  }
  tbl24_.clear();
  tbl8_.clear();
  if (!have_range) return;  // empty or /0-only: default_slot_ answers all
  tbl24_.assign(std::size_t{hi24_} - lo24_ + 1, default_slot_);

  // Direct-table fill for prefixes up to /24. With a pool, the granule
  // space splits into fixed shards; each shard collects the (already
  // length-sorted) entries that touch it and replays them clamped to its
  // range. Every tbl24 slot receives exactly the same sequence of writes
  // as the serial loop, so the bytes are identical at any thread count.
  const auto first_long = std::partition_point(
      entries.begin(), entries.end(),
      [](const Entry& e) { return e.prefix.length() <= 24; });
  const std::span<const Entry> short_entries{entries.begin(), first_long};
  if (pool == nullptr || pool->size() <= 1 ||
      tbl24_.size() <= kShardGranules) {
    for (const Entry& e : short_entries) {
      if (e.prefix.length() == 0) continue;
      const std::uint32_t base = e.prefix.base().value();
      const std::size_t first = (base >> 8) - lo24_;
      std::fill_n(tbl24_.begin() + static_cast<std::ptrdiff_t>(first),
                  std::size_t{1} << (24 - e.prefix.length()),
                  slot_of(e.value_index, e.prefix.length()));
    }
  } else {
    const std::size_t n_shards =
        (tbl24_.size() + kShardGranules - 1) / kShardGranules;
    std::vector<std::vector<std::uint32_t>> shard_entries(n_shards);
    for (std::uint32_t i = 0; i < short_entries.size(); ++i) {
      const Entry& e = short_entries[i];
      if (e.prefix.length() == 0) continue;
      const auto [first, last] = granule_range(e);
      for (std::size_t s = (first - lo24_) / kShardGranules;
           s <= (last - lo24_) / kShardGranules; ++s) {
        shard_entries[s].push_back(i);
      }
    }
    pool->parallel_for(n_shards, [&](std::size_t s) {
      const std::size_t shard_lo = s * kShardGranules;
      const std::size_t shard_hi =
          std::min(tbl24_.size(), shard_lo + kShardGranules) - 1;
      for (const std::uint32_t i : shard_entries[s]) {
        const Entry& e = short_entries[i];
        const auto [first, last] = granule_range(e);
        const std::size_t from =
            std::max<std::size_t>(first - lo24_, shard_lo);
        const std::size_t to = std::min<std::size_t>(last - lo24_, shard_hi);
        std::fill(tbl24_.begin() + static_cast<std::ptrdiff_t>(from),
                  tbl24_.begin() + static_cast<std::ptrdiff_t>(to) + 1,
                  slot_of(e.value_index, e.prefix.length()));
      }
    });
  }

  // Longer than /24: route the granule through a 256-entry overflow block
  // seeded with whatever covered it so far. Serial — block numbers must be
  // allocated in entry order — and cheap (such prefixes are rare in every
  // address plan we generate). Length ordering guarantees no granule-wide
  // fill happens after a promotion.
  for (auto it = first_long; it != entries.end(); ++it) {
    const Entry& e = *it;
    const std::uint8_t len = e.prefix.length();
    const std::uint32_t base = e.prefix.base().value();
    const std::uint32_t slot = slot_of(e.value_index, len);
    const std::size_t granule = (base >> 8) - lo24_;
    std::uint32_t block;
    if (tbl24_[granule] & kOverflowFlag) {
      block = tbl24_[granule] & kPayloadMask;
    } else {
      block = static_cast<std::uint32_t>(tbl8_.size() >> 8);
      assert(block < kPayloadMask);
      tbl8_.resize(tbl8_.size() + 256, tbl24_[granule]);
      tbl24_[granule] = kOverflowFlag | block;
    }
    const std::size_t start = (std::size_t{block} << 8) | (base & 0xff);
    std::fill_n(tbl8_.begin() + static_cast<std::ptrdiff_t>(start),
                std::size_t{1} << (32 - len), slot);
  }
}

}  // namespace rr::net::detail
