#include "netbase/flat_lpm.h"

#include <algorithm>
#include <cassert>

namespace rr::net::detail {

namespace {

constexpr std::uint32_t slot_of(std::uint32_t value_index,
                                std::uint8_t length) noexcept {
  return (static_cast<std::uint32_t>(length) << 24) | (value_index + 1);
}

}  // namespace

void FlatLpmCore::build(std::vector<Entry> entries) {
  assert(entries.size() < kPayloadMask);

  // Shorter prefixes first, so a longer (more specific) prefix written
  // later simply overwrites the granules (or tbl8 bytes) it covers.
  // Equal-length prefixes never overlap, so ties need no ordering.
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.prefix.length() < b.prefix.length();
            });

  // The /0, if present, backs every address — inside and outside the
  // direct table's range — without forcing the table to span all 2^24
  // granules.
  default_slot_ = 0;
  lo24_ = 1;
  hi24_ = 0;
  bool have_range = false;
  for (const Entry& e : entries) {
    if (e.prefix.length() == 0) {
      default_slot_ = slot_of(e.value_index, 0);
      continue;
    }
    const std::uint32_t base = e.prefix.base().value();
    const std::uint32_t first = base >> 8;
    const std::uint32_t last = static_cast<std::uint32_t>(
        (std::uint64_t{base} +
         (std::uint64_t{1} << (32 - e.prefix.length())) - 1) >>
        8);
    if (!have_range) {
      lo24_ = first;
      hi24_ = last;
      have_range = true;
    } else {
      lo24_ = std::min(lo24_, first);
      hi24_ = std::max(hi24_, last);
    }
  }
  tbl24_.clear();
  tbl8_.clear();
  if (!have_range) return;  // empty or /0-only: default_slot_ answers all
  tbl24_.assign(std::size_t{hi24_} - lo24_ + 1, default_slot_);

  for (const Entry& e : entries) {
    const std::uint8_t len = e.prefix.length();
    if (len == 0) continue;
    const std::uint32_t base = e.prefix.base().value();
    const std::uint32_t slot = slot_of(e.value_index, len);
    if (len <= 24) {
      const std::size_t first = (base >> 8) - lo24_;
      std::fill_n(tbl24_.begin() + static_cast<std::ptrdiff_t>(first),
                  std::size_t{1} << (24 - len), slot);
      continue;
    }
    // Longer than /24: route the granule through a 256-entry overflow
    // block seeded with whatever covered it so far. Length ordering
    // guarantees no granule-wide fill happens after this promotion.
    const std::size_t granule = (base >> 8) - lo24_;
    std::uint32_t block;
    if (tbl24_[granule] & kOverflowFlag) {
      block = tbl24_[granule] & kPayloadMask;
    } else {
      block = static_cast<std::uint32_t>(tbl8_.size() >> 8);
      assert(block < kPayloadMask);
      tbl8_.resize(tbl8_.size() + 256, tbl24_[granule]);
      tbl24_[granule] = kOverflowFlag | block;
    }
    const std::size_t start = (std::size_t{block} << 8) | (base & 0xff);
    std::fill_n(tbl8_.begin() + static_cast<std::ptrdiff_t>(start),
                std::size_t{1} << (32 - len), slot);
  }
}

}  // namespace rr::net::detail
