// IPv4 prefix (CIDR block) value type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/address.h"

namespace rr::net {

class Prefix {
 public:
  constexpr Prefix() noexcept = default;

  /// Constructs a prefix; host bits of `base` below the mask are cleared.
  constexpr Prefix(IPv4Address base, std::uint8_t length) noexcept
      : base_(IPv4Address{mask_off(base.value(), length)}),
        length_(length <= 32 ? length : 32) {}

  /// Parses "a.b.c.d/len".
  [[nodiscard]] static std::optional<Prefix> parse(
      std::string_view text) noexcept;

  [[nodiscard]] constexpr IPv4Address base() const noexcept { return base_; }
  [[nodiscard]] constexpr std::uint8_t length() const noexcept {
    return length_;
  }

  /// Number of addresses covered (2^(32-length)); 0-length covers all.
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  [[nodiscard]] constexpr bool contains(IPv4Address addr) const noexcept {
    return mask_off(addr.value(), length_) == base_.value();
  }

  [[nodiscard]] constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.base_);
  }

  /// The address at `offset` within the block (wraps modulo size()).
  [[nodiscard]] constexpr IPv4Address address_at(
      std::uint64_t offset) const noexcept {
    return IPv4Address{base_.value() +
                       static_cast<std::uint32_t>(offset % size())};
  }

  /// Enclosing /24 of an address (the equivalence used in the paper's §3.6).
  [[nodiscard]] static constexpr Prefix slash24_of(IPv4Address addr) noexcept {
    return Prefix{addr, 24};
  }

  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Prefix&) const noexcept = default;

 private:
  static constexpr std::uint32_t mask_off(std::uint32_t value,
                                          std::uint8_t length) noexcept {
    if (length == 0) return 0;
    if (length >= 32) return value;
    return value & ~((std::uint32_t{1} << (32 - length)) - 1);
  }

  IPv4Address base_{};
  std::uint8_t length_ = 0;
};

}  // namespace rr::net

template <>
struct std::hash<rr::net::Prefix> {
  std::size_t operator()(const rr::net::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.base().value()} << 8) | p.length());
  }
};
