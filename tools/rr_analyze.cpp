// rr-analyze: offline analysis of a frozen dataset produced by rr-study.
//
//   rr-analyze study.rrds [--within N]
//   rr-analyze baseline.rrds --diff faulted.rrds
//
// Prints Table 1 and the reachability summary without touching the
// simulator — only the published data. With --diff, compares a baseline
// dataset against one measured under a fault plan and checks the paper's
// classification invariants: faults can only remove evidence (no
// destination gains ping/RR responsiveness or reachability) and Table 1
// row sums stay conserved. Exits 2 on any violation.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "data/dataset.h"
#include "util/flags.h"
#include "util/strings.h"

using namespace rr;

namespace {

/// Per-type rows must add up to the Total row for every Table 1 column.
bool table_conserved(const measure::ResponseTable& table, const char* label) {
  bool ok = true;
  const auto check = [&](const auto& rows, const char* axis) {
    std::size_t probed = 0, ping = 0, rr = 0;
    for (std::size_t i = 1; i < rows.size(); ++i) {
      probed += rows[i].probed;
      ping += rows[i].ping_responsive;
      rr += rows[i].rr_responsive;
    }
    if (probed != rows[0].probed || ping != rows[0].ping_responsive ||
        rr != rows[0].rr_responsive) {
      std::fprintf(stderr,
                   "DIFF VIOLATION: %s %s rows do not sum to the total\n",
                   label, axis);
      ok = false;
    }
  };
  check(table.by_ip, "by-IP");
  check(table.by_as, "by-AS");
  return ok;
}

int run_diff(const data::CampaignDataset& base,
             const data::CampaignDataset& faulted) {
  if (base.num_vps() != faulted.num_vps() ||
      base.num_destinations() != faulted.num_destinations()) {
    std::fprintf(stderr, "error: datasets have different shapes\n");
    return 1;
  }
  for (std::size_t d = 0; d < base.num_destinations(); ++d) {
    if (base.destinations[d].address != faulted.destinations[d].address) {
      std::fprintf(stderr, "error: destination lists differ at index %zu\n",
                   d);
      return 1;
    }
  }

  if (base.observations == faulted.observations &&
      base.destinations == faulted.destinations) {
    std::printf("datasets are bit-identical (%zu VPs x %zu destinations)\n",
                base.num_vps(), base.num_destinations());
    return 0;
  }

  // Monotonicity: an added fault can suppress or corrupt a response but
  // never conjure one, so every per-destination classification may only
  // move toward "less reachable".
  std::size_t ping_gained = 0, rr_resp_gained = 0, rr_reach_gained = 0;
  std::size_t ping_lost = 0, rr_resp_lost = 0, rr_reach_lost = 0;
  for (std::size_t d = 0; d < base.num_destinations(); ++d) {
    const bool base_ping = base.destinations[d].ping_responsive != 0;
    const bool fault_ping = faulted.destinations[d].ping_responsive != 0;
    if (!base_ping && fault_ping) ++ping_gained;
    if (base_ping && !fault_ping) ++ping_lost;
    if (!base.rr_responsive(d) && faulted.rr_responsive(d)) ++rr_resp_gained;
    if (base.rr_responsive(d) && !faulted.rr_responsive(d)) ++rr_resp_lost;
    if (!base.rr_reachable(d) && faulted.rr_reachable(d)) ++rr_reach_gained;
    if (base.rr_reachable(d) && !faulted.rr_reachable(d)) ++rr_reach_lost;
  }
  std::printf("classification drift (baseline -> faulted):\n"
              "  ping-responsive: -%zu +%zu\n"
              "  RR-responsive:   -%zu +%zu\n"
              "  RR-reachable:    -%zu +%zu\n",
              ping_lost, ping_gained, rr_resp_lost, rr_resp_gained,
              rr_reach_lost, rr_reach_gained);

  bool ok = true;
  if (ping_gained + rr_resp_gained + rr_reach_gained > 0) {
    std::fprintf(stderr,
                 "DIFF VIOLATION: faults added reachability evidence\n");
    ok = false;
  }
  ok &= table_conserved(base.response_table(), "baseline");
  ok &= table_conserved(faulted.response_table(), "faulted");
  std::printf("%s\n", ok ? "invariants hold" : "INVARIANTS VIOLATED");
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  if (flags.positional().empty() || flags.has("help")) {
    std::printf(
        "usage: rr-analyze FILE.rrds [--within N]\n"
        "       rr-analyze BASELINE.rrds --diff FAULTED.rrds\n");
    return flags.has("help") ? 0 : 1;
  }
  const auto dataset = data::CampaignDataset::load(flags.positional()[0]);
  if (!dataset) {
    std::fprintf(stderr, "error: cannot load %s (missing or corrupt)\n",
                 flags.positional()[0].c_str());
    return 1;
  }

  if (flags.has("diff")) {
    const std::string other_path = flags.get("diff", "");
    const auto other = data::CampaignDataset::load(other_path);
    if (!other) {
      std::fprintf(stderr, "error: cannot load %s (missing or corrupt)\n",
                   other_path.c_str());
      return 1;
    }
    return run_diff(*dataset, *other);
  }
  std::printf("dataset: %s\n%zu VPs, %s destinations\n\n",
              dataset->description.c_str(), dataset->num_vps(),
              util::with_commas(dataset->num_destinations()).c_str());

  static const char* kTypeNames[] = {"Total", "Transit/Access", "Enterprise",
                                     "Content", "Unknown"};
  const auto table = dataset->response_table();
  analysis::TextTable text({"By IP", "probed", "ping", "ping-RR",
                            "RR/ping"});
  for (std::size_t i = 0; i < table.by_ip.size(); ++i) {
    text.add_row({kTypeNames[i],
                  util::with_commas(table.by_ip[i].probed),
                  util::percent(table.by_ip[i].ping_rate()),
                  util::percent(table.by_ip[i].rr_rate()),
                  util::percent(table.by_ip[i].rr_over_ping())});
  }
  text.print(std::cout);

  const int limit = static_cast<int>(flags.get_int("within", 9));
  std::size_t responsive = 0, within = 0;
  for (std::size_t d = 0; d < dataset->num_destinations(); ++d) {
    if (!dataset->rr_responsive(d)) continue;
    ++responsive;
    const int dist = dataset->min_rr_distance(d);
    if (dist > 0 && dist <= limit) ++within;
  }
  std::printf("\nRR-responsive destinations within %d RR hops of a VP: "
              "%s of %s (%s)\n",
              limit, util::with_commas(within).c_str(),
              util::with_commas(responsive).c_str(),
              util::percent(responsive ? double(within) / double(responsive)
                                       : 0.0).c_str());
  return 0;
}
