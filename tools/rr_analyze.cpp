// rr-analyze: offline analysis of a frozen dataset produced by rr-study.
//
//   rr-analyze study.rrds [--within N]
//
// Prints Table 1 and the reachability summary without touching the
// simulator — only the published data.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "data/dataset.h"
#include "util/flags.h"
#include "util/strings.h"

using namespace rr;

int main(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  if (flags.positional().empty() || flags.has("help")) {
    std::printf("usage: rr-analyze FILE.rrds [--within N]\n");
    return flags.has("help") ? 0 : 1;
  }
  const auto dataset = data::CampaignDataset::load(flags.positional()[0]);
  if (!dataset) {
    std::fprintf(stderr, "error: cannot load %s (missing or corrupt)\n",
                 flags.positional()[0].c_str());
    return 1;
  }
  std::printf("dataset: %s\n%zu VPs, %s destinations\n\n",
              dataset->description.c_str(), dataset->num_vps(),
              util::with_commas(dataset->num_destinations()).c_str());

  static const char* kTypeNames[] = {"Total", "Transit/Access", "Enterprise",
                                     "Content", "Unknown"};
  const auto table = dataset->response_table();
  analysis::TextTable text({"By IP", "probed", "ping", "ping-RR",
                            "RR/ping"});
  for (std::size_t i = 0; i < table.by_ip.size(); ++i) {
    text.add_row({kTypeNames[i],
                  util::with_commas(table.by_ip[i].probed),
                  util::percent(table.by_ip[i].ping_rate()),
                  util::percent(table.by_ip[i].rr_rate()),
                  util::percent(table.by_ip[i].rr_over_ping())});
  }
  text.print(std::cout);

  const int limit = static_cast<int>(flags.get_int("within", 9));
  std::size_t responsive = 0, within = 0;
  for (std::size_t d = 0; d < dataset->num_destinations(); ++d) {
    if (!dataset->rr_responsive(d)) continue;
    ++responsive;
    const int dist = dataset->min_rr_distance(d);
    if (dist > 0 && dist <= limit) ++within;
  }
  std::printf("\nRR-responsive destinations within %d RR hops of a VP: "
              "%s of %s (%s)\n",
              limit, util::with_commas(within).c_str(),
              util::with_commas(responsive).c_str(),
              util::percent(responsive ? double(within) / double(responsive)
                                       : 0.0).c_str());
  return 0;
}
