// rropt_lint CLI: `rropt_lint <path>...` lints every .h/.hpp/.cpp/.cc
// under the given files/directories and prints compiler-style findings.
// Exit 0 = clean, 1 = findings, 2 = usage error.
#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : rr::lint::rule_descriptions()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: rropt_lint [--list-rules] <file-or-dir>...\n"
          "Checks rropt repo invariants (determinism, hot-path allocation,\n"
          "lock-wrapper and include hygiene). See tools/lint/lint.h for the\n"
          "rule table and waiver syntax.\n");
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "rropt_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: rropt_lint [--list-rules] <file-or-dir>...\n");
    return 2;
  }

  const auto findings = rr::lint::lint_paths(paths);
  for (const auto& finding : findings) {
    std::printf("%s\n", rr::lint::format(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "rropt_lint: %zu finding%s\n", findings.size(),
                 findings.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
