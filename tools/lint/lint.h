// rropt_lint: a repo-invariant static checker (tokenizer-level, no
// libclang dependency).
//
// Clang Thread Safety Analysis (src/util/annotations.h) proves the lock
// discipline; this linter enforces the *repo-specific* invariants that no
// general-purpose tool knows about — the determinism contract and the
// hot-path allocation budget the paper reproduction depends on:
//
//   no-rand           sim|measure|routing   rand()/random_device & friends
//                                           banned — all randomness must be
//                                           counter-based via util::Rng
//   no-wallclock      sim|measure|routing   time()/system_clock/... banned —
//                                           time is virtual, from the probe
//                                           schedule
//   no-unseeded-rng   sim|measure|routing   default-constructed std engines
//                                           (mt19937 m;) banned — seeds must
//                                           be explicit and config-derived
//   no-stream-io      packet|sim|probe|     <iostream>/printf/cout banned in
//                     netbase|routing|      hot-path subsystems; logging goes
//                     measure               through util::log in drivers only
//   no-hot-alloc      RROPT_HOT_BEGIN/END   heap-allocating calls (new,
//                     regions + element     make_unique, push_back, ...)
//                     process() bodies in   banned inside marked hot regions
//                     sim|measure|routing   and inside dataplane element
//                                           process() definitions (hot by
//                                           the sim/element.h contract)
//                                           unless the line carries an
//                                           RROPT_HOT_OK waiver
//   raw-mutex         everywhere but util/  std::mutex members banned — use
//                                           util::Mutex so the thread-safety
//                                           analysis can see the locks
//   umbrella-include  src tree              including "rropt.h" from inside
//                                           the library is a cycle by
//                                           construction
//   pragma-once       headers               every .h starts its include
//                                           story with #pragma once
//   taint             sim|measure|routing|  file-scope symbol-flow pass:
//                     data                  identifiers assigned from
//                                           nondeterminism sources (wall-
//                                           clock, process-global RNG,
//                                           pointer-as-integer casts,
//                                           unordered-container iteration
//                                           order via range-for) must not
//                                           reach hash / serialization /
//                                           telemetry sinks (content_hash,
//                                           serialize, save, mix64, ...)
//
// v2 also closes no-hot-alloc over one level of calls: a function called
// from inside an RROPT_HOT region or an element process() body (same-file
// name resolution) inherits the no-allocation rule.
//
// Any single finding can be waived with a same-line comment
// `// rropt-lint: allow(<rule>)`; hot-region allocations use
// `// RROPT_HOT_OK: <reason>` instead. Rule scoping keys on path
// *components* (".../sim/...") so the fixture corpus under
// tests/lint_corpus/{good,bad}/<subsystem>/ exercises the same scoping as
// the real tree.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rr::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// "file:line: [rule] message" — the compiler-style shape editors parse.
[[nodiscard]] std::string format(const Finding& finding);

/// Lints one file's contents. `path` is used for reporting and for rule
/// scoping (its directory components select subsystem rules).
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             std::string_view content);

/// Lints every .h/.hpp/.cpp/.cc under the given files/directories
/// (recursively), in sorted path order. Unreadable paths produce a
/// finding rather than a crash.
[[nodiscard]] std::vector<Finding> lint_paths(
    const std::vector<std::string>& paths);

/// One line per rule: "name — description" (for --list-rules).
[[nodiscard]] std::vector<std::string> rule_descriptions();

}  // namespace rr::lint
