#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace rr::lint {

namespace {

// ---------------------------------------------------------------- lexing

/// One significant token: an identifier/number, or a single punctuation
/// character. Comments and literals never become tokens, but comment text
/// is scanned for the lint directives before being dropped.
struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

/// Per-line directive state gathered from comments.
struct LineDirectives {
  std::unordered_map<int, std::set<std::string>> allows;  // rropt-lint: allow
  std::unordered_set<int> hot_ok;                         // RROPT_HOT_OK
  std::unordered_set<int> hot_begin;                      // RROPT_HOT_BEGIN
  std::unordered_set<int> hot_end;                        // RROPT_HOT_END
};

struct Include {
  std::string target;  // between the quotes/brackets
  int line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  LineDirectives directives;
  std::vector<Include> includes;
  bool has_pragma_once = false;
  int last_line = 1;
};

void scan_comment(std::string_view comment, int line, LineDirectives& out) {
  if (comment.find("RROPT_HOT_BEGIN") != std::string_view::npos) {
    out.hot_begin.insert(line);
  }
  if (comment.find("RROPT_HOT_END") != std::string_view::npos) {
    out.hot_end.insert(line);
  }
  if (comment.find("RROPT_HOT_OK") != std::string_view::npos) {
    out.hot_ok.insert(line);
  }
  // rropt-lint: allow(rule-a, rule-b)
  const auto at = comment.find("rropt-lint:");
  if (at == std::string_view::npos) return;
  const auto open = comment.find('(', at);
  const auto close = comment.find(')', at);
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return;
  }
  std::string rule;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')') {
      if (!rule.empty()) out.allows[line].insert(rule);
      rule.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      rule.push_back(c);
    }
  }
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

LexedFile lex(std::string_view src) {
  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  bool at_line_start = true;  // only whitespace seen on this line so far

  auto advance_newline = [&](char c) {
    if (c == '\n') {
      ++line;
      at_line_start = true;
    }
  };

  while (i < n) {
    const char c = src[i];

    // Preprocessor directives (collect includes / pragma once, then skip
    // the directive name token so "include" never reaches the rules).
    if (at_line_start && c == '#') {
      std::size_t j = i;
      const std::size_t eol = src.find('\n', i);
      const std::size_t end = eol == std::string_view::npos ? n : eol;
      std::string_view directive = src.substr(j, end - j);
      if (directive.find("pragma") != std::string_view::npos &&
          directive.find("once") != std::string_view::npos) {
        out.has_pragma_once = true;
      }
      const auto inc = directive.find("include");
      if (inc != std::string_view::npos) {
        std::size_t k = inc + 7;
        while (k < directive.size() &&
               std::isspace(static_cast<unsigned char>(directive[k]))) {
          ++k;
        }
        if (k < directive.size() &&
            (directive[k] == '"' || directive[k] == '<')) {
          const char closer = directive[k] == '"' ? '"' : '>';
          const auto stop = directive.find(closer, k + 1);
          if (stop != std::string_view::npos) {
            out.includes.push_back(
                {std::string{directive.substr(k + 1, stop - k - 1)}, line});
          }
        }
      }
      // A directive can still carry a trailing comment with directives.
      const auto slashes = directive.find("//");
      if (slashes != std::string_view::npos) {
        scan_comment(directive.substr(slashes), line, out.directives);
      }
      // Respect line continuations inside the directive.
      i = end;
      continue;  // the '\n' (if any) is consumed by the generic path below
    }

    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t eol = src.find('\n', i);
      const std::size_t end = eol == std::string_view::npos ? n : eol;
      scan_comment(src.substr(i, end - i), line, out.directives);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t close = src.find("*/", i + 2);
      const std::size_t end = close == std::string_view::npos ? n : close + 2;
      // Block comments may span lines; scan each line for directives.
      std::size_t start = i;
      int comment_line = line;
      for (std::size_t k = i; k < end; ++k) {
        if (src[k] == '\n' || k + 1 == end) {
          scan_comment(src.substr(start, k + 1 - start), comment_line,
                       out.directives);
          start = k + 1;
          if (src[k] == '\n') {
            ++line;
            comment_line = line;
          }
        }
      }
      i = end;
      at_line_start = false;
      continue;
    }

    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
        (out.tokens.empty() || !ident_char(src[i - 1]))) {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && delim.size() < 16) {
        delim.push_back(src[j++]);
      }
      const std::string closer = ")" + delim + "\"";
      const auto stop = src.find(closer, j);
      const std::size_t end =
          stop == std::string_view::npos ? n : stop + closer.size();
      for (std::size_t k = i; k < end; ++k) advance_newline(src[k]);
      i = end;
      continue;
    }

    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        advance_newline(src[j]);
        ++j;
      }
      i = j < n ? j + 1 : n;
      at_line_start = false;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Consume the whole numeric literal including 1'000 separators and
      // suffixes, so embedded quotes never open a char literal.
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       src[j] == '\'')) {
        ++j;
      }
      out.tokens.push_back({std::string{src.substr(i, j - i)}, line, false});
      i = j;
      at_line_start = false;
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back({std::string{src.substr(i, j - i)}, line, true});
      i = j;
      at_line_start = false;
      continue;
    }

    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // NB: parens, not braces — std::string{1, c} would pick the
    // initializer_list<char> constructor and mint a two-char token.
    out.tokens.push_back({std::string(1, c), line, false});
    ++i;
    at_line_start = false;
  }
  out.last_line = line;
  return out;
}

// ------------------------------------------------------------- rule scope

struct Scope {
  bool determinism = false;  // sim/, measure/, routing/
  bool hot_io = false;       // + packet/, probe/, netbase/
  bool util = false;         // util/ may hold raw std::mutex
  bool data = false;         // data/ freezes dataset bytes (taint sinks)
  bool header = false;       // *.h / *.hpp
  bool umbrella = false;     // the umbrella header itself
};

Scope classify(const std::string& path) {
  Scope scope;
  std::filesystem::path p{path};
  for (const auto& part : p) {
    const std::string name = part.string();
    if (name == "sim" || name == "measure" || name == "routing") {
      scope.determinism = true;
      scope.hot_io = true;
    }
    if (name == "packet" || name == "probe" || name == "netbase") {
      scope.hot_io = true;
    }
    if (name == "util") scope.util = true;
    if (name == "data") scope.data = true;
  }
  const std::string ext = p.extension().string();
  scope.header = ext == ".h" || ext == ".hpp";
  scope.umbrella = p.filename() == "rropt.h";
  return scope;
}

// ---------------------------------------------------------------- checks

/// Nondeterminism-source identifier sets, shared by the per-token rules
/// (no-rand / no-wallclock) and the taint pass (which tracks where the
/// values *flow*).
const std::unordered_set<std::string>& rand_idents() {
  static const std::unordered_set<std::string> kSet{
      "rand", "srand", "random", "drand48", "lrand48", "random_device",
      "random_shuffle"};
  return kSet;
}
const std::unordered_set<std::string>& wallclock_idents() {
  static const std::unordered_set<std::string> kSet{
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get", "localtime",
      "gmtime"};
  return kSet;
}

class Checker {
 public:
  Checker(const std::string& path, const LexedFile& lexed)
      : path_(path), scope_(classify(path)), lexed_(lexed) {}

  std::vector<Finding> run() {
    check_includes();
    check_pragma_once();
    check_tokens();
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                return a.line < b.line;
              });
    return std::move(findings_);
  }

 private:
  void report(int line, const char* rule, std::string message) {
    const auto it = lexed_.directives.allows.find(line);
    if (it != lexed_.directives.allows.end() && it->second.count(rule) > 0) {
      return;  // waived in place
    }
    findings_.push_back({path_, line, rule, std::move(message)});
  }

  void check_includes() {
    for (const Include& inc : lexed_.includes) {
      if (!scope_.umbrella && inc.target == "rropt.h") {
        report(inc.line, "umbrella-include",
               "including the umbrella header \"rropt.h\" from inside the "
               "library creates an include cycle; include the specific "
               "subsystem headers instead");
      }
      if (scope_.hot_io && !scope_.util &&
          (inc.target == "iostream" || inc.target == "ostream" ||
           inc.target == "istream")) {
        report(inc.line, "no-stream-io",
               "<" + inc.target + "> is banned in hot-path subsystems; "
               "drivers log through util/log.h");
      }
    }
  }

  void check_pragma_once() {
    if (scope_.header && !lexed_.has_pragma_once) {
      report(1, "pragma-once", "header is missing #pragma once");
    }
  }

  [[nodiscard]] bool member_access_before(std::size_t i) const {
    if (i == 0) return false;
    const std::string& prev = lexed_.tokens[i - 1].text;
    if (prev == "." || prev == ":") return true;  // ":" covers "::"
    if (prev == ">" && i >= 2 && lexed_.tokens[i - 2].text == "-") {
      return true;
    }
    return false;
  }

  [[nodiscard]] bool call_follows(std::size_t i) const {
    return i + 1 < lexed_.tokens.size() && lexed_.tokens[i + 1].text == "(";
  }

  [[nodiscard]] bool std_qualified(std::size_t i) const {
    return i >= 2 && lexed_.tokens[i - 1].text == ":" &&
           lexed_.tokens[i - 2].text == ":" &&
           (i < 3 || lexed_.tokens[i - 3].text == "std");
  }

  /// One `<name>(...) ... { ... }` function *definition* found in the
  /// file, with the body's line span and the token index range of the
  /// whole construct (name through closing brace). Calls and declarations
  /// (which hit ';', ',', '=' or a closing paren before any '{') are never
  /// recorded.
  struct FnDef {
    std::string name;
    int body_begin = 0;
    int body_end = 0;
    std::size_t first_token = 0;  // the name token
    std::size_t last_token = 0;   // the closing '}' (or end of file)
  };

  /// Scans the token stream for function definitions — free functions,
  /// member definitions (the name is the last identifier before the
  /// parameter list), qualified out-of-line definitions. Control-flow
  /// keywords that look like `name(...) {` are excluded. Between the
  /// parameter list and a definition's '{' only qualifiers may appear
  /// (const, noexcept(...), ref-qualifiers, a trailing return type, a
  /// constructor's member-init list).
  [[nodiscard]] std::vector<FnDef> collect_fn_defs() const {
    static const std::unordered_set<std::string> kNotFnNames{
        "if",        "for",      "while",    "switch",   "catch",
        "do",        "else",     "return",   "sizeof",   "alignof",
        "alignas",   "decltype", "noexcept", "constexpr", "new",
        "delete",    "throw",    "assert",   "static_assert", "defined",
        "co_await",  "co_return", "co_yield"};
    std::vector<FnDef> defs;
    const auto& toks = lexed_.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!toks[i].is_ident || kNotFnNames.count(toks[i].text) > 0 ||
          toks[i + 1].text != "(") {
        continue;
      }
      std::size_t j = i + 1;
      int depth = 0;
      while (j < toks.size()) {
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")" && --depth == 0) break;
        ++j;
      }
      if (j >= toks.size()) break;
      ++j;  // past the parameter list's ')'
      bool definition = false;
      int paren = 0;
      for (; j < toks.size(); ++j) {
        const std::string& t = toks[j].text;
        if (t == "(") {
          ++paren;
        } else if (t == ")") {
          if (paren == 0) break;
          --paren;
        } else if (paren > 0) {
          continue;
        } else if (t == "{") {
          definition = true;
          break;
        } else if (t == ";" || t == "," || t == "=") {
          break;
        }
      }
      if (!definition) continue;
      FnDef def;
      def.name = toks[i].text;
      def.first_token = i;
      def.body_begin = toks[j].line;
      int braces = 0;
      for (; j < toks.size(); ++j) {
        if (toks[j].text == "{") ++braces;
        if (toks[j].text == "}" && --braces == 0) break;
      }
      def.body_end = j < toks.size() ? toks[j].line : lexed_.last_line;
      def.last_token = j < toks.size() ? j : toks.size() - 1;
      defs.push_back(std::move(def));
    }
    return defs;
  }

  void check_tokens() {
    // Hot-region line map: lines strictly between a BEGIN marker line and
    // the matching END marker line are hot (markers live in comments, so
    // the marker lines themselves carry no tokens).
    std::vector<char> marker_hot(
        static_cast<std::size_t>(lexed_.last_line) + 2, 0);
    {
      bool hot = false;
      for (int l = 1; l <= lexed_.last_line; ++l) {
        if (lexed_.directives.hot_end.count(l) > 0) hot = false;
        if (lexed_.directives.hot_begin.count(l) > 0) hot = true;
        marker_hot[static_cast<std::size_t>(l)] = hot ? 1 : 0;
      }
    }
    const auto in_marker_hot = [&marker_hot](int line) {
      return line >= 1 &&
             static_cast<std::size_t>(line) < marker_hot.size() &&
             marker_hot[static_cast<std::size_t>(line)] != 0;
    };

    const std::vector<FnDef> defs = collect_fn_defs();

    // Dataplane element process() bodies are implicitly hot (the contract
    // of sim/element.h), and so are the batched walk kernels
    // (sim/pipeline.cpp's walk_batch_pipeline / walk_batch_slot) — the
    // same per-hop dataplane with the probe loop inverted: every such
    // body obeys the same no-allocation rule as a marker-delimited
    // RROPT_HOT region, without each function needing its own markers.
    // RROPT_HOT_OK waives individual lines as usual.
    static const std::unordered_set<std::string> kImplicitHotFns{
        "process", "walk_batch_pipeline", "walk_batch_slot"};
    std::vector<std::pair<int, int>> process_bodies;
    if (scope_.determinism) {
      for (const FnDef& def : defs) {
        if (kImplicitHotFns.count(def.name) > 0) {
          process_bodies.emplace_back(def.body_begin, def.body_end);
        }
      }
    }
    const auto in_process_body = [&](int line) {
      for (const auto& [begin, end] : process_bodies) {
        if (line >= begin && line <= end) return true;
      }
      return false;
    };

    // Cross-function hot-region closure: a function *called* (one level,
    // same-file user-function resolution) from inside a primary hot
    // region — a marker-delimited region or an implicit hot body —
    // inherits the no-hot-alloc rule. One level is deliberate: the
    // resolution is name-based and same-file only, so deeper closure
    // would compound the imprecision (DESIGN.md §14 records the caveat).
    std::vector<std::pair<int, int>> closure_bodies;
    std::vector<std::string> closure_names;
    {
      const auto primary_hot = [&](int line) {
        return in_marker_hot(line) || in_process_body(line);
      };
      const auto& toks = lexed_.tokens;
      for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!toks[i].is_ident || toks[i + 1].text != "(" ||
            !primary_hot(toks[i].line) || member_access_before(i)) {
          continue;
        }
        for (const FnDef& def : defs) {
          if (def.name != toks[i].text) continue;
          if (kImplicitHotFns.count(def.name) > 0) continue;
          // The call site must be outside the callee's own construct
          // (otherwise this is the definition itself, or recursion).
          if (i >= def.first_token && i <= def.last_token) continue;
          if (primary_hot(def.body_begin)) continue;  // already hot
          closure_bodies.emplace_back(def.body_begin, def.body_end);
          closure_names.push_back(def.name);
        }
      }
    }
    const auto in_closure_body = [&](int line) -> const std::string* {
      for (std::size_t k = 0; k < closure_bodies.size(); ++k) {
        if (line >= closure_bodies[k].first &&
            line <= closure_bodies[k].second) {
          return &closure_names[k];
        }
      }
      return nullptr;
    };

    if (scope_.determinism || scope_.data) check_taint_flow();

    const std::unordered_set<std::string>& kRandIdents = rand_idents();
    const std::unordered_set<std::string>& kWallClockIdents =
        wallclock_idents();
    static const std::unordered_set<std::string> kEngines{
        "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
        "default_random_engine", "ranlux24", "ranlux48", "knuth_b"};
    static const std::unordered_set<std::string> kStreamIo{
        "printf", "fprintf", "vprintf", "vfprintf", "puts", "putchar",
        "cout", "cerr", "clog"};
    static const std::unordered_set<std::string> kHotAlloc{
        "new",       "make_unique",  "make_shared", "malloc", "calloc",
        "realloc",   "push_back",    "emplace_back"};
    static const std::unordered_set<std::string> kMutexTypes{
        "mutex", "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
        "shared_mutex", "shared_timed_mutex"};

    const auto& tokens = lexed_.tokens;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& tok = tokens[i];
      if (!tok.is_ident) continue;

      if (scope_.determinism) {
        if (kRandIdents.count(tok.text) > 0 && !member_access_excludes(i)) {
          report(tok.line, "no-rand",
                 "'" + tok.text + "' is a nondeterminism source; use "
                 "counter-based draws via util::Rng / util::mix64");
        }
        if (kWallClockIdents.count(tok.text) > 0) {
          report(tok.line, "no-wallclock",
                 "'" + tok.text + "' reads the wall clock; simulator and "
                 "measurement time is virtual (probe schedule)");
        }
        if (tok.text == "time" && call_follows(i) &&
            !member_access_excludes(i)) {
          report(tok.line, "no-wallclock",
                 "'time(...)' reads the wall clock; simulator and "
                 "measurement time is virtual (probe schedule)");
        }
        if (kEngines.count(tok.text) > 0 && unseeded_engine(i)) {
          report(tok.line, "no-unseeded-rng",
                 "'" + tok.text + "' is default-constructed; seeds must be "
                 "explicit and derived from the run config");
        }
      }

      if (scope_.hot_io && !scope_.util && kStreamIo.count(tok.text) > 0 &&
          !member_access_excludes(i)) {
        report(tok.line, "no-stream-io",
               "'" + tok.text + "' in a hot-path subsystem; drivers log "
               "through util/log.h");
      }

      if (kHotAlloc.count(tok.text) > 0 &&
          lexed_.directives.hot_ok.count(tok.line) == 0) {
        if (in_marker_hot(tok.line) || in_process_body(tok.line)) {
          report(tok.line, "no-hot-alloc",
                 "'" + tok.text + "' allocates inside a hot region "
                 "(RROPT_HOT markers, an element process() body, or a "
                 "batched walk kernel — those are hot by contract); "
                 "preallocate, or waive the line with "
                 "'// RROPT_HOT_OK: <why this is steady-state-free>'");
        } else if (const std::string* caller = in_closure_body(tok.line)) {
          report(tok.line, "no-hot-alloc",
                 "'" + tok.text + "' allocates inside '" + *caller +
                 "', which is called from a hot region and inherits its "
                 "no-allocation rule (cross-function closure, one level); "
                 "preallocate, or waive the line with "
                 "'// RROPT_HOT_OK: <why this is steady-state-free>'");
        }
      }

      if (!scope_.util && kMutexTypes.count(tok.text) > 0 &&
          std_qualified(i)) {
        report(tok.line, "raw-mutex",
               "raw std::" + tok.text + " outside util/; use util::Mutex "
               "(util/mutex.h) so the thread-safety analysis sees the "
               "locks");
      }
    }
  }

  // ------------------------------------------------------------ taint v2
  //
  // File-scope symbol-flow pass (rule "taint"): identifiers assigned from
  // banned nondeterminism sources — wall-clock reads, process-global RNG,
  // pointer-as-integer casts — or bound by range-for iteration over an
  // unordered container are *tainted*; a tainted value (or a direct
  // source) reaching a hash / serialization / telemetry sink is reported.
  // Runs in the determinism subsystems plus data/ (where dataset bytes
  // freeze). Deliberately modest by design: one forward pass (no
  // fixpoint), same-file resolution, single-identifier tracking — the
  // soundness caveats live in DESIGN.md §14. Waive a provably
  // order-insensitive flow with `// rropt-lint: allow(taint)` on the sink
  // line.
  void check_taint_flow() {
    static const std::unordered_set<std::string> kUnorderedContainers{
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    static const std::unordered_set<std::string> kTaintSinks{
        "content_hash", "serialize", "save",         "mix64",
        "splitmix64",   "hash_str",  "fnv_fold",     "record_value",
        "record_phase", "note_telemetry"};
    static const std::unordered_set<std::string> kPtrIntTypes{
        "uintptr_t", "intptr_t", "size_t", "uint64_t", "uint32_t",
        "int64_t",   "int32_t",  "unsigned", "long",   "int"};
    const auto& toks = lexed_.tokens;

    // Same-file declarations of unordered containers: `unordered_map<...>
    // name`. A member declared in another header does not resolve here —
    // iteration over it goes unseen (documented caveat).
    std::unordered_set<std::string> unordered_names;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].is_ident ||
          kUnorderedContainers.count(toks[i].text) == 0) {
        continue;
      }
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") {
        int depth = 1;
        ++j;
        while (j < toks.size() && depth > 0) {
          if (toks[j].text == "<") ++depth;
          if (toks[j].text == ">") --depth;
          ++j;
        }
      }
      // Skip ref/cv qualifiers so reference parameters resolve too:
      // `const unordered_map<...>& name`.
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && toks[j].is_ident) {
        unordered_names.insert(toks[j].text);
      }
    }

    std::unordered_map<std::string, std::string> tainted;  // ident -> origin

    // A direct nondeterminism source at token j ("" when none).
    const auto source_at = [&](std::size_t j) -> std::string {
      const Token& t = toks[j];
      if (!t.is_ident) return {};
      if (wallclock_idents().count(t.text) > 0) {
        return "wall-clock '" + t.text + "'";
      }
      if (t.text == "time" && call_follows(j) &&
          !member_access_excludes(j)) {
        return "wall-clock 'time(...)'";
      }
      if (rand_idents().count(t.text) > 0 && !member_access_excludes(j)) {
        return "process-global RNG '" + t.text + "'";
      }
      if (t.text == "uintptr_t" || t.text == "intptr_t") {
        return "pointer-width integer '" + t.text + "'";
      }
      if (t.text == "reinterpret_cast" && j + 1 < toks.size() &&
          toks[j + 1].text == "<") {
        // reinterpret_cast to an *integer* type is pointer-as-integer
        // hashing fuel (ASLR makes the value run-dependent); casts whose
        // target mentions '*' or '&' are pointer/reference reshapes.
        bool integer = false;
        bool pointer = false;
        int depth = 1;
        for (std::size_t k = j + 2; k < toks.size() && depth > 0; ++k) {
          if (toks[k].text == "<") ++depth;
          else if (toks[k].text == ">") --depth;
          else if (toks[k].text == "*" || toks[k].text == "&") {
            pointer = true;
          } else if (toks[k].is_ident &&
                     kPtrIntTypes.count(toks[k].text) > 0) {
            integer = true;
          }
        }
        if (integer && !pointer) return "pointer-as-integer cast";
      }
      return {};
    };

    // First taint origin found in [begin, end) — a direct source or a
    // tainted identifier ("" when clean).
    const auto taint_in_range = [&](std::size_t begin,
                                    std::size_t end) -> std::string {
      for (std::size_t k = begin; k < end && k < toks.size(); ++k) {
        if (!toks[k].is_ident) continue;
        if (!member_access_before(k)) {
          const auto it = tainted.find(toks[k].text);
          if (it != tainted.end()) {
            return it->second + " (via '" + toks[k].text + "')";
          }
        }
        const std::string src = source_at(k);
        if (!src.empty()) return src;
      }
      return {};
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (!tok.is_ident) continue;

      // Range-for over an unordered container: the binding order of the
      // loop variables is the container's (seed/ASLR-dependent) bucket
      // order, so the variables are tainted.
      if (tok.text == "for" && i + 1 < toks.size() &&
          toks[i + 1].text == "(") {
        std::size_t colon = 0;
        std::size_t close = 0;
        int depth = 0;
        for (std::size_t k = i + 1; k < toks.size(); ++k) {
          const std::string& t = toks[k].text;
          if (t == "(") {
            ++depth;
          } else if (t == ")") {
            if (--depth == 0) {
              close = k;
              break;
            }
          } else if (t == ";" && depth == 1) {
            break;  // classic three-clause for
          } else if (t == ":" && depth == 1 && colon == 0 &&
                     toks[k - 1].text != ":" &&
                     (k + 1 >= toks.size() || toks[k + 1].text != ":")) {
            colon = k;
          }
        }
        if (colon != 0 && close != 0) {
          std::string container;
          for (std::size_t k = colon + 1; k < close; ++k) {
            if (toks[k].is_ident &&
                unordered_names.count(toks[k].text) > 0) {
              container = toks[k].text;
              break;
            }
          }
          if (!container.empty()) {
            // The declared loop variables sit just before ',', ']' (a
            // structured binding) or the ':' itself.
            for (std::size_t k = i + 2; k + 1 <= colon; ++k) {
              if (!toks[k].is_ident) continue;
              const std::string& next = toks[k + 1].text;
              if (next == "," || next == "]" || next == ":") {
                tainted[toks[k].text] =
                    "iteration order of unordered container '" + container +
                    "'";
              }
            }
          }
        }
      }

      // Assignment / compound assignment / initialization: `x = rhs;`,
      // `x ^= rhs;`. `==` lexes as two '=' tokens and is excluded; `<=`
      // `>=` `!=` never start with '='.
      if (i + 1 < toks.size()) {
        const std::string& n1 = toks[i + 1].text;
        const std::string n2 = i + 2 < toks.size() ? toks[i + 2].text : "";
        std::size_t rhs_begin = 0;
        if (n1 == "=" && n2 != "=") {
          rhs_begin = i + 2;
        } else if ((n1 == "+" || n1 == "-" || n1 == "*" || n1 == "/" ||
                    n1 == "%" || n1 == "&" || n1 == "|" || n1 == "^") &&
                   n2 == "=") {
          rhs_begin = i + 3;
        }
        if (rhs_begin != 0) {
          std::size_t end = rhs_begin;
          while (end < toks.size() && toks[end].text != ";") ++end;
          const std::string origin = taint_in_range(rhs_begin, end);
          if (!origin.empty()) tainted[tok.text] = origin;
        }
      }

      // Sink: a tainted value (or a direct source) in the arguments of a
      // hash / serialization / telemetry call.
      if (kTaintSinks.count(tok.text) > 0 && call_follows(i)) {
        std::size_t close = toks.size();
        int depth = 0;
        for (std::size_t k = i + 1; k < toks.size(); ++k) {
          if (toks[k].text == "(") ++depth;
          if (toks[k].text == ")" && --depth == 0) {
            close = k;
            break;
          }
        }
        const std::string origin = taint_in_range(i + 2, close);
        if (!origin.empty()) {
          report(tok.line, "taint",
                 "value tainted by " + origin + " reaches determinism "
                 "sink '" + tok.text + "'; frozen dataset / telemetry "
                 "bytes must not depend on nondeterminism sources (waive "
                 "a provably order-insensitive flow with '// rropt-lint: "
                 "allow(taint)')");
        }
      }
    }
  }

  /// `foo.rand` / `foo->random` are member accesses of unrelated types;
  /// `std::rand` must still be flagged.
  [[nodiscard]] bool member_access_excludes(std::size_t i) const {
    if (!member_access_before(i)) return false;
    return !std_qualified(i);
  }

  /// True when the engine at token i is declared without a seed:
  /// `mt19937 gen;` or `mt19937 gen{};` or `mt19937 gen();`.
  [[nodiscard]] bool unseeded_engine(std::size_t i) const {
    const auto& tokens = lexed_.tokens;
    std::size_t j = i + 1;
    // Skip template arguments of e.g. independent_bits_engine uses.
    if (j < tokens.size() && tokens[j].text == "<") {
      int depth = 1;
      ++j;
      while (j < tokens.size() && depth > 0) {
        if (tokens[j].text == "<") ++depth;
        if (tokens[j].text == ">") --depth;
        ++j;
      }
    }
    // Variable name (skip qualifiers the declaration may carry).
    while (j < tokens.size() && tokens[j].is_ident) ++j;
    if (j >= tokens.size()) return false;
    const std::string& after = tokens[j].text;
    if (after == ";") return true;  // `mt19937 gen;`
    if (after == "(" || after == "{") {
      const std::string closer = after == "(" ? ")" : "}";
      return j + 1 < tokens.size() && tokens[j + 1].text == closer;
    }
    return false;
  }

  std::string path_;
  Scope scope_;
  const LexedFile& lexed_;
  std::vector<Finding> findings_;
};

bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

}  // namespace

std::string format(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

std::vector<Finding> lint_file(const std::string& path,
                               std::string_view content) {
  const LexedFile lexed = lex(content);
  return Checker{path, lexed}.run();
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::vector<Finding> findings;
  for (const auto& root : paths) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it{root, ec}, end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintable_extension(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      findings.push_back({root, 0, "io", "path does not exist"});
    }
  }
  std::sort(files.begin(), files.end());

  for (const auto& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) {
      findings.push_back({file, 0, "io", "unreadable file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    auto file_findings = lint_file(file, content);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::vector<std::string> rule_descriptions() {
  return {
      "no-rand — rand()/random_device & friends banned in sim/, measure/, "
      "routing/ (randomness is counter-based via util::Rng)",
      "no-wallclock — time()/system_clock/... banned in sim/, measure/, "
      "routing/ (time is virtual, from the probe schedule)",
      "no-unseeded-rng — default-constructed std engines banned in sim/, "
      "measure/, routing/ (seeds are explicit, config-derived)",
      "no-stream-io — <iostream>/printf/cout banned in packet/, sim/, "
      "probe/, netbase/, routing/, measure/",
      "no-hot-alloc — allocation keywords banned between RROPT_HOT_BEGIN "
      "and RROPT_HOT_END, inside dataplane element process() bodies, and "
      "inside the batched walk kernels (walk_batch_pipeline / "
      "walk_batch_slot) in sim/, measure/, routing/, unless waived with "
      "RROPT_HOT_OK",
      "raw-mutex — std::mutex members only under util/ (use util::Mutex "
      "so Clang TSA sees the locks)",
      "umbrella-include — \"rropt.h\" must not be included from inside "
      "the library (include cycle)",
      "pragma-once — every header must carry #pragma once",
      "taint — values flowing from nondeterminism sources (wall-clock, "
      "process-global RNG, pointer-as-integer casts, unordered-container "
      "iteration order) must not reach hash/serialization/telemetry sinks "
      "in sim/, measure/, routing/, data/",
  };
}

}  // namespace rr::lint
