// rr-revtr: measure reverse paths with spoofed Record Route pings.
//
//   rr-revtr [--ases N] [--seed S] [--count K] [--no-fallback]
//
// Runs a campaign to build the vantage-point atlas, then reverse-
// traceroutes K destinations back to the best RR-capable vantage point.
#include <cstdio>

#include "measure/campaign.h"
#include "revtr/reverse_traceroute.h"
#include "util/flags.h"

using namespace rr;

int main(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "usage: rr-revtr [--ases N] [--seed S] [--count K] "
        "[--no-fallback]\n");
    return 0;
  }

  measure::TestbedConfig config;
  config.topo_params.num_ases =
      static_cast<int>(flags.get_int("ases", 400));
  config.topo_params.seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 60613));
  config.topo_params.colo_fraction = std::min(
      0.30, 0.06 * 5200.0 / std::max(config.topo_params.num_ases, 1));
  measure::Testbed testbed{config};

  std::fprintf(stderr, "building vantage-point atlas...\n");
  const auto campaign = measure::Campaign::run(testbed);

  // Best RR-capable source, judged from the campaign itself.
  std::size_t best_vp = 0, best_score = 0;
  for (std::size_t v = 0; v < campaign.num_vps(); ++v) {
    std::size_t score = 0;
    for (std::size_t d = 0; d < campaign.num_destinations(); d += 5) {
      if (campaign.at(v, d).rr_responsive()) ++score;
    }
    if (score > best_score) {
      best_score = score;
      best_vp = v;
    }
  }
  const topo::HostId source = campaign.vps()[best_vp]->host;
  std::printf("source: %s (%s)\n\n", campaign.vps()[best_vp]->site.c_str(),
              testbed.topology().host_at(source).address.to_string().c_str());

  revtr::RevTrConfig revtr_config;
  revtr_config.allow_symmetric_fallback = !flags.has("no-fallback");
  revtr::ReverseTraceroute revtr{testbed, &campaign, revtr_config};

  const auto count = static_cast<std::size_t>(flags.get_int("count", 5));
  std::size_t shown = 0;
  for (std::size_t d = 0; d < campaign.num_destinations() && shown < count;
       d += 3) {
    if (!campaign.rr_responsive(d)) continue;
    const auto target = testbed.topology()
                            .host_at(campaign.destinations()[d])
                            .address;
    const auto path = revtr.measure(target, source);
    ++shown;
    std::printf("%s -> us: %s (%d segments, %zu RR hops)\n",
                target.to_string().c_str(),
                path.complete ? "complete" : path.failure.c_str(),
                path.segments_used, path.measured_hops());
    for (std::size_t i = 0; i < path.hops.size(); ++i) {
      std::printf("  %2zu. %-15s [%s]\n", i + 1,
                  path.hops[i].address.to_string().c_str(),
                  to_string(path.hops[i].source));
    }
    std::printf("\n");
  }
  return 0;
}
