// rr-probe: interactive probing against a generated world — the scamper of
// this toolkit.
//
//   rr-probe [--ases N] [--seed S] [--vp SITE] [--count K]
//            [--type ping|rr|udp|trace] [--ttl T] [--target a.b.c.d]
//            [--json]
//
// Without --target, probes the first K destinations of the world.
#include <cstdio>
#include <iostream>

#include "data/jsonl.h"
#include "measure/testbed.h"
#include "probe/prober.h"
#include "util/flags.h"

using namespace rr;

int main(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "usage: rr-probe [--ases N] [--seed S] [--vp SITE] [--count K]\n"
        "                [--type ping|rr|udp|trace] [--ttl T]\n"
        "                [--target a.b.c.d] [--json]\n");
    return 0;
  }

  measure::TestbedConfig config;
  config.topo_params.num_ases =
      static_cast<int>(flags.get_int("ases", 600));
  config.topo_params.seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 20160924));
  config.topo_params.colo_fraction = std::min(
      0.30, 0.06 * 5200.0 / std::max(config.topo_params.num_ases, 1));
  measure::Testbed testbed{config};
  const auto& topology = testbed.topology();

  // Pick the vantage point.
  const std::string vp_site = flags.get("vp");
  const topo::VantagePoint* vp = testbed.vps().front();
  for (const auto* candidate : testbed.vps()) {
    if (!vp_site.empty() ? candidate->site == vp_site
                         : candidate->platform == topo::Platform::kMLab) {
      vp = candidate;
      break;
    }
  }
  auto prober = testbed.make_prober(vp->host, flags.get_double("pps", 20.0));
  std::fprintf(stderr, "probing from %s (%s)\n", vp->site.c_str(),
               prober.source_address().to_string().c_str());

  // Targets.
  std::vector<net::IPv4Address> targets;
  if (flags.has("target")) {
    const auto parsed = net::IPv4Address::parse(flags.get("target"));
    if (!parsed) {
      std::fprintf(stderr, "error: bad --target\n");
      return 1;
    }
    targets.push_back(*parsed);
  } else {
    const auto count = static_cast<std::size_t>(flags.get_int("count", 10));
    for (std::size_t i = 0; i < count && i < topology.destinations().size();
         ++i) {
      targets.push_back(topology.host_at(topology.destinations()[i]).address);
    }
  }

  const std::string type = flags.get("type", "rr");
  const auto ttl = static_cast<std::uint8_t>(flags.get_int("ttl", 64));
  const bool json = flags.has("json");

  for (const auto& target : targets) {
    if (type == "trace") {
      const auto trace = prober.traceroute(target, 30);
      std::printf("traceroute to %s (%s)\n", target.to_string().c_str(),
                  trace.reached ? "reached" : "incomplete");
      for (const auto& hop : trace.hops) {
        std::printf(" %2d  %s\n", hop.ttl,
                    hop.responded ? hop.address.to_string().c_str() : "*");
      }
      continue;
    }

    probe::ProbeSpec spec = probe::ProbeSpec::ping(target);
    if (type == "rr") spec = probe::ProbeSpec::ping_rr(target, ttl);
    if (type == "udp") spec = probe::ProbeSpec::ping_rr_udp(target);
    spec.ttl = ttl;
    const auto result = prober.probe(spec);
    if (json) {
      data::write_probe_line(std::cout, result, vp->site);
      continue;
    }
    std::printf("%s\n", result.to_string().c_str());
  }

  for (const auto& key : flags.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", key.c_str());
  }
  return 0;
}
