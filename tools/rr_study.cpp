// rr-study: run a full measurement campaign on a generated Internet and
// freeze it into a dataset file.
//
//   rr-study [--scale paper] [--ases N] [--seed S] [--epoch 2011|2016]
//            [--stride K] [--pps R] [--fib on|off] [--stream-block B]
//            [--mem-budget-mib M] [--fault-plan SPEC] [--out study.rrds]
//
// The dataset can then be re-analyzed offline with rr-analyze.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "data/dataset.h"
#include "measure/classify.h"
#include "measure/testbed.h"
#include "sim/fault.h"
#include "util/flags.h"
#include "util/strings.h"

using namespace rr;

int main(int argc, char** argv) {
  const auto flags = util::Flags::parse(argc, argv);
  if (flags.has("help")) {
    std::printf(
        "usage: rr-study [--scale paper] [--ases N] [--seed S]\n"
        "                [--epoch 2011|2016] [--stride K] [--pps R]\n"
        "                [--threads T] [--fib on|off] [--stream-block B]\n"
        "                [--fault-plan SPEC] [--out FILE.rrds]\n"
        "  --scale paper\n"
        "               census-scale world (~510k destination prefixes,\n"
        "               141 VPs); overrides --ases\n"
        "  --threads T  campaign worker threads (0 = RROPT_THREADS or all\n"
        "               cores; results are identical at any value)\n"
        "  --fib on|off resolve campaign paths via the compiled forwarding\n"
        "               table (default on; contents identical either way)\n"
        "  --stream-block B\n"
        "               streaming campaign: process destinations in blocks\n"
        "               of B with a per-block forwarding table (0 = one\n"
        "               block over the whole census)\n"
        "  --mem-budget-mib M\n"
        "               size the streaming block from a per-block resident\n"
        "               memory budget instead (overridden by an explicit\n"
        "               --stream-block; note the resolved block size shapes\n"
        "               dataset contents)\n"
        "  --fault-plan SPEC\n"
        "               deterministic fault injection: 'none', a uniform\n"
        "               rate ('0.01'), or knobs ('rr_garble=0.1,storm=0.05,\n"
        "               seed=7'); see sim/fault.h for every knob\n");
    return 0;
  }

  measure::TestbedConfig config;
  const std::string scale = flags.get("scale", "");
  if (scale == "paper") {
    config.topo_params = topo::TopologyParams::census_scale();
  } else if (!scale.empty()) {
    std::fprintf(stderr, "error: unknown --scale '%s'\n", scale.c_str());
    return 1;
  } else {
    config.topo_params.num_ases =
        static_cast<int>(flags.get_int("ases", 1200));
  }
  config.topo_params.seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 20160924));
  if (config.topo_params.num_ases < 5200) {
    config.topo_params.colo_fraction = std::min(
        0.30, 0.06 * 5200.0 / std::max(config.topo_params.num_ases, 1));
  }
  config.epoch = flags.get("epoch", "2016") == "2011" ? topo::Epoch::k2011
                                                      : topo::Epoch::k2016;

  measure::Testbed testbed{config};
  std::fprintf(stderr, "world: %s\n", testbed.topology().summary().c_str());

  measure::CampaignConfig campaign_config;
  campaign_config.destination_stride =
      static_cast<int>(flags.get_int("stride", 1));
  campaign_config.vp_pps = flags.get_double("pps", 20.0);
  campaign_config.threads = static_cast<int>(flags.get_int("threads", 0));
  campaign_config.use_compiled_fib = flags.get("fib", "on") != "off";
  if (const long budget = flags.get_int("mem-budget-mib", 0); budget > 0) {
    // Adaptive streaming: size the block from a per-block memory budget.
    // The resolved size shapes dataset contents (block-major probe order),
    // so budget runs only hash-compare at equal resolved sizes.
    campaign_config.stream_block =
        measure::CampaignConfig::stream_block_for_budget(
            static_cast<std::size_t>(budget),
            testbed.topology().vantage_points().size());
    std::fprintf(stderr, "mem budget %ld MiB -> stream block %zu\n", budget,
                 campaign_config.stream_block);
  }
  if (flags.has("stream-block")) {
    campaign_config.stream_block =
        static_cast<std::size_t>(flags.get_int("stream-block", 0));
  }
  const std::string fault_spec = flags.get("fault-plan", "none");
  const auto faults = sim::parse_fault_plan(fault_spec);
  if (!faults) {
    std::fprintf(stderr, "error: bad --fault-plan '%s'\n", fault_spec.c_str());
    return 1;
  }
  campaign_config.faults = *faults;
  if (faults->any()) {
    std::fprintf(stderr, "%s\n", sim::to_string(*faults).c_str());
  }
  auto campaign = measure::Campaign::run(testbed, campaign_config);
  if (faults->any()) {
    const auto& injected = testbed.network().fault_counters();
    std::fprintf(stderr, "injected faults: %llu total\n",
                 static_cast<unsigned long long>(injected.total()));
  }

  const auto table = measure::build_response_table(campaign);
  std::printf("probed %s destinations from %zu VPs\n",
              util::with_commas(table.by_ip[0].probed).c_str(),
              campaign.num_vps());
  std::printf("ping-responsive: %s (%s)\n",
              util::with_commas(table.by_ip[0].ping_responsive).c_str(),
              util::percent(table.by_ip[0].ping_rate()).c_str());
  std::printf("RR-responsive:   %s (%s; %s of ping-responsive)\n",
              util::with_commas(table.by_ip[0].rr_responsive).c_str(),
              util::percent(table.by_ip[0].rr_rate()).c_str(),
              util::percent(table.by_ip[0].rr_over_ping()).c_str());

  const std::string out_path = flags.get("out", "study.rrds");
  // Move the observation matrix into the dataset — at census scale the
  // copy would transiently double the largest allocation in the run.
  const auto dataset = data::CampaignDataset::from_campaign(
      std::move(campaign), "rr-study epoch=" + flags.get("epoch", "2016"));
  if (!dataset.save(out_path)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("dataset written to %s (%zu VPs x %zu destinations)\n",
              out_path.c_str(), dataset.num_vps(),
              dataset.num_destinations());
  // Stable fingerprint for cross-run equivalence checks (--fib on/off,
  // different --threads must print the same hash).
  std::printf("dataset hash: %016llx\n",
              static_cast<unsigned long long>(dataset.content_hash()));

  for (const auto& key : flags.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", key.c_str());
  }
  return 0;
}
