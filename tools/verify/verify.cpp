#include "verify/verify.h"

#include <algorithm>
#include <array>
#include <sstream>

namespace rr::verify {

namespace {

using sim::ElementOp;
using sim::HopRow;
using sim::PackedRunList;
using sim::PipelineConfig;

/// Maximum opcodes a run list may hold: the longest legal composition
/// (fault, base loss, slow loss, storm, CoPP, one filter, TTL, stamp).
constexpr std::size_t kMaxRunOps = 8;

/// Phase ranks mirror compile_run_table's emission order, which mirrors
/// the legacy walk's branch order — load-bearing for bit-identity (a storm
/// doom must precede the CoPP gate so the doomed packet still consumes
/// budget; filters run after the gate; TTL after the whole slow path;
/// stamping last). The fused opcode carries the TTL rank and implicitly
/// occupies the stamp rank too (nothing may follow it but kEnd, which the
/// rr/ttl single-advance invariants enforce).
constexpr int kPhaseFault = 0;
constexpr int kPhaseBaseLoss = 1;
constexpr int kPhaseSlowLoss = 2;
constexpr int kPhaseStorm = 3;
constexpr int kPhaseCopp = 4;
constexpr int kPhaseFilter = 5;
constexpr int kPhaseTtl = 6;
constexpr int kPhaseStamp = 7;

constexpr std::array<OpModel, 12> kOpModels{{
    // kEnd — never executed (the interpreter's loop guard); modelled as a
    // zero-effect terminator so indexing stays total.
    {"kEnd", -1, false, false, false, false, false, false, 0},
    // FaultInjectorElement: may blank/truncate/garble option content (each
    // mutate.h helper rewrites the checksum itself, so it is self-balanced)
    // and may exhaust the RR pointer; never touches TTL.
    {"kFaultInject", kPhaseFault, false, false, false, false, true, false, 0},
    {"kBaseLoss", kPhaseBaseLoss, true, false, false, false, false, false, 0},
    {"kSlowPathLoss", kPhaseSlowLoss, true, false, false, false, false, true,
     0},
    {"kStormGate", kPhaseStorm, true, false, false, false, false, true, 0},
    {"kCoppGate", kPhaseCopp, true, false, false, false, false, true, 0},
    {"kTransitFilter", kPhaseFilter, true, false, false, false, false, true,
     0},
    {"kEdgeFilter", kPhaseFilter, true, false, false, false, false, true, 0},
    // TtlDecrementElement: one guarded decrement, one RFC 1624 commit.
    {"kTtl", kPhaseTtl, false, true, false, false, false, false, 1},
    // StampElement: revalidates option bytes per stamp (fault-tolerant),
    // advances the pointer one slot under the fullness check, one commit.
    {"kStamp", kPhaseStamp, false, false, true, false, false, true, 1},
    // TrustedStampElement: same advance, revalidation skipped — licensed
    // only while option content is provably untouched since entry.
    {"kStampTrusted", kPhaseStamp, false, false, true, true, false, true, 1},
    // Fused TTL + trusted stamp: two mutation groups, ONE combined commit.
    {"kTtlStampTrusted", kPhaseTtl, false, true, true, true, false, true, 1},
}};

[[nodiscard]] std::string op_sequence(PackedRunList list) {
  std::string out;
  for (PackedRunList w = list; (w & 0xF) != 0; w >>= 4) {
    if (!out.empty()) out += ", ";
    const auto nibble = static_cast<std::uint8_t>(w & 0xF);
    const OpModel* model = op_model(static_cast<ElementOp>(nibble));
    out += model != nullptr ? model->name : "<bad nibble>";
  }
  return out.empty() ? "<empty>" : out;
}

/// Collects violations for one list with shared entry coordinates.
class Reporter {
 public:
  Reporter(std::vector<Violation>& out, std::uint8_t flags, bool has_options,
           PackedRunList list)
      : out_(out), flags_(flags), has_options_(has_options), list_(list) {}

  void violation(std::string invariant, std::string message) {
    out_.push_back({flags_, has_options_, list_, std::move(invariant),
                    std::move(message)});
  }

 private:
  std::vector<Violation>& out_;
  std::uint8_t flags_;
  bool has_options_;
  PackedRunList list_;
};

/// Applies one opcode's transfer function to the abstract state, emitting
/// violations for every invariant the step would break. `step` is the
/// 0-based position (for messages only).
void transfer(ElementOp op, std::size_t step, OptionState entry_options,
              const PipelineConfig& config, AbstractHeader& state,
              Reporter& report) {
  const OpModel& m = *op_model(op);
  const std::string where =
      "step " + std::to_string(step) + " (" + m.name + ")";

  // Gate opcodes are verdict-pure by model construction; the check below
  // keeps the model honest if an opcode ever gets reclassified.
  if (m.gate && (m.writes_ttl || m.stamps || m.fault || m.commits != 0)) {
    report.violation("gate-writes",
                     where + " is a gate opcode but its transfer function "
                             "writes the header");
  }

  // Option-touching opcodes are illegal against a packet with no options:
  // the concrete element would at best silently no-op (rr_offset_ ==
  // kNone), which means the compiler emitted dead behaviour into the
  // fast-path bank.
  if (m.needs_options && entry_options == OptionState::kAbsent) {
    report.violation("options-bank",
                     where + " touches IP options but was compiled into the "
                             "no-options bank");
  }

  if (m.writes_ttl) {
    if (state.ttl_decrements >= 1) {
      report.violation("ttl-monotone",
                       where + " decrements TTL a second time in one hop");
    }
    ++state.ttl_decrements;
    // Guarded decrement: TTL 0 never survives (drop), so the post interval
    // decrements and clamps. Strict monotonicity is structural — no opcode
    // model carries a TTL increment.
    state.ttl.lo = std::max(0, state.ttl.lo - 1);
    state.ttl.hi = std::max(0, state.ttl.hi - 1);
    ++state.uncommitted_groups;
  }

  if (m.stamps) {
    if (state.rr_advances >= 1) {
      report.violation("rr-monotone",
                       where + " advances the RR pointer a second time in "
                               "one hop");
    }
    ++state.rr_advances;
    ++state.uncommitted_groups;
    if (m.trusted && state.option_content_tainted) {
      report.violation(
          "trusted-after-fault",
          where + " skips option revalidation after a fault opcode that may "
                  "have rewritten option content — the trusted-stamp proof "
                  "does not hold");
    }
    if (m.trusted && config.faults_enabled) {
      report.violation(
          "trusted-under-faults",
          where + " is a trusted stamp but the config compiles fault "
                  "elements — the structural no-mid-walk-option-writes "
                  "proof does not hold");
    }
  }

  if (m.fault) {
    // Fault opcodes rewrite option content in place (never the geometry)
    // and may exhaust the RR pointer; every mutate.h helper rewrites the
    // checksum itself, so the abstract accumulator stays balanced. From
    // here on only revalidating stamps are licensed.
    state.option_content_tainted = true;
  }

  if (m.commits > 0) {
    // A commit covers every group the opcode itself produced. Only the
    // fused opcode may cover two groups with one commit — a non-fused
    // opcode claiming multiple groups per commit would mean a skipped
    // RFC 1624 patch somewhere.
    const bool fused = m.writes_ttl && m.stamps;
    const int covered = fused ? 2 : 1;
    if (state.uncommitted_groups < covered) {
      report.violation("checksum-balance",
                       where + " commits a checksum delta with no matching "
                               "header mutation");
    }
    state.uncommitted_groups =
        std::max(0, state.uncommitted_groups - covered);
    state.checksum_commits += m.commits;
    if (fused && m.commits != 1) {
      report.violation("checksum-balance",
                       where + " is fused but does not commit exactly one "
                               "combined delta");
    }
  }
}

/// Abstract effect signature used for the fused-vs-unfused equivalence
/// proof: everything observable about the final header bytes, deliberately
/// excluding how the commits were *grouped* (one fused RMW vs two RMWs of
/// the same composed delta — RFC 1624 deltas compose exactly).
struct EffectSignature {
  TtlInterval ttl;
  int ttl_decrements = 0;
  int rr_advances = 0;
  int uncommitted_groups = 0;
  bool tainted = false;

  [[nodiscard]] bool operator==(const EffectSignature& other) const {
    return ttl.lo == other.ttl.lo && ttl.hi == other.ttl.hi &&
           ttl_decrements == other.ttl_decrements &&
           rr_advances == other.rr_advances &&
           uncommitted_groups == other.uncommitted_groups &&
           tainted == other.tainted;
  }
};

[[nodiscard]] EffectSignature signature_of(const AbstractHeader& state) {
  return {state.ttl, state.ttl_decrements, state.rr_advances,
          state.uncommitted_groups, state.option_content_tainted};
}

/// Abstractly executes a decoded opcode sequence without structural checks
/// (used for the unfused expansions, whose lists are synthesized here and
/// already structurally valid). Violations still collect.
AbstractHeader interpret(std::span<const ElementOp> ops,
                         OptionState entry_options,
                         const PipelineConfig& config, Reporter& report) {
  AbstractHeader state;
  state.options = entry_options;
  for (std::size_t k = 0; k < ops.size(); ++k) {
    transfer(ops[k], k, entry_options, config, state, report);
  }
  return state;
}

/// Decodes a packed list into opcodes, reporting structural violations
/// (unknown nibbles, dead opcodes past the terminator, over-long lists).
std::vector<ElementOp> decode(PackedRunList list, Reporter& report) {
  std::vector<ElementOp> ops;
  bool ended = false;
  for (std::size_t k = 0; k < 16; ++k) {
    const auto nibble = static_cast<std::uint8_t>((list >> (4 * k)) & 0xF);
    if (nibble == 0) {
      ended = true;
      continue;
    }
    if (op_model(static_cast<ElementOp>(nibble)) == nullptr) {
      report.violation("decode", "nibble " + std::to_string(k) +
                                     " holds unknown opcode value " +
                                     std::to_string(nibble));
      continue;
    }
    if (ended) {
      // The interpreter stops at the first kEnd nibble, so these opcodes
      // are dead — a mis-compile (no append sequence produces a gap).
      report.violation("dead-code",
                       "opcode at nibble " + std::to_string(k) +
                           " is unreachable past the kEnd terminator");
      continue;
    }
    ops.push_back(static_cast<ElementOp>(nibble));
  }
  if (ops.size() > kMaxRunOps) {
    report.violation("overflow",
                     "run list holds " + std::to_string(ops.size()) +
                         " opcodes; kEnd must be reachable in <= " +
                         std::to_string(kMaxRunOps) + " nibbles");
  }
  return ops;
}

void check_order(std::span<const ElementOp> ops, Reporter& report) {
  int last_phase = -1;
  for (std::size_t k = 0; k < ops.size(); ++k) {
    const OpModel& m = *op_model(ops[k]);
    if (m.phase <= last_phase) {
      report.violation(
          "order", std::string{"opcode "} + m.name + " at step " +
                       std::to_string(k) +
                       " violates the compile phase order (gates before "
                       "TTL, one filter, stamping last)");
    }
    last_phase = m.phase;
    // The fused opcode also occupies the stamp rank: nothing but kEnd may
    // legally follow (a later kStamp would double-advance, caught above;
    // a later gate breaks the order here).
    if (m.writes_ttl && m.stamps) last_phase = kPhaseStamp;
  }
}

/// Proves every fused opcode byte-equivalent to its unfused expansion
/// under the abstract semantics: replace the fused step with the pair and
/// compare effect signatures over the whole list.
void check_fusion(std::span<const ElementOp> ops, OptionState entry_options,
                  const PipelineConfig& config, Reporter& report) {
  for (std::size_t k = 0; k < ops.size(); ++k) {
    if (ops[k] != ElementOp::kTtlStampTrusted) continue;
    std::vector<ElementOp> unfused(ops.begin(), ops.end());
    unfused[k] = ElementOp::kTtl;
    unfused.insert(unfused.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                   ElementOp::kStampTrusted);
    // Interpret both sequences into scratch reporters: the expansion's own
    // violations are not the entry's (e.g. trusted-under-faults would
    // double-report); only the effect signatures are compared.
    std::vector<Violation> scratch;
    Reporter mute{scratch, 0, false, 0};
    const AbstractHeader fused_post =
        interpret(ops, entry_options, config, mute);
    const AbstractHeader unfused_post =
        interpret(unfused, entry_options, config, mute);
    if (!(signature_of(fused_post) == signature_of(unfused_post))) {
      report.violation(
          "fusion-equivalence",
          "fused kTtlStampTrusted at step " + std::to_string(k) +
              " is not abstractly equivalent to kTtl; kStampTrusted");
    }
  }
}

/// The independently re-derived personality spec: which opcodes the entry
/// for (flags, has_options) must and must not contain under `config`.
/// Deliberately written as per-opcode predicates, not as an ordered
/// emission loop, so it cannot share a bug with compile_run_table.
struct EntrySpec {
  bool fault = false;
  bool base_loss = false;
  bool slow_loss = false;
  bool storm = false;
  bool copp = false;
  bool transit = false;
  bool edge = false;
  int ttl_decrements = 0;
  int rr_advances = 0;
  bool trusted_allowed = false;
  bool fused_expected = false;
};

[[nodiscard]] EntrySpec entry_spec(std::uint8_t flags, bool has_options,
                                   const PipelineConfig& config) {
  EntrySpec spec;
  spec.fault = config.faults_enabled;
  spec.base_loss = config.base_loss > 0.0;
  spec.slow_loss = has_options && config.options_extra_loss > 0.0;
  spec.storm = has_options && config.faults_enabled;
  spec.copp = has_options && (flags & HopRow::kRateLimited) != 0;
  spec.transit = has_options && (flags & HopRow::kFiltersTransit) != 0;
  spec.edge = has_options && !spec.transit &&
              (flags & HopRow::kFiltersEdge) != 0;
  spec.ttl_decrements = (flags & HopRow::kHidden) == 0 ? 1 : 0;
  spec.rr_advances =
      (has_options && (flags & HopRow::kStamps) != 0) ? 1 : 0;
  spec.trusted_allowed = !config.faults_enabled;
  spec.fused_expected = spec.ttl_decrements == 1 && spec.rr_advances == 1 &&
                        spec.trusted_allowed;
  return spec;
}

void check_spec(std::span<const ElementOp> ops, std::uint8_t flags,
                bool has_options, const PipelineConfig& config,
                const AbstractHeader& post, Reporter& report) {
  const EntrySpec spec = entry_spec(flags, has_options, config);
  const auto has = [&ops](ElementOp op) {
    return std::find(ops.begin(), ops.end(), op) != ops.end();
  };
  const auto expect = [&](ElementOp op, bool expected, const char* why) {
    if (has(op) == expected) return;
    report.violation("spec", std::string{expected ? "missing " : "stray "} +
                                 op_model(op)->name + ": " + why);
  };
  expect(ElementOp::kFaultInject, spec.fault,
         "fault injection follows the installed plan's enabled state");
  expect(ElementOp::kBaseLoss, spec.base_loss,
         "base loss gates exist iff base_loss > 0");
  expect(ElementOp::kSlowPathLoss, spec.slow_loss,
         "slow-path loss gates exist iff options and options_extra_loss > 0");
  expect(ElementOp::kStormGate, spec.storm,
         "storm gates exist iff options and the fault plan is enabled");
  expect(ElementOp::kCoppGate, spec.copp,
         "CoPP gates exist iff options and the router is rate-limited");
  expect(ElementOp::kTransitFilter, spec.transit,
         "transit filters exist iff options and the AS filters transit");
  expect(ElementOp::kEdgeFilter, spec.edge,
         "edge filters exist iff options, the AS filters its edge, and no "
         "transit filter shadows it");
  if (post.ttl_decrements != spec.ttl_decrements) {
    report.violation(
        "spec", "personality decrements TTL " +
                    std::to_string(post.ttl_decrements) + " time(s), spec "
                    "requires " + std::to_string(spec.ttl_decrements) +
                    ((flags & HopRow::kHidden) != 0
                         ? " (hidden routers do not decrement)"
                         : " (visible routers decrement exactly once)"));
  }
  if (post.rr_advances != spec.rr_advances) {
    report.violation(
        "spec", "personality advances the RR pointer " +
                    std::to_string(post.rr_advances) + " time(s), spec "
                    "requires " + std::to_string(spec.rr_advances));
  }
  if (!spec.trusted_allowed &&
      (has(ElementOp::kStampTrusted) || has(ElementOp::kTtlStampTrusted))) {
    report.violation("spec",
                     "trusted stamp compiled under an enabled fault plan");
  }
  if (spec.fused_expected && spec.rr_advances == 1 &&
      !has(ElementOp::kTtlStampTrusted)) {
    // Not a soundness bug — the unfused pair is byte-identical — but a
    // silent peephole regression on the census's hottest personality.
    report.violation("spec",
                     "fusible TTL+trusted-stamp pair was not fused "
                     "(peephole regression on the hottest personality)");
  }
}

}  // namespace

const OpModel* op_model(ElementOp op) noexcept {
  const auto index = static_cast<std::size_t>(op);
  if (index >= kOpModels.size()) return nullptr;
  return &kOpModels[index];
}

std::vector<Violation> verify_list(PackedRunList list, OptionState options,
                                   const PipelineConfig& config,
                                   AbstractHeader* post) {
  std::vector<Violation> violations;
  Reporter report{violations, 0, options == OptionState::kPresent, list};
  const std::vector<ElementOp> ops = decode(list, report);
  check_order(ops, report);
  AbstractHeader state = interpret(ops, options, config, report);
  if (state.uncommitted_groups != 0) {
    report.violation("checksum-balance",
                     std::to_string(state.uncommitted_groups) +
                         " header mutation group(s) end the run without an "
                         "RFC 1624 commit");
  }
  check_fusion(ops, options, config, report);
  if (post != nullptr) *post = state;
  return violations;
}

std::vector<Violation> verify_entry(PackedRunList list, std::uint8_t flags,
                                    bool has_options,
                                    const PipelineConfig& config,
                                    AbstractHeader* post) {
  const OptionState options =
      has_options ? OptionState::kPresent : OptionState::kAbsent;
  AbstractHeader state;
  std::vector<Violation> violations = verify_list(list, options, config,
                                                  &state);
  Reporter report{violations, flags, has_options, list};
  std::vector<Violation> scratch;  // decode already reported structure
  Reporter mute{scratch, flags, has_options, list};
  const std::vector<ElementOp> ops = decode(list, mute);
  check_spec(ops, flags, has_options, config, state, report);
  for (Violation& v : violations) {
    v.flags = flags;
    v.has_options = has_options;
  }
  if (post != nullptr) *post = state;
  return violations;
}

std::vector<Violation> verify_chain(std::span<const ElementOp> chain,
                                    OptionState options,
                                    const PipelineConfig& config) {
  std::vector<Violation> violations;
  PackedRunList list = 0;
  for (const ElementOp op : chain) list = sim::run_list_append(list, op);
  Reporter report{violations, 0, options == OptionState::kPresent, list};
  if (chain.size() > kMaxRunOps) {
    report.violation("overflow",
                     "element chain holds " + std::to_string(chain.size()) +
                         " opcodes; the packed run list caps at " +
                         std::to_string(kMaxRunOps) +
                         " and run_list_append rejects the rest — the "
                         "compile would silently drop behaviour");
    return violations;
  }
  // Encode round-trip: the packed form must decode to the chain (an
  // append/terminator bug would show up here before any semantic check).
  if (sim::run_list_size(list) != chain.size()) {
    report.violation("overflow", "packed run list dropped opcodes");
    return violations;
  }
  for (std::size_t k = 0; k < chain.size(); ++k) {
    if (sim::run_list_at(list, k) != chain[k]) {
      report.violation("decode", "packed run list decodes to a different "
                                 "opcode at step " + std::to_string(k));
    }
  }
  auto list_violations = verify_list(list, options, config, nullptr);
  violations.insert(violations.end(),
                    std::make_move_iterator(list_violations.begin()),
                    std::make_move_iterator(list_violations.end()));
  return violations;
}

TableReport verify_run_table(const sim::RunTable& table,
                             const PipelineConfig& config) {
  TableReport report;
  report.config = config;
  report.entries.reserve(table.size());
  for (int options = 0; options < 2; ++options) {
    for (std::size_t flags = 0; flags < HopRow::kNumPersonalities; ++flags) {
      const std::size_t index =
          (options != 0 ? HopRow::kNumPersonalities : 0) + flags;
      EntryProof proof;
      proof.flags = static_cast<std::uint8_t>(flags);
      proof.has_options = options != 0;
      proof.list = table[index];
      proof.steps = sim::run_list_size(proof.list);
      auto violations =
          verify_entry(proof.list, proof.flags, proof.has_options, config,
                       &proof.post);
      proof.ok = violations.empty();
      report.entries.push_back(proof);
      report.violations.insert(report.violations.end(),
                               std::make_move_iterator(violations.begin()),
                               std::make_move_iterator(violations.end()));
    }
  }
  return report;
}

bool run_table_sound(const sim::RunTable& table,
                     const PipelineConfig& config) {
  return verify_run_table(table, config).ok();
}

std::string describe_config(const PipelineConfig& config) {
  std::ostringstream out;
  out << "faults=" << (config.faults_enabled ? "on" : "off")
      << " base_loss=" << config.base_loss
      << " options_extra_loss=" << config.options_extra_loss;
  return out.str();
}

std::string format_report(const TableReport& report, bool verbose) {
  std::ostringstream out;
  out << "rropt_verify: " << describe_config(report.config) << "\n";
  std::size_t proved = 0;
  for (const EntryProof& entry : report.entries) {
    if (entry.ok) ++proved;
    if (!verbose && entry.ok) continue;
    out << (entry.ok ? "  [proved]   " : "  [VIOLATED] ") << "flags=0b";
    for (int bit = 4; bit >= 0; --bit) {
      out << ((entry.flags >> bit) & 1);
    }
    out << " options=" << (entry.has_options ? 1 : 0) << " steps="
        << entry.steps << "  ttl-dec=" << entry.post.ttl_decrements
        << " rr-adv=" << entry.post.rr_advances
        << " commits=" << entry.post.checksum_commits << "  [";
    out << op_sequence(entry.list) << "]\n";
  }
  for (const Violation& violation : report.violations) {
    out << "  violation: flags=0b";
    for (int bit = 4; bit >= 0; --bit) {
      out << ((violation.flags >> bit) & 1);
    }
    out << " options=" << (violation.has_options ? 1 : 0) << " ["
        << violation.invariant << "] " << violation.message << "\n";
  }
  out << "  " << proved << "/" << report.entries.size()
      << " entries proved, " << report.violations.size() << " violation"
      << (report.violations.size() == 1 ? "" : "s") << "\n";
  return out.str();
}

}  // namespace rr::verify
