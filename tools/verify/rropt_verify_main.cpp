// rropt_verify CLI: prove every compiled RunTable entry sound.
//
//   rropt_verify [--report FILE] [--verbose] [--sweep]
//
// Verifies the tables compile_run_table emits for the configs the repo
// actually runs — the default BehaviorParams losses (quick and paper-scale
// census share them; the paper scale changes topology, not behaviour), the
// faults-enabled variant the differential suites install, and a zero-loss
// config (maximal elision). --sweep adds the full on/off combination
// lattice. Exit status 0 iff every entry of every table proves sound; the
// report (stdout, or FILE with --report) is uploaded as a CI artifact.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "sim/behavior.h"
#include "sim/pipeline.h"
#include "verify/verify.h"

namespace {

struct NamedConfig {
  const char* name;
  rr::sim::PipelineConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  std::string report_path;
  bool verbose = false;
  bool sweep = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else {
      std::cerr << "usage: rropt_verify [--report FILE] [--verbose]"
                   " [--sweep]\n";
      return 2;
    }
  }

  const rr::sim::BehaviorParams defaults{};
  std::vector<NamedConfig> configs{
      {"default (quick census)",
       {false, defaults.base_loss, defaults.options_extra_loss}},
      {"paper-scale census",
       {false, defaults.base_loss, defaults.options_extra_loss}},
      {"faults enabled (differential suites)",
       {true, defaults.base_loss, defaults.options_extra_loss}},
      {"zero-loss (maximal elision)", {false, 0.0, 0.0}},
  };
  if (sweep) {
    for (int faults = 0; faults < 2; ++faults) {
      for (int base = 0; base < 2; ++base) {
        for (int extra = 0; extra < 2; ++extra) {
          configs.push_back({"sweep",
                             {faults != 0, base != 0 ? 0.01 : 0.0,
                              extra != 0 ? 0.01 : 0.0}});
        }
      }
    }
  }

  std::string out;
  std::size_t total_violations = 0;
  for (const NamedConfig& nc : configs) {
    const rr::sim::RunTable table = rr::sim::compile_run_table(nc.config);
    const rr::verify::TableReport report =
        rr::verify::verify_run_table(table, nc.config);
    out += "== ";
    out += nc.name;
    out += " ==\n";
    out += rr::verify::format_report(report, verbose);
    out += "\n";
    total_violations += report.violations.size();
  }
  out += total_violations == 0
             ? "RESULT: all run-table entries proved sound\n"
             : "RESULT: VIOLATIONS FOUND (" +
                   std::to_string(total_violations) + ")\n";

  if (!report_path.empty()) {
    std::ofstream file{report_path};
    if (!file) {
      std::cerr << "rropt_verify: cannot open " << report_path << "\n";
      return 2;
    }
    file << out;
  }
  std::cout << out;
  return total_violations == 0 ? 0 : 1;
}
