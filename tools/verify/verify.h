// rropt_verify: abstract interpretation over compiled run lists.
//
// The dataplane's correctness story so far is *differential*: the compiled
// element pipeline (sim/pipeline.h) is proven bit-identical to the legacy
// branch forest on golden datasets, fault plans and thread counts. That
// proof only covers run-list entries the test inputs happen to exercise.
// This verifier closes the gap the way a compiler-IR validator does: it
// symbolically executes every PackedRunList over an abstract packet-header
// domain and proves per-entry invariants for *all* 64 personality x
// packet-class entries of a RunTable at once — including entries no golden
// dataset reaches.
//
// Abstract domain (one run list = one hop's element sequence):
//
//   * TTL interval [lo, hi] plus a decrement counter — TTL is strictly
//     monotone and decremented at most once per hop;
//   * RR pointer/length bounds — the pointer only advances, each advance
//     is guarded by a fullness/bounds check, and nothing advances past the
//     exhausted mark (pointer == length + 1);
//   * checksum-delta accumulator — every header mutation group is covered
//     by exactly one RFC 1624 commit; the fused TtlStampTrusted opcode
//     commits a single combined delta for both of its mutations, and no
//     uncommitted delta survives the run;
//   * option-presence lattice {absent, present, unknown} — option-touching
//     opcodes may only appear in the has_options bank;
//   * an option-content taint bit — fault opcodes may rewrite option
//     content mid-walk, which revokes the structural proof that licenses
//     the trusted (revalidation-skipping) stamp opcodes.
//
// Per-entry invariants proved on top of the abstract execution:
//
//   * kEnd is reachable in <= 8 nibbles and nothing follows it (dead
//     opcodes past the terminator are a mis-compile);
//   * gate opcodes (loss, storm, CoPP, filters) are verdict-pure — they
//     never write the header;
//   * opcode order matches the load-bearing legacy branch order (gates
//     before TTL, stamping last);
//   * fused opcodes are byte-equivalent to their unfused expansions under
//     the abstract semantics;
//   * the entry's opcode set matches an independently re-derived
//     personality spec (double-entry bookkeeping against compile_run_table
//     rot: a new element + peephole combination that silently drops a CoPP
//     gate or double-decrements TTL fails here even if no dataset notices).
//
// Wired three ways: a freeze-time debug assert in sim/pipeline.cpp (the
// table the sim will actually run), the rropt_verify CLI (per-entry
// proof/violation report, uploaded as a CI artifact), and the tier-1
// RroptVerify.RunTableSound ctest which also feeds seeded random element
// chains through compile -> verify. See DESIGN.md §14 for the domain,
// the per-opcode transfer functions and the soundness caveats.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/pipeline.h"

namespace rr::verify {

/// Option-presence lattice: what the abstract packet knows about its IP
/// options. A run list is compiled per packet class, so the class pins the
/// lattice at entry; kUnknown exists for verifying free-standing chains.
enum class OptionState : std::uint8_t { kAbsent = 0, kPresent = 1,
                                        kUnknown = 2 };

/// Closed interval over the 8-bit TTL.
struct TtlInterval {
  int lo = 0;
  int hi = 255;
};

/// The abstract packet-header state threaded through the per-opcode
/// transfer functions. One instance describes the cumulative effect of a
/// (prefix of a) run list on any concrete packet admitted at entry.
struct AbstractHeader {
  TtlInterval ttl{0, 255};
  /// TTL decrements applied by this run (invariant: <= 1).
  int ttl_decrements = 0;
  /// RR pointer slot advances applied by this run (invariant: <= 1, each
  /// guarded by a fullness check).
  int rr_advances = 0;
  /// Header mutation groups produced so far (TTL write = 1 group, RR
  /// stamp = 1 group) that are not yet covered by a checksum commit.
  int uncommitted_groups = 0;
  /// RFC 1624 checksum read-modify-writes performed so far.
  int checksum_commits = 0;
  /// Option presence at this point of the run.
  OptionState options = OptionState::kUnknown;
  /// A fault opcode may have rewritten option content since entry: the
  /// structural proof licensing trusted (revalidation-skipping) stamps is
  /// void from here on.
  bool option_content_tainted = false;
};

/// Static facts about one opcode — the verifier's transfer-function table.
/// Exposed so tests can assert the model itself (e.g. every gate opcode is
/// verdict-pure by construction).
struct OpModel {
  const char* name = "?";
  /// Compile-order phase rank; ranks must strictly increase along a list
  /// (the legacy walk's branch order is load-bearing for bit-identity).
  int phase = 0;
  /// Verdict-pure gate: decides continue/drop/expire, never writes the
  /// header.
  bool gate = false;
  /// Decrements TTL (exactly once, guarded against expired/malformed).
  bool writes_ttl = false;
  /// Advances the RR pointer by one slot under a fullness/bounds guard.
  bool stamps = false;
  /// Skips per-stamp option revalidation — legal only while no fault
  /// opcode can have rewritten option bytes.
  bool trusted = false;
  /// May rewrite option content (and exhaust the RR pointer) mid-walk.
  bool fault = false;
  /// Touches IP options at all (legal only in the has_options bank).
  bool needs_options = false;
  /// RFC 1624 checksum commits the opcode performs on the wire header.
  int commits = 0;
};

/// The transfer-function table entry for `op`; nullptr for a nibble that
/// decodes to no known opcode.
[[nodiscard]] const OpModel* op_model(sim::ElementOp op) noexcept;

/// One proved-false invariant on one run list.
struct Violation {
  std::uint8_t flags = 0;
  bool has_options = false;
  sim::PackedRunList list = 0;
  std::string invariant;  // short id: "order", "ttl-monotone", ...
  std::string message;
};

/// One table entry's proof: the abstract post-state plus the verdict.
struct EntryProof {
  std::uint8_t flags = 0;
  bool has_options = false;
  sim::PackedRunList list = 0;
  std::size_t steps = 0;
  AbstractHeader post;
  bool ok = true;
};

/// A full run-table verification: 2 x 32 entry proofs plus every violation
/// found (empty == the table is sound for this config).
struct TableReport {
  sim::PipelineConfig config;
  std::vector<EntryProof> entries;
  std::vector<Violation> violations;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Abstractly executes `list` and checks the class-level invariants
/// (structure, ordering, TTL/RR monotonicity, checksum balance, trusted-
/// stamp licensing, fused-vs-unfused equivalence). `options` pins the
/// option lattice at entry. `post`, when non-null, receives the abstract
/// post-state.
[[nodiscard]] std::vector<Violation> verify_list(
    sim::PackedRunList list, OptionState options,
    const sim::PipelineConfig& config, AbstractHeader* post = nullptr);

/// Verifies one (flags, has_options) table entry: the class-level
/// invariants plus the independently re-derived personality spec (which
/// opcodes this personality must and must not contain).
[[nodiscard]] std::vector<Violation> verify_entry(
    sim::PackedRunList list, std::uint8_t flags, bool has_options,
    const sim::PipelineConfig& config, AbstractHeader* post = nullptr);

/// Verifies an element chain as the compiler would pack it. A chain longer
/// than the 8-opcode run-list capacity is itself a violation ("overflow"):
/// run_list_append rejects the ninth opcode, so an over-long compile would
/// silently drop behaviour.
[[nodiscard]] std::vector<Violation> verify_chain(
    std::span<const sim::ElementOp> chain, OptionState options,
    const sim::PipelineConfig& config);

/// Verifies every entry of a compiled table (the three wiring points all
/// funnel here).
[[nodiscard]] TableReport verify_run_table(const sim::RunTable& table,
                                           const sim::PipelineConfig& config);

/// Cheap boolean for the freeze-time debug assert in sim/pipeline.cpp.
[[nodiscard]] bool run_table_sound(const sim::RunTable& table,
                                   const sim::PipelineConfig& config);

/// Human-readable per-entry proof/violation report (the CLI's output and
/// the CI artifact). `verbose` includes every proved entry, not just the
/// violations and the summary.
[[nodiscard]] std::string format_report(const TableReport& report,
                                        bool verbose);

/// One-line description of a config, for report headers.
[[nodiscard]] std::string describe_config(const sim::PipelineConfig& config);

}  // namespace rr::verify
