// Doubletree stop sets (measure/stopset.h): key packing, the concurrent
// StopSet structure, the DoubletreeGate policy, and the gated traceroute
// engine's window invariance. Tier 1 — everything here runs on a
// test-scale world or no world at all.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <vector>

#include "measure/stopset.h"
#include "measure/testbed.h"
#include "probe/prober.h"
#include "util/rng.h"

namespace rr::measure {
namespace {

net::IPv4Address addr(std::uint32_t v) { return net::IPv4Address{v}; }

// ------------------------------------------------------------------ keys

TEST(StopSetKeys, DistinctFactsYieldDistinctKeys) {
  // The 58-bit packing is lossless and the mix is bijective, so a dense
  // grid of facts across all four kinds must produce all-distinct,
  // never-zero keys.
  std::unordered_set<std::uint64_t> keys;
  std::size_t count = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto iface = addr(0x0A000001 + i);
    // Distinct /24 per iteration: path/reach facts key on the destination
    // *prefix*, so same-/24 destinations would (correctly) collapse.
    const auto dest = addr(0xC0A80001 + (i << 8));
    for (int ttl = 1; ttl <= 32; ++ttl) {
      keys.insert(local_stop_key(iface, ttl));
      keys.insert(path_point_key(dest, ttl));
      keys.insert(reach_point_key(dest, ttl));
      count += 3;
    }
    for (std::uint32_t p = 0; p < 16; ++p) {
      keys.insert(global_stop_key(iface, addr(0x0B000000 + (p << 8))));
      ++count;
    }
  }
  EXPECT_EQ(keys.size(), count);
  EXPECT_EQ(keys.count(0), 0u) << "0 is the empty-slot sentinel";
}

TEST(StopSetKeys, GlobalKeyGroupsBySlash24) {
  const auto iface = addr(0x0B0B0B01);
  EXPECT_EQ(stopset_prefix_of(addr(0xC0A80123)), addr(0xC0A80100));
  EXPECT_EQ(global_stop_key(iface, addr(0xC0A80101)),
            global_stop_key(iface, addr(0xC0A801FE)));
  EXPECT_NE(global_stop_key(iface, addr(0xC0A80101)),
            global_stop_key(iface, addr(0xC0A80201)));
}

// --------------------------------------------------------------- StopSet

TEST(StopSet, InsertThenContains) {
  StopSet set(1024);
  const auto k1 = local_stop_key(addr(0x0A000001), 3);
  const auto k2 = local_stop_key(addr(0x0A000001), 4);
  EXPECT_FALSE(set.contains(k1));
  EXPECT_TRUE(set.insert(k1));
  EXPECT_TRUE(set.contains(k1));
  EXPECT_FALSE(set.contains(k2));
  EXPECT_FALSE(set.insert(k1)) << "duplicate insert reports not-new";
  EXPECT_EQ(set.size(), 1u);
}

TEST(StopSet, InsertAllCountsOnlyNewKeys) {
  StopSet set(1024);
  std::vector<std::uint64_t> keys;
  for (int t = 1; t <= 10; ++t) {
    keys.push_back(local_stop_key(addr(0x0A0000FF), t));
  }
  keys.push_back(keys.front());  // one duplicate
  EXPECT_EQ(set.insert_all(keys), 10u);
  EXPECT_EQ(set.size(), 10u);
}

TEST(StopSet, SaturationRejectsWithoutFalsePositives) {
  // A deliberately tiny set: most inserts overflow, but membership stays
  // exact — an absent fact just means the probe is sent.
  StopSet set(1);
  std::vector<std::uint64_t> accepted;
  for (std::uint64_t i = 1; i <= 50000; ++i) {
    const std::uint64_t key = util::mix64(i);
    if (key == 0) continue;
    if (set.insert(key)) accepted.push_back(key);
  }
  EXPECT_GT(set.overflows(), 0u);
  EXPECT_EQ(set.size(), accepted.size());
  for (const auto key : accepted) EXPECT_TRUE(set.contains(key));
  for (std::uint64_t i = 100001; i <= 101000; ++i) {
    const std::uint64_t key = util::mix64(i);
    if (key != 0) {
      EXPECT_FALSE(set.contains(key));
    }
  }
}

TEST(StopSet, ConcurrentInsertersAndReaders) {
  // The census shape: many writers on disjoint fact streams, lock-free
  // readers racing them. Everything a writer inserted must be visible
  // after the join, and readers must never see a torn/false key.
  constexpr int kWriters = 8;
  constexpr std::uint64_t kPerWriter = 4000;
  StopSet set(kWriters * kPerWriter);
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&set, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        set.insert(util::mix64((static_cast<std::uint64_t>(w) << 32) | (i + 1)));
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&set] {
      // Reader lane: keys from a range no writer produces — must stay
      // absent throughout (no false positives under concurrency).
      for (std::uint64_t i = 0; i < 20000; ++i) {
        ASSERT_FALSE(set.contains(util::mix64(0xDEAD000000000000ULL + i)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(set.overflows(), 0u);
  std::size_t present = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (std::uint64_t i = 0; i < kPerWriter; ++i) {
      present += set.contains(
          util::mix64((static_cast<std::uint64_t>(w) << 32) | (i + 1)));
    }
  }
  EXPECT_EQ(present, kWriters * kPerWriter);
  EXPECT_EQ(set.size(), kWriters * kPerWriter);
}

// --------------------------------------------------------- DoubletreeGate

TEST(DoubletreeGate, BackwardStopAfterLocalFact) {
  StopSet local(256);
  DoubletreeGate::Config gc;
  gc.first_hop = 5;
  DoubletreeGate gate(&local, nullptr, gc);
  const auto iface = addr(0x0A010101);

  EXPECT_EQ(gate.begin(addr(0xC0A80101)), 5);
  EXPECT_FALSE(gate.stop_backward(iface, 4)) << "no fact yet";
  gate.record(iface, 4);
  EXPECT_TRUE(gate.stop_backward(iface, 4)) << "fact recorded this trace";
  EXPECT_FALSE(gate.stop_backward(iface, 3)) << "TTL is part of the fact";
  gate.finish_trace();
  EXPECT_GT(gate.stats().checks, 0u);
  EXPECT_GT(gate.stats().hits, 0u);
}

TEST(DoubletreeGate, ForwardStopRequiresGlobalFactForSamePrefix) {
  StopSet local(256), global(256);
  DoubletreeGate::Config gc;
  gc.live_global_inserts = true;
  DoubletreeGate gate(&local, &global, gc);
  const auto iface = addr(0x0A010101);

  gate.begin(addr(0xC0A80105));
  EXPECT_FALSE(gate.stop_forward(iface, 6));
  gate.record(iface, 6);  // live insert: (iface, 192.168.1.0/24) learned
  gate.finish_trace();

  gate.begin(addr(0xC0A80142));  // same /24, different host
  EXPECT_TRUE(gate.stop_forward(iface, 7))
      << "the forward fact is TTL-independent";
  gate.finish_trace();

  gate.begin(addr(0xC0A80242));  // different /24
  EXPECT_FALSE(gate.stop_forward(iface, 6));
  gate.finish_trace();
}

TEST(DoubletreeGate, DeferredModeBuffersGlobalFacts) {
  StopSet local(256), global(256);
  DoubletreeGate gate(&local, &global, DoubletreeGate::Config{});
  gate.begin(addr(0xC0A80105));
  gate.record(addr(0x0A010101), 6);
  gate.finish_trace();
  EXPECT_EQ(global.size(), 0u) << "nothing visible before the commit";
  ASSERT_EQ(gate.pending_global().size(), 1u);
  global.insert_all(gate.pending_global());
  gate.pending_global().clear();
  EXPECT_EQ(global.size(), 1u);
  gate.begin(addr(0xC0A80142));
  EXPECT_TRUE(gate.stop_forward(addr(0x0A010101), 5));
  gate.finish_trace();
}

TEST(DoubletreeGate, RememberPathsBackfillsTheSkippedChain) {
  StopSet local(1024);
  DoubletreeGate::Config gc;
  gc.first_hop = 5;
  gc.remember_paths = true;
  DoubletreeGate gate(&local, nullptr, gc);

  // Trace one: a complete chain 1..5 observed the hard way.
  gate.begin(addr(0xC0A80105));
  const std::uint32_t base = 0x0A010100;
  for (int t = 1; t <= 5; ++t) gate.record(addr(base + t), t);
  gate.finish_trace();

  // Trace two: the same hop at TTL 4 stops backward, and the memo must
  // reproduce hops 1..3 exactly as probing would have found them.
  gate.begin(addr(0xC0A80905));
  EXPECT_TRUE(gate.stop_backward(addr(base + 4), 4));
  const auto below = gate.backfill(addr(base + 4), 4);
  ASSERT_EQ(below.size(), 3u);
  for (int t = 1; t <= 3; ++t) {
    EXPECT_EQ(below[static_cast<std::size_t>(t - 1)], addr(base + t));
  }
  gate.finish_trace();
}

TEST(DoubletreeGate, NoBackfillWithoutACompleteChain) {
  StopSet local(1024);
  DoubletreeGate::Config gc;
  gc.remember_paths = true;
  DoubletreeGate gate(&local, nullptr, gc);
  gate.begin(addr(0xC0A80105));
  gate.record(addr(0x0A010104), 4);  // hops 1..3 never observed
  gate.finish_trace();
  gate.begin(addr(0xC0A80905));
  EXPECT_FALSE(gate.stop_backward(addr(0x0A010104), 4))
      << "remember_paths only stops where the memo can backfill";
  gate.finish_trace();
}

// ------------------------------------------------- gated traceroute engine

measure::TestbedConfig deterministic_config() {
  measure::TestbedConfig config;
  config.topo_params = topo::TopologyParams::test_scale();
  config.topo_params.seed = 4242;
  auto& p = config.behavior_params;
  p.host_ping_responsive = {1.0, 1.0, 1.0, 1.0};
  p.as_dark = {0.0, 0.0, 0.0, 0.0};
  p.router_hidden = 0.0;
  p.router_anonymous = 0.0;
  p.router_responds_ping = 1.0;
  p.router_rate_limited = 0.0;
  p.base_loss = 0.0;
  p.options_extra_loss = 0.0;
  return config;
}

TEST(GatedTraceroute, WindowWidthDoesNotChangeTheTrace) {
  // In a deterministic world the windowed forward sweep must produce the
  // same trace at any batch width — windowing only groups sends.
  measure::Testbed testbed{deterministic_config()};
  const auto& topology = testbed.topology();
  const std::size_t n = std::min<std::size_t>(
      topology.destinations().size(), 20);
  for (std::size_t i = 0; i < n; ++i) {
    const auto target = topology.host_at(topology.destinations()[i]).address;
    probe::TracerouteResult reference;
    for (int window : {1, 2, 4, 8}) {
      auto prober = testbed.make_prober(testbed.vps().front()->host, 1000.0);
      probe::TraceOptions options;
      options.window = window;
      const auto trace = prober.traceroute(target, options);
      if (window == 1) {
        reference = trace;
        continue;
      }
      ASSERT_EQ(trace.reached, reference.reached) << target.to_string();
      ASSERT_EQ(trace.hops.size(), reference.hops.size());
      for (std::size_t h = 0; h < trace.hops.size(); ++h) {
        EXPECT_EQ(trace.hops[h].ttl, reference.hops[h].ttl);
        EXPECT_EQ(trace.hops[h].address, reference.hops[h].address);
        EXPECT_EQ(trace.hops[h].kind, reference.hops[h].kind);
      }
    }
  }
}

TEST(GatedTraceroute, SecondTraceToSamePrefixStopsEarlyAndSendsFewer) {
  measure::Testbed testbed{deterministic_config()};
  const auto& topology = testbed.topology();
  auto prober = testbed.make_prober(testbed.vps().front()->host, 1000.0);

  StopSet local(4096), global(4096);
  DoubletreeGate::Config gc;
  gc.live_global_inserts = true;  // serial caller: program order is canon
  DoubletreeGate gate(&local, &global, gc);
  probe::TraceOptions options;
  options.gate = &gate;

  // Find a destination the VP actually reaches beyond first_hop.
  for (std::size_t i = 0; i < topology.destinations().size(); ++i) {
    const auto target = topology.host_at(topology.destinations()[i]).address;
    const auto first = prober.traceroute(target, options);
    if (!first.reached || first.hop_count() <= gc.first_hop) continue;
    const auto second = prober.traceroute(target, options);
    EXPECT_LT(second.probes_sent, first.probes_sent)
        << "redundant re-trace must cost less";
    EXPECT_TRUE(second.forward_stop_ttl > 0 || second.backward_stop_ttl > 0)
        << "some stop rule must have fired";
    gate.finish_trace();
    return;
  }
  GTEST_SKIP() << "no destination beyond first_hop at test scale";
}

TEST(GatedTraceroute, UngatedTraceMatchesLegacyEngine) {
  // The TraceOptions engine with no gate is the legacy traceroute: same
  // contiguous hop list, same reached flag.
  measure::Testbed testbed{deterministic_config()};
  const auto& topology = testbed.topology();
  const std::size_t n = std::min<std::size_t>(
      topology.destinations().size(), 10);
  for (std::size_t i = 0; i < n; ++i) {
    const auto target = topology.host_at(topology.destinations()[i]).address;
    auto prober_a = testbed.make_prober(testbed.vps().front()->host, 1000.0);
    auto prober_b = testbed.make_prober(testbed.vps().front()->host, 1000.0);
    const auto legacy = prober_a.traceroute(target, 30, 2);
    probe::TraceOptions options;
    const auto fresh = prober_b.traceroute(target, options);
    ASSERT_EQ(fresh.reached, legacy.reached);
    ASSERT_EQ(fresh.hops.size(), legacy.hops.size());
    for (std::size_t h = 0; h < fresh.hops.size(); ++h) {
      EXPECT_EQ(fresh.hops[h].address, legacy.hops[h].address);
      EXPECT_EQ(fresh.hops[h].ttl, legacy.hops[h].ttl);
    }
  }
}

}  // namespace
}  // namespace rr::measure
