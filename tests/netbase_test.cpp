// Unit tests for the netbase layer: addresses, prefixes, the LPM trie,
// the Internet checksum, and the bounds-checked byte reader/writer.
#include <gtest/gtest.h>

#include <limits>

#include "netbase/address.h"
#include "netbase/byte_io.h"
#include "netbase/checksum.h"
#include "netbase/lpm_trie.h"
#include "netbase/prefix.h"
#include "util/rng.h"

namespace rr::net {
namespace {

// ------------------------------------------------------------ IPv4Address

TEST(Address, RoundTripsDottedQuad) {
  const auto addr = IPv4Address::parse("192.0.2.33");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->to_string(), "192.0.2.33");
  EXPECT_EQ(addr->value(), 0xC0000221u);
}

TEST(Address, ParsesBoundaryOctets) {
  EXPECT_TRUE(IPv4Address::parse("0.0.0.0").has_value());
  EXPECT_TRUE(IPv4Address::parse("255.255.255.255").has_value());
  EXPECT_EQ(IPv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Address, RejectsMalformedInput) {
  EXPECT_FALSE(IPv4Address::parse("").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IPv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(IPv4Address::parse("1..2.3").has_value());
  EXPECT_FALSE(IPv4Address::parse("a.b.c.d").has_value());
  EXPECT_FALSE(IPv4Address::parse("01.2.3.4").has_value());  // leading zero
  EXPECT_FALSE(IPv4Address::parse("1.2.3.4 ").has_value());
}

TEST(Address, BytesAreNetworkOrder) {
  const IPv4Address addr{10, 20, 30, 40};
  const auto bytes = addr.to_bytes();
  EXPECT_EQ(bytes[0], 10);
  EXPECT_EQ(bytes[3], 40);
  EXPECT_EQ(IPv4Address::from_bytes(10, 20, 30, 40), addr);
}

TEST(Address, OrderingFollowsNumericValue) {
  EXPECT_LT(IPv4Address(1, 0, 0, 0), IPv4Address(2, 0, 0, 0));
  EXPECT_LT(IPv4Address(1, 0, 0, 255), IPv4Address(1, 0, 1, 0));
}

// ----------------------------------------------------------------- Prefix

TEST(Prefix, MasksHostBits) {
  const Prefix p{IPv4Address{192, 0, 2, 77}, 24};
  EXPECT_EQ(p.base().to_string(), "192.0.2.0");
  EXPECT_EQ(p.to_string(), "192.0.2.0/24");
}

TEST(Prefix, ContainsAddressesAndSubPrefixes) {
  const Prefix p = *Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(p.contains(IPv4Address(10, 1, 200, 3)));
  EXPECT_FALSE(p.contains(IPv4Address(10, 2, 0, 0)));
  EXPECT_TRUE(p.contains(*Prefix::parse("10.1.34.0/24")));
  EXPECT_FALSE(p.contains(*Prefix::parse("10.0.0.0/8")));
}

TEST(Prefix, SizeAndAddressAt) {
  const Prefix p = *Prefix::parse("198.51.100.0/24");
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.address_at(1).to_string(), "198.51.100.1");
  EXPECT_EQ(p.address_at(256).to_string(), "198.51.100.0");  // wraps
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix p{IPv4Address{}, 0};
  EXPECT_EQ(p.size(), std::uint64_t{1} << 32);
  EXPECT_TRUE(p.contains(IPv4Address(255, 1, 2, 3)));
}

TEST(Prefix, ParseRejectsBadInput) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/2x").has_value());
}

TEST(Prefix, Slash24OfAddress) {
  EXPECT_EQ(Prefix::slash24_of(IPv4Address(203, 0, 113, 99)).to_string(),
            "203.0.113.0/24");
}

// ---------------------------------------------------------------- LpmTrie

TEST(LpmTrie, LongestMatchWins) {
  LpmTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);

  EXPECT_EQ(*trie.lookup(IPv4Address(10, 1, 2, 3)), 24);
  EXPECT_EQ(*trie.lookup(IPv4Address(10, 1, 9, 9)), 16);
  EXPECT_EQ(*trie.lookup(IPv4Address(10, 200, 0, 1)), 8);
  EXPECT_EQ(trie.lookup(IPv4Address(11, 0, 0, 1)), nullptr);
}

TEST(LpmTrie, DefaultRouteMatchesEverything) {
  LpmTrie<int> trie;
  trie.insert(Prefix{IPv4Address{}, 0}, 77);
  EXPECT_EQ(*trie.lookup(IPv4Address(1, 2, 3, 4)), 77);
  EXPECT_EQ(*trie.lookup(IPv4Address(255, 255, 255, 255)), 77);
}

TEST(LpmTrie, ExactAndErase) {
  LpmTrie<int> trie;
  trie.insert(*Prefix::parse("172.16.0.0/12"), 1);
  EXPECT_NE(trie.exact(*Prefix::parse("172.16.0.0/12")), nullptr);
  EXPECT_EQ(trie.exact(*Prefix::parse("172.16.0.0/16")), nullptr);
  EXPECT_TRUE(trie.erase(*Prefix::parse("172.16.0.0/12")));
  EXPECT_FALSE(trie.erase(*Prefix::parse("172.16.0.0/12")));
  EXPECT_TRUE(trie.empty());
}

TEST(LpmTrie, InsertReplacesValue) {
  LpmTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(*trie.lookup(IPv4Address(10, 0, 0, 1)), 2);
}

TEST(LpmTrie, ForEachVisitsInsertedPrefixes) {
  LpmTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("192.168.1.0/24"), 2);
  int visited = 0;
  trie.for_each([&](const Prefix& p, int v) {
    ++visited;
    if (v == 1) {
      EXPECT_EQ(p.to_string(), "10.0.0.0/8");
    }
    if (v == 2) {
      EXPECT_EQ(p.to_string(), "192.168.1.0/24");
    }
  });
  EXPECT_EQ(visited, 2);
}

TEST(LpmTrie, RandomizedAgainstLinearScan) {
  util::Rng rng{42};
  LpmTrie<std::uint32_t> trie;
  std::vector<Prefix> prefixes;
  for (int i = 0; i < 300; ++i) {
    const auto base = static_cast<std::uint32_t>(rng());
    const auto len = static_cast<std::uint8_t>(rng.next_in(4, 28));
    const Prefix p{IPv4Address{base}, len};
    trie.insert(p, static_cast<std::uint32_t>(i));
    prefixes.push_back(p);
  }
  for (int trial = 0; trial < 2000; ++trial) {
    const IPv4Address addr{static_cast<std::uint32_t>(rng())};
    // Linear reference: the longest containing prefix inserted last wins
    // only if same length; trie replaces equal prefixes, so compare by
    // (length, last-inserted).
    int best = -1;
    int best_len = -1;
    for (int i = 0; i < static_cast<int>(prefixes.size()); ++i) {
      const auto& p = prefixes[static_cast<std::size_t>(i)];
      if (!p.contains(addr)) continue;
      if (p.length() > best_len ||
          (p.length() == best_len && i > best)) {
        best = i;
        best_len = p.length();
      }
    }
    const auto* found = trie.lookup(addr);
    if (best == -1) {
      EXPECT_EQ(found, nullptr);
    } else {
      ASSERT_NE(found, nullptr);
      EXPECT_EQ(prefixes[*found].length(), best_len);
      EXPECT_TRUE(prefixes[*found].contains(addr));
    }
  }
}

// --------------------------------------------------------------- checksum

TEST(Checksum, Rfc1071Example) {
  // Classic example from RFC 1071 §3: {00 01, f2 03, f4 f5, f6 f7}.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                               0xf4, 0xf5, 0xf6, 0xf7};
  const std::uint32_t partial = checksum_partial(data);
  EXPECT_EQ(partial, 0x2ddf0u);
  EXPECT_EQ(checksum_finish(partial), static_cast<std::uint16_t>(~0xddf2));
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t data[] = {0x12, 0x34, 0x56};
  EXPECT_EQ(internet_checksum(data),
            checksum_finish(0x1234 + 0x5600));
}

TEST(Checksum, ValidatedBufferSumsToZero) {
  util::Rng rng{7};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(rng.next_in(2, 128)) & ~std::size_t{1});
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    data[0] = data[1] = 0;  // checksum field placeholder
    const std::uint16_t sum = internet_checksum(data);
    data[0] = static_cast<std::uint8_t>(sum >> 8);
    data[1] = static_cast<std::uint8_t>(sum);
    EXPECT_TRUE(checksum_ok(data));
    data[2] ^= 0xff;  // corrupt
    if (data.size() > 2) {
      EXPECT_FALSE(checksum_ok(data));
    }
  }
}

// ---------------------------------------------------------------- byte IO

TEST(ByteIo, WriterRoundTripsThroughReader) {
  ByteWriter writer;
  writer.u8(0xAB);
  writer.u16(0x1234);
  writer.u32(0xDEADBEEF);
  writer.address(IPv4Address(8, 8, 4, 4));

  ByteReader reader{writer.view()};
  EXPECT_EQ(reader.u8(), 0xAB);
  EXPECT_EQ(reader.u16(), 0x1234);
  EXPECT_EQ(reader.u32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.address(), IPv4Address(8, 8, 4, 4));
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ByteIo, BigEndianOnTheWire) {
  ByteWriter writer;
  writer.u16(0x0102);
  EXPECT_EQ(writer.view()[0], 0x01);
  EXPECT_EQ(writer.view()[1], 0x02);
}

TEST(ByteIo, ShortReadMarksBad) {
  const std::uint8_t data[] = {1, 2, 3};
  ByteReader reader{data};
  EXPECT_EQ(reader.u16(), 0x0102);
  EXPECT_EQ(reader.u16(), 0);  // only one byte left
  EXPECT_FALSE(reader.ok());
  // Once bad, always bad — even reads that would fit return zero.
  EXPECT_EQ(reader.u8(), 0);
}

TEST(ByteIo, PatchU16) {
  ByteWriter writer;
  writer.u32(0);
  writer.patch_u16(1, 0xBEEF);
  EXPECT_EQ(writer.view()[1], 0xBE);
  EXPECT_EQ(writer.view()[2], 0xEF);
  writer.patch_u16(3, 0xFFFF);  // would straddle the end: ignored
  EXPECT_EQ(writer.view()[3], 0x00);
}

TEST(ByteIo, BytesAndRest) {
  ByteWriter writer;
  const std::uint8_t payload[] = {9, 8, 7, 6};
  writer.bytes(payload);
  writer.zeros(2);
  ByteReader reader{writer.view()};
  const auto got = reader.bytes(4);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], 9);
  EXPECT_EQ(reader.rest().size(), 2u);
}

}  // namespace
}  // namespace rr::net
