// Tests for the util layer: deterministic RNG, string helpers, the
// worker pool, and the annotated lock/log primitives.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/flags.h"
#include "util/log.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace rr::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng{5};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng{6};
  std::array<int, 10> buckets{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[rng.next_below(10)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng{7};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, ChanceExtremes) {
  Rng rng{8};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng{9};
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng{10};
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng{11};
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkIsIndependentAndLabelled) {
  Rng parent1{42}, parent2{42};
  Rng child_a = parent1.fork("a");
  Rng child_b = parent2.fork("b");
  // Distinct labels give distinct streams.
  EXPECT_NE(child_a(), child_b());
  // Same label from identically-positioned parents gives the same stream.
  Rng parent3{42};
  Rng child_a2 = parent3.fork("a");
  EXPECT_EQ(child_a2(), Rng{42}.fork("a")());
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng{13};
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.pick_weighted(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.3);
}

TEST(Rng, GeometricCapped) {
  Rng rng{14};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.next_geometric(0.9, 5), 5);
  }
  // With p=0, never continues.
  EXPECT_EQ(rng.next_geometric(0.0, 5), 0);
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(510305), "510,305");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
}

TEST(Strings, PercentAndFixed) {
  EXPECT_EQ(percent(0.754), "75%");
  EXPECT_EQ(percent(0.666, 1), "66.6%");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(Strings, SplitAndJoin) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, "-"), "a-b--c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abc");  // truncates
}

TEST(Flags, ParsesKeyValueForms) {
  const char* argv[] = {"tool", "--a", "1", "--b=two", "--c", "pos",
                        "--d"};
  const auto flags = Flags::parse(7, argv);
  EXPECT_EQ(flags.get_int("a", 0), 1);
  EXPECT_EQ(flags.get("b"), "two");
  EXPECT_EQ(flags.get("c"), "pos");
  EXPECT_TRUE(flags.has("d"));
  EXPECT_FALSE(flags.has("missing"));
  EXPECT_EQ(flags.get("missing", "fb"), "fb");
}

TEST(Flags, PositionalAndDoubles) {
  const char* argv[] = {"tool", "input.rrds", "--rate", "2.5"};
  const auto flags = Flags::parse(4, argv);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.rrds");
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
}

TEST(Flags, TracksUnusedKeys) {
  const char* argv[] = {"tool", "--used", "1", "--typo", "2"};
  const auto flags = Flags::parse(5, argv);
  (void)flags.get_int("used", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Hashing, LabelHashIsStable) {
  EXPECT_EQ(hash_label("x"), hash_label("x"));
  EXPECT_NE(hash_label("x"), hash_label("y"));
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroAndSingleThreadDegenerateCases) {
  ThreadPool pool(1);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

// Regression stress for the stale-worker race: a worker that wakes for
// region G but is preempted until G completes must not claim an index of
// the region that replaced it (invoking G's destroyed job closure). Many
// tiny back-to-back regions — each with a fresh closure over fresh state —
// maximize the window; a stale claim shows up as a missed or doubled index
// (or a crash under sanitizers).
TEST(ThreadPool, BackToBackRegionsNeverLeakWorkAcrossGenerations) {
  ThreadPool pool(8);
  constexpr int kRegions = 3000;
  for (int r = 0; r < kRegions; ++r) {
    const std::size_t n = 1 + static_cast<std::size_t>(r % 7);
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "region " << r << " index " << i;
    }
  }
}

// util::Mutex is the annotated wrapper rropt-lint's raw-mutex rule points
// everyone at; make sure it actually excludes.
TEST(Mutex, MutualExclusionUnderContention) {
  Mutex mu;
  long long counter = 0;  // guarded by mu (locals can't carry the attribute)
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
}

TEST(Mutex, TryLockReportsContention) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Log, SinkRedirectAndLineCounter) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  set_log_sink(sink);
  const auto before = log_lines_emitted();
  log_line(LogLevel::kWarn, "redirected line");
  log_line(LogLevel::kDebug, "below level: discarded");
  set_log_sink(nullptr);  // restore stderr before asserting
  EXPECT_EQ(log_lines_emitted(), before + 1);

  std::rewind(sink);
  char buffer[128] = {};
  ASSERT_NE(std::fgets(buffer, sizeof buffer, sink), nullptr);
  EXPECT_EQ(std::string(buffer), "[warn] redirected line\n");
  EXPECT_EQ(std::fgets(buffer, sizeof buffer, sink), nullptr);
  std::fclose(sink);
}

TEST(Log, ConcurrentWritersNeverInterleaveMidLine) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  set_log_sink(sink);
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      const std::string line = "writer-" + std::to_string(t);
      for (int i = 0; i < kLines; ++i) log_line(LogLevel::kWarn, line);
    });
  }
  for (auto& thread : threads) thread.join();
  set_log_sink(nullptr);

  std::rewind(sink);
  std::array<int, kThreads> seen{};
  char buffer[128];
  while (std::fgets(buffer, sizeof buffer, sink) != nullptr) {
    const std::string line{buffer};
    bool matched = false;
    for (int t = 0; t < kThreads; ++t) {
      if (line == "[warn] writer-" + std::to_string(t) + "\n") {
        ++seen[static_cast<std::size_t>(t)];
        matched = true;
      }
    }
    EXPECT_TRUE(matched) << "torn log line: " << line;
  }
  std::fclose(sink);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], kLines);
  }
}

}  // namespace
}  // namespace rr::util
