// Dataset freezing/IO and JSONL export.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "data/dataset.h"
#include "data/jsonl.h"
#include "measure/testbed.h"
#include "util/rng.h"

namespace rr::data {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    measure::TestbedConfig config;
    config.topo_params = topo::TopologyParams::test_scale();
    config.topo_params.seed = 606;
    testbed_ = new measure::Testbed{config};
    measure::CampaignConfig campaign_config;
    campaign_config.destination_stride = 3;
    campaign_ = new measure::Campaign{
        measure::Campaign::run(*testbed_, campaign_config)};
    dataset_ = new CampaignDataset{
        CampaignDataset::from_campaign(*campaign_, "unit-test snapshot")};
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete campaign_;
    delete testbed_;
  }

  static measure::Testbed* testbed_;
  static measure::Campaign* campaign_;
  static CampaignDataset* dataset_;
};

measure::Testbed* DatasetTest::testbed_ = nullptr;
measure::Campaign* DatasetTest::campaign_ = nullptr;
CampaignDataset* DatasetTest::dataset_ = nullptr;

TEST_F(DatasetTest, FreezingPreservesShapeAndObservations) {
  EXPECT_EQ(dataset_->num_vps(), campaign_->num_vps());
  EXPECT_EQ(dataset_->num_destinations(), campaign_->num_destinations());
  for (std::size_t v = 0; v < dataset_->num_vps(); v += 3) {
    for (std::size_t d = 0; d < dataset_->num_destinations(); d += 17) {
      EXPECT_EQ(dataset_->at(v, d), campaign_->at(v, d));
    }
  }
}

TEST_F(DatasetTest, OfflineQueriesMatchTheLiveCampaign) {
  for (std::size_t d = 0; d < dataset_->num_destinations(); d += 5) {
    EXPECT_EQ(dataset_->rr_responsive(d), campaign_->rr_responsive(d));
    EXPECT_EQ(dataset_->rr_reachable(d), campaign_->rr_reachable(d));
  }
}

TEST_F(DatasetTest, OfflineTable1MatchesLiveTable1) {
  const auto offline = dataset_->response_table();
  const auto live = measure::build_response_table(*campaign_);
  for (std::size_t i = 0; i < offline.by_ip.size(); ++i) {
    EXPECT_EQ(offline.by_ip[i].probed, live.by_ip[i].probed);
    EXPECT_EQ(offline.by_ip[i].ping_responsive,
              live.by_ip[i].ping_responsive);
    EXPECT_EQ(offline.by_ip[i].rr_responsive, live.by_ip[i].rr_responsive);
    EXPECT_EQ(offline.by_as[i].probed, live.by_as[i].probed);
    EXPECT_EQ(offline.by_as[i].rr_responsive, live.by_as[i].rr_responsive);
  }
}

TEST_F(DatasetTest, SerializeParseRoundTrip) {
  const auto bytes = dataset_->serialize();
  const auto parsed = CampaignDataset::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, *dataset_);
}

TEST_F(DatasetTest, SaveLoadRoundTrip) {
  const std::string path = "/tmp/rropt_dataset_test.rrds";
  ASSERT_TRUE(dataset_->save(path));
  const auto loaded = CampaignDataset::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, *dataset_);
  std::remove(path.c_str());
}

TEST_F(DatasetTest, CorruptionIsDetected) {
  auto bytes = dataset_->serialize();
  util::Rng rng{9};
  for (int trial = 0; trial < 40; ++trial) {
    auto corrupted = bytes;
    corrupted[rng.next_below(corrupted.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    EXPECT_FALSE(CampaignDataset::parse(corrupted).has_value());
  }
  // Truncation.
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(CampaignDataset::parse(bytes).has_value());
  EXPECT_FALSE(CampaignDataset::parse({}).has_value());
}

TEST_F(DatasetTest, LoadOfMissingFileFails) {
  EXPECT_FALSE(CampaignDataset::load("/tmp/does_not_exist.rrds").has_value());
}

TEST(Jsonl, EscapesStrings) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string_view{"\x01", 1}), "\\u0001");
}

TEST(Jsonl, ObjectWriter) {
  std::ostringstream out;
  {
    JsonObject object(out);
    object.field("s", "x\"y");
    object.field("i", 42);
    object.field("d", 1.5);
    object.field("b", true);
  }
  EXPECT_EQ(out.str(), R"({"s":"x\"y","i":42,"d":1.5,"b":true})");
}

TEST(Jsonl, ProbeLineContainsTheRecordedRoute) {
  probe::ProbeResult result;
  result.type = probe::ProbeType::kPingRr;
  result.target = *net::IPv4Address::parse("198.51.100.1");
  result.kind = probe::ResponseKind::kEchoReply;
  result.responder = result.target;
  result.rtt = 0.0123;
  result.rr_option_in_reply = true;
  result.rr_recorded = {*net::IPv4Address::parse("10.0.0.1"),
                        *net::IPv4Address::parse("10.0.0.2")};
  result.rr_free_slots = 7;

  std::ostringstream out;
  write_probe_line(out, result, "mlab-001");
  const std::string line = out.str();
  EXPECT_NE(line.find("\"vp\":\"mlab-001\""), std::string::npos);
  EXPECT_NE(line.find("\"type\":\"ping-RR\""), std::string::npos);
  EXPECT_NE(line.find("\"rr\":[\"10.0.0.1\",\"10.0.0.2\"]"),
            std::string::npos);
  EXPECT_NE(line.find("\"rr_free\":7"), std::string::npos);
  EXPECT_EQ(line.back(), '\n');
}

TEST(Jsonl, UnansweredProbeOmitsResponseFields) {
  probe::ProbeResult result;
  result.type = probe::ProbeType::kPing;
  result.target = *net::IPv4Address::parse("203.0.113.9");
  std::ostringstream out;
  write_probe_line(out, result);
  const std::string line = out.str();
  EXPECT_NE(line.find("\"result\":\"none\""), std::string::npos);
  EXPECT_EQ(line.find("\"from\""), std::string::npos);
  EXPECT_EQ(line.find("\"rr\""), std::string::npos);
}

TEST(Jsonl, FigureExportTagsSeries) {
  analysis::FigureData figure("t", "x", "y");
  figure.add_series("curve").add(1, 0.5);
  std::ostringstream out;
  write_figure_jsonl(out, figure);
  EXPECT_EQ(out.str(), "{\"series\":\"curve\",\"x\":1,\"y\":0.5}\n");
}

}  // namespace
}  // namespace rr::data
