// Tests for tools/lint (rropt_lint): unit tests on snippets, then the
// fixture corpus — every file under lint_corpus/bad/ must trip its rule
// and every file under lint_corpus/good/ must come back clean.
#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace rr::lint {
namespace {

namespace fs = std::filesystem;

std::set<std::string> rules_of(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const auto& finding : findings) rules.insert(finding.rule);
  return rules;
}

// ---------------------------------------------------------------- units

TEST(LintRules, FlagsRandInSim) {
  const auto findings =
      lint_file("src/sim/x.cpp", "int f() { return std::rand(); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-rand");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintRules, RandScopeIsPathBased) {
  // Same content, non-deterministic subsystem: clean.
  const auto findings =
      lint_file("src/analysis/x.cpp", "int f() { return std::rand(); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRules, MemberNamedRandIsClean) {
  const auto findings = lint_file(
      "src/sim/x.cpp", "int f(const Cfg& c) { return c.rand + c->random; }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRules, TimeCallFlaggedButTimeVariableClean) {
  EXPECT_EQ(rules_of(lint_file("src/measure/x.cpp",
                               "long f() { return time(nullptr); }\n")),
            (std::set<std::string>{"no-wallclock"}));
  EXPECT_EQ(rules_of(lint_file("src/measure/x.cpp",
                               "long f() { return std::time(nullptr); }\n")),
            (std::set<std::string>{"no-wallclock"}));
  EXPECT_TRUE(lint_file("src/measure/x.cpp",
                        "double f(S s) { double time = s.time; return time; }\n")
                  .empty());
}

TEST(LintRules, UnseededEngineHeuristic) {
  EXPECT_EQ(rules_of(lint_file("src/routing/x.cpp", "std::mt19937 g;\n")),
            (std::set<std::string>{"no-unseeded-rng"}));
  EXPECT_EQ(rules_of(lint_file("src/routing/x.cpp", "std::mt19937 g{};\n")),
            (std::set<std::string>{"no-unseeded-rng"}));
  EXPECT_TRUE(
      lint_file("src/routing/x.cpp", "std::mt19937 g{seed};\n").empty());
  EXPECT_TRUE(
      lint_file("src/routing/x.cpp", "std::mt19937 g(seed ^ k);\n").empty());
}

TEST(LintRules, CommentsAndStringsNeverTrip) {
  const auto findings = lint_file(
      "src/sim/x.cpp",
      "// std::rand() in a comment\n"
      "/* system_clock in a block comment */\n"
      "const char* s = \"rand() time( mt19937 std::cout\";\n"
      "const char* r = R\"(std::random_device)\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRules, StreamIoIncludeAndCallsite) {
  const auto findings = lint_file("src/packet/x.cpp",
                                  "#include <iostream>\n"
                                  "void f() { std::cout << 1; }\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "no-stream-io");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].rule, "no-stream-io");
  EXPECT_EQ(findings[1].line, 2);
}

TEST(LintRules, StreamIoAllowedOutsideHotSubsystems) {
  EXPECT_TRUE(lint_file("src/data/x.cpp",
                        "#include <iostream>\nvoid f() { std::cout << 1; }\n")
                  .empty());
}

TEST(LintRules, HotRegionAllocAndWaiver) {
  const std::string hot =
      "void f(std::vector<int>& v) {\n"
      "  // RROPT_HOT_BEGIN(x)\n"
      "  v.push_back(1);\n"
      "  // RROPT_HOT_END(x)\n"
      "  v.push_back(2);\n"
      "}\n";
  const auto findings = lint_file("src/probe/x.cpp", hot);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-hot-alloc");
  EXPECT_EQ(findings[0].line, 3);

  const std::string waived =
      "void f(std::vector<int>& v) {\n"
      "  // RROPT_HOT_BEGIN(x)\n"
      "  v.push_back(1);  // RROPT_HOT_OK: capacity recycled\n"
      "  // RROPT_HOT_END(x)\n"
      "}\n";
  EXPECT_TRUE(lint_file("src/probe/x.cpp", waived).empty());
}

TEST(LintRules, ElementProcessBodyIsImplicitlyHot) {
  const std::string body =
      "struct E {\n"
      "  int process(Ctx& ctx) const noexcept {\n"
      "    ctx.v.push_back(1);\n"
      "    return 0;\n"
      "  }\n"
      "};\n";
  const auto findings = lint_file("src/sim/x.h", "#pragma once\n" + body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-hot-alloc");
  EXPECT_EQ(findings[0].line, 4);
  // The same body outside the determinism subsystems is not implicitly hot.
  EXPECT_TRUE(lint_file("src/analysis/x.h", "#pragma once\n" + body).empty());
}

TEST(LintRules, BatchWalkKernelsAreImplicitlyHot) {
  const std::string body =
      "void walk_batch_slot(B& b, int p) {\n"
      "  b.v.push_back(p);\n"
      "}\n"
      "void walk_batch_pipeline(B& b) {\n"
      "  int* s = new int[4];\n"
      "  delete[] s;\n"
      "}\n";
  const auto findings = lint_file("src/sim/x.cpp", body);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "no-hot-alloc");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].rule, "no-hot-alloc");
  EXPECT_EQ(findings[1].line, 5);
  // Call sites do not open hot regions.
  EXPECT_TRUE(lint_file("src/measure/x.cpp",
                        "void f(B& b) {\n"
                        "  walk_batch_pipeline(b);\n"
                        "  b.v.push_back(1);\n"
                        "}\n")
                  .empty());
}

TEST(LintRules, ProcessBodyWaiversAndNonDefinitions) {
  // RROPT_HOT_OK waives a line inside the implicit hot body as usual.
  EXPECT_TRUE(lint_file("src/sim/x.h",
                        "#pragma once\n"
                        "struct E {\n"
                        "  int process(Ctx& ctx) const {\n"
                        "    ctx.v.push_back(1);  // RROPT_HOT_OK: recycled\n"
                        "    return 0;\n"
                        "  }\n"
                        "};\n")
                  .empty());
  // Calls and declarations named process do not open hot regions.
  EXPECT_TRUE(lint_file("src/sim/x.cpp",
                        "int f(E& e, Ctx& c) {\n"
                        "  c.v.push_back(e.process(c));\n"
                        "  return g(e.process(c), 1);\n"
                        "}\n"
                        "struct F { int process(Ctx& ctx) const; };\n"
                        "void h(V& v) { v.push_back(2); }\n")
                  .empty());
}

TEST(LintRules, RawMutexOutsideUtil) {
  EXPECT_EQ(
      rules_of(lint_file("src/routing/x.h",
                         "#pragma once\nstruct S { std::mutex mu; };\n")),
      (std::set<std::string>{"raw-mutex"}));
  EXPECT_TRUE(lint_file("src/util/x.h",
                        "#pragma once\nstruct S { std::mutex mu; };\n")
                  .empty());
}

TEST(LintRules, UmbrellaIncludeAndSelfExemption) {
  EXPECT_EQ(rules_of(lint_file("src/measure/x.cpp", "#include \"rropt.h\"\n")),
            (std::set<std::string>{"umbrella-include"}));
  // The umbrella header itself may do whatever it likes with its own name.
  EXPECT_TRUE(
      lint_file("src/rropt.h", "#pragma once\n#include \"packet/rr.h\"\n")
          .empty());
}

TEST(LintRules, PragmaOnce) {
  EXPECT_EQ(rules_of(lint_file("src/packet/x.h", "struct S {};\n")),
            (std::set<std::string>{"pragma-once"}));
  EXPECT_TRUE(lint_file("src/packet/x.h", "#pragma once\nstruct S {};\n")
                  .empty());
  // .cpp files are exempt from the header rule.
  EXPECT_TRUE(lint_file("src/packet/x.cpp", "struct S {};\n").empty());
}

TEST(LintRules, AllowCommentWaivesExactRuleOnly) {
  EXPECT_TRUE(lint_file("src/sim/x.cpp",
                        "int f() { return std::rand(); }  "
                        "// rropt-lint: allow(no-rand)\n")
                  .empty());
  // Waiving a different rule does not help.
  EXPECT_FALSE(lint_file("src/sim/x.cpp",
                         "int f() { return std::rand(); }  "
                         "// rropt-lint: allow(no-wallclock)\n")
                   .empty());
}

TEST(LintRules, TaintWallclockReachingHashSink) {
  // The clock read itself trips no-wallclock in determinism subsystems;
  // the taint pass additionally tracks the value through two assignments
  // into the hash sink.
  const auto findings = lint_file(
      "src/sim/x.cpp",
      "std::uint64_t f() {\n"
      "  const auto stamp = "
      "std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "  const auto mixed = static_cast<std::uint64_t>(stamp) * 31u;\n"
      "  return content_hash(mixed);\n"
      "}\n");
  EXPECT_EQ(rules_of(findings),
            (std::set<std::string>{"no-wallclock", "taint"}));
  // data/ has no no-wallclock rule, but frozen bytes still must not
  // depend on the clock: only taint fires there.
  EXPECT_EQ(rules_of(lint_file(
                "src/data/x.cpp",
                "std::uint64_t f() {\n"
                "  const auto stamp = "
                "std::chrono::system_clock::now().time_since_epoch().count();"
                "\n"
                "  return content_hash(static_cast<std::uint64_t>(stamp));\n"
                "}\n")),
            (std::set<std::string>{"taint"}));
}

TEST(LintRules, TaintUnorderedIterationOrderIntoTelemetry) {
  const std::string unordered =
      "void f(const std::unordered_map<std::string, double>& counters) {\n"
      "  for (const auto& [name, value] : counters) {\n"
      "    record_value(name, value);\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(rules_of(lint_file("src/measure/x.cpp", unordered)),
            (std::set<std::string>{"taint"}));
  // Ordered iteration is deterministic: same shape over std::map is clean.
  const std::string ordered =
      "void f(const std::map<std::string, double>& counters) {\n"
      "  for (const auto& [name, value] : counters) {\n"
      "    record_value(name, value);\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(lint_file("src/measure/x.cpp", ordered).empty());
}

TEST(LintRules, TaintPointerAsIntegerCast) {
  // A pointer-as-integer cast fed straight into a hash sink is flagged,
  // even with no intermediate variable.
  EXPECT_EQ(rules_of(lint_file(
                "src/sim/x.cpp",
                "std::uint64_t f(const int* p) {\n"
                "  return rr::util::mix64("
                "reinterpret_cast<std::uintptr_t>(p));\n"
                "}\n")),
            (std::set<std::string>{"taint"}));
  // The same cast whose value never reaches a sink is clean.
  EXPECT_TRUE(lint_file("src/sim/x.cpp",
                        "bool f(const int* p) {\n"
                        "  const auto raw = "
                        "reinterpret_cast<std::uintptr_t>(p);\n"
                        "  return raw % 2 == 0;\n"
                        "}\n")
                  .empty());
}

TEST(LintRules, TaintScopeAndWaiver) {
  const std::string flow =
      "std::uint64_t f(const int* p) {\n"
      "  const auto raw = reinterpret_cast<std::uintptr_t>(p);\n"
      "  return rr::util::mix64(raw);\n"
      "}\n";
  // Outside the determinism subsystems and data/, the taint pass is off.
  EXPECT_TRUE(lint_file("src/analysis/x.cpp", flow).empty());
  // allow(taint) on the sink line waives the flow.
  EXPECT_TRUE(lint_file("src/sim/x.cpp",
                        "std::uint64_t f(const int* p) {\n"
                        "  const auto raw = "
                        "reinterpret_cast<std::uintptr_t>(p);\n"
                        "  return rr::util::mix64(raw);  "
                        "// rropt-lint: allow(taint)\n"
                        "}\n")
                  .empty());
}

TEST(LintRules, HotClosureReachesHelpersOneLevelDeep) {
  // A helper called from an implicitly hot process() body inherits the
  // no-allocation rule; the finding lands on the helper's alloc line.
  const std::string body =
      "inline void note_hop(std::vector<int>& log, int hop) {\n"
      "  log.push_back(hop);\n"
      "}\n"
      "struct E {\n"
      "  std::vector<int> hops;\n"
      "  int process(Ctx& ctx) {\n"
      "    note_hop(hops, ctx.hop);\n"
      "    return 0;\n"
      "  }\n"
      "};\n";
  const auto findings = lint_file("src/sim/x.cpp", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-hot-alloc");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("note_hop"), std::string::npos);
  // RROPT_HOT_OK waives the inherited rule the same way as in a marked
  // region, and the same helper is clean when nothing hot calls it.
  const std::string waived =
      "inline void note_hop(std::vector<int>& log, int hop) {\n"
      "  log.push_back(hop);  // RROPT_HOT_OK: capacity recycled\n"
      "}\n"
      "struct E {\n"
      "  std::vector<int> hops;\n"
      "  int process(Ctx& ctx) {\n"
      "    note_hop(hops, ctx.hop);\n"
      "    return 0;\n"
      "  }\n"
      "};\n";
  EXPECT_TRUE(lint_file("src/sim/x.cpp", waived).empty());
  EXPECT_TRUE(lint_file("src/sim/x.cpp",
                        "inline void note_hop(std::vector<int>& log, int h) "
                        "{\n"
                        "  log.push_back(h);\n"
                        "}\n")
                  .empty());
}

TEST(LintFormat, CompilerStyle) {
  const Finding finding{"src/sim/x.cpp", 12, "no-rand", "msg"};
  EXPECT_EQ(format(finding), "src/sim/x.cpp:12: [no-rand] msg");
}

TEST(LintRules, EveryRuleHasADescription) {
  const auto descriptions = rule_descriptions();
  EXPECT_EQ(descriptions.size(), 9u);
}

// --------------------------------------------------------------- corpus

std::vector<std::string> corpus_files(const std::string& subdir) {
  std::vector<std::string> files;
  const fs::path root = fs::path{RROPT_LINT_CORPUS_DIR} / subdir;
  for (const auto& entry : fs::recursive_directory_iterator{root}) {
    if (entry.is_regular_file()) files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(LintCorpus, EveryBadFixtureFails) {
  const auto files = corpus_files("bad");
  ASSERT_GE(files.size(), 12u) << "bad corpus went missing";
  for (const auto& file : files) {
    const auto findings = lint_paths({file});
    EXPECT_FALSE(findings.empty()) << file << " should trip its rule";
  }
}

TEST(LintCorpus, EveryGoodFixtureIsClean) {
  const auto files = corpus_files("good");
  ASSERT_GE(files.size(), 10u) << "good corpus went missing";
  for (const auto& file : files) {
    const auto findings = lint_paths({file});
    for (const auto& finding : findings) {
      ADD_FAILURE() << "unexpected finding: " << format(finding);
    }
  }
}

TEST(LintCorpus, BadCorpusCoversEveryRule) {
  const auto findings = lint_paths({(fs::path{RROPT_LINT_CORPUS_DIR} / "bad")
                                        .string()});
  const auto rules = rules_of(findings);
  for (const char* rule :
       {"no-rand", "no-wallclock", "no-unseeded-rng", "no-stream-io",
        "no-hot-alloc", "raw-mutex", "umbrella-include", "pragma-once",
        "taint"}) {
    EXPECT_TRUE(rules.count(rule) > 0) << "no bad fixture trips " << rule;
  }
}

}  // namespace
}  // namespace rr::lint
