// Tests for the analysis layer: CDFs, tables, figure series.
#include <gtest/gtest.h>

#include <fstream>
#include <limits>
#include <sstream>

#include "analysis/cdf.h"
#include "analysis/series.h"
#include "analysis/table.h"

namespace rr::analysis {
namespace {

TEST(Cdf, FractionAtOrBelow) {
  const Cdf cdf{{1, 2, 2, 3, 10}};
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1), 0.2);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2), 0.6);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(9.99), 0.8);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10), 1.0);
}

TEST(Cdf, HandlesInfinitySamples) {
  // Unreachable destinations enter at +inf; the CDF then never reaches 1
  // on the finite axis — exactly how Figure 1 tops out at 0.66.
  const Cdf cdf{{1, 2, std::numeric_limits<double>::infinity()}};
  EXPECT_NEAR(cdf.fraction_at_or_below(9), 2.0 / 3.0, 1e-12);
}

TEST(Cdf, EmptyCdfIsSafe) {
  const Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.value_at_quantile(0.5), 0.0);
}

TEST(Cdf, QuantilesAndStats) {
  Cdf cdf{{5, 1, 3, 2, 4}};
  EXPECT_DOUBLE_EQ(cdf.min(), 1);
  EXPECT_DOUBLE_EQ(cdf.max(), 5);
  EXPECT_DOUBLE_EQ(cdf.mean(), 3);
  EXPECT_DOUBLE_EQ(cdf.median(), 3);
  EXPECT_DOUBLE_EQ(cdf.value_at_quantile(0.0), 1);
  EXPECT_DOUBLE_EQ(cdf.value_at_quantile(1.0), 5);
}

TEST(Cdf, AddKeepsSorted) {
  Cdf cdf;
  cdf.add(5);
  cdf.add(1);
  cdf.add(3);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2), 1.0 / 3.0);
}

TEST(Cdf, IntegerPointsGrid) {
  const Cdf cdf{{1, 3, 3, 9}};
  const auto points = cdf.integer_points(1, 9);
  ASSERT_EQ(points.size(), 9u);
  EXPECT_EQ(points.front().first, 1);
  EXPECT_DOUBLE_EQ(points.front().second, 0.25);
  EXPECT_DOUBLE_EQ(points[2].second, 0.75);  // x = 3
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "count"});
  table.add_row({"alpha", "12"});
  table.add_row({"b", "1,234"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("1,234"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  // Every row ends with a newline and rows have equal width.
  std::istringstream in(text);
  std::string line1, line2, line3, line4;
  std::getline(in, line1);
  std::getline(in, line2);
  std::getline(in, line3);
  std::getline(in, line4);
  EXPECT_EQ(line3.size(), line4.size());
}

TEST(TextTable, CountCell) {
  EXPECT_EQ(count_cell(510305, 1.0), "510,305 (100%)");
  EXPECT_EQ(count_cell(296734, 0.58), "296,734 (58%)");
}

TEST(FigureData, PrintsSeriesBlocks) {
  FigureData figure("test", "x", "y");
  auto& s = figure.add_series("curve-a");
  s.add(1, 0.5);
  s.add(2, 1.0);
  figure.add_series("curve-b").add(1, 0.25);
  std::ostringstream out;
  figure.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# series: curve-a"), std::string::npos);
  EXPECT_NE(text.find("# series: curve-b"), std::string::npos);
  EXPECT_NE(text.find("2.000 1.0000"), std::string::npos);
}

TEST(FigureData, WritesCsv) {
  FigureData figure("test", "x", "y");
  figure.add_series("a").add(1, 0.5);
  figure.add_series("b").add(2, 0.75);
  const std::string path = "/tmp/rropt_test_figure.csv";
  ASSERT_TRUE(figure.write_csv(path));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,a,b");
}

}  // namespace
}  // namespace rr::analysis
