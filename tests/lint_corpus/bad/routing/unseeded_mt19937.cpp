// bad: no-unseeded-rng — default-constructed engine seeds from a fixed
// implementation-defined constant, silently decoupled from the run config.
#include <random>

namespace rr::route {

int pick(int n) {
  std::mt19937 gen;  // finding: no-unseeded-rng
  return static_cast<int>(gen() % static_cast<unsigned>(n));
}

int pick_braced(int n) {
  std::mt19937_64 gen{};  // finding: no-unseeded-rng
  return static_cast<int>(gen() % static_cast<unsigned>(n));
}

}  // namespace rr::route
