// bad: no-hot-alloc — allocation inside a marked hot region without a
// waiver. The same calls outside the region are fine.
#include <memory>
#include <vector>

namespace rr::probe {

std::vector<int> scratch;

void setup() {
  scratch.push_back(1);  // ok: outside any hot region
}

void probe_once(std::vector<int>& trace, int hop) {
  // RROPT_HOT_BEGIN(fixture-probe)
  trace.push_back(hop);             // finding: no-hot-alloc (push_back)
  auto owned = std::make_unique<int>(hop);  // finding: no-hot-alloc
  *owned += 1;
  // RROPT_HOT_END(fixture-probe)
}

void teardown() {
  scratch.push_back(2);  // ok: after the region closed
}

}  // namespace rr::probe
