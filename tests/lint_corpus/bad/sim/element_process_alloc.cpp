// bad: no-hot-alloc — an element process() body is a hot region by
// contract (sim/element.h), with no RROPT_HOT markers needed.
#include <vector>

namespace rr::sim {

struct Ctx {
  std::vector<int> stamps;
};

struct LeakyElement {
  int process(Ctx& ctx) const {
    ctx.stamps.push_back(7);  // finding: no-hot-alloc (implicit hot body)
    int* scratch = new int[4];  // finding: no-hot-alloc
    delete[] scratch;
    return 0;
  }
};

}  // namespace rr::sim
