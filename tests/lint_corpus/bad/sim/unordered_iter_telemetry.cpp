// taint: unordered-container iteration order leaking into telemetry.
// Each record_value call is fine in isolation; the *sequence* of calls
// follows the map's bucket order, which varies across standard libraries
// and hash seeds — telemetry rows would diff run to run.
#include <cstdint>
#include <string>
#include <unordered_map>

void record_value(const std::string& name, double value);

void emit_counters(const std::unordered_map<std::string, double>& src) {
  std::unordered_map<std::string, double> counters{src};
  for (const auto& [name, value] : counters) {
    record_value(name, value);
  }
}
