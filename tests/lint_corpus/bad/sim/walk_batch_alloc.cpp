// bad: no-hot-alloc — the batched walk kernels (walk_batch_pipeline /
// walk_batch_slot, sim/pipeline.cpp) are hot regions by contract, with no
// RROPT_HOT markers needed: they are the per-hop dataplane with the probe
// loop inverted.
#include <cstddef>
#include <vector>

namespace rr::sim {

struct Batch {
  std::vector<int> results;
};

void walk_batch_slot(Batch& b, std::size_t p) {
  b.results.push_back(static_cast<int>(p));  // finding: no-hot-alloc
}

void walk_batch_pipeline(Batch& b) {
  int* scratch = new int[b.results.size() + 1];  // finding: no-hot-alloc
  delete[] scratch;
  for (std::size_t p = 0; p < b.results.size(); ++p) walk_batch_slot(b, p);
}

}  // namespace rr::sim
