// no-hot-alloc (cross-function closure): the element process() body is
// implicitly hot and calls note_hop, a same-file helper — note_hop
// inherits the no-allocation rule one call level deep, so its push_back
// is a finding even though no RROPT_HOT marker surrounds it.
#include <cstdint>
#include <vector>

struct Ctx {
  std::uint32_t hop;
};

inline void note_hop(std::vector<std::uint32_t>& log, std::uint32_t hop) {
  log.push_back(hop);
}

struct TraceElement {
  std::vector<std::uint32_t> hops;
  int process(Ctx& ctx) {
    note_hop(hops, ctx.hop);
    return 0;
  }
};
