// bad: raw-mutex — std::mutex outside util/ is invisible to the
// thread-safety analysis; util::Mutex is the annotated wrapper.
#include <mutex>

namespace rr::sim {

struct Shared {
  std::mutex mu;  // finding: raw-mutex
  int value = 0;
};

int bump(Shared& shared) {
  std::lock_guard<std::mutex> lock{shared.mu};  // finding: raw-mutex
  return ++shared.value;
}

}  // namespace rr::sim
