// bad: no-stream-io — both the include and the call sites are findings.
#include <iostream>  // finding: no-stream-io

namespace rr::sim {

void debug_dump(int hops) {
  std::cout << "hops=" << hops << "\n";  // finding: no-stream-io (cout)
}

void debug_dump_c(int hops) {
  printf("hops=%d\n", hops);  // finding: no-stream-io (printf)
}

}  // namespace rr::sim
