// bad: no-rand — libc randomness in the simulator.
#include <cstdlib>

namespace rr::sim {

int jitter() {
  return std::rand() % 7;  // finding: no-rand (std::rand)
}

unsigned seed_from_hardware() {
  std::random_device rd;  // finding: no-rand (random_device)
  return rd();
}

}  // namespace rr::sim
