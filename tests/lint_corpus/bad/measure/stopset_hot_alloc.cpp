// bad: no-hot-alloc — a stop-set membership check that allocates on the
// probe hot path. Membership runs once per candidate TTL of every
// traceroute in the census; building a heap key or buffering hits there
// is exactly what the packed-integer StopSet design exists to avoid
// (measure/stopset.h).
#include <cstdint>
#include <memory>
#include <vector>

namespace rr::measure {

struct SlowStopSet {
  std::vector<std::uint64_t> keys;
  std::vector<std::uint64_t> hits;

  bool contains_hot(std::uint32_t iface, int ttl) {
    // RROPT_HOT_BEGIN(fixture-stopset)
    auto key = std::make_unique<std::uint64_t>(  // finding: no-hot-alloc
        (static_cast<std::uint64_t>(iface) << 8) |
        static_cast<std::uint64_t>(ttl & 0xff));
    for (const std::uint64_t held : keys) {
      if (held == *key) {
        hits.push_back(held);  // finding: no-hot-alloc (push_back)
        return true;
      }
    }
    return false;
    // RROPT_HOT_END(fixture-stopset)
  }

  void learn(std::uint32_t iface, int ttl) {
    // ok: insertion happens off the membership hot path
    keys.push_back((static_cast<std::uint64_t>(iface) << 8) |
                   static_cast<std::uint64_t>(ttl & 0xff));
  }
};

}  // namespace rr::measure
