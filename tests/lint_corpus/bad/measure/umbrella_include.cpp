// bad: umbrella-include — the umbrella header is for external consumers;
// from inside the library it is an include cycle by construction.
#include "rropt.h"  // finding: umbrella-include

namespace rr::measure {

int fixture_marker() { return 42; }

}  // namespace rr::measure
