// bad: no-wallclock — measurement code reading real time.
#include <chrono>
#include <ctime>

namespace rr::measure {

double now_seconds() {
  const auto t = std::chrono::system_clock::now();  // finding: no-wallclock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long stamp() {
  return time(nullptr);  // finding: no-wallclock (time())
}

}  // namespace rr::measure
