// taint: pointer-as-integer hashing. The numeric value of an object's
// address is ASLR- and allocator-dependent, so mixing it into a hash makes
// the result run-dependent even though every individual run "works".
#include <cstdint>

namespace rr::util {
std::uint64_t mix64(std::uint64_t x);
}

struct Probe {
  int ttl;
};

std::uint64_t probe_key(const Probe* probe) {
  const auto raw = reinterpret_cast<std::uintptr_t>(probe);
  return rr::util::mix64(raw);
}
