// bad: pragma-once — header with no include guard at all.
#include <cstdint>

namespace rr::pkt {

struct FixtureHeader {
  std::uint8_t version = 4;
};

}  // namespace rr::pkt
