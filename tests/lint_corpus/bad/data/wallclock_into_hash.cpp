// taint: a wall-clock read flowing into the dataset content hash. data/
// is outside the determinism subsystems (no-wallclock does not fire), but
// frozen dataset bytes must still not depend on when the run happened —
// the symbol-flow pass tracks the value from the clock to the sink.
#include <chrono>
#include <cstdint>

std::uint64_t content_hash(std::uint64_t seed);

std::uint64_t snapshot_digest() {
  const auto stamp =
      std::chrono::system_clock::now().time_since_epoch().count();
  return content_hash(static_cast<std::uint64_t>(stamp));
}
