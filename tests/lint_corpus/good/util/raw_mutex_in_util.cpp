// good: util/ is the one place raw std::mutex may live — util::Mutex
// itself wraps one, and the CvLock bridge hands std::unique_lock to
// condition variables.
#include <mutex>

namespace rr::util {

struct FixtureWrapper {
  std::mutex mu;  // allowed: we are under util/
};

int locked_read(FixtureWrapper& wrapper, const int& value) {
  std::lock_guard<std::mutex> lock{wrapper.mu};
  return value;
}

}  // namespace rr::util
