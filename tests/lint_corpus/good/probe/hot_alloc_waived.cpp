// good: allocation inside a hot region is clean when the line carries an
// RROPT_HOT_OK waiver explaining why the steady state does not allocate.
#include <vector>

namespace rr::probe {

void probe_once(std::vector<int>& trace, int hop) {
  // RROPT_HOT_BEGIN(fixture-probe)
  trace.push_back(hop);  // RROPT_HOT_OK: capacity recycled across probes
  // RROPT_HOT_END(fixture-probe)
}

void after(std::vector<int>& trace) {
  trace.push_back(0);  // outside the region: clean without a waiver
}

}  // namespace rr::probe
