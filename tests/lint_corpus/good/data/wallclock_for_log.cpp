// Clean: a wall-clock read that flows only into a log line, never into a
// hash / serialization / telemetry sink. data/ is outside the determinism
// subsystems, so reading the clock is fine per se — only the flow into
// frozen bytes is banned.
#include <chrono>
#include <cstdint>
#include <string>

void log_line(const std::string& text, std::uint64_t stamp);

void announce_run(const std::string& name) {
  const auto stamp =
      std::chrono::system_clock::now().time_since_epoch().count();
  log_line(name, static_cast<std::uint64_t>(stamp));
}
