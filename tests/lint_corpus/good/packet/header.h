// good: a header that follows the include hygiene rules — #pragma once
// present, no umbrella include, no stream IO.
#pragma once

#include <cstdint>

namespace rr::pkt {

struct FixtureOption {
  std::uint8_t kind = 7;
  std::uint8_t length = 3;
  std::uint8_t pointer = 4;
};

}  // namespace rr::pkt
