// Clean: the pointer-as-integer flow carries an explicit allow(taint)
// waiver — the hash is debug-only and never reaches frozen bytes, which
// the waiver comment is the reviewed record of.
#include <cstdint>

namespace rr::util {
std::uint64_t mix64(std::uint64_t x);
}

struct Probe {
  int ttl;
};

std::uint64_t debug_identity(const Probe* probe) {
  const auto raw = reinterpret_cast<std::uintptr_t>(probe);
  return rr::util::mix64(raw);  // rropt-lint: allow(taint)
}
