// good: the allocation-free stop-set membership shape (measure/stopset.h)
// — packed integer keys probed against a fixed-capacity table of atomic
// slots. Nothing in the hot region allocates, so no waivers are needed.
#include <atomic>
#include <cstdint>

namespace rr::measure {

struct FixtureStopSet {
  static constexpr std::size_t kSlots = 64;
  std::atomic<std::uint64_t> slots[kSlots];

  static std::uint64_t key_of(std::uint32_t iface, int ttl) {
    return (static_cast<std::uint64_t>(iface) << 8) |
           static_cast<std::uint64_t>(ttl & 0xff);
  }

  bool contains(std::uint32_t iface, int ttl) const {
    // RROPT_HOT_BEGIN(fixture-stopset)
    const std::uint64_t key = key_of(iface, ttl);
    std::size_t slot = key % kSlots;
    for (std::size_t i = 0; i < kSlots; ++i) {
      const std::uint64_t held =
          slots[slot].load(std::memory_order_acquire);
      if (held == key) return true;
      if (held == 0) return false;
      slot = (slot + 1) % kSlots;
    }
    return false;
    // RROPT_HOT_END(fixture-stopset)
  }
};

}  // namespace rr::measure
