// good: false-positive guard for no-wallclock. Variables and members may
// be *named* time; only the call `time(...)` and the clock types are
// findings. Strings and comments never trip rules: "std::rand()" is fine
// here, and so is this mention of system_clock.
#include <string>

namespace rr::measure {

struct Sample {
  double time = 0.0;  // a member named `time`: clean
};

double shift(const Sample& sample, double dt) {
  const double time = sample.time + dt;  // reads via `.time`: clean
  return time;
}

std::string describe() {
  return "virtual time only; no system_clock here";  // literal: clean
}

}  // namespace rr::measure
