// Clean: telemetry emitted from an *ordered* map — iteration order is the
// key order, deterministic across runs and standard libraries. Lookups
// into unordered containers (as opposed to iteration) are also fine.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

void record_value(const std::string& name, double value);

void emit_counters(const std::map<std::string, double>& counters,
                   const std::unordered_map<std::string, double>& extra) {
  for (const auto& [name, value] : counters) {
    record_value(name, value);
  }
  const auto it = extra.find("walks");
  if (it != extra.end()) record_value("walks", it->second);
}
