// good: the batched walk kernels are implicitly hot, but allocation-free
// bodies pass, a deliberate recycled-capacity push carries the standard
// RROPT_HOT_OK waiver, and *calls* to the kernels (or allocations outside
// their bodies) are not implicit hot regions.
#include <cstddef>
#include <vector>

namespace rr::sim {

struct Batch {
  std::vector<int> results;
  std::size_t live = 0;
};

void walk_batch_slot(Batch& b, std::size_t p) {
  b.results[p] = static_cast<int>(p);
  b.results.push_back(0);  // RROPT_HOT_OK: capacity recycled
}

void walk_batch_pipeline(Batch& b) {
  for (std::size_t p = 0; p < b.live; ++p) walk_batch_slot(b, p);
  b.live = 0;
}

int drive(Batch& b) {
  b.results.push_back(1);  // a caller's allocation is not hot
  walk_batch_pipeline(b);  // a call site is not hot
  return b.results.back();
}

}  // namespace rr::sim
