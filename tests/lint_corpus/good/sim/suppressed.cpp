// good: any rule can be waived in place with `rropt-lint: allow(<rule>)`
// on the offending line — the escape hatch for the rare justified use.
#include <cstdlib>

namespace rr::sim {

int fixture_entropy() {
  return std::rand();  // rropt-lint: allow(no-rand) — fixture exercises waiver
}

long fixture_stamp() {
  return time(nullptr);  // rropt-lint: allow(no-wallclock)
}

}  // namespace rr::sim
