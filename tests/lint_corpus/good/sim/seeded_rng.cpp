// good: engines with explicit, config-derived seeds pass no-unseeded-rng;
// counter-based draws are the house style and mention no banned names.
#include <cstdint>
#include <random>

namespace rr::sim {

std::uint32_t draw(std::uint64_t run_seed, std::uint64_t counter) {
  std::mt19937_64 gen{run_seed ^ counter};  // seeded: clean
  return static_cast<std::uint32_t>(gen());
}

std::uint32_t draw_paren(std::uint64_t run_seed) {
  std::mt19937 gen(static_cast<std::uint32_t>(run_seed));  // seeded: clean
  return gen();
}

}  // namespace rr::sim
