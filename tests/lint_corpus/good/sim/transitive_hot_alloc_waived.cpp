// Clean: the helper inherits the hot-region no-allocation rule through
// the call closure, but its push_back line carries an RROPT_HOT_OK
// waiver — capacity is recycled, so steady state allocates nothing.
#include <cstdint>
#include <vector>

struct Ctx {
  std::uint32_t hop;
};

inline void note_hop(std::vector<std::uint32_t>& log, std::uint32_t hop) {
  log.push_back(hop);  // RROPT_HOT_OK: capacity recycled across probes
}

struct TraceElement {
  std::vector<std::uint32_t> hops;
  int process(Ctx& ctx) {
    note_hop(hops, ctx.hop);
    return 0;
  }
};
