// good: element process() bodies are implicitly hot, but allocation-free
// bodies pass, a deliberate recycled-capacity push carries the standard
// RROPT_HOT_OK waiver, and *calls* to something named process (or
// allocations outside the body) are not implicit hot regions.
#include <vector>

namespace rr::sim {

struct Ctx {
  std::vector<int> events;
  int ttl = 0;
};

struct CleanElement {
  int process(Ctx& ctx) const noexcept {
    ctx.ttl -= 1;
    ctx.events.push_back(ctx.ttl);  // RROPT_HOT_OK: capacity recycled
    return ctx.ttl;
  }
};

int drive(Ctx& ctx) {
  const CleanElement element;
  ctx.events.push_back(element.process(ctx));  // a call site is not hot
  return ctx.events.back();
}

}  // namespace rr::sim
